//! Lowers the AST into a `lima-runtime` program: statements become program
//! blocks, expressions become instruction sequences over temporaries, and
//! builtins map onto the runtime's instruction set. The runtime's compiler
//! passes (IDs, determinism, dedup, unmarking, reuse-aware rewrites) run as
//! the final step.
//!
//! Source spans from the AST are threaded onto lowered instructions and
//! `parfor` headers so analysis findings (DESIGN.md §14) can point back at
//! the offending source construct.

use crate::ast::{Arg, Expr, ExprKind, FunctionDef, IndexSel, Script, Stmt, StmtKind};
use crate::parser::{parse, ParseError};
use lima_core::{Diagnostic, LimaConfig, Span};
use lima_matrix::ops::{AggFn, BinOp, TsmmSide, UnOp};
use lima_runtime::instr::RandDistKind;
use lima_runtime::{Block, ExprProg, Function, Instr, Op, Operand, Program};
use std::collections::HashSet;
use std::fmt;
use std::hash::{Hash, Hasher};

/// Compilation error: the phase that failed plus enough structure to render
/// a source-anchored diagnostic (DESIGN.md §14).
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// The script failed to lex or parse (codes `L0001`/`L0002`).
    Parse(ParseError),
    /// The AST could not be lowered onto the instruction set (code `L0003`):
    /// unknown function, bad arity, malformed builtin arguments.
    Lower { msg: String, span: Option<Span> },
    /// Rejected by the runtime's static analysis passes (code `L0100`).
    Analysis(lima_runtime::compiler::CompileError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Parse(e) => write!(f, "{e}"),
            CompileError::Lower { msg, .. } => write!(f, "{msg}"),
            CompileError::Analysis(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<ParseError> for CompileError {
    fn from(e: ParseError) -> Self {
        CompileError::Parse(e)
    }
}

impl From<lima_runtime::compiler::CompileError> for CompileError {
    fn from(e: lima_runtime::compiler::CompileError) -> Self {
        CompileError::Analysis(e)
    }
}

impl CompileError {
    /// The primary diagnostic for this error, with its source span when the
    /// failing construct is known.
    pub fn diagnostic(&self) -> Diagnostic {
        match self {
            CompileError::Parse(e) => e.diagnostic(),
            CompileError::Lower { msg, span } => {
                Diagnostic::error("L0003", msg.clone()).with_span_opt(*span)
            }
            CompileError::Analysis(e) => match e {
                lima_runtime::compiler::CompileError::ParforDependence {
                    violation, span, ..
                } => Diagnostic::error(
                    "L0100",
                    format!("parfor cannot run in parallel: {violation}"),
                )
                .with_span_opt(*span)
                .with_help(
                    "parfor iterations must write provably disjoint cells; \
                     use a plain `for` loop if the dependence is intended",
                ),
            },
        }
    }

    /// All diagnostics carried by this error (currently always exactly one).
    pub fn diagnostics(&self) -> Vec<Diagnostic> {
        vec![self.diagnostic()]
    }
}

fn err<T>(span: Span, msg: impl Into<String>) -> Result<T, CompileError> {
    Err(CompileError::Lower {
        msg: msg.into(),
        span: Some(span),
    })
}

/// Parses, lowers, and runs the runtime compiler passes on a script.
pub fn compile_script(src: &str, config: &LimaConfig) -> Result<Program, CompileError> {
    let mut program = compile_script_uncompiled(src)?;
    lima_runtime::compiler::compile(&mut program, config).map_err(CompileError::Analysis)?;
    Ok(program)
}

/// Parses and lowers a script without running the compiler passes
/// (tests and tooling).
pub fn compile_script_uncompiled(src: &str) -> Result<Program, CompileError> {
    let ast = parse(src)?;
    lower_script(&ast, src)
}

/// Lowers an already-parsed script (the lint driver parses separately so it
/// can also walk the AST).
pub fn lower_script(ast: &Script, src: &str) -> Result<Program, CompileError> {
    let mut lowerer = Lowerer::new(ast);
    let body = lowerer.lower_stmts(&ast.body)?;
    let mut program = Program::new(body);
    for fdef in &ast.functions {
        let fbody = lowerer.lower_stmts(&fdef.body)?;
        let mut f = Function::new(
            fdef.name.clone(),
            fdef.params.iter().map(|(n, _)| n.clone()).collect(),
            fdef.outputs.clone(),
            fbody,
        );
        f.deterministic = false; // analysis pass fills this in
        program.add_function(f);
    }
    program.fingerprint = fingerprint(src);
    Ok(program)
}

fn fingerprint(src: &str) -> u64 {
    let mut h = lima_core::lineage::item::FxHasher::default();
    src.hash(&mut h);
    h.finish()
}

/// Structural expression equality ignoring spans (two occurrences of the
/// same source text never share a span, so derived `PartialEq` on [`Expr`]
/// is the wrong tool for pattern matching).
fn same_expr(a: &Expr, b: &Expr) -> bool {
    fn same_sel(a: &IndexSel, b: &IndexSel) -> bool {
        match (a, b) {
            (IndexSel::All, IndexSel::All) => true,
            (IndexSel::Single(x), IndexSel::Single(y)) => same_expr(x, y),
            (IndexSel::Range(x1, y1), IndexSel::Range(x2, y2)) => {
                same_expr(x1, x2) && same_expr(y1, y2)
            }
            _ => false,
        }
    }
    match (&a.kind, &b.kind) {
        (ExprKind::Int(x), ExprKind::Int(y)) => x == y,
        (ExprKind::Float(x), ExprKind::Float(y)) => x == y,
        (ExprKind::Str(x), ExprKind::Str(y)) => x == y,
        (ExprKind::Bool(x), ExprKind::Bool(y)) => x == y,
        (ExprKind::Var(x), ExprKind::Var(y)) => x == y,
        (ExprKind::Neg(x), ExprKind::Neg(y)) | (ExprKind::Not(x), ExprKind::Not(y)) => {
            same_expr(x, y)
        }
        (ExprKind::Binary(o1, a1, b1), ExprKind::Binary(o2, a2, b2)) => {
            o1 == o2 && same_expr(a1, a2) && same_expr(b1, b2)
        }
        (ExprKind::MatMul(a1, b1), ExprKind::MatMul(a2, b2)) => {
            same_expr(a1, a2) && same_expr(b1, b2)
        }
        (ExprKind::Call { name: n1, args: a1 }, ExprKind::Call { name: n2, args: a2 }) => {
            n1 == n2
                && a1.len() == a2.len()
                && a1
                    .iter()
                    .zip(a2)
                    .all(|(x, y)| x.name == y.name && same_expr(&x.value, &y.value))
        }
        (
            ExprKind::Index {
                base: b1,
                rows: r1,
                cols: c1,
            },
            ExprKind::Index {
                base: b2,
                rows: r2,
                cols: c2,
            },
        ) => same_expr(b1, b2) && same_sel(r1, r2) && same_sel(c1, c2),
        _ => false,
    }
}

struct Lowerer {
    next_temp: usize,
    user_functions: HashSet<String>,
    function_defs: Vec<FunctionDef>,
}

impl Lowerer {
    fn new(script: &Script) -> Self {
        Lowerer {
            next_temp: 0,
            user_functions: script.functions.iter().map(|f| f.name.clone()).collect(),
            function_defs: script.functions.clone(),
        }
    }

    fn temp(&mut self) -> String {
        self.next_temp += 1;
        format!("_t{}", self.next_temp)
    }

    fn lower_stmts(&mut self, stmts: &[Stmt]) -> Result<Vec<Block>, CompileError> {
        let mut blocks = Vec::new();
        let mut current: Vec<Instr> = Vec::new();
        macro_rules! flush {
            () => {
                if !current.is_empty() {
                    blocks.push(Block::basic(std::mem::take(&mut current)));
                }
            };
        }
        for stmt in stmts {
            let sspan = stmt.span;
            match &stmt.kind {
                StmtKind::Assign { target, value, .. } => {
                    self.lower_expr_into(value, target, &mut current)?;
                }
                StmtKind::MultiAssign { targets, call } => {
                    let ExprKind::Call { name, args } = &call.kind else {
                        return err(call.span, "multi-assignment requires a call");
                    };
                    self.lower_multi_call(name, args, targets, call.span, &mut current)?;
                }
                StmtKind::IndexAssign {
                    target,
                    rows,
                    cols,
                    value,
                    ..
                } => {
                    let v = self.lower_expr(value, &mut current)?;
                    let rl = self.index_start(rows, &mut current)?;
                    let cl = self.index_start(cols, &mut current)?;
                    current.push(
                        Instr::new(Op::LeftIndex, vec![Operand::var(target), v, rl, cl], target)
                            .at(Some(sspan)),
                    );
                }
                StmtKind::Print(e) => {
                    let v = self.lower_expr(e, &mut current)?;
                    current.push(Instr::effect(Op::Print, vec![v]).at(Some(sspan)));
                }
                StmtKind::Write(e, path) => {
                    let v = self.lower_expr(e, &mut current)?;
                    let p = self.lower_expr(path, &mut current)?;
                    current.push(Instr::effect(Op::Write, vec![v, p]).at(Some(sspan)));
                }
                StmtKind::If {
                    cond,
                    then_body,
                    else_body,
                } => {
                    flush!();
                    let pred = self.lower_expr_prog(cond)?;
                    let t = self.lower_stmts(then_body)?;
                    let e = self.lower_stmts(else_body)?;
                    blocks.push(Block::if_else(pred, t, e));
                }
                StmtKind::For {
                    var,
                    from,
                    to,
                    by,
                    body,
                    parallel,
                    ..
                } => {
                    flush!();
                    // Header span: from the loop keyword through the bounds.
                    let header_end = by.as_ref().map(|b| b.span.end).unwrap_or(to.span.end);
                    let header = Span::new(sspan.start, header_end);
                    let from = self.lower_expr_prog(from)?;
                    let to = self.lower_expr_prog(to)?;
                    let by = match by {
                        Some(b) => self.lower_expr_prog(b)?,
                        None => ExprProg::lit(Operand::i64(1)),
                    };
                    let b = self.lower_stmts(body)?;
                    blocks.push(if *parallel {
                        Block::parfor(var, from, to, by, b).with_span(Some(header))
                    } else {
                        Block::for_loop(var, from, to, by, b)
                    });
                }
                StmtKind::While { cond, body } => {
                    flush!();
                    let pred = self.lower_expr_prog(cond)?;
                    let b = self.lower_stmts(body)?;
                    blocks.push(Block::while_loop(pred, b));
                }
            }
        }
        if !current.is_empty() {
            blocks.push(Block::basic(current));
        }
        Ok(blocks)
    }

    fn lower_expr_prog(&mut self, e: &Expr) -> Result<ExprProg, CompileError> {
        let mut instrs = Vec::new();
        let result = self.lower_expr(e, &mut instrs)?;
        Ok(ExprProg::new(instrs, result))
    }

    /// Lowers an expression, directing the final instruction's output to
    /// `target` when possible (avoids a trailing copy).
    fn lower_expr_into(
        &mut self,
        e: &Expr,
        target: &str,
        instrs: &mut Vec<Instr>,
    ) -> Result<(), CompileError> {
        let before = instrs.len();
        let result = self.lower_expr(e, instrs)?;
        match result {
            Operand::Var(v) if instrs.len() > before => {
                // Retarget the instruction that produced the temp.
                let last = instrs
                    .iter_mut()
                    .rev()
                    .find(|i| i.outputs.len() == 1 && i.outputs[0] == v);
                match last {
                    Some(i) if v.starts_with("_t") => i.outputs[0] = target.to_string(),
                    _ => instrs.push(
                        Instr::new(Op::Assign, vec![Operand::Var(v)], target).at(Some(e.span)),
                    ),
                }
            }
            other => instrs.push(Instr::new(Op::Assign, vec![other], target).at(Some(e.span))),
        }
        Ok(())
    }

    fn lower_expr(&mut self, e: &Expr, instrs: &mut Vec<Instr>) -> Result<Operand, CompileError> {
        let span = e.span;
        Ok(match &e.kind {
            ExprKind::Int(v) => Operand::i64(*v),
            ExprKind::Float(v) => Operand::f64(*v),
            ExprKind::Str(s) => Operand::str(s),
            ExprKind::Bool(b) => Operand::bool(*b),
            ExprKind::Var(v) => Operand::var(v),
            ExprKind::Neg(inner) => {
                let v = self.lower_expr(inner, instrs)?;
                let out = self.temp();
                instrs.push(Instr::new(Op::Unary(UnOp::Neg), vec![v], &out).at(Some(span)));
                Operand::var(out)
            }
            ExprKind::Not(inner) => {
                let v = self.lower_expr(inner, instrs)?;
                let out = self.temp();
                instrs.push(Instr::new(Op::Unary(UnOp::Not), vec![v], &out).at(Some(span)));
                Operand::var(out)
            }
            ExprKind::Binary(op, a, b) => {
                let va = self.lower_expr(a, instrs)?;
                let vb = self.lower_expr(b, instrs)?;
                let out = self.temp();
                instrs.push(Instr::new(Op::Binary(*op), vec![va, vb], &out).at(Some(span)));
                Operand::var(out)
            }
            ExprKind::MatMul(a, b) => self.lower_matmul(a, b, span, instrs)?,
            ExprKind::Call { name, args } => self.lower_call(name, args, span, instrs)?,
            ExprKind::Index { base, rows, cols } => {
                self.lower_index(base, rows, cols, span, instrs)?
            }
        })
    }

    /// Lowers `a %*% b` with the SystemDS-style `tsmm` peephole:
    /// `t(X) %*% X → tsmm(X, LEFT)` and `X %*% t(X) → tsmm(X, RIGHT)`.
    fn lower_matmul(
        &mut self,
        a: &Expr,
        b: &Expr,
        span: Span,
        instrs: &mut Vec<Instr>,
    ) -> Result<Operand, CompileError> {
        fn transposed_of(e: &Expr) -> Option<&Expr> {
            match &e.kind {
                ExprKind::Call { name, args }
                    if name == "t" && args.len() == 1 && args[0].name.is_none() =>
                {
                    Some(&args[0].value)
                }
                _ => None,
            }
        }
        if let Some(inner) = transposed_of(a) {
            if same_expr(inner, b) {
                let v = self.lower_expr(inner, instrs)?;
                let out = self.temp();
                instrs.push(Instr::new(Op::Tsmm(TsmmSide::Left), vec![v], &out).at(Some(span)));
                return Ok(Operand::var(out));
            }
        }
        if let Some(inner) = transposed_of(b) {
            if same_expr(inner, a) {
                let v = self.lower_expr(inner, instrs)?;
                let out = self.temp();
                instrs.push(Instr::new(Op::Tsmm(TsmmSide::Right), vec![v], &out).at(Some(span)));
                return Ok(Operand::var(out));
            }
        }
        let va = self.lower_expr(a, instrs)?;
        let vb = self.lower_expr(b, instrs)?;
        let out = self.temp();
        instrs.push(Instr::new(Op::MatMult, vec![va, vb], &out).at(Some(span)));
        Ok(Operand::var(out))
    }

    /// The 1-based start position of an index selector (for left-indexing).
    fn index_start(
        &mut self,
        sel: &IndexSel,
        instrs: &mut Vec<Instr>,
    ) -> Result<Operand, CompileError> {
        Ok(match sel {
            IndexSel::All => Operand::i64(1),
            IndexSel::Single(e) | IndexSel::Range(e, _) => self.lower_expr(e, instrs)?,
        })
    }

    fn lower_index(
        &mut self,
        base: &Expr,
        rows: &IndexSel,
        cols: &IndexSel,
        span: Span,
        instrs: &mut Vec<Instr>,
    ) -> Result<Operand, CompileError> {
        let mut cur = self.lower_expr(base, instrs)?;
        // Ranged selectors compile into a single rightIndex when possible.
        let range_bounds = |sel: &IndexSel| matches!(sel, IndexSel::All | IndexSel::Range(_, _));
        if range_bounds(rows) && range_bounds(cols) {
            let (rl, ru) = self.range_ops(rows, instrs)?;
            let (cl, cu) = self.range_ops(cols, instrs)?;
            let out = self.temp();
            instrs.push(Instr::new(Op::RightIndex, vec![cur, rl, ru, cl, cu], &out).at(Some(span)));
            return Ok(Operand::var(out));
        }
        // Single selectors use select-rows/cols (scalar positions and
        // 1-based index vectors share the same syntax in DML).
        match rows {
            IndexSel::All => {}
            IndexSel::Single(e) => {
                let idx = self.lower_expr(e, instrs)?;
                let out = self.temp();
                instrs.push(Instr::new(Op::SelectRows, vec![cur, idx], &out).at(Some(span)));
                cur = Operand::var(out);
            }
            IndexSel::Range(a, b) => {
                let rl = self.lower_expr(a, instrs)?;
                let ru = self.lower_expr(b, instrs)?;
                let out = self.temp();
                instrs.push(
                    Instr::new(
                        Op::RightIndex,
                        vec![cur, rl, ru, Operand::i64(1), Operand::i64(0)],
                        &out,
                    )
                    .at(Some(span)),
                );
                cur = Operand::var(out);
            }
        }
        match cols {
            IndexSel::All => {}
            IndexSel::Single(e) => {
                let idx = self.lower_expr(e, instrs)?;
                let out = self.temp();
                instrs.push(Instr::new(Op::SelectCols, vec![cur, idx], &out).at(Some(span)));
                cur = Operand::var(out);
            }
            IndexSel::Range(a, b) => {
                let cl = self.lower_expr(a, instrs)?;
                let cu = self.lower_expr(b, instrs)?;
                let out = self.temp();
                instrs.push(
                    Instr::new(
                        Op::RightIndex,
                        vec![cur, Operand::i64(1), Operand::i64(0), cl, cu],
                        &out,
                    )
                    .at(Some(span)),
                );
                cur = Operand::var(out);
            }
        }
        Ok(cur)
    }

    /// Bounds of a ranged selector as (lo, hi) operands; `All` is `(1, 0)`
    /// with 0 meaning "to the end".
    fn range_ops(
        &mut self,
        sel: &IndexSel,
        instrs: &mut Vec<Instr>,
    ) -> Result<(Operand, Operand), CompileError> {
        Ok(match sel {
            IndexSel::All => (Operand::i64(1), Operand::i64(0)),
            IndexSel::Range(a, b) => (self.lower_expr(a, instrs)?, self.lower_expr(b, instrs)?),
            IndexSel::Single(_) => unreachable!("caller checks"),
        })
    }

    fn lower_multi_call(
        &mut self,
        name: &str,
        args: &[Arg],
        targets: &[String],
        span: Span,
        instrs: &mut Vec<Instr>,
    ) -> Result<(), CompileError> {
        if name == "eigen" {
            if targets.len() != 2 || args.len() != 1 {
                return err(
                    span,
                    "eigen returns [values, vectors] and takes one argument",
                );
            }
            let c = self.lower_expr(&args[0].value, instrs)?;
            instrs.push(Instr::multi(Op::Eigen, vec![c], targets.to_vec()).at(Some(span)));
            return Ok(());
        }
        if self.user_functions.contains(name) {
            let inputs = self.user_call_args(name, args, span, instrs)?;
            instrs.push(
                Instr::multi(Op::FCall(name.to_string()), inputs, targets.to_vec()).at(Some(span)),
            );
            return Ok(());
        }
        err(span, format!("'{name}' is not a multi-return function"))
    }

    /// Resolves user-function call arguments (positional + named + defaults)
    /// into positional operands.
    fn user_call_args(
        &mut self,
        name: &str,
        args: &[Arg],
        call_span: Span,
        instrs: &mut Vec<Instr>,
    ) -> Result<Vec<Operand>, CompileError> {
        let fdef = self
            .function_defs
            .iter()
            .find(|f| f.name == name)
            .cloned()
            .ok_or(CompileError::Lower {
                msg: format!("unknown function '{name}'"),
                span: Some(call_span),
            })?;
        let mut slots: Vec<Option<Operand>> = vec![None; fdef.params.len()];
        let mut pos = 0usize;
        for arg in args {
            let idx = match &arg.name {
                Some(n) => {
                    fdef.params
                        .iter()
                        .position(|(p, _)| p == n)
                        .ok_or(CompileError::Lower {
                            msg: format!("function '{name}' has no parameter '{n}'"),
                            span: Some(arg.value.span),
                        })?
                }
                None => {
                    while pos < slots.len() && slots[pos].is_some() {
                        pos += 1;
                    }
                    if pos >= slots.len() {
                        return err(arg.value.span, format!("too many arguments for '{name}'"));
                    }
                    pos
                }
            };
            if slots[idx].is_some() {
                return err(
                    arg.value.span,
                    format!("duplicate argument for parameter {idx} of '{name}'"),
                );
            }
            slots[idx] = Some(self.lower_expr(&arg.value, instrs)?);
        }
        let mut out = Vec::with_capacity(slots.len());
        for (slot, (pname, default)) in slots.into_iter().zip(&fdef.params) {
            match (slot, default) {
                (Some(v), _) => out.push(v),
                (None, Some(d)) => out.push(self.lower_expr(d, instrs)?),
                (None, None) => {
                    return err(
                        call_span,
                        format!("missing argument '{pname}' for '{name}'"),
                    );
                }
            }
        }
        Ok(out)
    }

    fn lower_call(
        &mut self,
        name: &str,
        args: &[Arg],
        span: Span,
        instrs: &mut Vec<Instr>,
    ) -> Result<Operand, CompileError> {
        // User functions first: single-output call in expression position.
        if self.user_functions.contains(name) {
            let inputs = self.user_call_args(name, args, span, instrs)?;
            let out = self.temp();
            instrs.push(
                Instr::multi(Op::FCall(name.to_string()), inputs, vec![out.clone()]).at(Some(span)),
            );
            return Ok(Operand::var(out));
        }

        let mut positional = Vec::new();
        for a in args {
            if a.name.is_none() {
                positional.push(&a.value);
            }
        }
        let named = |n: &str| args.iter().find(|a| a.name.as_deref() == Some(n));

        macro_rules! one {
            ($op:expr) => {{
                if positional.len() != 1 || args.len() != 1 {
                    return err(span, format!("'{name}' takes one argument"));
                }
                let v = self.lower_expr(positional[0], instrs)?;
                let out = self.temp();
                instrs.push(Instr::new($op, vec![v], &out).at(Some(span)));
                Ok(Operand::var(out))
            }};
        }
        macro_rules! two {
            ($op:expr) => {{
                if positional.len() != 2 || args.len() != 2 {
                    return err(span, format!("'{name}' takes two arguments"));
                }
                let a = self.lower_expr(positional[0], instrs)?;
                let b = self.lower_expr(positional[1], instrs)?;
                let out = self.temp();
                instrs.push(Instr::new($op, vec![a, b], &out).at(Some(span)));
                Ok(Operand::var(out))
            }};
        }

        match name {
            "t" => one!(Op::Transpose),
            "sum" => one!(Op::FullAgg(AggFn::Sum)),
            "mean" => one!(Op::FullAgg(AggFn::Mean)),
            "var" => one!(Op::FullAgg(AggFn::Var)),
            "min" | "max" => {
                let f = if name == "min" {
                    AggFn::Min
                } else {
                    AggFn::Max
                };
                let b = if name == "min" {
                    BinOp::Min
                } else {
                    BinOp::Max
                };
                match positional.len() {
                    1 => one!(Op::FullAgg(f)),
                    2 => two!(Op::Binary(b)),
                    _ => err(span, format!("'{name}' takes one or two arguments")),
                }
            }
            "colSums" => one!(Op::ColAgg(AggFn::Sum)),
            "colMeans" => one!(Op::ColAgg(AggFn::Mean)),
            "colMins" => one!(Op::ColAgg(AggFn::Min)),
            "colMaxs" => one!(Op::ColAgg(AggFn::Max)),
            "colVars" => one!(Op::ColAgg(AggFn::Var)),
            "rowSums" => one!(Op::RowAgg(AggFn::Sum)),
            "rowMeans" => one!(Op::RowAgg(AggFn::Mean)),
            "rowMins" => one!(Op::RowAgg(AggFn::Min)),
            "rowMaxs" => one!(Op::RowAgg(AggFn::Max)),
            "rowVars" => one!(Op::RowAgg(AggFn::Var)),
            "rowIndexMax" => one!(Op::RowIndexMax),
            "nrow" => one!(Op::Nrow),
            "ncol" => one!(Op::Ncol),
            "exp" => one!(Op::Unary(UnOp::Exp)),
            "log" => one!(Op::Unary(UnOp::Log)),
            "sqrt" => one!(Op::Unary(UnOp::Sqrt)),
            "abs" => one!(Op::Unary(UnOp::Abs)),
            "round" => one!(Op::Unary(UnOp::Round)),
            "floor" => one!(Op::Unary(UnOp::Floor)),
            "ceil" => one!(Op::Unary(UnOp::Ceil)),
            "sign" => one!(Op::Unary(UnOp::Sign)),
            "sigmoid" => one!(Op::Unary(UnOp::Sigmoid)),
            "as.scalar" => one!(Op::CastScalar),
            "as.matrix" => one!(Op::CastMatrix),
            "rev" => one!(Op::Rev),
            "diag" => one!(Op::Diag),
            "solve" => two!(Op::Solve),
            "table" => two!(Op::Table),
            "read" => one!(Op::Read),
            "cbind" | "rbind" => {
                if positional.len() < 2 {
                    return err(span, format!("'{name}' takes at least two arguments"));
                }
                let op = if name == "cbind" {
                    Op::Cbind
                } else {
                    Op::Rbind
                };
                let mut acc = self.lower_expr(positional[0], instrs)?;
                for p in &positional[1..] {
                    let rhs = self.lower_expr(p, instrs)?;
                    let out = self.temp();
                    instrs.push(Instr::new(op.clone(), vec![acc, rhs], &out).at(Some(span)));
                    acc = Operand::var(out);
                }
                Ok(acc)
            }
            "matrix" => {
                if positional.len() == 3 {
                    let v = self.lower_expr(positional[0], instrs)?;
                    let r = self.lower_expr(positional[1], instrs)?;
                    let c = self.lower_expr(positional[2], instrs)?;
                    let out = self.temp();
                    instrs.push(Instr::new(Op::Fill, vec![v, r, c], &out).at(Some(span)));
                    Ok(Operand::var(out))
                } else if positional.len() == 1 {
                    // matrix(X, rows=, cols=): reshape
                    let x = self.lower_expr(positional[0], instrs)?;
                    let (Some(r), Some(c)) = (named("rows"), named("cols")) else {
                        return err(span, "matrix(X, rows=, cols=) requires named dims");
                    };
                    let r = self.lower_expr(&r.value, instrs)?;
                    let c = self.lower_expr(&c.value, instrs)?;
                    let out = self.temp();
                    instrs.push(Instr::new(Op::Reshape, vec![x, r, c], &out).at(Some(span)));
                    Ok(Operand::var(out))
                } else {
                    err(span, "matrix() takes (v, rows, cols) or (X, rows=, cols=)")
                }
            }
            "rand" => {
                let get = |n: &str| named(n).map(|a| a.value.clone());
                let lit = |k: ExprKind| Expr::new(k, Span::point(span.end as usize));
                let Some(rows) = get("rows") else {
                    return err(span, "rand requires rows=");
                };
                let Some(cols) = get("cols") else {
                    return err(span, "rand requires cols=");
                };
                let kind = match get("pdf") {
                    None => RandDistKind::Uniform,
                    Some(e) => match &e.kind {
                        ExprKind::Str(s) if s == "normal" => RandDistKind::Normal,
                        ExprKind::Str(s) if s == "uniform" => RandDistKind::Uniform,
                        other => {
                            return err(
                                e.span,
                                format!("rand pdf must be a string literal, got {other:?}"),
                            )
                        }
                    },
                };
                let p1 = get(if kind == RandDistKind::Uniform {
                    "min"
                } else {
                    "mean"
                })
                .unwrap_or_else(|| lit(ExprKind::Float(0.0)));
                let p2 = get(if kind == RandDistKind::Uniform {
                    "max"
                } else {
                    "sd"
                })
                .unwrap_or_else(|| lit(ExprKind::Float(1.0)));
                let sparsity = get("sparsity").unwrap_or_else(|| lit(ExprKind::Float(1.0)));
                let seed = get("seed").unwrap_or_else(|| lit(ExprKind::Int(-1)));
                let ins = vec![
                    self.lower_expr(&rows, instrs)?,
                    self.lower_expr(&cols, instrs)?,
                    self.lower_expr(&p1, instrs)?,
                    self.lower_expr(&p2, instrs)?,
                    self.lower_expr(&sparsity, instrs)?,
                    self.lower_expr(&seed, instrs)?,
                ];
                let out = self.temp();
                instrs.push(Instr::new(Op::Rand(kind), ins, &out).at(Some(span)));
                Ok(Operand::var(out))
            }
            "sample" => {
                if positional.len() < 2 || positional.len() > 3 {
                    return err(span, "sample takes (range, size[, seed])");
                }
                let range = self.lower_expr(positional[0], instrs)?;
                let size = self.lower_expr(positional[1], instrs)?;
                let seed = if positional.len() == 3 {
                    self.lower_expr(positional[2], instrs)?
                } else {
                    Operand::i64(-1)
                };
                let out = self.temp();
                instrs.push(Instr::new(Op::Sample, vec![range, size, seed], &out).at(Some(span)));
                Ok(Operand::var(out))
            }
            "seq" => {
                if positional.len() < 2 || positional.len() > 3 {
                    return err(span, "seq takes (from, to[, by])");
                }
                let f = self.lower_expr(positional[0], instrs)?;
                let t = self.lower_expr(positional[1], instrs)?;
                let b = if positional.len() == 3 {
                    self.lower_expr(positional[2], instrs)?
                } else {
                    Operand::f64(1.0)
                };
                let out = self.temp();
                instrs.push(Instr::new(Op::Seq, vec![f, t, b], &out).at(Some(span)));
                Ok(Operand::var(out))
            }
            "order" => {
                if positional.is_empty() {
                    return err(span, "order takes (V[, decreasing])");
                }
                let v = self.lower_expr(positional[0], instrs)?;
                let dec = match named("decreasing") {
                    Some(a) => self.lower_expr(&a.value, instrs)?,
                    None if positional.len() > 1 => self.lower_expr(positional[1], instrs)?,
                    None => Operand::bool(false),
                };
                let out = self.temp();
                instrs.push(Instr::new(Op::Order, vec![v, dec], &out).at(Some(span)));
                Ok(Operand::var(out))
            }
            "list" => {
                let mut ins = Vec::new();
                for p in &positional {
                    ins.push(self.lower_expr(p, instrs)?);
                }
                let out = self.temp();
                instrs.push(Instr::new(Op::ListNew, ins, &out).at(Some(span)));
                Ok(Operand::var(out))
            }
            "getElement" => two!(Op::ListGet),
            "toString" => {
                if positional.len() != 1 {
                    return err(span, "toString takes one argument");
                }
                let v = self.lower_expr(positional[0], instrs)?;
                let out = self.temp();
                instrs.push(Instr::new(Op::Concat, vec![Operand::str(""), v], &out).at(Some(span)));
                Ok(Operand::var(out))
            }
            "lineage" => {
                if positional.len() != 1 {
                    return err(span, "lineage takes one variable argument");
                }
                let ExprKind::Var(v) = &positional[0].kind else {
                    return err(
                        positional[0].span,
                        "lineage() requires a variable, not an expression",
                    );
                };
                let out = self.temp();
                instrs.push(Instr::new(Op::LineageOf, vec![Operand::var(v)], &out).at(Some(span)));
                Ok(Operand::var(out))
            }
            "eigen" => err(span, "eigen must be used as [evals, evects] = eigen(C)"),
            other => err(span, format!("unknown function '{other}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lima_runtime::{execute_program, ExecutionContext};

    fn run_src(src: &str, cfg: LimaConfig) -> ExecutionContext {
        let program = compile_script(src, &cfg).expect("compiles");
        let mut ctx = ExecutionContext::new(cfg);
        execute_program(&program, &mut ctx).expect("runs");
        ctx
    }

    #[test]
    fn arithmetic_and_assignment() {
        let ctx = run_src(
            "x = 2 + 3 * 4; y = (2 + 3) * 4; z = 2 ^ 3 ^ 2;",
            LimaConfig::base(),
        );
        assert_eq!(ctx.symtab["x"].as_f64().unwrap(), 14.0);
        assert_eq!(ctx.symtab["y"].as_f64().unwrap(), 20.0);
        // right-associative: 2^(3^2) = 512
        assert_eq!(ctx.symtab["z"].as_f64().unwrap(), 512.0);
    }

    #[test]
    fn matrices_and_builtins() {
        let ctx = run_src(
            "X = matrix(2.0, 3, 4);
             s = sum(X);
             c = colSums(X);
             n = nrow(X) * ncol(X);",
            LimaConfig::base(),
        );
        assert_eq!(ctx.symtab["s"].as_f64().unwrap(), 24.0);
        assert_eq!(ctx.symtab["c"].as_matrix().unwrap().shape(), (1, 4));
        assert_eq!(ctx.symtab["n"].as_f64().unwrap(), 12.0);
    }

    #[test]
    fn tsmm_peephole_fires() {
        let program = compile_script("G = t(X) %*% X;", &LimaConfig::base()).unwrap();
        match &program.body[0] {
            Block::Basic { instrs, .. } => {
                assert_eq!(instrs.len(), 1);
                assert!(matches!(instrs[0].op, Op::Tsmm(TsmmSide::Left)));
            }
            _ => panic!(),
        }
        let program = compile_script("G = X %*% t(X);", &LimaConfig::base()).unwrap();
        match &program.body[0] {
            Block::Basic { instrs, .. } => {
                assert!(matches!(instrs[0].op, Op::Tsmm(TsmmSide::Right)));
            }
            _ => panic!(),
        }
        // Different operands: no peephole.
        let program = compile_script("G = t(X) %*% Y;", &LimaConfig::base()).unwrap();
        match &program.body[0] {
            Block::Basic { instrs, .. } => {
                assert!(instrs.iter().any(|i| matches!(i.op, Op::MatMult)));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn control_flow_executes() {
        let ctx = run_src(
            "s = 0; for (i in 1:10) { s = s + i; }
             if (s == 55) { ok = 1; } else { ok = 0; }
             w = 1; while (w < 100) { w = w * 3; }",
            LimaConfig::base(),
        );
        assert_eq!(ctx.symtab["s"].as_f64().unwrap(), 55.0);
        assert_eq!(ctx.symtab["ok"].as_f64().unwrap(), 1.0);
        assert_eq!(ctx.symtab["w"].as_f64().unwrap(), 243.0);
    }

    #[test]
    fn indexing_forms_execute() {
        let ctx = run_src(
            "X = rand(rows=6, cols=5, seed=3);
             a = X[2:4, 1:2];
             b = X[, 3];
             c = X[5, ];
             s = sample(5, 3, 7);
             d = X[, s];",
            LimaConfig::base(),
        );
        assert_eq!(ctx.symtab["a"].as_matrix().unwrap().shape(), (3, 2));
        assert_eq!(ctx.symtab["b"].as_matrix().unwrap().shape(), (6, 1));
        assert_eq!(ctx.symtab["c"].as_matrix().unwrap().shape(), (1, 5));
        assert_eq!(ctx.symtab["d"].as_matrix().unwrap().shape(), (6, 3));
    }

    #[test]
    fn indexed_assignment_executes() {
        let ctx = run_src(
            "B = matrix(0.0, 3, 3);
             B[2, ] = matrix(7.0, 1, 3);
             B[1, 1] = as.matrix(5);",
            LimaConfig::base(),
        );
        let b = ctx.symtab["B"].as_matrix().unwrap();
        assert_eq!(b.get(1, 0), 7.0);
        assert_eq!(b.get(0, 0), 5.0);
    }

    #[test]
    fn functions_with_defaults_and_named_args() {
        let ctx = run_src(
            "f = function(X, scale = 2.0) return (Y) { Y = X * scale; }
             A = matrix(3.0, 2, 2);
             B = f(A);
             C = f(A, scale = 10.0);
             D = f(scale = 4.0, X = A);",
            LimaConfig::base(),
        );
        assert_eq!(ctx.symtab["B"].as_matrix().unwrap().get(0, 0), 6.0);
        assert_eq!(ctx.symtab["C"].as_matrix().unwrap().get(0, 0), 30.0);
        assert_eq!(ctx.symtab["D"].as_matrix().unwrap().get(0, 0), 12.0);
    }

    #[test]
    fn multi_return_functions() {
        let ctx = run_src(
            "split = function(X) return (a, b) {
                a = X[1:2, ]; b = X[3:4, ];
             }
             X = rand(rows=4, cols=3, seed=1);
             [top, bottom] = split(X);",
            LimaConfig::base(),
        );
        assert_eq!(ctx.symtab["top"].as_matrix().unwrap().shape(), (2, 3));
        assert_eq!(ctx.symtab["bottom"].as_matrix().unwrap().shape(), (2, 3));
    }

    #[test]
    fn eigen_multi_assign() {
        let ctx = run_src(
            "C = matrix(0.0, 2, 2);
             C[1, 1] = as.matrix(2); C[2, 2] = as.matrix(5);
             [evals, evects] = eigen(C);",
            LimaConfig::base(),
        );
        assert_eq!(ctx.symtab["evals"].as_matrix().unwrap().shape(), (2, 1));
    }

    #[test]
    fn parfor_executes_in_parallel() {
        let ctx = run_src(
            "B = matrix(0.0, 8, 2);
             parfor (i in 1:8) {
                B[i, ] = matrix(1.0, 1, 2) * i;
             }",
            LimaConfig::lima(),
        );
        let b = ctx.symtab["B"].as_matrix().unwrap();
        for i in 0..8 {
            assert_eq!(b.get(i, 0), (i + 1) as f64);
        }
    }

    #[test]
    fn print_and_string_concat() {
        let ctx = run_src("x = 2; print('x = ' + toString(x));", LimaConfig::base());
        assert_eq!(ctx.stdout, vec!["x = 2"]);
    }

    #[test]
    fn compile_errors_are_reported() {
        assert!(compile_script("x = unknownFn(1)", &LimaConfig::base()).is_err());
        assert!(compile_script("x = rand(cols=2)", &LimaConfig::base()).is_err());
        assert!(compile_script(
            "f = function(a) return (b) { b = a; } x = f()",
            &LimaConfig::base()
        )
        .is_err());
        assert!(compile_script(
            "f = function(a) return (b) { b = a; } x = f(1, 2)",
            &LimaConfig::base()
        )
        .is_err());
        assert!(compile_script("x = eigen(C)", &LimaConfig::base()).is_err());
        assert!(compile_script("x = 1 +", &LimaConfig::base()).is_err());
    }

    #[test]
    fn compile_errors_carry_spans_and_codes() {
        // Lowering error: the unknown call's span is anchored on the call.
        let src = "x = unknownFn(1);";
        let err = compile_script(src, &LimaConfig::base()).unwrap_err();
        let d = err.diagnostic();
        assert_eq!(d.code, "L0003");
        let span = d.primary.expect("lowering errors carry a span");
        assert_eq!(&src[span.start as usize..span.end as usize], "unknownFn(1)");

        // Parse errors survive the From conversion intact (no stringifying).
        let err = compile_script("x = 1 +", &LimaConfig::base()).unwrap_err();
        match &err {
            CompileError::Parse(p) => {
                assert_eq!(p.code, "L0002");
                assert!(p.span.in_bounds("x = 1 +".len()));
            }
            other => panic!("expected Parse error, got {other:?}"),
        }
        assert_eq!(err.diagnostic().code, "L0002");

        // Analysis errors keep the structured violation and gain a span.
        let src = "R = matrix(0, 4, 1);\nparfor (i in 1:4) { R[1, 1] = as.matrix(i); }";
        let err = compile_script(src, &LimaConfig::lima()).unwrap_err();
        let d = err.diagnostic();
        assert_eq!(d.code, "L0100");
        let span = d.primary.expect("parfor dependence carries a span");
        assert!(span.in_bounds(src.len()));
        assert!(
            &src[span.start as usize..span.end as usize].contains("R[1, 1]"),
            "span should cover the racy write, got {:?}",
            &src[span.start as usize..span.end as usize]
        );
    }

    #[test]
    fn lineage_builtin_returns_serialized_log() {
        let ctx = run_src(
            "X = matrix(1.0, 2, 2);
             Y = X + X;
             l = lineage(Y);
             print(l);",
            LimaConfig::lima(),
        );
        let log = ctx.stdout.join("");
        assert!(log.contains("::out"), "log: {log}");
        assert!(log.contains(" I +"), "log: {log}");
        // The printed log deserializes back into a valid lineage DAG.
        assert!(lima_core::lineage::serialize::deserialize_lineage(&log).is_ok());
        // lineage() on an expression is a compile error; without tracing it
        // is a runtime error.
        assert!(compile_script("l = lineage(1 + 2);", &LimaConfig::base()).is_err());
        let program = compile_script(
            "X = matrix(1.0, 1, 1); l = lineage(X);",
            &LimaConfig::base(),
        )
        .unwrap();
        let mut c = lima_runtime::ExecutionContext::new(LimaConfig::base());
        assert!(lima_runtime::execute_program(&program, &mut c).is_err());
    }

    #[test]
    fn fingerprints_are_stable_and_distinct() {
        let a1 = compile_script_uncompiled("x = 1").unwrap();
        let a2 = compile_script_uncompiled("x = 1").unwrap();
        let b = compile_script_uncompiled("x = 2").unwrap();
        assert_eq!(a1.fingerprint, a2.fingerprint);
        assert_ne!(a1.fingerprint, b.fingerprint);
    }

    #[test]
    fn string_plus_concatenates_at_runtime() {
        // `+` with a string operand must concatenate, mirroring DML.
        let ctx = run_src("msg = 'n=' + 5; print(msg);", LimaConfig::base());
        assert_eq!(ctx.stdout, vec!["n=5"]);
    }
}
