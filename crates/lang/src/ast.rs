//! Abstract syntax tree of the DML subset.
//!
//! Every expression and statement carries a byte-offset [`Span`] into the
//! original source; the lowering threads those spans onto runtime
//! instructions so analysis findings render caret snippets (DESIGN.md §14).

use lima_core::Span;
use lima_matrix::ops::BinOp;

/// A call argument, optionally named (`rand(rows=10, ...)`).
#[derive(Debug, Clone, PartialEq)]
pub struct Arg {
    pub name: Option<String>,
    pub value: Expr,
}

/// One side of an index expression `X[rows, cols]`.
#[derive(Debug, Clone, PartialEq)]
pub enum IndexSel {
    /// Omitted (`X[, s]` rows side): the full range.
    All,
    /// A single expression — a scalar position or a 1-based index vector.
    Single(Box<Expr>),
    /// An inclusive range `a:b`.
    Range(Box<Expr>, Box<Expr>),
}

/// A spanned expression.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    pub kind: ExprKind,
    pub span: Span,
}

impl Expr {
    pub fn new(kind: ExprKind, span: Span) -> Self {
        Expr { kind, span }
    }
}

/// Expression kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    Int(i64),
    Float(f64),
    Str(String),
    Bool(bool),
    Var(String),
    /// Unary minus.
    Neg(Box<Expr>),
    /// Logical not.
    Not(Box<Expr>),
    /// Cell-wise / scalar binary operator.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Matrix multiplication `%*%`.
    MatMul(Box<Expr>, Box<Expr>),
    /// Function or builtin call.
    Call {
        name: String,
        args: Vec<Arg>,
    },
    /// Right indexing `X[rows, cols]`.
    Index {
        base: Box<Expr>,
        rows: IndexSel,
        cols: IndexSel,
    },
}

/// A spanned statement. For compound statements the span covers the whole
/// construct including the body.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    pub kind: StmtKind,
    pub span: Span,
}

impl Stmt {
    pub fn new(kind: StmtKind, span: Span) -> Self {
        Stmt { kind, span }
    }
}

/// Statement kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// `x = expr`
    Assign {
        target: String,
        /// Span of the assignment target name.
        target_span: Span,
        value: Expr,
    },
    /// `[a, b] = f(...)`
    MultiAssign {
        targets: Vec<String>,
        call: Expr,
    },
    /// `X[rows, cols] = expr`
    IndexAssign {
        target: String,
        /// Span of the indexed target name.
        target_span: Span,
        rows: IndexSel,
        cols: IndexSel,
        value: Expr,
    },
    If {
        cond: Expr,
        then_body: Vec<Stmt>,
        else_body: Vec<Stmt>,
    },
    For {
        var: String,
        /// Span of the loop-variable name in the header.
        var_span: Span,
        from: Expr,
        to: Expr,
        by: Option<Expr>,
        body: Vec<Stmt>,
        parallel: bool,
    },
    While {
        cond: Expr,
        body: Vec<Stmt>,
    },
    /// `print(expr)`
    Print(Expr),
    /// `write(expr, path)`
    Write(Expr, Expr),
}

/// A function definition `name = function(params) return (outs) { body }`.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionDef {
    pub name: String,
    /// Span of the function name at the definition site.
    pub name_span: Span,
    /// Parameter names with optional default expressions.
    pub params: Vec<(String, Option<Expr>)>,
    pub outputs: Vec<String>,
    pub body: Vec<Stmt>,
}

/// A parsed script.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Script {
    pub functions: Vec<FunctionDef>,
    pub body: Vec<Stmt>,
}
