//! Recursive-descent parser for the DML subset.
//!
//! Operator precedence (loosest to tightest), following R:
//! `|`, `&`, `!`, comparisons, `+ -`, `* /`, `%*%`, unary `-`, `^`
//! (right-associative), postfix indexing.

use crate::ast::{Arg, Expr, FunctionDef, IndexSel, Script, Stmt};
use crate::lexer::{tokenize, Token, TokenKind};
use lima_matrix::ops::BinOp;
use std::fmt;

/// Parse error with source line.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    pub line: usize,
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

impl From<crate::lexer::LexError> for ParseError {
    fn from(e: crate::lexer::LexError) -> Self {
        ParseError {
            line: e.line,
            msg: e.msg,
        }
    }
}

/// Parses a script into an AST.
pub fn parse(src: &str) -> Result<Script, ParseError> {
    let tokens = tokenize(src)?;
    let mut p = Parser { tokens, pos: 0 };
    p.script()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek2(&self) -> &TokenKind {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn line(&self) -> usize {
        self.tokens[self.pos].line
    }

    fn next(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            line: self.line(),
            msg: msg.into(),
        })
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<(), ParseError> {
        if self.peek() == kind {
            self.next();
            Ok(())
        } else {
            self.err(format!("expected {what}, found {:?}", self.peek()))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                self.next();
                Ok(name)
            }
            other => self.err(format!("expected {what}, found {other:?}")),
        }
    }

    fn skip_semis(&mut self) {
        while matches!(self.peek(), TokenKind::Semicolon) {
            self.next();
        }
    }

    fn script(&mut self) -> Result<Script, ParseError> {
        let mut script = Script::default();
        self.skip_semis();
        while !matches!(self.peek(), TokenKind::Eof) {
            // function definition: IDENT = function (
            if let TokenKind::Ident(_) = self.peek() {
                if matches!(self.peek2(), TokenKind::Assign)
                    && matches!(
                        self.tokens.get(self.pos + 2).map(|t| &t.kind),
                        Some(TokenKind::Function)
                    )
                {
                    script.functions.push(self.function_def()?);
                    self.skip_semis();
                    continue;
                }
            }
            script.body.push(self.statement()?);
            self.skip_semis();
        }
        Ok(script)
    }

    fn function_def(&mut self) -> Result<FunctionDef, ParseError> {
        let name = self.ident("function name")?;
        self.expect(&TokenKind::Assign, "'='")?;
        self.expect(&TokenKind::Function, "'function'")?;
        self.expect(&TokenKind::LParen, "'('")?;
        let mut params = Vec::new();
        while !matches!(self.peek(), TokenKind::RParen) {
            let pname = self.ident("parameter name")?;
            let default = if matches!(self.peek(), TokenKind::Assign) {
                self.next();
                Some(self.expr()?)
            } else {
                None
            };
            params.push((pname, default));
            if matches!(self.peek(), TokenKind::Comma) {
                self.next();
            }
        }
        self.next(); // )
        self.expect(&TokenKind::Return, "'return'")?;
        self.expect(&TokenKind::LParen, "'('")?;
        let mut outputs = Vec::new();
        while !matches!(self.peek(), TokenKind::RParen) {
            outputs.push(self.ident("output name")?);
            if matches!(self.peek(), TokenKind::Comma) {
                self.next();
            }
        }
        self.next(); // )
        let body = self.block()?;
        Ok(FunctionDef {
            name,
            params,
            outputs,
            body,
        })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        if matches!(self.peek(), TokenKind::LBrace) {
            self.next();
            let mut body = Vec::new();
            self.skip_semis();
            while !matches!(self.peek(), TokenKind::RBrace | TokenKind::Eof) {
                body.push(self.statement()?);
                self.skip_semis();
            }
            self.expect(&TokenKind::RBrace, "'}'")?;
            Ok(body)
        } else {
            // single-statement body
            Ok(vec![self.statement()?])
        }
    }

    fn statement(&mut self) -> Result<Stmt, ParseError> {
        match self.peek().clone() {
            TokenKind::If => {
                self.next();
                self.expect(&TokenKind::LParen, "'('")?;
                let cond = self.expr()?;
                self.expect(&TokenKind::RParen, "')'")?;
                let then_body = self.block()?;
                let else_body = if matches!(self.peek(), TokenKind::Else) {
                    self.next();
                    if matches!(self.peek(), TokenKind::If) {
                        vec![self.statement()?]
                    } else {
                        self.block()?
                    }
                } else {
                    Vec::new()
                };
                Ok(Stmt::If {
                    cond,
                    then_body,
                    else_body,
                })
            }
            TokenKind::For | TokenKind::ParFor => {
                let parallel = matches!(self.peek(), TokenKind::ParFor);
                self.next();
                self.expect(&TokenKind::LParen, "'('")?;
                let var = self.ident("loop variable")?;
                self.expect(&TokenKind::In, "'in'")?;
                let from = self.expr()?;
                self.expect(&TokenKind::Colon, "':'")?;
                let to = self.expr()?;
                let by = if matches!(self.peek(), TokenKind::Comma) {
                    self.next();
                    Some(self.expr()?)
                } else {
                    None
                };
                self.expect(&TokenKind::RParen, "')'")?;
                let body = self.block()?;
                Ok(Stmt::For {
                    var,
                    from,
                    to,
                    by,
                    body,
                    parallel,
                })
            }
            TokenKind::While => {
                self.next();
                self.expect(&TokenKind::LParen, "'('")?;
                let cond = self.expr()?;
                self.expect(&TokenKind::RParen, "')'")?;
                let body = self.block()?;
                Ok(Stmt::While { cond, body })
            }
            TokenKind::LBracket => {
                // multi-assign: [a, b] = call
                self.next();
                let mut targets = Vec::new();
                while !matches!(self.peek(), TokenKind::RBracket) {
                    targets.push(self.ident("assignment target")?);
                    if matches!(self.peek(), TokenKind::Comma) {
                        self.next();
                    }
                }
                self.next(); // ]
                self.expect(&TokenKind::Assign, "'='")?;
                let call = self.expr()?;
                if !matches!(call, Expr::Call { .. }) {
                    return self.err("multi-assignment requires a function call");
                }
                Ok(Stmt::MultiAssign { targets, call })
            }
            TokenKind::Ident(name) => {
                // print/write statements, indexed assignment, or assignment
                if name == "print" && matches!(self.peek2(), TokenKind::LParen) {
                    self.next();
                    self.next();
                    let e = self.expr()?;
                    self.expect(&TokenKind::RParen, "')'")?;
                    return Ok(Stmt::Print(e));
                }
                if name == "write" && matches!(self.peek2(), TokenKind::LParen) {
                    self.next();
                    self.next();
                    let e = self.expr()?;
                    self.expect(&TokenKind::Comma, "','")?;
                    let path = self.expr()?;
                    self.expect(&TokenKind::RParen, "')'")?;
                    return Ok(Stmt::Write(e, path));
                }
                self.next();
                match self.peek().clone() {
                    TokenKind::Assign => {
                        self.next();
                        let value = self.expr()?;
                        Ok(Stmt::Assign {
                            target: name,
                            value,
                        })
                    }
                    TokenKind::LBracket => {
                        self.next();
                        let (rows, cols) = self.index_selectors()?;
                        self.expect(&TokenKind::Assign, "'='")?;
                        let value = self.expr()?;
                        Ok(Stmt::IndexAssign {
                            target: name,
                            rows,
                            cols,
                            value,
                        })
                    }
                    other => self.err(format!(
                        "expected '=' or '[' after '{name}', found {other:?}"
                    )),
                }
            }
            other => self.err(format!("unexpected token {other:?}")),
        }
    }

    /// Parses the inside of `[...]` up to and including the `]`.
    fn index_selectors(&mut self) -> Result<(IndexSel, IndexSel), ParseError> {
        let rows = if matches!(self.peek(), TokenKind::Comma) {
            IndexSel::All
        } else {
            self.index_sel()?
        };
        let cols = if matches!(self.peek(), TokenKind::Comma) {
            self.next();
            if matches!(self.peek(), TokenKind::RBracket) {
                IndexSel::All
            } else {
                self.index_sel()?
            }
        } else {
            IndexSel::All
        };
        self.expect(&TokenKind::RBracket, "']'")?;
        Ok((rows, cols))
    }

    fn index_sel(&mut self) -> Result<IndexSel, ParseError> {
        let a = self.expr_no_colon()?;
        if matches!(self.peek(), TokenKind::Colon) {
            self.next();
            let b = self.expr_no_colon()?;
            Ok(IndexSel::Range(Box::new(a), Box::new(b)))
        } else {
            Ok(IndexSel::Single(Box::new(a)))
        }
    }

    // ---------------------------------------------------------- expressions

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    /// Inside index selectors `:` separates ranges, so it must not be eaten
    /// by expressions; the normal grammar has no binary `:` so this is the
    /// same parser, kept separate for clarity.
    fn expr_no_colon(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr()?;
        while matches!(self.peek(), TokenKind::Or) {
            self.next();
            let rhs = self.and_expr()?;
            lhs = Expr::Binary(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.not_expr()?;
        while matches!(self.peek(), TokenKind::And) {
            self.next();
            let rhs = self.not_expr()?;
            lhs = Expr::Binary(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr, ParseError> {
        if matches!(self.peek(), TokenKind::Not) {
            self.next();
            Ok(Expr::Not(Box::new(self.not_expr()?)))
        } else {
            self.cmp_expr()
        }
    }

    fn cmp_expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            TokenKind::Eq => BinOp::Eq,
            TokenKind::Neq => BinOp::Neq,
            TokenKind::Lt => BinOp::Lt,
            TokenKind::Le => BinOp::Le,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::Ge => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.next();
        let rhs = self.add_expr()?;
        Ok(Expr::Binary(op, Box::new(lhs), Box::new(rhs)))
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.next();
            let rhs = self.mul_expr()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.matmul_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                _ => break,
            };
            self.next();
            let rhs = self.matmul_expr()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn matmul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary_expr()?;
        while matches!(self.peek(), TokenKind::MatMul) {
            self.next();
            let rhs = self.unary_expr()?;
            lhs = Expr::MatMul(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        if matches!(self.peek(), TokenKind::Minus) {
            self.next();
            let inner = self.unary_expr()?;
            // Fold negative literals.
            return Ok(match inner {
                Expr::Int(v) => Expr::Int(-v),
                Expr::Float(v) => Expr::Float(-v),
                other => Expr::Neg(Box::new(other)),
            });
        }
        self.pow_expr()
    }

    fn pow_expr(&mut self) -> Result<Expr, ParseError> {
        let base = self.postfix_expr()?;
        if matches!(self.peek(), TokenKind::Caret) {
            self.next();
            let exp = self.unary_expr()?; // right-assoc, allows -1 exponents
            Ok(Expr::Binary(BinOp::Pow, Box::new(base), Box::new(exp)))
        } else {
            Ok(base)
        }
    }

    fn postfix_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary()?;
        while matches!(self.peek(), TokenKind::LBracket) {
            self.next();
            let (rows, cols) = self.index_selectors()?;
            e = Expr::Index {
                base: Box::new(e),
                rows,
                cols,
            };
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.next();
                Ok(Expr::Int(v))
            }
            TokenKind::Float(v) => {
                self.next();
                Ok(Expr::Float(v))
            }
            TokenKind::Str(s) => {
                self.next();
                Ok(Expr::Str(s))
            }
            TokenKind::True => {
                self.next();
                Ok(Expr::Bool(true))
            }
            TokenKind::False => {
                self.next();
                Ok(Expr::Bool(false))
            }
            TokenKind::LParen => {
                self.next();
                let e = self.expr()?;
                self.expect(&TokenKind::RParen, "')'")?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                self.next();
                if matches!(self.peek(), TokenKind::LParen) {
                    self.next();
                    let mut args = Vec::new();
                    while !matches!(self.peek(), TokenKind::RParen) {
                        // named argument: IDENT '=' expr (but not '==')
                        let arg_name = if let TokenKind::Ident(n) = self.peek().clone() {
                            if matches!(self.peek2(), TokenKind::Assign) {
                                self.next();
                                self.next();
                                Some(n)
                            } else {
                                None
                            }
                        } else {
                            None
                        };
                        let value = self.expr()?;
                        args.push(Arg {
                            name: arg_name,
                            value,
                        });
                        if matches!(self.peek(), TokenKind::Comma) {
                            self.next();
                        }
                    }
                    self.next(); // )
                    Ok(Expr::Call { name, args })
                } else {
                    Ok(Expr::Var(name))
                }
            }
            other => self.err(format!("unexpected token {other:?} in expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::collapsible_match)] // nested matches read clearer in AST asserts
    use super::*;

    #[test]
    fn parses_assignments_and_precedence() {
        let s = parse("y = a + b * c ^ 2;").unwrap();
        match &s.body[0] {
            Stmt::Assign { target, value } => {
                assert_eq!(target, "y");
                // a + (b * (c ^ 2))
                match value {
                    Expr::Binary(BinOp::Add, _, rhs) => match rhs.as_ref() {
                        Expr::Binary(BinOp::Mul, _, rhs) => {
                            assert!(matches!(rhs.as_ref(), Expr::Binary(BinOp::Pow, _, _)));
                        }
                        _ => panic!("expected mul"),
                    },
                    _ => panic!("expected add"),
                }
            }
            _ => panic!(),
        }
    }

    #[test]
    fn matmul_binds_tighter_than_mul() {
        let s = parse("z = a * b %*% c").unwrap();
        match &s.body[0] {
            Stmt::Assign { value, .. } => match value {
                Expr::Binary(BinOp::Mul, _, rhs) => {
                    assert!(matches!(rhs.as_ref(), Expr::MatMul(_, _)));
                }
                _ => panic!("expected * at top"),
            },
            _ => panic!(),
        }
    }

    #[test]
    fn parses_indexing_forms() {
        let s = parse("a = X[1:10, 2]; b = X[, s]; c = X[i, ]; d = X[1:n, 1:k];").unwrap();
        assert_eq!(s.body.len(), 4);
        match &s.body[1] {
            Stmt::Assign { value, .. } => match value {
                Expr::Index { rows, cols, .. } => {
                    assert_eq!(*rows, IndexSel::All);
                    assert!(
                        matches!(cols, IndexSel::Single(e) if matches!(e.as_ref(), Expr::Var(v) if v == "s"))
                    );
                }
                _ => panic!(),
            },
            _ => panic!(),
        }
        match &s.body[2] {
            Stmt::Assign { value, .. } => match value {
                Expr::Index { rows, cols, .. } => {
                    assert!(matches!(rows, IndexSel::Single(_)));
                    assert_eq!(*cols, IndexSel::All);
                }
                _ => panic!(),
            },
            _ => panic!(),
        }
    }

    #[test]
    fn parses_control_flow() {
        let src = "
            if (x > 1) { y = 1; } else if (x < 0) { y = 2; } else { y = 3; }
            for (i in 1:10) { s = s + i; }
            parfor (j in 1:4, 2) { t = j; }
            while (s < 100) s = s * 2;
        ";
        let s = parse(src).unwrap();
        assert_eq!(s.body.len(), 4);
        assert!(matches!(&s.body[0], Stmt::If { else_body, .. } if else_body.len() == 1));
        assert!(matches!(
            &s.body[1],
            Stmt::For {
                parallel: false,
                by: None,
                ..
            }
        ));
        assert!(matches!(
            &s.body[2],
            Stmt::For {
                parallel: true,
                by: Some(_),
                ..
            }
        ));
        assert!(matches!(&s.body[3], Stmt::While { .. }));
    }

    #[test]
    fn parses_function_definitions() {
        let src = "
            lm = function(X, y, reg = 1e-7) return (B) {
                A = t(X) %*% X;
                B = solve(A, t(X) %*% y);
            }
            B = lm(X, y);
        ";
        let s = parse(src).unwrap();
        assert_eq!(s.functions.len(), 1);
        let f = &s.functions[0];
        assert_eq!(f.name, "lm");
        assert_eq!(f.params.len(), 3);
        assert!(f.params[2].1.is_some());
        assert_eq!(f.outputs, vec!["B"]);
        assert_eq!(f.body.len(), 2);
        assert_eq!(s.body.len(), 1);
    }

    #[test]
    fn parses_multi_assign_and_named_args() {
        let src = "[evals, evects] = eigen(C); R = rand(rows=10, cols=5, seed=42);";
        let s = parse(src).unwrap();
        assert!(matches!(&s.body[0], Stmt::MultiAssign { targets, .. } if targets.len() == 2));
        match &s.body[1] {
            Stmt::Assign { value, .. } => match value {
                Expr::Call { name, args } => {
                    assert_eq!(name, "rand");
                    assert!(args.iter().all(|a| a.name.is_some()));
                }
                _ => panic!(),
            },
            _ => panic!(),
        }
        assert!(parse("[a, b] = 3").is_err());
    }

    #[test]
    fn parses_indexed_assignment() {
        let s = parse("B[i, ] = t(beta); C[1:2, 3] = x;").unwrap();
        assert!(matches!(
            &s.body[0],
            Stmt::IndexAssign {
                cols: IndexSel::All,
                ..
            }
        ));
        assert!(matches!(
            &s.body[1],
            Stmt::IndexAssign {
                rows: IndexSel::Range(_, _),
                ..
            }
        ));
    }

    #[test]
    fn parses_print_write_and_comments() {
        let s = parse("# header\nprint('loss: ' + l);\nwrite(B, 'out.bin')").unwrap();
        assert!(matches!(&s.body[0], Stmt::Print(_)));
        assert!(matches!(&s.body[1], Stmt::Write(_, _)));
    }

    #[test]
    fn negative_literals_fold() {
        let s = parse("x = -3; y = -2.5; z = 2^-1").unwrap();
        assert!(matches!(
            &s.body[0],
            Stmt::Assign {
                value: Expr::Int(-3),
                ..
            }
        ));
        assert!(matches!(&s.body[1], Stmt::Assign { value: Expr::Float(v), .. } if *v == -2.5));
        match &s.body[2] {
            Stmt::Assign { value, .. } => {
                assert!(
                    matches!(value, Expr::Binary(BinOp::Pow, _, e) if matches!(e.as_ref(), Expr::Int(-1)))
                );
            }
            _ => panic!(),
        }
    }

    #[test]
    fn error_messages_carry_lines() {
        let e = parse("x = 1\ny = @").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(parse("if x > 1 { }").is_err());
        assert!(parse("x 5").is_err());
    }
}
