//! Recursive-descent parser for the DML subset.
//!
//! Operator precedence (loosest to tightest), following R:
//! `|`, `&`, `!`, comparisons, `+ -`, `* /`, `%*%`, unary `-`, `^`
//! (right-associative), postfix indexing.
//!
//! Every AST node carries the byte span of the source text it was parsed
//! from; [`ParseError`] is likewise span-anchored and converts to a
//! [`Diagnostic`] for caret rendering.

use crate::ast::{Arg, Expr, ExprKind, FunctionDef, IndexSel, Script, Stmt, StmtKind};
use crate::lexer::{tokenize, Token, TokenKind};
use lima_core::{Diagnostic, Span};
use lima_matrix::ops::BinOp;
use std::fmt;

/// Parse error with source line, byte span, and diagnostic code
/// (`L0001` lexical, `L0002` syntactic).
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    pub line: usize,
    pub msg: String,
    pub span: Span,
    pub code: &'static str,
}

impl ParseError {
    /// Converts to a renderable diagnostic.
    pub fn diagnostic(&self) -> Diagnostic {
        Diagnostic::error(self.code, self.msg.clone()).with_span(self.span)
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

impl From<crate::lexer::LexError> for ParseError {
    fn from(e: crate::lexer::LexError) -> Self {
        ParseError {
            line: e.line,
            msg: e.msg,
            span: e.span,
            code: "L0001",
        }
    }
}

/// Parses a script into an AST.
pub fn parse(src: &str) -> Result<Script, ParseError> {
    let tokens = tokenize(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        last_end: 0,
    };
    p.script()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// End offset of the most recently consumed token.
    last_end: u32,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek2(&self) -> &TokenKind {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn line(&self) -> usize {
        self.tokens[self.pos].line
    }

    /// Span of the current (not yet consumed) token.
    fn cur_span(&self) -> Span {
        self.tokens[self.pos].span
    }

    /// Start offset of the current token — the start of whatever node is
    /// about to be parsed.
    fn start(&self) -> u32 {
        self.cur_span().start
    }

    /// Span from `start` to the end of the last consumed token.
    fn span_from(&self, start: u32) -> Span {
        Span::new(start, self.last_end.max(start))
    }

    fn next(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        self.last_end = self.tokens[self.pos].span.end;
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            line: self.line(),
            msg: msg.into(),
            span: self.cur_span(),
            code: "L0002",
        })
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<(), ParseError> {
        if self.peek() == kind {
            self.next();
            Ok(())
        } else {
            self.err(format!("expected {what}, found {:?}", self.peek()))
        }
    }

    fn ident_spanned(&mut self, what: &str) -> Result<(String, Span), ParseError> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                let span = self.cur_span();
                self.next();
                Ok((name, span))
            }
            other => self.err(format!("expected {what}, found {other:?}")),
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, ParseError> {
        self.ident_spanned(what).map(|(n, _)| n)
    }

    fn skip_semis(&mut self) {
        while matches!(self.peek(), TokenKind::Semicolon) {
            self.next();
        }
    }

    fn script(&mut self) -> Result<Script, ParseError> {
        let mut script = Script::default();
        self.skip_semis();
        while !matches!(self.peek(), TokenKind::Eof) {
            // function definition: IDENT = function (
            if let TokenKind::Ident(_) = self.peek() {
                if matches!(self.peek2(), TokenKind::Assign)
                    && matches!(
                        self.tokens.get(self.pos + 2).map(|t| &t.kind),
                        Some(TokenKind::Function)
                    )
                {
                    script.functions.push(self.function_def()?);
                    self.skip_semis();
                    continue;
                }
            }
            script.body.push(self.statement()?);
            self.skip_semis();
        }
        Ok(script)
    }

    fn function_def(&mut self) -> Result<FunctionDef, ParseError> {
        let (name, name_span) = self.ident_spanned("function name")?;
        self.expect(&TokenKind::Assign, "'='")?;
        self.expect(&TokenKind::Function, "'function'")?;
        self.expect(&TokenKind::LParen, "'('")?;
        let mut params = Vec::new();
        while !matches!(self.peek(), TokenKind::RParen) {
            let pname = self.ident("parameter name")?;
            let default = if matches!(self.peek(), TokenKind::Assign) {
                self.next();
                Some(self.expr()?)
            } else {
                None
            };
            params.push((pname, default));
            if matches!(self.peek(), TokenKind::Comma) {
                self.next();
            }
        }
        self.next(); // )
        self.expect(&TokenKind::Return, "'return'")?;
        self.expect(&TokenKind::LParen, "'('")?;
        let mut outputs = Vec::new();
        while !matches!(self.peek(), TokenKind::RParen) {
            outputs.push(self.ident("output name")?);
            if matches!(self.peek(), TokenKind::Comma) {
                self.next();
            }
        }
        self.next(); // )
        let body = self.block()?;
        Ok(FunctionDef {
            name,
            name_span,
            params,
            outputs,
            body,
        })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        if matches!(self.peek(), TokenKind::LBrace) {
            self.next();
            let mut body = Vec::new();
            self.skip_semis();
            while !matches!(self.peek(), TokenKind::RBrace | TokenKind::Eof) {
                body.push(self.statement()?);
                self.skip_semis();
            }
            self.expect(&TokenKind::RBrace, "'}'")?;
            Ok(body)
        } else {
            // single-statement body
            Ok(vec![self.statement()?])
        }
    }

    fn statement(&mut self) -> Result<Stmt, ParseError> {
        let start = self.start();
        match self.peek().clone() {
            TokenKind::If => {
                self.next();
                self.expect(&TokenKind::LParen, "'('")?;
                let cond = self.expr()?;
                self.expect(&TokenKind::RParen, "')'")?;
                let then_body = self.block()?;
                let else_body = if matches!(self.peek(), TokenKind::Else) {
                    self.next();
                    if matches!(self.peek(), TokenKind::If) {
                        vec![self.statement()?]
                    } else {
                        self.block()?
                    }
                } else {
                    Vec::new()
                };
                Ok(Stmt::new(
                    StmtKind::If {
                        cond,
                        then_body,
                        else_body,
                    },
                    self.span_from(start),
                ))
            }
            TokenKind::For | TokenKind::ParFor => {
                let parallel = matches!(self.peek(), TokenKind::ParFor);
                self.next();
                self.expect(&TokenKind::LParen, "'('")?;
                let (var, var_span) = self.ident_spanned("loop variable")?;
                self.expect(&TokenKind::In, "'in'")?;
                let from = self.expr()?;
                self.expect(&TokenKind::Colon, "':'")?;
                let to = self.expr()?;
                let by = if matches!(self.peek(), TokenKind::Comma) {
                    self.next();
                    Some(self.expr()?)
                } else {
                    None
                };
                self.expect(&TokenKind::RParen, "')'")?;
                let body = self.block()?;
                Ok(Stmt::new(
                    StmtKind::For {
                        var,
                        var_span,
                        from,
                        to,
                        by,
                        body,
                        parallel,
                    },
                    self.span_from(start),
                ))
            }
            TokenKind::While => {
                self.next();
                self.expect(&TokenKind::LParen, "'('")?;
                let cond = self.expr()?;
                self.expect(&TokenKind::RParen, "')'")?;
                let body = self.block()?;
                Ok(Stmt::new(
                    StmtKind::While { cond, body },
                    self.span_from(start),
                ))
            }
            TokenKind::LBracket => {
                // multi-assign: [a, b] = call
                self.next();
                let mut targets = Vec::new();
                while !matches!(self.peek(), TokenKind::RBracket) {
                    targets.push(self.ident("assignment target")?);
                    if matches!(self.peek(), TokenKind::Comma) {
                        self.next();
                    }
                }
                self.next(); // ]
                self.expect(&TokenKind::Assign, "'='")?;
                let call = self.expr()?;
                if !matches!(call.kind, ExprKind::Call { .. }) {
                    return self.err("multi-assignment requires a function call");
                }
                Ok(Stmt::new(
                    StmtKind::MultiAssign { targets, call },
                    self.span_from(start),
                ))
            }
            TokenKind::Ident(name) => {
                // print/write statements, indexed assignment, or assignment
                if name == "print" && matches!(self.peek2(), TokenKind::LParen) {
                    self.next();
                    self.next();
                    let e = self.expr()?;
                    self.expect(&TokenKind::RParen, "')'")?;
                    return Ok(Stmt::new(StmtKind::Print(e), self.span_from(start)));
                }
                if name == "write" && matches!(self.peek2(), TokenKind::LParen) {
                    self.next();
                    self.next();
                    let e = self.expr()?;
                    self.expect(&TokenKind::Comma, "','")?;
                    let path = self.expr()?;
                    self.expect(&TokenKind::RParen, "')'")?;
                    return Ok(Stmt::new(StmtKind::Write(e, path), self.span_from(start)));
                }
                let target_span = self.cur_span();
                self.next();
                match self.peek().clone() {
                    TokenKind::Assign => {
                        self.next();
                        let value = self.expr()?;
                        Ok(Stmt::new(
                            StmtKind::Assign {
                                target: name,
                                target_span,
                                value,
                            },
                            self.span_from(start),
                        ))
                    }
                    TokenKind::LBracket => {
                        self.next();
                        let (rows, cols) = self.index_selectors()?;
                        self.expect(&TokenKind::Assign, "'='")?;
                        let value = self.expr()?;
                        Ok(Stmt::new(
                            StmtKind::IndexAssign {
                                target: name,
                                target_span,
                                rows,
                                cols,
                                value,
                            },
                            self.span_from(start),
                        ))
                    }
                    other => self.err(format!(
                        "expected '=' or '[' after '{name}', found {other:?}"
                    )),
                }
            }
            other => self.err(format!("unexpected token {other:?}")),
        }
    }

    /// Parses the inside of `[...]` up to and including the `]`.
    fn index_selectors(&mut self) -> Result<(IndexSel, IndexSel), ParseError> {
        let rows = if matches!(self.peek(), TokenKind::Comma) {
            IndexSel::All
        } else {
            self.index_sel()?
        };
        let cols = if matches!(self.peek(), TokenKind::Comma) {
            self.next();
            if matches!(self.peek(), TokenKind::RBracket) {
                IndexSel::All
            } else {
                self.index_sel()?
            }
        } else {
            IndexSel::All
        };
        self.expect(&TokenKind::RBracket, "']'")?;
        Ok((rows, cols))
    }

    fn index_sel(&mut self) -> Result<IndexSel, ParseError> {
        let a = self.expr_no_colon()?;
        if matches!(self.peek(), TokenKind::Colon) {
            self.next();
            let b = self.expr_no_colon()?;
            Ok(IndexSel::Range(Box::new(a), Box::new(b)))
        } else {
            Ok(IndexSel::Single(Box::new(a)))
        }
    }

    // ---------------------------------------------------------- expressions

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    /// Inside index selectors `:` separates ranges, so it must not be eaten
    /// by expressions; the normal grammar has no binary `:` so this is the
    /// same parser, kept separate for clarity.
    fn expr_no_colon(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    fn binary(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        let span = lhs.span.to(rhs.span);
        Expr::new(ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)), span)
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr()?;
        while matches!(self.peek(), TokenKind::Or) {
            self.next();
            let rhs = self.and_expr()?;
            lhs = Self::binary(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.not_expr()?;
        while matches!(self.peek(), TokenKind::And) {
            self.next();
            let rhs = self.not_expr()?;
            lhs = Self::binary(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr, ParseError> {
        if matches!(self.peek(), TokenKind::Not) {
            let start = self.start();
            self.next();
            let inner = self.not_expr()?;
            let span = Span::new(start, inner.span.end);
            Ok(Expr::new(ExprKind::Not(Box::new(inner)), span))
        } else {
            self.cmp_expr()
        }
    }

    fn cmp_expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            TokenKind::Eq => BinOp::Eq,
            TokenKind::Neq => BinOp::Neq,
            TokenKind::Lt => BinOp::Lt,
            TokenKind::Le => BinOp::Le,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::Ge => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.next();
        let rhs = self.add_expr()?;
        Ok(Self::binary(op, lhs, rhs))
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.next();
            let rhs = self.mul_expr()?;
            lhs = Self::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.matmul_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                _ => break,
            };
            self.next();
            let rhs = self.matmul_expr()?;
            lhs = Self::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn matmul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary_expr()?;
        while matches!(self.peek(), TokenKind::MatMul) {
            self.next();
            let rhs = self.unary_expr()?;
            let span = lhs.span.to(rhs.span);
            lhs = Expr::new(ExprKind::MatMul(Box::new(lhs), Box::new(rhs)), span);
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        if matches!(self.peek(), TokenKind::Minus) {
            let start = self.start();
            self.next();
            let inner = self.unary_expr()?;
            let span = Span::new(start, inner.span.end);
            // Fold negative literals.
            return Ok(match inner.kind {
                ExprKind::Int(v) => Expr::new(ExprKind::Int(-v), span),
                ExprKind::Float(v) => Expr::new(ExprKind::Float(-v), span),
                other => Expr::new(ExprKind::Neg(Box::new(Expr::new(other, inner.span))), span),
            });
        }
        self.pow_expr()
    }

    fn pow_expr(&mut self) -> Result<Expr, ParseError> {
        let base = self.postfix_expr()?;
        if matches!(self.peek(), TokenKind::Caret) {
            self.next();
            let exp = self.unary_expr()?; // right-assoc, allows -1 exponents
            Ok(Self::binary(BinOp::Pow, base, exp))
        } else {
            Ok(base)
        }
    }

    fn postfix_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary()?;
        while matches!(self.peek(), TokenKind::LBracket) {
            self.next();
            let (rows, cols) = self.index_selectors()?;
            let span = self.span_from(e.span.start);
            e = Expr::new(
                ExprKind::Index {
                    base: Box::new(e),
                    rows,
                    cols,
                },
                span,
            );
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        let start = self.start();
        let lit = |p: &Self, kind: ExprKind| Expr::new(kind, p.span_from(start));
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.next();
                Ok(lit(self, ExprKind::Int(v)))
            }
            TokenKind::Float(v) => {
                self.next();
                Ok(lit(self, ExprKind::Float(v)))
            }
            TokenKind::Str(s) => {
                self.next();
                Ok(lit(self, ExprKind::Str(s)))
            }
            TokenKind::True => {
                self.next();
                Ok(lit(self, ExprKind::Bool(true)))
            }
            TokenKind::False => {
                self.next();
                Ok(lit(self, ExprKind::Bool(false)))
            }
            TokenKind::LParen => {
                self.next();
                let e = self.expr()?;
                self.expect(&TokenKind::RParen, "')'")?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                self.next();
                if matches!(self.peek(), TokenKind::LParen) {
                    self.next();
                    let mut args = Vec::new();
                    while !matches!(self.peek(), TokenKind::RParen) {
                        // named argument: IDENT '=' expr (but not '==')
                        let arg_name = if let TokenKind::Ident(n) = self.peek().clone() {
                            if matches!(self.peek2(), TokenKind::Assign) {
                                self.next();
                                self.next();
                                Some(n)
                            } else {
                                None
                            }
                        } else {
                            None
                        };
                        let value = self.expr()?;
                        args.push(Arg {
                            name: arg_name,
                            value,
                        });
                        if matches!(self.peek(), TokenKind::Comma) {
                            self.next();
                        }
                    }
                    self.next(); // )
                    Ok(Expr::new(
                        ExprKind::Call { name, args },
                        self.span_from(start),
                    ))
                } else {
                    Ok(Expr::new(ExprKind::Var(name), self.span_from(start)))
                }
            }
            other => self.err(format!("unexpected token {other:?} in expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::collapsible_match)] // nested matches read clearer in AST asserts
    use super::*;

    #[test]
    fn parses_assignments_and_precedence() {
        let s = parse("y = a + b * c ^ 2;").unwrap();
        match &s.body[0].kind {
            StmtKind::Assign { target, value, .. } => {
                assert_eq!(target, "y");
                // a + (b * (c ^ 2))
                match &value.kind {
                    ExprKind::Binary(BinOp::Add, _, rhs) => match &rhs.kind {
                        ExprKind::Binary(BinOp::Mul, _, rhs) => {
                            assert!(matches!(rhs.kind, ExprKind::Binary(BinOp::Pow, _, _)));
                        }
                        _ => panic!("expected mul"),
                    },
                    _ => panic!("expected add"),
                }
            }
            _ => panic!(),
        }
    }

    #[test]
    fn matmul_binds_tighter_than_mul() {
        let s = parse("z = a * b %*% c").unwrap();
        match &s.body[0].kind {
            StmtKind::Assign { value, .. } => match &value.kind {
                ExprKind::Binary(BinOp::Mul, _, rhs) => {
                    assert!(matches!(rhs.kind, ExprKind::MatMul(_, _)));
                }
                _ => panic!("expected * at top"),
            },
            _ => panic!(),
        }
    }

    #[test]
    fn parses_indexing_forms() {
        let s = parse("a = X[1:10, 2]; b = X[, s]; c = X[i, ]; d = X[1:n, 1:k];").unwrap();
        assert_eq!(s.body.len(), 4);
        match &s.body[1].kind {
            StmtKind::Assign { value, .. } => match &value.kind {
                ExprKind::Index { rows, cols, .. } => {
                    assert_eq!(*rows, IndexSel::All);
                    assert!(
                        matches!(cols, IndexSel::Single(e) if matches!(&e.kind, ExprKind::Var(v) if v == "s"))
                    );
                }
                _ => panic!(),
            },
            _ => panic!(),
        }
        match &s.body[2].kind {
            StmtKind::Assign { value, .. } => match &value.kind {
                ExprKind::Index { rows, cols, .. } => {
                    assert!(matches!(rows, IndexSel::Single(_)));
                    assert_eq!(*cols, IndexSel::All);
                }
                _ => panic!(),
            },
            _ => panic!(),
        }
    }

    #[test]
    fn parses_control_flow() {
        let src = "
            if (x > 1) { y = 1; } else if (x < 0) { y = 2; } else { y = 3; }
            for (i in 1:10) { s = s + i; }
            parfor (j in 1:4, 2) { t = j; }
            while (s < 100) s = s * 2;
        ";
        let s = parse(src).unwrap();
        assert_eq!(s.body.len(), 4);
        assert!(matches!(&s.body[0].kind, StmtKind::If { else_body, .. } if else_body.len() == 1));
        assert!(matches!(
            &s.body[1].kind,
            StmtKind::For {
                parallel: false,
                by: None,
                ..
            }
        ));
        assert!(matches!(
            &s.body[2].kind,
            StmtKind::For {
                parallel: true,
                by: Some(_),
                ..
            }
        ));
        assert!(matches!(&s.body[3].kind, StmtKind::While { .. }));
    }

    #[test]
    fn parses_function_definitions() {
        let src = "
            lm = function(X, y, reg = 1e-7) return (B) {
                A = t(X) %*% X;
                B = solve(A, t(X) %*% y);
            }
            B = lm(X, y);
        ";
        let s = parse(src).unwrap();
        assert_eq!(s.functions.len(), 1);
        let f = &s.functions[0];
        assert_eq!(f.name, "lm");
        assert_eq!(f.params.len(), 3);
        assert!(f.params[2].1.is_some());
        assert_eq!(f.outputs, vec!["B"]);
        assert_eq!(f.body.len(), 2);
        assert_eq!(s.body.len(), 1);
        // The name span points at `lm` in the source.
        let ns = f.name_span;
        assert_eq!(&src[ns.start as usize..ns.end as usize], "lm");
    }

    #[test]
    fn parses_multi_assign_and_named_args() {
        let src = "[evals, evects] = eigen(C); R = rand(rows=10, cols=5, seed=42);";
        let s = parse(src).unwrap();
        assert!(
            matches!(&s.body[0].kind, StmtKind::MultiAssign { targets, .. } if targets.len() == 2)
        );
        match &s.body[1].kind {
            StmtKind::Assign { value, .. } => match &value.kind {
                ExprKind::Call { name, args } => {
                    assert_eq!(name, "rand");
                    assert!(args.iter().all(|a| a.name.is_some()));
                }
                _ => panic!(),
            },
            _ => panic!(),
        }
        assert!(parse("[a, b] = 3").is_err());
    }

    #[test]
    fn parses_indexed_assignment() {
        let s = parse("B[i, ] = t(beta); C[1:2, 3] = x;").unwrap();
        assert!(matches!(
            &s.body[0].kind,
            StmtKind::IndexAssign {
                cols: IndexSel::All,
                ..
            }
        ));
        assert!(matches!(
            &s.body[1].kind,
            StmtKind::IndexAssign {
                rows: IndexSel::Range(_, _),
                ..
            }
        ));
    }

    #[test]
    fn parses_print_write_and_comments() {
        let s = parse("# header\nprint('loss: ' + l);\nwrite(B, 'out.bin')").unwrap();
        assert!(matches!(&s.body[0].kind, StmtKind::Print(_)));
        assert!(matches!(&s.body[1].kind, StmtKind::Write(_, _)));
    }

    #[test]
    fn negative_literals_fold() {
        let s = parse("x = -3; y = -2.5; z = 2^-1").unwrap();
        assert!(matches!(
            &s.body[0].kind,
            StmtKind::Assign {
                value: Expr {
                    kind: ExprKind::Int(-3),
                    ..
                },
                ..
            }
        ));
        assert!(
            matches!(&s.body[1].kind, StmtKind::Assign { value, .. } if matches!(value.kind, ExprKind::Float(v) if v == -2.5))
        );
        match &s.body[2].kind {
            StmtKind::Assign { value, .. } => {
                assert!(
                    matches!(&value.kind, ExprKind::Binary(BinOp::Pow, _, e) if matches!(e.kind, ExprKind::Int(-1)))
                );
            }
            _ => panic!(),
        }
    }

    #[test]
    fn error_messages_carry_lines() {
        let e = parse("x = 1\ny = @").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(parse("if x > 1 { }").is_err());
        assert!(parse("x 5").is_err());
    }

    #[test]
    fn statements_and_exprs_carry_spans() {
        let src = "x = 1 + 2;\nparfor (i in 1:4) { R[i, 1] = x; }";
        let s = parse(src).unwrap();
        let assign = &s.body[0];
        assert_eq!(
            &src[assign.span.start as usize..assign.span.end as usize],
            "x = 1 + 2"
        );
        match &assign.kind {
            StmtKind::Assign {
                target_span, value, ..
            } => {
                assert_eq!(
                    &src[target_span.start as usize..target_span.end as usize],
                    "x"
                );
                assert_eq!(
                    &src[value.span.start as usize..value.span.end as usize],
                    "1 + 2"
                );
            }
            _ => panic!(),
        }
        let loop_stmt = &s.body[1];
        assert_eq!(
            &src[loop_stmt.span.start as usize..loop_stmt.span.end as usize],
            "parfor (i in 1:4) { R[i, 1] = x; }"
        );
        match &loop_stmt.kind {
            StmtKind::For {
                var_span, parallel, ..
            } => {
                assert!(*parallel);
                assert_eq!(&src[var_span.start as usize..var_span.end as usize], "i");
            }
            _ => panic!(),
        }
    }

    #[test]
    fn call_spans_cover_name_and_args() {
        let src = "y = solve(A, b)";
        let s = parse(src).unwrap();
        match &s.body[0].kind {
            StmtKind::Assign { value, .. } => {
                assert_eq!(
                    &src[value.span.start as usize..value.span.end as usize],
                    "solve(A, b)"
                );
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parse_errors_carry_spans_and_codes() {
        let e = parse("x = 1\ny = @").unwrap_err();
        assert_eq!(e.code, "L0001"); // lexical: unexpected character
        assert!(e.span.in_bounds("x = 1\ny = @".len()));
        let e = parse("x 5").unwrap_err();
        assert_eq!(e.code, "L0002");
        assert_eq!(e.span, Span::of(2, 3)); // points at `5`
        let d = e.diagnostic();
        assert_eq!(d.code, "L0002");
        assert_eq!(d.primary, Some(Span::of(2, 3)));
        // EOF errors anchor to the end of input.
        let e = parse("x = ").unwrap_err();
        assert_eq!(e.span, Span::point(4));
    }
}
