//! Builds the IR-agnostic [`LintModel`] from a parsed script plus its
//! lowered program, and drives the `lima-analysis` lint registry over it
//! (DESIGN.md §14).
//!
//! The split mirrors the determinism/parfor analyses: `lima-analysis` owns
//! the decision procedures and knows nothing about the AST or the runtime
//! IR; this module lowers both views (source-level events from the AST,
//! determinism sources and cache marks from the compiled program) into the
//! model the passes consume.

use crate::ast::{Expr, ExprKind, IndexSel, Script, Stmt, StmtKind};
use crate::compile::{lower_script, CompileError};
use crate::parser::parse;
use lima_analysis::lint::{LintEvent, LintFunction, LintModel, LintOp, LintRegistry};
use lima_analysis::ClassSource;
use lima_core::opcodes::{classify_opcode, OpClass};
use lima_core::{sort_diagnostics, Diagnostic, LimaConfig, Span};
use lima_runtime::compiler::instr_class_source;
use lima_runtime::{Block, ExprProg, Instr, Program};

/// Parses, lowers, compiles, and lints a script. Parse/lowering/analysis
/// errors come back as diagnostics (`L0001`–`L0100`) alongside any lint
/// findings; a clean script returns an empty vector.
pub fn lint_script(src: &str, config: &LimaConfig) -> Vec<Diagnostic> {
    let ast = match parse(src) {
        Ok(a) => a,
        Err(e) => return vec![e.diagnostic()],
    };
    let mut program = match lower_script(&ast, src) {
        Ok(p) => p,
        Err(e) => return e.diagnostics(),
    };
    let mut diags = Vec::new();
    if let Err(e) = lima_runtime::compiler::compile(&mut program, config) {
        // Static-analysis rejection: report it, then keep linting the
        // (partially analyzed) program so one error doesn't hide the rest.
        diags.extend(CompileError::Analysis(e).diagnostics());
    }
    let model = build_model(&ast, &program);
    diags.extend(LintRegistry::with_default_passes().run(&model));
    sort_diagnostics(&mut diags);
    diags
}

/// Lowers the AST + compiled program into the model the lint passes run on.
pub fn build_model(ast: &Script, program: &Program) -> LintModel {
    let mut functions = Vec::new();
    for fdef in &ast.functions {
        let mut sources = Vec::new();
        if let Some(f) = program.functions.get(&fdef.name) {
            collect_spanned_sources(&f.body, &mut sources);
        }
        functions.push(LintFunction {
            name: fdef.name.clone(),
            name_span: Some(fdef.name_span),
            params: fdef.params.iter().map(|(n, _)| n.clone()).collect(),
            outputs: fdef.outputs.clone(),
            sources,
            body: stmts_to_events(&fdef.body),
        });
    }
    let mut ops = Vec::new();
    collect_ops(&program.body, &mut ops);
    // AST order keeps the model deterministic (the registry sorts findings,
    // but stable input order makes label choices reproducible too).
    for fdef in &ast.functions {
        if let Some(f) = program.functions.get(&fdef.name) {
            collect_ops(&f.body, &mut ops);
        }
    }
    LintModel {
        functions,
        body: stmts_to_events(&ast.body),
        ops,
    }
}

// -------------------------------------------------- AST → event lowering

fn expr_reads(e: &Expr, out: &mut Vec<String>) {
    match &e.kind {
        ExprKind::Int(_) | ExprKind::Float(_) | ExprKind::Str(_) | ExprKind::Bool(_) => {}
        ExprKind::Var(v) => out.push(v.clone()),
        ExprKind::Neg(inner) | ExprKind::Not(inner) => expr_reads(inner, out),
        ExprKind::Binary(_, a, b) | ExprKind::MatMul(a, b) => {
            expr_reads(a, out);
            expr_reads(b, out);
        }
        ExprKind::Call { args, .. } => {
            for a in args {
                expr_reads(&a.value, out);
            }
        }
        ExprKind::Index { base, rows, cols } => {
            expr_reads(base, out);
            sel_reads(rows, out);
            sel_reads(cols, out);
        }
    }
}

fn sel_reads(sel: &IndexSel, out: &mut Vec<String>) {
    match sel {
        IndexSel::All => {}
        IndexSel::Single(e) => expr_reads(e, out),
        IndexSel::Range(a, b) => {
            expr_reads(a, out);
            expr_reads(b, out);
        }
    }
}

fn reads_of(e: &Expr) -> Vec<String> {
    let mut out = Vec::new();
    expr_reads(e, &mut out);
    out
}

/// Integer value of a literal expression (for constant trip counts).
fn lit_i64(e: &Expr) -> Option<i64> {
    match &e.kind {
        ExprKind::Int(v) => Some(*v),
        ExprKind::Float(v) if v.fract() == 0.0 => Some(*v as i64),
        ExprKind::Neg(inner) => lit_i64(inner).map(|v| -v),
        _ => None,
    }
}

fn const_trip(from: &Expr, to: &Expr, by: Option<&Expr>) -> Option<i64> {
    let f = lit_i64(from)?;
    let t = lit_i64(to)?;
    let b = match by {
        Some(e) => lit_i64(e)?,
        None => 1,
    };
    match b {
        0 => None,
        b if b > 0 => Some(if t >= f { (t - f) / b + 1 } else { 0 }),
        b => Some(if t <= f { (f - t) / (-b) + 1 } else { 0 }),
    }
}

fn stmts_to_events(stmts: &[Stmt]) -> Vec<LintEvent> {
    let mut out = Vec::new();
    for stmt in stmts {
        let span = Some(stmt.span);
        match &stmt.kind {
            StmtKind::Assign { target, value, .. } => out.push(LintEvent::Assign {
                var: target.clone(),
                span,
                reads: reads_of(value),
            }),
            StmtKind::MultiAssign { targets, call } => {
                let reads = reads_of(call);
                for t in targets {
                    out.push(LintEvent::Assign {
                        var: t.clone(),
                        span,
                        reads: reads.clone(),
                    });
                }
            }
            StmtKind::IndexAssign {
                target,
                rows,
                cols,
                value,
                ..
            } => {
                // An indexed write preserves untouched cells, so it reads
                // the target as well as the indices and the value.
                let mut reads = vec![target.clone()];
                sel_reads(rows, &mut reads);
                sel_reads(cols, &mut reads);
                expr_reads(value, &mut reads);
                out.push(LintEvent::Assign {
                    var: target.clone(),
                    span,
                    reads,
                });
            }
            StmtKind::Print(e) => out.push(LintEvent::Read { vars: reads_of(e) }),
            StmtKind::Write(e, p) => {
                let mut vars = reads_of(e);
                expr_reads(p, &mut vars);
                out.push(LintEvent::Read { vars });
            }
            StmtKind::If {
                cond,
                then_body,
                else_body,
            } => out.push(LintEvent::Branch {
                cond_reads: reads_of(cond),
                arms: vec![stmts_to_events(then_body), stmts_to_events(else_body)],
            }),
            StmtKind::While { cond, body } => out.push(LintEvent::Branch {
                cond_reads: reads_of(cond),
                arms: vec![stmts_to_events(body)],
            }),
            StmtKind::For {
                var,
                var_span,
                from,
                to,
                by,
                body,
                parallel,
            } => {
                let mut bound_reads = reads_of(from);
                expr_reads(to, &mut bound_reads);
                if let Some(b) = by {
                    expr_reads(b, &mut bound_reads);
                }
                let header_end = by.as_ref().map(|b| b.span.end).unwrap_or(to.span.end);
                out.push(LintEvent::Loop {
                    var: var.clone(),
                    var_span: Some(*var_span),
                    header_span: Some(Span::new(stmt.span.start, header_end)),
                    parallel: *parallel,
                    const_trip: const_trip(from, to, by.as_ref()),
                    bound_reads,
                    body: stmts_to_events(body),
                });
            }
        }
    }
    out
}

// ------------------------------------------- lowered program → model parts

fn collect_spanned_sources(blocks: &[Block], out: &mut Vec<(ClassSource, Option<Span>)>) {
    let expr = |e: &ExprProg, out: &mut Vec<(ClassSource, Option<Span>)>| {
        out.extend(e.instrs.iter().map(|i| (instr_class_source(i), i.span)));
    };
    for b in blocks {
        match b {
            Block::Basic { instrs, .. } => {
                out.extend(instrs.iter().map(|i| (instr_class_source(i), i.span)));
            }
            Block::If {
                pred,
                then_body,
                else_body,
                ..
            } => {
                expr(pred, out);
                collect_spanned_sources(then_body, out);
                collect_spanned_sources(else_body, out);
            }
            Block::For {
                from, to, by, body, ..
            }
            | Block::ParFor {
                from, to, by, body, ..
            } => {
                expr(from, out);
                expr(to, out);
                expr(by, out);
                collect_spanned_sources(body, out);
            }
            Block::While { pred, body, .. } => {
                expr(pred, out);
                collect_spanned_sources(body, out);
            }
        }
    }
}

fn op_of(i: &Instr) -> LintOp {
    let opcode = i.op.opcode();
    let class = match instr_class_source(i) {
        ClassSource::Fixed(c) => c,
        // A call's own frame is pure; its body is analyzed separately.
        ClassSource::Call(_) => OpClass::Deterministic,
    };
    LintOp {
        class: if i.op.has_side_effects() {
            OpClass::SideEffecting
        } else {
            class.max(classify_opcode(&opcode))
        },
        opcode,
        no_cache: i.no_cache,
        has_outputs: !i.outputs.is_empty(),
        span: i.span,
    }
}

fn collect_ops(blocks: &[Block], out: &mut Vec<LintOp>) {
    let expr = |e: &ExprProg, out: &mut Vec<LintOp>| {
        out.extend(e.instrs.iter().map(op_of));
    };
    for b in blocks {
        match b {
            Block::Basic { instrs, .. } => out.extend(instrs.iter().map(op_of)),
            Block::If {
                pred,
                then_body,
                else_body,
                ..
            } => {
                expr(pred, out);
                collect_ops(then_body, out);
                collect_ops(else_body, out);
            }
            Block::For {
                from, to, by, body, ..
            }
            | Block::ParFor {
                from, to, by, body, ..
            } => {
                expr(from, out);
                expr(to, out);
                expr(by, out);
                collect_ops(body, out);
            }
            Block::While { pred, body, .. } => {
                expr(pred, out);
                collect_ops(body, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> Vec<Diagnostic> {
        lint_script(src, &LimaConfig::lima())
    }

    fn codes(ds: &[Diagnostic]) -> Vec<&str> {
        ds.iter().map(|d| d.code.as_str()).collect()
    }

    #[test]
    fn clean_script_has_no_findings() {
        let ds = lint(
            "X = rand(rows=8, cols=4, seed=7);
             G = t(X) %*% X;
             s = sum(G);
             print(s);",
        );
        assert!(ds.is_empty(), "expected clean, got {ds:?}");
    }

    #[test]
    fn parse_errors_become_l0002_diagnostics() {
        let ds = lint("x = ;");
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, "L0002");
        assert!(ds[0].primary.is_some());
    }

    #[test]
    fn racy_parfor_reports_l0100_with_write_span() {
        let src = "R = matrix(0, 4, 1);
parfor (i in 1:4) {
  R[1, 1] = as.matrix(i);
}";
        let ds = lint(src);
        assert!(codes(&ds).contains(&"L0100"), "got {ds:?}");
        let d = ds.iter().find(|d| d.code == "L0100").expect("L0100");
        let span = d.primary.expect("span");
        assert_eq!(
            &src[span.start as usize..span.end as usize],
            "R[1, 1] = as.matrix(i)"
        );
    }

    #[test]
    fn reuse_ineligible_function_reports_l0201_at_definition() {
        let src = "noisy = function(n) return (Y) {
  Y = rand(rows=n, cols=1);
}
A = noisy(3);
print(sum(A));";
        let ds = lint(src);
        let d = ds.iter().find(|d| d.code == "L0201").expect("L0201");
        let span = d.primary.expect("span");
        assert_eq!(&src[span.start as usize..span.end as usize], "noisy");
        // The offending rand call is labeled.
        assert!(!d.labels.is_empty(), "got {d:?}");
        let lab = &d.labels[0];
        assert!(&src[lab.span.start as usize..lab.span.end as usize].starts_with("rand"));
    }

    #[test]
    fn seeded_rand_keeps_function_eligible() {
        let ds = lint(
            "f = function(n) return (Y) { Y = rand(rows=n, cols=1, seed=42); }
             A = f(3);
             print(sum(A));",
        );
        assert!(
            !codes(&ds).contains(&"L0201"),
            "literal seed is deterministic: {ds:?}"
        );
    }

    #[test]
    fn unused_function_result_reports_l0202() {
        let ds = lint(
            "f = function(X) return (Y) {
               waste = sum(X);
               Y = X * 2;
             }
             A = f(matrix(1.0, 2, 2));
             print(sum(A));",
        );
        let d = ds.iter().find(|d| d.code == "L0202").expect("L0202");
        assert!(d.message.contains("'waste'"));
    }

    #[test]
    fn dead_store_reports_l0203_with_overwrite_label() {
        let src = "x = sum(matrix(1.0, 2, 2));
x = 5;
print(x);";
        let ds = lint(src);
        let d = ds.iter().find(|d| d.code == "L0203").expect("L0203");
        let span = d.primary.expect("span");
        assert_eq!(
            &src[span.start as usize..span.end as usize],
            "x = sum(matrix(1.0, 2, 2))"
        );
        assert_eq!(d.labels.len(), 1);
    }

    #[test]
    fn accumulator_loops_are_not_dead_stores() {
        let ds = lint(
            "s = 0;
             for (i in 1:10) { s = s + i; }
             print(s);",
        );
        assert!(ds.is_empty(), "accumulator is read in the loop: {ds:?}");
    }

    #[test]
    fn loop_variable_shadowing_reports_l0204() {
        let src = "i = 7;
for (i in 1:3) { print(i); }
print(i);";
        let ds = lint(src);
        let d = ds.iter().find(|d| d.code == "L0204").expect("L0204");
        let span = d.primary.expect("span");
        assert_eq!(&src[span.start as usize..span.end as usize], "i");
        assert_eq!(span.start as usize, src.find("(i in").expect("header") + 1);
    }

    #[test]
    fn tiny_constant_trip_parfor_reports_l0206() {
        let src = "R = matrix(0, 2, 1);
parfor (i in 1:2) {
  R[i, 1] = as.matrix(i);
}
print(sum(R));";
        let ds = lint(src);
        let d = ds.iter().find(|d| d.code == "L0206").expect("L0206");
        assert_eq!(d.severity, lima_core::Severity::Note);
        let span = d.primary.expect("span");
        assert_eq!(
            &src[span.start as usize..span.end as usize],
            "parfor (i in 1:2"
        );
        // A large trip count stays quiet.
        let ds = lint(
            "R = matrix(0, 64, 1);
             parfor (i in 1:64) { R[i, 1] = as.matrix(i); }
             print(sum(R));",
        );
        assert!(!codes(&ds).contains(&"L0206"), "got {ds:?}");
    }

    #[test]
    fn findings_are_sorted_by_source_position() {
        let ds = lint(
            "a = 1;
             a = 2;
             b = sum(matrix(1.0, 2, 2));
             b = 3;
             print(a + b);",
        );
        let spans: Vec<u32> = ds
            .iter()
            .filter_map(|d| d.primary)
            .map(|s| s.start)
            .collect();
        let mut sorted = spans.clone();
        sorted.sort_unstable();
        assert_eq!(spans, sorted);
        assert_eq!(codes(&ds), vec!["L0203", "L0203"]);
    }
}
