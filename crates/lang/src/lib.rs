//! # lima-lang
//!
//! A DML-subset scripting language (R-like syntax, paper §2.1) compiled to
//! `lima-runtime` programs: lexer, recursive-descent parser, and a
//! block/instruction compiler. This is the substrate that makes the paper's
//! Example-1-style pipelines (`gridSearch('lm', ...)`) expressible as scripts.
//!
//! ```
//! use lima_lang::compile_script;
//! use lima_core::LimaConfig;
//! use lima_runtime::{execute_program, ExecutionContext};
//!
//! let mut program = compile_script(
//!     "X = rand(rows=4, cols=4, seed=7);
//!      s = sum(X %*% t(X));
//!      print(s);",
//!     &LimaConfig::lima(),
//! ).unwrap();
//! let mut ctx = ExecutionContext::new(LimaConfig::lima());
//! execute_program(&program, &mut ctx).unwrap();
//! assert_eq!(ctx.stdout.len(), 1);
//! ```

pub mod ast;
pub mod compile;
pub mod lexer;
pub mod lint;
pub mod parser;

pub use compile::{compile_script, compile_script_uncompiled, lower_script, CompileError};
pub use lexer::{tokenize, LexError, Token, TokenKind};
pub use lint::{build_model, lint_script};
pub use parser::{parse, ParseError};
