//! Lexer for the DML subset.
//!
//! Every token carries a byte-offset [`Span`] into the original source so
//! parse errors and downstream lint diagnostics can render caret snippets
//! (DESIGN.md §14). Lines are still tracked for legacy `line N:` messages.

use lima_core::Span;
use std::fmt;

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    True,
    False,
    If,
    Else,
    For,
    ParFor,
    While,
    In,
    Function,
    Return,
    // punctuation / operators
    Assign, // =
    Eq,     // ==
    Neq,    // !=
    Le,     // <=
    Ge,     // >=
    Lt,     // <
    Gt,     // >
    Plus,
    Minus,
    Star,
    Slash,
    Caret,
    MatMul, // %*%
    And,    // &
    Or,     // |
    Not,    // !
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Comma,
    Colon,
    Semicolon,
    Eof,
}

/// A token with its source line (1-based) and byte span for diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub line: usize,
    pub span: Span,
}

/// Lexing error, anchored to the offending byte range.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    pub line: usize,
    pub msg: String,
    pub span: Span,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes a script. `#` starts a line comment.
pub fn tokenize(src: &str) -> Result<Vec<Token>, LexError> {
    let mut tokens = Vec::new();
    // Parallel arrays: chars plus the byte offset of each char; a sentinel
    // offset at the end maps `i == chars.len()` to `src.len()`.
    let mut chars: Vec<char> = Vec::new();
    let mut offs: Vec<usize> = Vec::new();
    for (off, c) in src.char_indices() {
        offs.push(off);
        chars.push(c);
    }
    offs.push(src.len());
    let mut i = 0;
    let mut line = 1;
    let err = |line: usize, msg: String, span: Span| LexError { line, msg, span };
    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '#' => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '0'..='9' | '.' if c != '.' || chars.get(i + 1).is_some_and(char::is_ascii_digit) => {
                let start = i;
                let mut is_float = false;
                while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '.') {
                    if chars[i] == '.' {
                        is_float = true;
                    }
                    i += 1;
                }
                // exponent
                if i < chars.len() && (chars[i] == 'e' || chars[i] == 'E') {
                    let mut j = i + 1;
                    if j < chars.len() && (chars[j] == '+' || chars[j] == '-') {
                        j += 1;
                    }
                    if j < chars.len() && chars[j].is_ascii_digit() {
                        is_float = true;
                        i = j;
                        while i < chars.len() && chars[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let span = Span::of(offs[start], offs[i]);
                let text: String = chars[start..i].iter().collect();
                let kind = if is_float {
                    TokenKind::Float(
                        text.parse()
                            .map_err(|_| err(line, format!("bad number '{text}'"), span))?,
                    )
                } else {
                    TokenKind::Int(
                        text.parse()
                            .map_err(|_| err(line, format!("bad integer '{text}'"), span))?,
                    )
                };
                tokens.push(Token { kind, line, span });
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < chars.len()
                    && (chars[i].is_ascii_alphanumeric() || chars[i] == '_' || chars[i] == '.')
                {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                let kind = match text.as_str() {
                    "TRUE" => TokenKind::True,
                    "FALSE" => TokenKind::False,
                    "if" => TokenKind::If,
                    "else" => TokenKind::Else,
                    "for" => TokenKind::For,
                    "parfor" => TokenKind::ParFor,
                    "while" => TokenKind::While,
                    "in" => TokenKind::In,
                    "function" => TokenKind::Function,
                    "return" => TokenKind::Return,
                    _ => TokenKind::Ident(text),
                };
                tokens.push(Token {
                    kind,
                    line,
                    span: Span::of(offs[start], offs[i]),
                });
            }
            '\'' | '"' => {
                let quote = c;
                let open = i;
                i += 1;
                let start = i;
                while i < chars.len() && chars[i] != quote {
                    if chars[i] == '\n' {
                        return Err(err(
                            line,
                            "unterminated string".into(),
                            Span::of(offs[open], offs[i]),
                        ));
                    }
                    i += 1;
                }
                if i >= chars.len() {
                    return Err(err(
                        line,
                        "unterminated string".into(),
                        Span::of(offs[open], src.len()),
                    ));
                }
                let text: String = chars[start..i].iter().collect();
                i += 1;
                tokens.push(Token {
                    kind: TokenKind::Str(text),
                    line,
                    span: Span::of(offs[open], offs[i]),
                });
            }
            '%' => {
                // only %*% supported
                if chars.get(i + 1) == Some(&'*') && chars.get(i + 2) == Some(&'%') {
                    tokens.push(Token {
                        kind: TokenKind::MatMul,
                        line,
                        span: Span::of(offs[i], offs[i + 3]),
                    });
                    i += 3;
                } else {
                    return Err(err(
                        line,
                        "unsupported '%' operator (only %*%)".into(),
                        Span::of(offs[i], offs[i + 1]),
                    ));
                }
            }
            _ => {
                let two = |a: char| chars.get(i + 1) == Some(&a);
                let (kind, len) = match c {
                    '=' if two('=') => (TokenKind::Eq, 2),
                    '=' => (TokenKind::Assign, 1),
                    '!' if two('=') => (TokenKind::Neq, 2),
                    '!' => (TokenKind::Not, 1),
                    '<' if two('=') => (TokenKind::Le, 2),
                    '<' if two('-') => (TokenKind::Assign, 2), // R-style assign
                    '<' => (TokenKind::Lt, 1),
                    '>' if two('=') => (TokenKind::Ge, 2),
                    '>' => (TokenKind::Gt, 1),
                    '+' => (TokenKind::Plus, 1),
                    '-' => (TokenKind::Minus, 1),
                    '*' => (TokenKind::Star, 1),
                    '/' => (TokenKind::Slash, 1),
                    '^' => (TokenKind::Caret, 1),
                    '&' => (TokenKind::And, if two('&') { 2 } else { 1 }),
                    '|' => (TokenKind::Or, if two('|') { 2 } else { 1 }),
                    '(' => (TokenKind::LParen, 1),
                    ')' => (TokenKind::RParen, 1),
                    '[' => (TokenKind::LBracket, 1),
                    ']' => (TokenKind::RBracket, 1),
                    '{' => (TokenKind::LBrace, 1),
                    '}' => (TokenKind::RBrace, 1),
                    ',' => (TokenKind::Comma, 1),
                    ':' => (TokenKind::Colon, 1),
                    ';' => (TokenKind::Semicolon, 1),
                    other => {
                        return Err(err(
                            line,
                            format!("unexpected character '{other}'"),
                            Span::of(offs[i], offs[i + 1]),
                        ))
                    }
                };
                tokens.push(Token {
                    kind,
                    line,
                    span: Span::of(offs[i], offs[i + len]),
                });
                i += len;
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        line,
        span: Span::point(src.len()),
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn numbers_ints_and_floats() {
        assert_eq!(
            kinds("1 2.5 1e-5 10E3 7"),
            vec![
                TokenKind::Int(1),
                TokenKind::Float(2.5),
                TokenKind::Float(1e-5),
                TokenKind::Float(10e3),
                TokenKind::Int(7),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn identifiers_keywords_and_dots() {
        assert_eq!(
            kinds("for x as.scalar TRUE parfor"),
            vec![
                TokenKind::For,
                TokenKind::Ident("x".into()),
                TokenKind::Ident("as.scalar".into()),
                TokenKind::True,
                TokenKind::ParFor,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn strings_both_quotes() {
        assert_eq!(
            kinds(r#"'abc' "d e f""#),
            vec![
                TokenKind::Str("abc".into()),
                TokenKind::Str("d e f".into()),
                TokenKind::Eof
            ]
        );
        assert!(tokenize("'unterminated").is_err());
    }

    #[test]
    fn operators_and_matmul() {
        assert_eq!(
            kinds("a = b %*% c; a == b; a <= 1; x <- 2"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Assign,
                TokenKind::Ident("b".into()),
                TokenKind::MatMul,
                TokenKind::Ident("c".into()),
                TokenKind::Semicolon,
                TokenKind::Ident("a".into()),
                TokenKind::Eq,
                TokenKind::Ident("b".into()),
                TokenKind::Semicolon,
                TokenKind::Ident("a".into()),
                TokenKind::Le,
                TokenKind::Int(1),
                TokenKind::Semicolon,
                TokenKind::Ident("x".into()),
                TokenKind::Assign,
                TokenKind::Int(2),
                TokenKind::Eof
            ]
        );
        assert!(tokenize("a %% b").is_err());
    }

    #[test]
    fn comments_and_lines() {
        let toks = tokenize("a = 1 # comment\nb = 2").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[3].line, 2);
        assert_eq!(toks.len(), 7);
    }

    #[test]
    fn unexpected_characters_error() {
        assert!(tokenize("a @ b").is_err());
    }

    #[test]
    fn spans_are_byte_offsets() {
        let src = "ab = 12;\ncd = ab %*% ef";
        let toks = tokenize(src).unwrap();
        assert_eq!(toks[0].span, Span::of(0, 2)); // ab
        assert_eq!(toks[1].span, Span::of(3, 4)); // =
        assert_eq!(toks[2].span, Span::of(5, 7)); // 12
        assert_eq!(toks[3].span, Span::of(7, 8)); // ;
        assert_eq!(toks[4].span, Span::of(9, 11)); // cd
        assert_eq!(toks[7].span, Span::of(17, 20)); // %*%
        let eof = toks.last().unwrap();
        assert_eq!(eof.span, Span::point(src.len()));
        // Every span is in bounds and ordered.
        for t in &toks {
            assert!(t.span.in_bounds(src.len()), "{:?}", t);
        }
    }

    #[test]
    fn spans_handle_multibyte_chars() {
        // 'é' is 2 bytes; the string token's span must land on char
        // boundaries of the original source.
        let src = "s = 'éé'; t = 1";
        let toks = tokenize(src).unwrap();
        let str_tok = &toks[2];
        assert!(matches!(str_tok.kind, TokenKind::Str(_)));
        assert_eq!(
            &src[str_tok.span.start as usize..str_tok.span.end as usize],
            "'éé'"
        );
        for t in &toks {
            assert!(src.is_char_boundary(t.span.start as usize));
            assert!(src.is_char_boundary(t.span.end as usize));
        }
    }

    #[test]
    fn lex_errors_carry_spans() {
        let e = tokenize("a @ b").unwrap_err();
        assert_eq!(e.span, Span::of(2, 3));
        let e = tokenize("x = 'oops").unwrap_err();
        assert_eq!(e.span, Span::of(4, 9));
        let e = tokenize("a %% b").unwrap_err();
        assert_eq!(e.span, Span::of(2, 3));
    }
}
