//! Lexer for the DML subset.

use std::fmt;

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    True,
    False,
    If,
    Else,
    For,
    ParFor,
    While,
    In,
    Function,
    Return,
    // punctuation / operators
    Assign, // =
    Eq,     // ==
    Neq,    // !=
    Le,     // <=
    Ge,     // >=
    Lt,     // <
    Gt,     // >
    Plus,
    Minus,
    Star,
    Slash,
    Caret,
    MatMul, // %*%
    And,    // &
    Or,     // |
    Not,    // !
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Comma,
    Colon,
    Semicolon,
    Eof,
}

/// A token with its source line (1-based) for diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub line: usize,
}

/// Lexing error.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    pub line: usize,
    pub msg: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes a script. `#` starts a line comment.
pub fn tokenize(src: &str) -> Result<Vec<Token>, LexError> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0;
    let mut line = 1;
    let err = |line: usize, msg: String| LexError { line, msg };
    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '#' => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '0'..='9' | '.' if c != '.' || chars.get(i + 1).is_some_and(char::is_ascii_digit) => {
                let start = i;
                let mut is_float = false;
                while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '.') {
                    if chars[i] == '.' {
                        is_float = true;
                    }
                    i += 1;
                }
                // exponent
                if i < chars.len() && (chars[i] == 'e' || chars[i] == 'E') {
                    let mut j = i + 1;
                    if j < chars.len() && (chars[j] == '+' || chars[j] == '-') {
                        j += 1;
                    }
                    if j < chars.len() && chars[j].is_ascii_digit() {
                        is_float = true;
                        i = j;
                        while i < chars.len() && chars[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text: String = chars[start..i].iter().collect();
                let kind = if is_float {
                    TokenKind::Float(
                        text.parse()
                            .map_err(|_| err(line, format!("bad number '{text}'")))?,
                    )
                } else {
                    TokenKind::Int(
                        text.parse()
                            .map_err(|_| err(line, format!("bad integer '{text}'")))?,
                    )
                };
                tokens.push(Token { kind, line });
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < chars.len()
                    && (chars[i].is_ascii_alphanumeric() || chars[i] == '_' || chars[i] == '.')
                {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                let kind = match text.as_str() {
                    "TRUE" => TokenKind::True,
                    "FALSE" => TokenKind::False,
                    "if" => TokenKind::If,
                    "else" => TokenKind::Else,
                    "for" => TokenKind::For,
                    "parfor" => TokenKind::ParFor,
                    "while" => TokenKind::While,
                    "in" => TokenKind::In,
                    "function" => TokenKind::Function,
                    "return" => TokenKind::Return,
                    _ => TokenKind::Ident(text),
                };
                tokens.push(Token { kind, line });
            }
            '\'' | '"' => {
                let quote = c;
                i += 1;
                let start = i;
                while i < chars.len() && chars[i] != quote {
                    if chars[i] == '\n' {
                        return Err(err(line, "unterminated string".into()));
                    }
                    i += 1;
                }
                if i >= chars.len() {
                    return Err(err(line, "unterminated string".into()));
                }
                let text: String = chars[start..i].iter().collect();
                i += 1;
                tokens.push(Token {
                    kind: TokenKind::Str(text),
                    line,
                });
            }
            '%' => {
                // only %*% supported
                if chars.get(i + 1) == Some(&'*') && chars.get(i + 2) == Some(&'%') {
                    tokens.push(Token {
                        kind: TokenKind::MatMul,
                        line,
                    });
                    i += 3;
                } else {
                    return Err(err(line, "unsupported '%' operator (only %*%)".into()));
                }
            }
            _ => {
                let two = |a: char| chars.get(i + 1) == Some(&a);
                let (kind, len) = match c {
                    '=' if two('=') => (TokenKind::Eq, 2),
                    '=' => (TokenKind::Assign, 1),
                    '!' if two('=') => (TokenKind::Neq, 2),
                    '!' => (TokenKind::Not, 1),
                    '<' if two('=') => (TokenKind::Le, 2),
                    '<' if two('-') => (TokenKind::Assign, 2), // R-style assign
                    '<' => (TokenKind::Lt, 1),
                    '>' if two('=') => (TokenKind::Ge, 2),
                    '>' => (TokenKind::Gt, 1),
                    '+' => (TokenKind::Plus, 1),
                    '-' => (TokenKind::Minus, 1),
                    '*' => (TokenKind::Star, 1),
                    '/' => (TokenKind::Slash, 1),
                    '^' => (TokenKind::Caret, 1),
                    '&' => (TokenKind::And, if two('&') { 2 } else { 1 }),
                    '|' => (TokenKind::Or, if two('|') { 2 } else { 1 }),
                    '(' => (TokenKind::LParen, 1),
                    ')' => (TokenKind::RParen, 1),
                    '[' => (TokenKind::LBracket, 1),
                    ']' => (TokenKind::RBracket, 1),
                    '{' => (TokenKind::LBrace, 1),
                    '}' => (TokenKind::RBrace, 1),
                    ',' => (TokenKind::Comma, 1),
                    ':' => (TokenKind::Colon, 1),
                    ';' => (TokenKind::Semicolon, 1),
                    other => return Err(err(line, format!("unexpected character '{other}'"))),
                };
                tokens.push(Token { kind, line });
                i += len;
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        line,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn numbers_ints_and_floats() {
        assert_eq!(
            kinds("1 2.5 1e-5 10E3 7"),
            vec![
                TokenKind::Int(1),
                TokenKind::Float(2.5),
                TokenKind::Float(1e-5),
                TokenKind::Float(10e3),
                TokenKind::Int(7),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn identifiers_keywords_and_dots() {
        assert_eq!(
            kinds("for x as.scalar TRUE parfor"),
            vec![
                TokenKind::For,
                TokenKind::Ident("x".into()),
                TokenKind::Ident("as.scalar".into()),
                TokenKind::True,
                TokenKind::ParFor,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn strings_both_quotes() {
        assert_eq!(
            kinds(r#"'abc' "d e f""#),
            vec![
                TokenKind::Str("abc".into()),
                TokenKind::Str("d e f".into()),
                TokenKind::Eof
            ]
        );
        assert!(tokenize("'unterminated").is_err());
    }

    #[test]
    fn operators_and_matmul() {
        assert_eq!(
            kinds("a = b %*% c; a == b; a <= 1; x <- 2"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Assign,
                TokenKind::Ident("b".into()),
                TokenKind::MatMul,
                TokenKind::Ident("c".into()),
                TokenKind::Semicolon,
                TokenKind::Ident("a".into()),
                TokenKind::Eq,
                TokenKind::Ident("b".into()),
                TokenKind::Semicolon,
                TokenKind::Ident("a".into()),
                TokenKind::Le,
                TokenKind::Int(1),
                TokenKind::Semicolon,
                TokenKind::Ident("x".into()),
                TokenKind::Assign,
                TokenKind::Int(2),
                TokenKind::Eof
            ]
        );
        assert!(tokenize("a %% b").is_err());
    }

    #[test]
    fn comments_and_lines() {
        let toks = tokenize("a = 1 # comment\nb = 2").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[3].line, 2);
        assert_eq!(toks.len(), 7);
    }

    #[test]
    fn unexpected_characters_error() {
        assert!(tokenize("a @ b").is_err());
    }
}
