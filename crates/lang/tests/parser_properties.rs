//! Property tests for the language front-end: total functions (no panics on
//! arbitrary input), determinism, and structural invariants of compiled
//! programs.

use lima_core::LimaConfig;
use lima_lang::{compile_script_uncompiled, parse, tokenize};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The lexer and parser must never panic, whatever bytes come in.
    #[test]
    fn lexer_and_parser_are_total(src in "\\PC*") {
        let _ = tokenize(&src);
        let _ = parse(&src);
        let _ = compile_script_uncompiled(&src);
    }

    /// Structured garbage built from language fragments must not panic either
    /// (this exercises deeper parser states than raw bytes do).
    #[test]
    fn fragment_soup_is_total(parts in proptest::collection::vec(0usize..16, 0..24)) {
        let frags = [
            "x = ", "1 + ", "t(", ")", "[", "]", "for (i in 1:3) ", "{", "}",
            "function(a) return (b) ", "%*%", "if (", "rand(rows=2, cols=2)",
            "'str'", ";", ", ",
        ];
        let src: String = parts.iter().map(|&i| frags[i]).collect();
        let _ = parse(&src);
        let _ = compile_script_uncompiled(&src);
    }

    /// Parsing is deterministic.
    #[test]
    fn parsing_is_deterministic(parts in proptest::collection::vec(0usize..8, 1..10)) {
        let frags = [
            "a = 1;", "b = a + 2;", "c = a * b;", "print(c);",
            "for (i in 1:3) { a = a + i; }", "if (a > 2) { b = 0; }",
            "M = rand(rows=3, cols=3, seed=1);", "s = sum(M);",
        ];
        let src: String = parts.iter().map(|&i| frags[i]).collect();
        let a = parse(&src).expect("valid fragments");
        let b = parse(&src).expect("valid fragments");
        prop_assert_eq!(a, b);
    }

    /// Every valid fragment combination compiles into a program whose blocks
    /// have unique, nonzero IDs after the compiler passes.
    #[test]
    fn compiled_blocks_have_unique_ids(parts in proptest::collection::vec(0usize..8, 1..10)) {
        let frags = [
            "a = 1;", "b = a + 2;", "c = a * b;", "print(c);",
            "for (i in 1:3) { a = a + i; }", "if (a > 2) { b = 0; } else { b = 1; }",
            "while (a < 10) { a = a * 2; }", "s = a + b;",
        ];
        let src: String = parts.iter().map(|&i| frags[i]).collect();
        let program = lima_lang::compile_script(&src, &LimaConfig::lima()).expect("compiles");
        let mut ids = Vec::new();
        collect_ids(&program.body, &mut ids);
        for f in program.functions.values() {
            collect_ids(&f.body, &mut ids);
        }
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), n, "duplicate block ids");
        prop_assert!(ids.first().is_none_or(|&i| i > 0));
    }
}

fn collect_ids(blocks: &[lima_runtime::Block], out: &mut Vec<u64>) {
    use lima_runtime::Block;
    for b in blocks {
        out.push(b.id());
        match b {
            Block::If {
                then_body,
                else_body,
                ..
            } => {
                collect_ids(then_body, out);
                collect_ids(else_body, out);
            }
            Block::For { body, .. } | Block::While { body, .. } | Block::ParFor { body, .. } => {
                collect_ids(body, out);
            }
            Block::Basic { .. } => {}
        }
    }
}
