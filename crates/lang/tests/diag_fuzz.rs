//! Diagnostic totality fuzzing (S2): on *any* byte input — including
//! sequences produced by truncating multi-byte UTF-8 codepoints — the
//! front-end must never panic, and every error it reports must carry a
//! diagnostic whose spans (primary and labels) lie inside the source.

use lima_core::{LimaConfig, Span};
use lima_lang::{lint_script, parse, tokenize};
use proptest::prelude::*;

/// Asserts every span a diagnostic carries stays inside `src`.
fn assert_spans_in_bounds(src: &str, diags: &[lima_core::Diagnostic]) {
    for d in diags {
        assert!(!d.code.is_empty(), "diagnostic without a code: {d:?}");
        if let Some(span) = d.primary {
            assert!(
                span.in_bounds(src.len()),
                "primary span {span:?} escapes {}-byte source: {d:?}",
                src.len()
            );
        }
        for l in &d.labels {
            assert!(
                l.span.in_bounds(src.len()),
                "label span {:?} escapes {}-byte source: {d:?}",
                l.span,
                src.len()
            );
        }
    }
}

/// Runs the whole front-end (lex, parse, compile, lint) on one input and
/// checks the diagnostic invariants on every failure path.
fn front_end_is_total(src: &str) {
    let _ = tokenize(src);
    if let Err(e) = parse(src) {
        let d = e.diagnostic();
        assert_spans_in_bounds(src, std::slice::from_ref(&d));
        // Rendering must also be panic-free on arbitrary sources.
        let _ = d.render(src, "<fuzz>");
    }
    let diags = lint_script(src, &LimaConfig::lima());
    assert_spans_in_bounds(src, &diags);
    for d in &diags {
        let _ = d.render(src, "<fuzz>");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes (lossily decoded, as a file reader would) never
    /// panic and never yield out-of-bounds spans.
    #[test]
    fn arbitrary_bytes_yield_bounded_diagnostics(
        bytes in proptest::collection::vec(any::<u8>(), 0..256)
    ) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        front_end_is_total(&src);
    }

    /// Truncating a unicode-bearing script at every byte offset — including
    /// offsets inside multi-byte codepoints — must stay panic-free with
    /// in-bounds spans. Lossy decoding models what `read_to_string`-style
    /// ingestion of a torn file produces.
    #[test]
    fn unicode_truncations_yield_bounded_diagnostics(cut in 0usize..200) {
        let script = "x = 1;\ns = 'héllo wörld — ünïcode';\nfor (i in 1:3) { x = x + i; }\nprint(x);\n";
        let bytes = script.as_bytes();
        let cut = cut.min(bytes.len());
        let src = String::from_utf8_lossy(&bytes[..cut]).into_owned();
        front_end_is_total(&src);
    }

    /// Fragment soup reaches deeper parser states than raw bytes; the same
    /// span invariants must hold there.
    #[test]
    fn fragment_soup_yields_bounded_diagnostics(
        parts in proptest::collection::vec(0usize..16, 0..24)
    ) {
        let frags = [
            "x = ", "1 + ", "t(", ")", "[", "]", "parfor (i in 1:3) ", "{", "}",
            "function(a) return (b) ", "%*%", "if (", "rand(rows=2, cols=2)",
            "'str'", ";", "R[1, 1] = as.matrix(i)",
        ];
        let src: String = parts.iter().map(|&i| frags[i]).collect();
        front_end_is_total(&src);
    }
}

/// `Span` itself must tolerate degenerate construction orders.
#[test]
fn span_constructors_normalize() {
    assert_eq!(Span::new(5, 2), Span::new(2, 5));
    assert!(Span::of(0, 0).in_bounds(0));
    assert!(!Span::of(0, 1).in_bounds(0));
}
