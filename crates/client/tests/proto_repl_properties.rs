//! Property tests for the replication wire payloads (`K_REPL_*`).
//!
//! The replication ops carry the largest and most structurally varied
//! payloads in the protocol (batches of lineage + value + checksum records,
//! digest vectors), and they are decoded from bytes produced by a *peer*
//! process — so the decoder must hold up under arbitrary well-formed shapes
//! and never panic on corrupted ones. Frame-layer checksums catch wire
//! corruption; these tests target the payload layer beneath it.

use lima_client::proto::{BucketDigest, ReplRecord, Request, Response, MAX_REPL_BUCKETS};
use lima_matrix::{DenseMatrix, Value};
use proptest::collection::vec;
use proptest::prelude::*;
use proptest::strategy::BoxedStrategy;

/// Arbitrary transportable value: finite scalars and small matrices. Lists
/// are deliberately absent — they are not wire-encodable and the encoder
/// never receives them. Scalars stay finite because the wire form goes
/// through the canonical lineage literal, which does not preserve NaN
/// payload bits.
fn value_strategy() -> BoxedStrategy<Value> {
    prop_oneof![
        (-1.0e12f64..1.0e12).prop_map(Value::f64),
        (1usize..5, 1usize..5, any::<u64>()).prop_map(|(r, c, seed)| {
            Value::matrix(DenseMatrix::from_fn(r, c, |i, j| {
                ((seed.wrapping_add((i * 31 + j) as u64) % 1000) as f64) / 7.0
            }))
        }),
    ]
    .boxed()
}

fn record_strategy() -> BoxedStrategy<ReplRecord> {
    ("[a-z0-9 (){}:]{0,60}", value_strategy(), any::<u64>())
        .prop_map(|(lineage, value, compute_ns)| ReplRecord::new(lineage, value, compute_ns))
        .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn repl_put_round_trips(records in vec(record_strategy(), 0..8)) {
        let req = Request::ReplPut { records: records.clone() };
        let (kind, payload) = req.encode();
        let decoded = Request::decode(kind, &payload).expect("well-formed ReplPut must decode");
        let Request::ReplPut { records: got } = decoded else {
            panic!("decoded to a different variant");
        };
        prop_assert_eq!(&records, &got);
        // Every record survives the trip byte-identical, so the embedded
        // checksum still verifies.
        prop_assert!(got.iter().all(ReplRecord::verify_bytes));
    }

    #[test]
    fn repl_digest_and_pull_round_trip(
        buckets in 1u32..=MAX_REPL_BUCKETS,
        bucket_seed in any::<u32>(),
    ) {
        let (kind, payload) = Request::ReplDigest { buckets }.encode();
        prop_assert_eq!(
            Request::decode(kind, &payload),
            Some(Request::ReplDigest { buckets })
        );

        let bucket = bucket_seed % buckets;
        let (kind, payload) = Request::ReplPull { bucket, buckets }.encode();
        prop_assert_eq!(
            Request::decode(kind, &payload),
            Some(Request::ReplPull { bucket, buckets })
        );
    }

    #[test]
    fn repl_responses_round_trip(
        digests in vec(
            (any::<u64>(), any::<u64>()).prop_map(|(count, xor)| BucketDigest { count, xor }),
            0..64,
        ),
        records in vec(record_strategy(), 0..6),
        applied in any::<u32>(),
        rejected in any::<u32>(),
    ) {
        let (kind, payload) = Response::ReplDigests(digests.clone()).encode();
        let Some(Response::ReplDigests(got)) = Response::decode(kind, &payload) else {
            panic!("digests response did not decode");
        };
        prop_assert_eq!(digests, got);

        let (kind, payload) = Response::ReplEntries(records.clone()).encode();
        let Some(Response::ReplEntries(got)) = Response::decode(kind, &payload) else {
            panic!("entries response did not decode");
        };
        prop_assert_eq!(&records, &got);

        let (kind, payload) = Response::ReplAck { applied, rejected }.encode();
        prop_assert_eq!(
            Response::decode(kind, &payload),
            Some(Response::ReplAck { applied, rejected })
        );
    }

    /// Corruption anywhere in an encoded ReplPut payload must never panic
    /// the decoder; when the mutated bytes still parse structurally, the
    /// per-record checksum is there to flag damage to lineage/value bytes
    /// (timing metadata is deliberately outside the checksum).
    #[test]
    fn mutated_repl_put_never_panics(
        records in vec(record_strategy(), 1..4),
        pos_seed in any::<u64>(),
        flip in 1u8..=255,
    ) {
        let (kind, payload) = Request::ReplPut { records }.encode();
        let mut bad = payload.clone();
        let pos = (pos_seed as usize) % bad.len();
        bad[pos] ^= flip;
        match Request::decode(kind, &bad) {
            None => {} // structural rejection: fine
            Some(Request::ReplPut { records: got }) => {
                for r in &got {
                    let _ = r.verify_bytes(); // must not panic
                }
            }
            Some(_) => panic!("ReplPut bytes decoded to a different variant"),
        }
    }

    /// Truncating an encoded payload at any point must decode to None —
    /// the protocol requires every byte accounted for and present.
    #[test]
    fn truncated_repl_payloads_decode_to_none(
        records in vec(record_strategy(), 1..4),
        cut_seed in any::<u64>(),
    ) {
        let (kind, payload) = Request::ReplPut { records }.encode();
        let cut = (cut_seed as usize) % payload.len(); // strictly shorter
        prop_assert_eq!(Request::decode(kind, &payload[..cut]), None);
    }
}
