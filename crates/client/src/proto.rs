//! The `limad` wire protocol: compact length-framed, checksummed messages.
//!
//! Every message is one frame:
//!
//! ```text
//! +-------+------+--------+-------------+---------+----------+
//! | magic | kind | req id | payload len | payload | checksum |
//! |  u32  |  u8  |  u64   |     u32     |  bytes  |   u64    |
//! +-------+------+--------+-------------+---------+----------+
//! ```
//!
//! The trailing FNV-1a-64 checksum covers everything before it, so a torn or
//! bit-flipped frame is always detected at the receiver and isolates to that
//! one connection — never the shard behind it. Payloads larger than the
//! receiver's frame cap are rejected *before* allocation.
//!
//! Every request carries a relative deadline (`deadline_ms`, 0 = server
//! default) and every response is a typed result: either the
//! request-specific success variant or a [`ServiceError`] with a machine
//! [`ErrorCode`] and an optional retry-after hint.

use bytes::{Buf, BufMut, BytesMut};
use lima_core::{Diagnostic, Label, Severity, Span};
use lima_matrix::{DenseMatrix, ScalarValue, Value};
use std::io::{Read, Write};

/// Frame magic: `"LMD1"`.
pub const MAGIC: u32 = 0x4C4D_4431;
/// Fixed frame header size (magic + kind + request id + payload length).
pub const HEADER_BYTES: usize = 4 + 1 + 8 + 4;
/// Trailing checksum size.
pub const TRAILER_BYTES: usize = 8;
/// Default cap on a frame payload; oversized frames are rejected with a
/// typed error before any allocation happens.
pub const MAX_FRAME_BYTES: usize = 32 * 1024 * 1024;

/// FNV-1a 64-bit hash (same construction as the spill/persist formats).
pub fn fnv1a(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Typed failure classes carried in error responses. The same codes drive
/// `limac`/`limad` process exit codes, so scripts and CI can distinguish a
/// deadline from a cancellation from resource exhaustion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Malformed frame or request payload (isolated to the connection).
    BadRequest,
    /// The submitted script failed to compile.
    Compile,
    /// The script failed at runtime (kernel error, undefined variable, ...).
    Runtime,
    /// The request's deadline passed before completion.
    DeadlineExceeded,
    /// The session was cancelled via its token.
    Cancelled,
    /// A quota or the resource governor rejected the admission.
    ResourceExhausted,
    /// The shard is shedding load (governor ladder L3/L4); retry after the
    /// hinted delay.
    Overloaded,
    /// Probe/fetch/cancel target not found.
    NotFound,
    /// Unexpected server-side failure.
    Internal,
}

impl ErrorCode {
    /// Stable machine-readable name (used in stderr lines and logs).
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::Compile => "compile_error",
            ErrorCode::Runtime => "runtime_error",
            ErrorCode::DeadlineExceeded => "deadline_exceeded",
            ErrorCode::Cancelled => "cancelled",
            ErrorCode::ResourceExhausted => "resource_exhausted",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::NotFound => "not_found",
            ErrorCode::Internal => "internal",
        }
    }

    /// Process exit code for CLI surfaces (`limac run`, chaos drivers):
    /// distinct nonzero codes for the interrupt family, generic `1`
    /// otherwise (`2` stays reserved for usage errors).
    pub fn exit_code(self) -> u8 {
        match self {
            ErrorCode::DeadlineExceeded => 4,
            ErrorCode::Cancelled => 5,
            ErrorCode::ResourceExhausted => 6,
            ErrorCode::Overloaded => 7,
            _ => 1,
        }
    }

    /// True when retrying the same request later may succeed without any
    /// side effect having happened (the server sheds *before* executing).
    pub fn retryable(self) -> bool {
        matches!(self, ErrorCode::Overloaded)
    }

    fn as_u8(self) -> u8 {
        match self {
            ErrorCode::BadRequest => 1,
            ErrorCode::Compile => 2,
            ErrorCode::Runtime => 3,
            ErrorCode::DeadlineExceeded => 4,
            ErrorCode::Cancelled => 5,
            ErrorCode::ResourceExhausted => 6,
            ErrorCode::Overloaded => 7,
            ErrorCode::NotFound => 8,
            ErrorCode::Internal => 9,
        }
    }

    fn from_u8(v: u8) -> Option<ErrorCode> {
        Some(match v {
            1 => ErrorCode::BadRequest,
            2 => ErrorCode::Compile,
            3 => ErrorCode::Runtime,
            4 => ErrorCode::DeadlineExceeded,
            5 => ErrorCode::Cancelled,
            6 => ErrorCode::ResourceExhausted,
            7 => ErrorCode::Overloaded,
            8 => ErrorCode::NotFound,
            9 => ErrorCode::Internal,
            _ => return None,
        })
    }
}

/// A typed error response.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceError {
    /// Machine-readable failure class.
    pub code: ErrorCode,
    /// Suggested delay before retrying (0 = no hint). Set on `Overloaded`.
    pub retry_after_ms: u64,
    /// Human-readable detail.
    pub msg: String,
    /// Source-anchored diagnostics (code, span, labels); populated on
    /// `Compile` errors so clients can render caret snippets against the
    /// script they submitted. Empty for other error classes.
    pub diagnostics: Vec<Diagnostic>,
}

impl ServiceError {
    /// An error with no attached diagnostics (every class except `Compile`).
    pub fn new(code: ErrorCode, retry_after_ms: u64, msg: impl Into<String>) -> ServiceError {
        ServiceError {
            code,
            retry_after_ms,
            msg: msg.into(),
            diagnostics: Vec::new(),
        }
    }
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code.as_str(), self.msg)
    }
}

/// Client → server messages. All execution requests carry a relative
/// `deadline_ms` propagated into the server-side session deadline.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Compile and execute a script; respond with the named output values.
    Submit {
        /// Tenant identity for quota accounting.
        tenant: String,
        /// Script source (DML subset).
        script: String,
        /// System-seed base for reproducible `rand`/`sample`.
        seed: Option<u64>,
        /// Variables to return; empty returns every scalar output.
        outputs: Vec<String>,
        /// Relative deadline in milliseconds (0 = server default).
        deadline_ms: u64,
    },
    /// Does the routed shard hold a cached value for this lineage trace?
    Probe {
        tenant: String,
        /// Serialized lineage log (`serialize_lineage` output).
        lineage: String,
        deadline_ms: u64,
    },
    /// Fetch the cached value for this lineage trace, if any.
    Fetch {
        tenant: String,
        lineage: String,
        deadline_ms: u64,
    },
    /// Cooperatively cancel a running session by server-assigned id.
    Cancel {
        /// Session id returned by a prior `Submitted` response.
        session: u64,
    },
    /// Fetch the aggregated Prometheus metrics text.
    Metrics,
    /// Liveness check.
    Ping,
    /// Admin: run one full integrity-scrub pass over every shard's
    /// persistent store, repairing or quarantining what it finds.
    Scrub,
    /// Replication: apply a batch of committed records forwarded by a peer
    /// member (best-effort write replication).
    ReplPut {
        /// The forwarded records, each individually verified on receipt.
        records: Vec<ReplRecord>,
    },
    /// Replication: return per-bucket digests of this member's replicable
    /// lineage-hash keyspace, split into `buckets` buckets.
    ReplDigest {
        /// Bucket count (`1..=MAX_REPL_BUCKETS`); both sides must use the
        /// same count for digests to be comparable.
        buckets: u32,
    },
    /// Replication: return the records whose scrambled lineage hash lands in
    /// `bucket` so the requester can repair a digest mismatch.
    ReplPull {
        /// Bucket index (`< buckets`).
        bucket: u32,
        /// Bucket count the index is relative to.
        buckets: u32,
    },
}

const K_SUBMIT: u8 = 1;
const K_PROBE: u8 = 2;
const K_FETCH: u8 = 3;
const K_CANCEL: u8 = 4;
const K_METRICS: u8 = 5;
const K_PING: u8 = 6;
const K_SCRUB: u8 = 7;
const K_REPL_PUT: u8 = 8;
const K_REPL_DIGEST: u8 = 9;
const K_REPL_PULL: u8 = 10;
const K_RESP: u8 = 0x80;
const K_ERROR: u8 = 0xFF;

/// Upper bound on the anti-entropy bucket count a peer may request; a
/// digest request outside `1..=MAX_REPL_BUCKETS` is a structural violation.
pub const MAX_REPL_BUCKETS: u32 = 4096;

/// One replicated cache record: a serialized lineage trace, the value it
/// names, and the measured compute cost (for eviction scoring on the
/// receiver). `check` is an end-to-end FNV-1a over the canonical encoding of
/// `(lineage, value)` — it survives beyond the frame checksum so a receiver
/// can detect payload corruption introduced *before* framing (a buggy peer,
/// a bit flip in the replication queue) and fall back to lineage-driven
/// recompute instead of caching bad bytes.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplRecord {
    /// `serialize_lineage` output for the value's root item.
    pub lineage: String,
    /// The cached value (matrices and scalars; lists never replicate).
    pub value: Value,
    /// Nanoseconds the value originally took to compute.
    pub compute_ns: u64,
    /// FNV-1a-64 over the encoded `(lineage, value)` pair.
    pub check: u64,
}

impl ReplRecord {
    /// A record with its integrity checksum computed from the payload.
    pub fn new(lineage: String, value: Value, compute_ns: u64) -> ReplRecord {
        let check = ReplRecord::checksum(&lineage, &value);
        ReplRecord {
            lineage,
            value,
            compute_ns,
            check,
        }
    }

    /// The canonical content checksum a receiver re-derives to verify bytes.
    pub fn checksum(lineage: &str, value: &Value) -> u64 {
        let mut buf = BytesMut::new();
        put_str(&mut buf, lineage);
        put_value(&mut buf, value);
        fnv1a(&buf)
    }

    /// True when the carried bytes still match their checksum.
    pub fn verify_bytes(&self) -> bool {
        ReplRecord::checksum(&self.lineage, &self.value) == self.check
    }
}

/// Summary of one anti-entropy bucket: how many lineage hashes landed in it
/// and their order-independent XOR fingerprint. Two members whose buckets
/// carry equal `(count, xor)` pairs hold the same keys with overwhelming
/// probability; a mismatch names exactly which bucket to pull.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BucketDigest {
    /// Number of replicable entries hashing into this bucket.
    pub count: u64,
    /// XOR of the scrambled lineage hashes in this bucket.
    pub xor: u64,
}

/// Per-shard result of an admin [`Request::Scrub`] pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardScrub {
    /// Shard index.
    pub shard: u32,
    /// Bytes re-verified during this pass.
    pub bytes: u64,
    /// Entries whose checksums were re-verified.
    pub entries: u64,
    /// Corruptions detected.
    pub corrupt: u64,
    /// Corrupt entries recomputed from lineage and re-persisted.
    pub repaired: u64,
    /// Repair attempts that failed (the entry was quarantined instead).
    pub repair_failures: u64,
    /// Entries tombstoned and moved to `quarantine/`.
    pub quarantined: u64,
    /// True when the pass covered the whole store (false = cut short by
    /// memory pressure or a degraded/disabled store).
    pub completed: bool,
}

/// Server → client messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Script ran to completion.
    Submitted {
        /// Server-assigned session id (target for `Cancel`).
        session: u64,
        /// Requested output variables and their values.
        values: Vec<(String, Value)>,
        /// Collected `print` output.
        stdout: Vec<String>,
    },
    /// Probe verdict.
    Probed {
        /// True when the routed shard holds a cached value.
        hit: bool,
    },
    /// Fetched value (`None` = cache miss).
    Fetched(Option<Value>),
    /// Cancellation verdict (`false` = no such live session).
    Cancelled {
        /// True when the session was found and its token cancelled.
        found: bool,
    },
    /// Aggregated Prometheus text exposition.
    MetricsText(String),
    /// Liveness response.
    Pong,
    /// Per-shard scrub results for an admin `Scrub` request.
    Scrubbed(Vec<ShardScrub>),
    /// Replication verdict for a `ReplPut` batch.
    ReplAck {
        /// Records applied into (or already present in) the local cache.
        applied: u32,
        /// Records rejected (bad lineage, failed verification, unrepairable).
        rejected: u32,
    },
    /// Per-bucket keyspace digests for a `ReplDigest` request.
    ReplDigests(Vec<BucketDigest>),
    /// Records served for a `ReplPull` request (size-capped; a large bucket
    /// converges over successive anti-entropy rounds).
    ReplEntries(Vec<ReplRecord>),
    /// Typed failure.
    Error(ServiceError),
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut &[u8]) -> Option<String> {
    if buf.remaining() < 4 {
        return None;
    }
    let len = buf.get_u32() as usize;
    if buf.remaining() < len {
        return None;
    }
    let (s, rest) = buf.split_at(len);
    let out = std::str::from_utf8(s).ok()?.to_string();
    *buf = rest;
    Some(out)
}

fn put_span(buf: &mut BytesMut, span: Option<Span>) {
    match span {
        Some(s) => {
            buf.put_u8(1);
            buf.put_u32(s.start);
            buf.put_u32(s.end);
        }
        None => buf.put_u8(0),
    }
}

fn get_span(buf: &mut &[u8]) -> Option<Option<Span>> {
    if buf.remaining() < 1 {
        return None;
    }
    match buf.get_u8() {
        0 => Some(None),
        1 => {
            if buf.remaining() < 8 {
                return None;
            }
            let start = buf.get_u32();
            let end = buf.get_u32();
            Some(Some(Span::new(start, end)))
        }
        _ => None,
    }
}

fn put_diag(buf: &mut BytesMut, d: &Diagnostic) {
    buf.put_u8(match d.severity {
        Severity::Error => 0,
        Severity::Warning => 1,
        Severity::Note => 2,
    });
    put_str(buf, &d.code);
    put_str(buf, &d.message);
    put_span(buf, d.primary);
    buf.put_u32(d.labels.len() as u32);
    for l in &d.labels {
        buf.put_u32(l.span.start);
        buf.put_u32(l.span.end);
        put_str(buf, &l.message);
    }
    match &d.help {
        Some(h) => {
            buf.put_u8(1);
            put_str(buf, h);
        }
        None => buf.put_u8(0),
    }
}

fn get_diag(buf: &mut &[u8]) -> Option<Diagnostic> {
    if buf.remaining() < 1 {
        return None;
    }
    let severity = match buf.get_u8() {
        0 => Severity::Error,
        1 => Severity::Warning,
        2 => Severity::Note,
        _ => return None,
    };
    let code = get_str(buf)?;
    let message = get_str(buf)?;
    let primary = get_span(buf)?;
    if buf.remaining() < 4 {
        return None;
    }
    let n = buf.get_u32() as usize;
    let mut labels = Vec::with_capacity(n.min(16));
    for _ in 0..n {
        if buf.remaining() < 8 {
            return None;
        }
        let start = buf.get_u32();
        let end = buf.get_u32();
        let message = get_str(buf)?;
        labels.push(Label {
            span: Span::new(start, end),
            message,
        });
    }
    if buf.remaining() < 1 {
        return None;
    }
    let help = match buf.get_u8() {
        0 => None,
        1 => Some(get_str(buf)?),
        _ => return None,
    };
    Some(Diagnostic {
        severity,
        code,
        message,
        primary,
        labels,
        help,
    })
}

/// Appends a value in the wire encoding. Lists are not wire-transportable;
/// they encode as tag 2 (absent) so a response can still mention them.
fn put_value(buf: &mut BytesMut, value: &Value) {
    match value {
        Value::Matrix(m) => {
            buf.put_u8(0);
            buf.put_u64(m.rows() as u64);
            buf.put_u64(m.cols() as u64);
            for &v in m.data() {
                buf.put_f64(v);
            }
        }
        Value::Scalar(s) => {
            buf.put_u8(1);
            put_str(buf, &s.lineage_literal());
        }
        Value::List(_) => buf.put_u8(2),
    }
}

fn get_value(buf: &mut &[u8]) -> Option<Option<Value>> {
    if buf.remaining() < 1 {
        return None;
    }
    match buf.get_u8() {
        0 => {
            if buf.remaining() < 16 {
                return None;
            }
            let rows = buf.get_u64() as usize;
            let cols = buf.get_u64() as usize;
            let n = rows.checked_mul(cols)?;
            if buf.remaining() < n.checked_mul(8)? {
                return None;
            }
            let mut data = Vec::with_capacity(n);
            for _ in 0..n {
                data.push(buf.get_f64());
            }
            DenseMatrix::new(rows, cols, data)
                .ok()
                .map(|m| Some(Value::matrix(m)))
        }
        1 => {
            let lit = get_str(buf)?;
            ScalarValue::from_lineage_literal(&lit).map(|s| Some(Value::Scalar(s)))
        }
        2 => Some(None),
        _ => None,
    }
}

fn put_record(buf: &mut BytesMut, r: &ReplRecord) {
    put_str(buf, &r.lineage);
    put_value(buf, &r.value);
    buf.put_u64(r.compute_ns);
    buf.put_u64(r.check);
}

fn get_record(buf: &mut &[u8]) -> Option<ReplRecord> {
    let lineage = get_str(buf)?;
    // Tag-2 (list/absent) values never replicate: structural violation here.
    let value = get_value(buf)??;
    if buf.remaining() < 16 {
        return None;
    }
    let compute_ns = buf.get_u64();
    let check = buf.get_u64();
    Some(ReplRecord {
        lineage,
        value,
        compute_ns,
        check,
    })
}

fn get_bucket_count(buf: &mut &[u8]) -> Option<u32> {
    if buf.remaining() < 4 {
        return None;
    }
    let n = buf.get_u32();
    (1..=MAX_REPL_BUCKETS).contains(&n).then_some(n)
}

impl Request {
    /// Frame kind byte plus encoded payload.
    pub fn encode(&self) -> (u8, Vec<u8>) {
        let mut buf = BytesMut::new();
        let kind = match self {
            Request::Submit {
                tenant,
                script,
                seed,
                outputs,
                deadline_ms,
            } => {
                put_str(&mut buf, tenant);
                buf.put_u64(*deadline_ms);
                match seed {
                    Some(s) => {
                        buf.put_u8(1);
                        buf.put_u64(*s);
                    }
                    None => buf.put_u8(0),
                }
                put_str(&mut buf, script);
                buf.put_u32(outputs.len() as u32);
                for o in outputs {
                    put_str(&mut buf, o);
                }
                K_SUBMIT
            }
            Request::Probe {
                tenant,
                lineage,
                deadline_ms,
            } => {
                put_str(&mut buf, tenant);
                buf.put_u64(*deadline_ms);
                put_str(&mut buf, lineage);
                K_PROBE
            }
            Request::Fetch {
                tenant,
                lineage,
                deadline_ms,
            } => {
                put_str(&mut buf, tenant);
                buf.put_u64(*deadline_ms);
                put_str(&mut buf, lineage);
                K_FETCH
            }
            Request::Cancel { session } => {
                buf.put_u64(*session);
                K_CANCEL
            }
            Request::Metrics => K_METRICS,
            Request::Ping => K_PING,
            Request::Scrub => K_SCRUB,
            Request::ReplPut { records } => {
                buf.put_u32(records.len() as u32);
                for r in records {
                    put_record(&mut buf, r);
                }
                K_REPL_PUT
            }
            Request::ReplDigest { buckets } => {
                buf.put_u32(*buckets);
                K_REPL_DIGEST
            }
            Request::ReplPull { bucket, buckets } => {
                buf.put_u32(*bucket);
                buf.put_u32(*buckets);
                K_REPL_PULL
            }
        };
        (kind, buf.to_vec())
    }

    /// Decodes a request payload; `None` on any structural violation (the
    /// server answers `BadRequest` and keeps only that connection affected).
    pub fn decode(kind: u8, payload: &[u8]) -> Option<Request> {
        let mut p = payload;
        let req = match kind {
            K_SUBMIT => {
                let tenant = get_str(&mut p)?;
                if p.remaining() < 9 {
                    return None;
                }
                let deadline_ms = p.get_u64();
                let seed = match p.get_u8() {
                    0 => None,
                    1 => {
                        if p.remaining() < 8 {
                            return None;
                        }
                        Some(p.get_u64())
                    }
                    _ => return None,
                };
                let script = get_str(&mut p)?;
                if p.remaining() < 4 {
                    return None;
                }
                let n = p.get_u32() as usize;
                let mut outputs = Vec::with_capacity(n.min(64));
                for _ in 0..n {
                    outputs.push(get_str(&mut p)?);
                }
                Request::Submit {
                    tenant,
                    script,
                    seed,
                    outputs,
                    deadline_ms,
                }
            }
            K_PROBE | K_FETCH => {
                let tenant = get_str(&mut p)?;
                if p.remaining() < 8 {
                    return None;
                }
                let deadline_ms = p.get_u64();
                let lineage = get_str(&mut p)?;
                if kind == K_PROBE {
                    Request::Probe {
                        tenant,
                        lineage,
                        deadline_ms,
                    }
                } else {
                    Request::Fetch {
                        tenant,
                        lineage,
                        deadline_ms,
                    }
                }
            }
            K_CANCEL => {
                if p.remaining() < 8 {
                    return None;
                }
                Request::Cancel {
                    session: p.get_u64(),
                }
            }
            K_METRICS => Request::Metrics,
            K_PING => Request::Ping,
            K_SCRUB => Request::Scrub,
            K_REPL_PUT => {
                if p.remaining() < 4 {
                    return None;
                }
                let n = p.get_u32() as usize;
                let mut records = Vec::with_capacity(n.min(256));
                for _ in 0..n {
                    records.push(get_record(&mut p)?);
                }
                Request::ReplPut { records }
            }
            K_REPL_DIGEST => Request::ReplDigest {
                buckets: get_bucket_count(&mut p)?,
            },
            K_REPL_PULL => {
                if p.remaining() < 8 {
                    return None;
                }
                let bucket = p.get_u32();
                let buckets = get_bucket_count(&mut p)?;
                if bucket >= buckets {
                    return None;
                }
                Request::ReplPull { bucket, buckets }
            }
            _ => return None,
        };
        (p.remaining() == 0).then_some(req)
    }
}

impl Response {
    /// Frame kind byte plus encoded payload.
    pub fn encode(&self) -> (u8, Vec<u8>) {
        let mut buf = BytesMut::new();
        let kind = match self {
            Response::Submitted {
                session,
                values,
                stdout,
            } => {
                buf.put_u64(*session);
                buf.put_u32(values.len() as u32);
                for (name, value) in values {
                    put_str(&mut buf, name);
                    put_value(&mut buf, value);
                }
                buf.put_u32(stdout.len() as u32);
                for line in stdout {
                    put_str(&mut buf, line);
                }
                K_RESP | K_SUBMIT
            }
            Response::Probed { hit } => {
                buf.put_u8(u8::from(*hit));
                K_RESP | K_PROBE
            }
            Response::Fetched(value) => {
                match value {
                    Some(v) => {
                        buf.put_u8(1);
                        put_value(&mut buf, v);
                    }
                    None => buf.put_u8(0),
                }
                K_RESP | K_FETCH
            }
            Response::Cancelled { found } => {
                buf.put_u8(u8::from(*found));
                K_RESP | K_CANCEL
            }
            Response::MetricsText(text) => {
                put_str(&mut buf, text);
                K_RESP | K_METRICS
            }
            Response::Pong => K_RESP | K_PING,
            Response::Scrubbed(reports) => {
                buf.put_u32(reports.len() as u32);
                for r in reports {
                    buf.put_u32(r.shard);
                    buf.put_u64(r.bytes);
                    buf.put_u64(r.entries);
                    buf.put_u64(r.corrupt);
                    buf.put_u64(r.repaired);
                    buf.put_u64(r.repair_failures);
                    buf.put_u64(r.quarantined);
                    buf.put_u8(u8::from(r.completed));
                }
                K_RESP | K_SCRUB
            }
            Response::ReplAck { applied, rejected } => {
                buf.put_u32(*applied);
                buf.put_u32(*rejected);
                K_RESP | K_REPL_PUT
            }
            Response::ReplDigests(digests) => {
                buf.put_u32(digests.len() as u32);
                for d in digests {
                    buf.put_u64(d.count);
                    buf.put_u64(d.xor);
                }
                K_RESP | K_REPL_DIGEST
            }
            Response::ReplEntries(records) => {
                buf.put_u32(records.len() as u32);
                for r in records {
                    put_record(&mut buf, r);
                }
                K_RESP | K_REPL_PULL
            }
            Response::Error(e) => {
                buf.put_u8(e.code.as_u8());
                buf.put_u64(e.retry_after_ms);
                put_str(&mut buf, &e.msg);
                buf.put_u32(e.diagnostics.len() as u32);
                for d in &e.diagnostics {
                    put_diag(&mut buf, d);
                }
                K_ERROR
            }
        };
        (kind, buf.to_vec())
    }

    /// Decodes a response payload; `None` on any structural violation.
    pub fn decode(kind: u8, payload: &[u8]) -> Option<Response> {
        let mut p = payload;
        let resp = match kind {
            k if k == K_RESP | K_SUBMIT => {
                if p.remaining() < 12 {
                    return None;
                }
                let session = p.get_u64();
                let n = p.get_u32() as usize;
                let mut values = Vec::with_capacity(n.min(64));
                for _ in 0..n {
                    let name = get_str(&mut p)?;
                    // Tag-2 (non-transportable) outputs decode as absent and
                    // are skipped rather than failing the whole response.
                    if let Some(v) = get_value(&mut p)? {
                        values.push((name, v));
                    }
                }
                if p.remaining() < 4 {
                    return None;
                }
                let n = p.get_u32() as usize;
                let mut stdout = Vec::with_capacity(n.min(64));
                for _ in 0..n {
                    stdout.push(get_str(&mut p)?);
                }
                Response::Submitted {
                    session,
                    values,
                    stdout,
                }
            }
            k if k == K_RESP | K_PROBE => {
                if p.remaining() < 1 {
                    return None;
                }
                Response::Probed {
                    hit: p.get_u8() != 0,
                }
            }
            k if k == K_RESP | K_FETCH => {
                if p.remaining() < 1 {
                    return None;
                }
                match p.get_u8() {
                    0 => Response::Fetched(None),
                    1 => Response::Fetched(get_value(&mut p)?),
                    _ => return None,
                }
            }
            k if k == K_RESP | K_CANCEL => {
                if p.remaining() < 1 {
                    return None;
                }
                Response::Cancelled {
                    found: p.get_u8() != 0,
                }
            }
            k if k == K_RESP | K_METRICS => Response::MetricsText(get_str(&mut p)?),
            k if k == K_RESP | K_PING => Response::Pong,
            k if k == K_RESP | K_SCRUB => {
                if p.remaining() < 4 {
                    return None;
                }
                let n = p.get_u32() as usize;
                let mut reports = Vec::with_capacity(n.min(64));
                for _ in 0..n {
                    if p.remaining() < 4 + 6 * 8 + 1 {
                        return None;
                    }
                    reports.push(ShardScrub {
                        shard: p.get_u32(),
                        bytes: p.get_u64(),
                        entries: p.get_u64(),
                        corrupt: p.get_u64(),
                        repaired: p.get_u64(),
                        repair_failures: p.get_u64(),
                        quarantined: p.get_u64(),
                        completed: p.get_u8() != 0,
                    });
                }
                Response::Scrubbed(reports)
            }
            k if k == K_RESP | K_REPL_PUT => {
                if p.remaining() < 8 {
                    return None;
                }
                Response::ReplAck {
                    applied: p.get_u32(),
                    rejected: p.get_u32(),
                }
            }
            k if k == K_RESP | K_REPL_DIGEST => {
                if p.remaining() < 4 {
                    return None;
                }
                let n = p.get_u32() as usize;
                if n > MAX_REPL_BUCKETS as usize {
                    return None;
                }
                let mut digests = Vec::with_capacity(n.min(256));
                for _ in 0..n {
                    if p.remaining() < 16 {
                        return None;
                    }
                    digests.push(BucketDigest {
                        count: p.get_u64(),
                        xor: p.get_u64(),
                    });
                }
                Response::ReplDigests(digests)
            }
            k if k == K_RESP | K_REPL_PULL => {
                if p.remaining() < 4 {
                    return None;
                }
                let n = p.get_u32() as usize;
                let mut records = Vec::with_capacity(n.min(256));
                for _ in 0..n {
                    records.push(get_record(&mut p)?);
                }
                Response::ReplEntries(records)
            }
            K_ERROR => {
                if p.remaining() < 9 {
                    return None;
                }
                let code = ErrorCode::from_u8(p.get_u8())?;
                let retry_after_ms = p.get_u64();
                let msg = get_str(&mut p)?;
                if p.remaining() < 4 {
                    return None;
                }
                let n = p.get_u32() as usize;
                let mut diagnostics = Vec::with_capacity(n.min(16));
                for _ in 0..n {
                    diagnostics.push(get_diag(&mut p)?);
                }
                Response::Error(ServiceError {
                    code,
                    retry_after_ms,
                    msg,
                    diagnostics,
                })
            }
            _ => return None,
        };
        (p.remaining() == 0).then_some(resp)
    }
}

/// Writes one frame. The caller is responsible for socket timeouts.
pub fn write_frame(
    w: &mut impl Write,
    kind: u8,
    req_id: u64,
    payload: &[u8],
) -> std::io::Result<()> {
    let mut buf = BytesMut::with_capacity(HEADER_BYTES + payload.len() + TRAILER_BYTES);
    buf.put_u32(MAGIC);
    buf.put_u8(kind);
    buf.put_u64(req_id);
    buf.put_u32(payload.len() as u32);
    buf.put_slice(payload);
    let checksum = fnv1a(&buf);
    buf.put_u64(checksum);
    w.write_all(&buf)?;
    w.flush()
}

/// Reads one frame, enforcing `max_payload` *before* allocating the body.
/// Malformed frames (bad magic, oversized, checksum mismatch) return
/// `InvalidData`; a cleanly closed peer returns `UnexpectedEof`.
pub fn read_frame(r: &mut impl Read, max_payload: usize) -> std::io::Result<(u8, u64, Vec<u8>)> {
    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
    let mut header = [0u8; HEADER_BYTES];
    r.read_exact(&mut header)?;
    let mut h = &header[..];
    if h.get_u32() != MAGIC {
        return Err(bad("bad frame magic"));
    }
    let kind = h.get_u8();
    let req_id = h.get_u64();
    let len = h.get_u32() as usize;
    if len > max_payload {
        return Err(bad(&format!(
            "frame payload {len} exceeds cap {max_payload}"
        )));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    let mut trailer = [0u8; TRAILER_BYTES];
    r.read_exact(&mut trailer)?;
    let mut whole = Vec::with_capacity(HEADER_BYTES + len);
    whole.extend_from_slice(&header);
    whole.extend_from_slice(&payload);
    if fnv1a(&whole) != (&trailer[..]).get_u64() {
        return Err(bad("frame checksum mismatch"));
    }
    Ok((kind, req_id, payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_req(req: Request) {
        let (kind, payload) = req.encode();
        assert_eq!(Request::decode(kind, &payload), Some(req));
    }

    fn round_trip_resp(resp: Response) {
        let (kind, payload) = resp.encode();
        assert_eq!(Response::decode(kind, &payload), Some(resp));
    }

    #[test]
    fn requests_round_trip() {
        round_trip_req(Request::Submit {
            tenant: "t0".into(),
            script: "s = sum(X);".into(),
            seed: Some(7),
            outputs: vec!["s".into(), "X".into()],
            deadline_ms: 1500,
        });
        round_trip_req(Request::Submit {
            tenant: String::new(),
            script: String::new(),
            seed: None,
            outputs: vec![],
            deadline_ms: 0,
        });
        round_trip_req(Request::Probe {
            tenant: "a".into(),
            lineage: "(1) L f:2".into(),
            deadline_ms: 9,
        });
        round_trip_req(Request::Fetch {
            tenant: "a".into(),
            lineage: "(1) L f:2".into(),
            deadline_ms: 9,
        });
        round_trip_req(Request::Cancel { session: 42 });
        round_trip_req(Request::Metrics);
        round_trip_req(Request::Ping);
        round_trip_req(Request::Scrub);
        round_trip_req(Request::ReplPut {
            records: vec![
                ReplRecord::new("(1) L f:1".into(), Value::f64(2.5), 1234),
                ReplRecord::new(
                    "(2) L f:2".into(),
                    Value::matrix(DenseMatrix::from_fn(3, 2, |i, j| (i + j) as f64)),
                    0,
                ),
            ],
        });
        round_trip_req(Request::ReplPut { records: vec![] });
        round_trip_req(Request::ReplDigest { buckets: 64 });
        round_trip_req(Request::ReplDigest { buckets: 1 });
        round_trip_req(Request::ReplPull {
            bucket: 63,
            buckets: 64,
        });
    }

    #[test]
    fn responses_round_trip() {
        round_trip_resp(Response::Submitted {
            session: 3,
            values: vec![
                ("s".into(), Value::f64(4.25)),
                (
                    "M".into(),
                    Value::matrix(DenseMatrix::from_fn(2, 3, |i, j| (i * 3 + j) as f64)),
                ),
            ],
            stdout: vec!["hello".into()],
        });
        round_trip_resp(Response::Probed { hit: true });
        round_trip_resp(Response::Fetched(Some(Value::f64(1.5))));
        round_trip_resp(Response::Fetched(None));
        round_trip_resp(Response::Cancelled { found: false });
        round_trip_resp(Response::MetricsText("lima_probes 0\n".into()));
        round_trip_resp(Response::Pong);
        round_trip_resp(Response::Scrubbed(vec![]));
        round_trip_resp(Response::Scrubbed(vec![
            ShardScrub {
                shard: 0,
                bytes: 4096,
                entries: 12,
                corrupt: 1,
                repaired: 1,
                repair_failures: 0,
                quarantined: 0,
                completed: true,
            },
            ShardScrub {
                shard: 3,
                bytes: 0,
                entries: 0,
                corrupt: 0,
                repaired: 0,
                repair_failures: 0,
                quarantined: 0,
                completed: false,
            },
        ]));
        round_trip_resp(Response::ReplAck {
            applied: 7,
            rejected: 1,
        });
        round_trip_resp(Response::ReplDigests(vec![
            BucketDigest { count: 0, xor: 0 },
            BucketDigest {
                count: 3,
                xor: 0xDEAD_BEEF,
            },
        ]));
        round_trip_resp(Response::ReplEntries(vec![ReplRecord::new(
            "(9) L f:9".into(),
            Value::f64(-1.25),
            55,
        )]));
        round_trip_resp(Response::ReplEntries(vec![]));
        round_trip_resp(Response::Error(ServiceError::new(
            ErrorCode::Overloaded,
            250,
            "shard 2 at L4",
        )));
        // Compile errors carry full source-anchored diagnostics.
        round_trip_resp(Response::Error(ServiceError {
            code: ErrorCode::Compile,
            retry_after_ms: 0,
            msg: "compile failed".into(),
            diagnostics: vec![
                Diagnostic::error("L0100", "parfor cannot run in parallel")
                    .with_span(Span::of(10, 32))
                    .with_label(Span::of(10, 16), "written here")
                    .with_help("use a plain `for` loop"),
                Diagnostic::warning("L0203", "dead store"),
            ],
        }));
    }

    #[test]
    fn frames_round_trip_and_detect_corruption() {
        let (kind, payload) = Request::Probe {
            tenant: "t".into(),
            lineage: "(1) L f:1".into(),
            deadline_ms: 100,
        }
        .encode();
        let mut wire = Vec::new();
        write_frame(&mut wire, kind, 77, &payload).unwrap();
        let (k, id, p) = read_frame(&mut &wire[..], MAX_FRAME_BYTES).unwrap();
        assert_eq!((k, id), (kind, 77));
        assert_eq!(p, payload);

        // Any single-byte flip is caught by the checksum (or the magic).
        for i in 0..wire.len() {
            let mut bent = wire.clone();
            bent[i] ^= 0x40;
            let r = read_frame(&mut &bent[..], MAX_FRAME_BYTES);
            assert!(r.is_err(), "flip at byte {i} went undetected");
        }
    }

    #[test]
    fn oversized_frames_rejected_before_allocation() {
        let mut wire = Vec::new();
        write_frame(&mut wire, K_PING, 1, &vec![0u8; 256]).unwrap();
        let err = read_frame(&mut &wire[..], 64).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("exceeds cap"));
    }

    #[test]
    fn truncated_frames_are_eof() {
        let mut wire = Vec::new();
        write_frame(&mut wire, K_PING, 1, b"abc").unwrap();
        wire.truncate(wire.len() - 3);
        let err = read_frame(&mut &wire[..], MAX_FRAME_BYTES).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn garbage_decodes_to_none_not_panic() {
        for kind in 0u8..=255 {
            let _ = Request::decode(kind, b"\x01\x02\x03");
            let _ = Response::decode(kind, b"\xFF\xFE");
        }
        assert_eq!(Request::decode(K_SUBMIT, b""), None);
        assert_eq!(
            Response::decode(K_ERROR, b"\x63\0\0\0\0\0\0\0\0\0\0\0\0"),
            None
        );
    }

    #[test]
    fn repl_payload_structural_violations_decode_to_none() {
        // Out-of-range bucket counts are rejected outright.
        assert_eq!(Request::decode(K_REPL_DIGEST, &0u32.to_be_bytes()), None);
        assert_eq!(
            Request::decode(K_REPL_DIGEST, &(MAX_REPL_BUCKETS + 1).to_be_bytes()),
            None
        );
        // A pull whose bucket index is outside the bucket count is malformed.
        let mut bad = Vec::new();
        bad.extend_from_slice(&64u32.to_be_bytes());
        bad.extend_from_slice(&64u32.to_be_bytes());
        assert_eq!(Request::decode(K_REPL_PULL, &bad), None);
        // Truncated and trailing-garbage records fail the whole frame.
        let (kind, good) = Request::ReplPut {
            records: vec![ReplRecord::new("(1) L f:1".into(), Value::f64(3.0), 9)],
        }
        .encode();
        assert_eq!(Request::decode(kind, &good[..good.len() - 1]), None);
        let mut padded = good.clone();
        padded.push(0);
        assert_eq!(Request::decode(kind, &padded), None);
        // A record carrying a non-transportable (tag-2) value is malformed.
        let mut listy = BytesMut::new();
        listy.put_u32(1);
        put_str(&mut listy, "(1) L f:1");
        listy.put_u8(2); // list tag
        listy.put_u64(0);
        listy.put_u64(0);
        assert_eq!(Request::decode(K_REPL_PUT, &listy), None);
    }

    #[test]
    fn repl_record_checksum_detects_payload_corruption() {
        let rec = ReplRecord::new("(4) L f:4".into(), Value::f64(8.5), 77);
        assert!(rec.verify_bytes());
        let mut bent = rec.clone();
        bent.value = Value::f64(8.5000001);
        assert!(!bent.verify_bytes());
        let mut bent = rec.clone();
        bent.lineage.push('x');
        assert!(!bent.verify_bytes());
        // compute_ns is metadata, not covered content.
        let mut meta = rec.clone();
        meta.compute_ns = 1;
        assert!(meta.verify_bytes());
    }

    #[test]
    fn error_codes_map_to_distinct_exit_codes() {
        assert_eq!(ErrorCode::DeadlineExceeded.exit_code(), 4);
        assert_eq!(ErrorCode::Cancelled.exit_code(), 5);
        assert_eq!(ErrorCode::ResourceExhausted.exit_code(), 6);
        assert_eq!(ErrorCode::Overloaded.exit_code(), 7);
        assert_eq!(ErrorCode::Runtime.exit_code(), 1);
        // Round-trip every code through the wire byte.
        for code in [
            ErrorCode::BadRequest,
            ErrorCode::Compile,
            ErrorCode::Runtime,
            ErrorCode::DeadlineExceeded,
            ErrorCode::Cancelled,
            ErrorCode::ResourceExhausted,
            ErrorCode::Overloaded,
            ErrorCode::NotFound,
            ErrorCode::Internal,
        ] {
            assert_eq!(ErrorCode::from_u8(code.as_u8()), Some(code));
            assert!(!code.as_str().is_empty());
        }
    }
}
