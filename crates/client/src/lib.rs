//! `lima-client`: the `limad` wire protocol plus a retrying, deadline-aware
//! client.
//!
//! The crate has two layers:
//!
//! * [`proto`] — the framed, checksummed wire protocol shared by client and
//!   server, including the [`proto::ErrorCode`] taxonomy that drives both
//!   server error responses and CLI process exit codes.
//! * [`client`] — [`client::LimadClient`], which layers jittered-backoff
//!   retries (via [`lima_core::resilience`]), a client-wide retry budget,
//!   and end-to-end deadline propagation over one reconnecting TCP
//!   connection.
//!
//! Deliberately excluded: any dependency on the runtime. The client only
//! needs matrix values and the resilience primitives, so embedding it in
//! thin tools stays cheap.

pub mod client;
pub mod proto;

pub use client::{
    ClientError, ClientOptions, ClientStats, LimadClient, MemberStats, SubmitOptions, Submitted,
};
pub use proto::{BucketDigest, ErrorCode, ReplRecord, Request, Response, ServiceError, ShardScrub};
