//! Retrying, deadline-aware client for `limad`.
//!
//! The client owns one lazily-(re)connected TCP connection. Idempotent
//! requests (probe, fetch, cancel, metrics, ping) are retried through the
//! shared [`RetryPolicy`] with jittered exponential backoff; each retry
//! spends a token from a client-wide [`RetryBudget`] so a flapping server
//! cannot trigger an unbounded retry storm. Submits are *not* retried on
//! transport failure by default (the script may have executed), but
//! `Overloaded` responses are always safely retryable because the server
//! sheds before executing anything.
//!
//! Deadlines propagate end to end: each call computes its absolute deadline
//! once, every (re)encoded request carries the *remaining* milliseconds, and
//! socket read/write timeouts are clamped to that remainder plus a small
//! grace so the server's own typed `DeadlineExceeded` wins over a raw socket
//! timeout whenever it can.

use crate::proto::{
    read_frame, write_frame, ErrorCode, Request, Response, ServiceError, MAX_FRAME_BYTES,
};
use lima_core::resilience::{RetryBudget, RetryPolicy};
use lima_matrix::Value;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Extra socket-timeout slack beyond the request deadline, giving the server
/// room to deliver its typed `DeadlineExceeded` response.
const SOCKET_GRACE: Duration = Duration::from_millis(250);

/// Floor for socket timeouts (`set_read_timeout(Some(ZERO))` is an error).
const MIN_SOCKET_TIMEOUT: Duration = Duration::from_millis(10);

/// Client-side failure taxonomy.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write) after any retries.
    Io(std::io::Error),
    /// The peer spoke, but not the protocol (bad frame, wrong request id).
    Protocol(String),
    /// A typed error from the service — including client-side deadline
    /// expiry, which is reported as [`ErrorCode::DeadlineExceeded`] so both
    /// ends share one exit-code mapping.
    Service(ServiceError),
}

impl ClientError {
    /// The machine-readable error code, when one exists.
    pub fn code(&self) -> Option<ErrorCode> {
        match self {
            ClientError::Service(e) => Some(e.code),
            _ => None,
        }
    }

    /// Process exit code: the service code's mapping, or 1 for transport
    /// and protocol failures.
    pub fn exit_code(&self) -> u8 {
        self.code().map_or(1, ErrorCode::exit_code)
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol: {msg}"),
            ClientError::Service(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ClientError {}

fn deadline_error(msg: &str) -> ClientError {
    ClientError::Service(ServiceError::new(ErrorCode::DeadlineExceeded, 0, msg))
}

/// Tunables for a [`LimadClient`].
#[derive(Debug, Clone)]
pub struct ClientOptions {
    /// TCP connect timeout.
    pub connect_timeout: Duration,
    /// Deadline applied when a call does not specify one.
    pub default_deadline: Duration,
    /// Backoff schedule shared by transport retries and overload retries.
    pub retry: RetryPolicy,
    /// Cap of the client-wide retry token bucket.
    pub retry_budget_cap: u64,
    /// Retry submits on transport failure. Off by default: a torn connection
    /// after the request was written may mean the script already ran.
    pub retry_submits: bool,
    /// Largest response frame this client will accept.
    pub max_frame_bytes: usize,
}

impl Default for ClientOptions {
    fn default() -> Self {
        ClientOptions {
            connect_timeout: Duration::from_secs(2),
            default_deadline: Duration::from_secs(30),
            retry: RetryPolicy::new(4, 10, 0x11AD),
            retry_budget_cap: 64,
            retry_submits: false,
            max_frame_bytes: MAX_FRAME_BYTES,
        }
    }
}

/// Per-submit knobs.
#[derive(Debug, Clone, Default)]
pub struct SubmitOptions {
    /// System-seed base for reproducible `rand`/`sample` in the script.
    pub seed: Option<u64>,
    /// Output variables to return.
    pub outputs: Vec<String>,
    /// Overrides the client's default deadline for this call.
    pub deadline: Option<Duration>,
}

/// A completed submit.
#[derive(Debug, Clone, PartialEq)]
pub struct Submitted {
    /// Server-assigned session id (target for [`LimadClient::cancel`]).
    pub session: u64,
    /// Requested output variables and their values.
    pub values: Vec<(String, Value)>,
    /// Collected `print` output.
    pub stdout: Vec<String>,
}

impl Submitted {
    /// The value of a named output, if returned.
    pub fn value(&self, name: &str) -> Option<&Value> {
        self.values
            .iter()
            .find_map(|(n, v)| (n == name).then_some(v))
    }
}

/// A connection to one `limad` server on behalf of one tenant.
#[derive(Debug)]
pub struct LimadClient {
    addr: String,
    tenant: String,
    opts: ClientOptions,
    budget: RetryBudget,
    conn: Option<TcpStream>,
    next_id: u64,
}

impl LimadClient {
    /// A client for `addr` (e.g. `"127.0.0.1:7461"`) identifying as
    /// `tenant`. Connects lazily on the first call.
    pub fn new(addr: &str, tenant: &str, opts: ClientOptions) -> Self {
        let budget = RetryBudget::new(opts.retry_budget_cap);
        LimadClient {
            addr: addr.to_string(),
            tenant: tenant.to_string(),
            opts,
            budget,
            conn: None,
            next_id: 0,
        }
    }

    /// Retry tokens left in the client-wide budget (observability hook).
    pub fn retry_tokens(&self) -> u64 {
        self.budget.remaining()
    }

    /// Runs a script and returns the requested outputs.
    pub fn submit(&mut self, script: &str, sub: &SubmitOptions) -> Result<Submitted, ClientError> {
        let deadline = self.deadline(sub.deadline);
        let tenant = self.tenant.clone();
        let script = script.to_string();
        let seed = sub.seed;
        let outputs = sub.outputs.clone();
        let resp = self.call(self.opts.retry_submits, deadline, move |deadline_ms| {
            Request::Submit {
                tenant: tenant.clone(),
                script: script.clone(),
                seed,
                outputs: outputs.clone(),
                deadline_ms,
            }
        })?;
        match resp {
            Response::Submitted {
                session,
                values,
                stdout,
            } => Ok(Submitted {
                session,
                values,
                stdout,
            }),
            other => Err(unexpected(&other)),
        }
    }

    /// Does the routed shard hold a cached value for this serialized lineage?
    pub fn probe(&mut self, lineage: &str) -> Result<bool, ClientError> {
        let deadline = self.deadline(None);
        let tenant = self.tenant.clone();
        let lineage = lineage.to_string();
        let resp = self.call(true, deadline, move |deadline_ms| Request::Probe {
            tenant: tenant.clone(),
            lineage: lineage.clone(),
            deadline_ms,
        })?;
        match resp {
            Response::Probed { hit } => Ok(hit),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches the cached value for this serialized lineage, if any.
    pub fn fetch(&mut self, lineage: &str) -> Result<Option<Value>, ClientError> {
        let deadline = self.deadline(None);
        let tenant = self.tenant.clone();
        let lineage = lineage.to_string();
        let resp = self.call(true, deadline, move |deadline_ms| Request::Fetch {
            tenant: tenant.clone(),
            lineage: lineage.clone(),
            deadline_ms,
        })?;
        match resp {
            Response::Fetched(v) => Ok(v),
            other => Err(unexpected(&other)),
        }
    }

    /// Cancels a running session; `Ok(false)` means it was not found (it may
    /// have already finished).
    pub fn cancel(&mut self, session: u64) -> Result<bool, ClientError> {
        let deadline = self.deadline(None);
        let resp = self.call(true, deadline, move |_| Request::Cancel { session })?;
        match resp {
            Response::Cancelled { found } => Ok(found),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches the aggregated Prometheus metrics text over the wire protocol
    /// (the server also exposes the same text as HTTP `GET /metrics`).
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        let deadline = self.deadline(None);
        let resp = self.call(true, deadline, |_| Request::Metrics)?;
        match resp {
            Response::MetricsText(text) => Ok(text),
            other => Err(unexpected(&other)),
        }
    }

    /// Admin: runs one full integrity-scrub pass over every shard's
    /// persistent store, returning per-shard findings. Idempotent — a scrub
    /// repairs or quarantines, never invents state — so it retries like the
    /// other read-side calls.
    pub fn scrub(&mut self) -> Result<Vec<crate::proto::ShardScrub>, ClientError> {
        let deadline = self.deadline(None);
        let resp = self.call(true, deadline, |_| Request::Scrub)?;
        match resp {
            Response::Scrubbed(reports) => Ok(reports),
            other => Err(unexpected(&other)),
        }
    }

    /// Liveness check.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        let deadline = self.deadline(None);
        let resp = self.call(true, deadline, |_| Request::Ping)?;
        match resp {
            Response::Pong => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    fn deadline(&self, per_call: Option<Duration>) -> Instant {
        Instant::now() + per_call.unwrap_or(self.opts.default_deadline)
    }

    /// The retry loop: re-encodes the request each attempt with the shrunken
    /// remaining deadline, reconnects after transport failures, and honors
    /// server `retry_after_ms` hints for overload responses.
    fn call(
        &mut self,
        idempotent: bool,
        deadline: Instant,
        make: impl Fn(u64) -> Request,
    ) -> Result<Response, ClientError> {
        let mut retries = 0u32;
        let max_retries = self.opts.retry.attempts;
        loop {
            let now = Instant::now();
            if now >= deadline {
                return Err(deadline_error(
                    "deadline elapsed before the request was sent",
                ));
            }
            let remaining = deadline - now;
            let req = make((remaining.as_millis() as u64).max(1));
            match self.attempt(&req, remaining) {
                Ok(Response::Error(e)) if e.code.retryable() => {
                    if !(retries < max_retries && self.budget.try_spend()) {
                        return Err(ClientError::Service(e));
                    }
                    let delay = self
                        .opts
                        .retry
                        .delay(retries)
                        .max(Duration::from_millis(e.retry_after_ms));
                    retries += 1;
                    if Instant::now() + delay >= deadline {
                        return Err(ClientError::Service(e));
                    }
                    std::thread::sleep(delay);
                }
                Ok(Response::Error(e)) => return Err(ClientError::Service(e)),
                Ok(resp) => {
                    self.budget.record_success();
                    return Ok(resp);
                }
                Err(err) => {
                    // The connection is suspect after any failure; rebuild it
                    // on the next attempt.
                    self.conn = None;
                    let transient = matches!(&err, ClientError::Io(_));
                    if !(transient
                        && idempotent
                        && retries < max_retries
                        && self.budget.try_spend())
                    {
                        return Err(err);
                    }
                    let delay = self.opts.retry.delay(retries);
                    retries += 1;
                    if Instant::now() + delay >= deadline {
                        return Err(err);
                    }
                    std::thread::sleep(delay);
                }
            }
        }
    }

    /// One wire round-trip within `remaining` time.
    fn attempt(&mut self, req: &Request, remaining: Duration) -> Result<Response, ClientError> {
        let timeout = (remaining + SOCKET_GRACE).max(MIN_SOCKET_TIMEOUT);
        if self.conn.is_none() {
            let addr = self
                .addr
                .to_socket_addrs()
                .map_err(ClientError::Io)?
                .next()
                .ok_or_else(|| ClientError::Protocol(format!("unresolvable addr {}", self.addr)))?;
            let stream = TcpStream::connect_timeout(&addr, self.opts.connect_timeout)
                .map_err(ClientError::Io)?;
            stream.set_nodelay(true).map_err(ClientError::Io)?;
            self.conn = Some(stream);
        }
        let stream = self.conn.as_mut().ok_or_else(|| {
            ClientError::Protocol("connection vanished between connect and use".into())
        })?;
        stream
            .set_read_timeout(Some(timeout))
            .and_then(|()| stream.set_write_timeout(Some(timeout)))
            .map_err(ClientError::Io)?;

        self.next_id += 1;
        let id = self.next_id;
        let (kind, payload) = req.encode();
        write_frame(stream, kind, id, &payload).map_err(|e| map_io(e, remaining))?;
        let (rkind, rid, rpayload) =
            read_frame(stream, self.opts.max_frame_bytes).map_err(|e| map_io(e, remaining))?;
        if rid != id {
            return Err(ClientError::Protocol(format!(
                "response id {rid} does not match request id {id}"
            )));
        }
        Response::decode(rkind, &rpayload)
            .ok_or_else(|| ClientError::Protocol(format!("undecodable response kind {rkind:#x}")))
    }
}

/// A socket timeout while the deadline budget is gone is a deadline, not a
/// transport flake — report it with the shared typed code.
fn map_io(e: std::io::Error, remaining: Duration) -> ClientError {
    let timed_out = matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    );
    if timed_out && remaining <= SOCKET_GRACE + MIN_SOCKET_TIMEOUT {
        deadline_error("timed out waiting for the server response")
    } else if timed_out {
        deadline_error("socket timeout at the request deadline")
    } else {
        ClientError::Io(e)
    }
}

fn unexpected(resp: &Response) -> ClientError {
    ClientError::Protocol(format!("unexpected response variant: {resp:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpListener;

    fn options(attempts: u32) -> ClientOptions {
        ClientOptions {
            retry: RetryPolicy::new(attempts, 1, 9),
            default_deadline: Duration::from_secs(5),
            ..ClientOptions::default()
        }
    }

    /// A one-shot server thread that answers `n` connections with the given
    /// behaviour and then exits.
    fn serve(
        listener: TcpListener,
        conns: usize,
        behave: impl Fn(usize, TcpStream) + Send + 'static,
    ) {
        std::thread::spawn(move || {
            for i in 0..conns {
                let Ok((stream, _)) = listener.accept() else {
                    return;
                };
                behave(i, stream);
            }
        });
    }

    fn answer(mut stream: TcpStream, resp: &Response) {
        let (kind, id, _payload) = read_frame(&mut stream, MAX_FRAME_BYTES).unwrap();
        assert!(Request::decode(kind, &_payload).is_some());
        let (rkind, rpayload) = resp.encode();
        write_frame(&mut stream, rkind, id, &rpayload).unwrap();
    }

    #[test]
    fn ping_round_trips() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        serve(listener, 1, |_, stream| answer(stream, &Response::Pong));
        let mut client = LimadClient::new(&addr, "t", options(0));
        client.ping().unwrap();
    }

    #[test]
    fn idempotent_calls_reconnect_after_connection_drop() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        // First connection: read the request, then drop without answering.
        serve(listener, 2, |i, mut stream| {
            if i == 0 {
                let mut buf = [0u8; 64];
                let _ = stream.read(&mut buf);
                drop(stream);
            } else {
                answer(stream, &Response::Probed { hit: true });
            }
        });
        let mut client = LimadClient::new(&addr, "t", options(3));
        assert!(client.probe("(1) L f:1").unwrap());
    }

    #[test]
    fn submits_do_not_retry_transport_failures_by_default() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        serve(listener, 1, |_, mut stream| {
            let mut buf = [0u8; 64];
            let _ = stream.read(&mut buf);
            drop(stream);
        });
        let mut client = LimadClient::new(&addr, "t", options(3));
        let err = client
            .submit("s = 1;", &SubmitOptions::default())
            .unwrap_err();
        assert!(matches!(err, ClientError::Io(_)), "got {err:?}");
    }

    #[test]
    fn overloaded_responses_are_retried_with_hint() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let overloaded = Response::Error(ServiceError::new(ErrorCode::Overloaded, 5, "shedding"));
        serve(listener, 1, move |_, mut stream| {
            // Same connection: shed twice, then accept.
            for round in 0..3 {
                let (kind, id, payload) = read_frame(&mut stream, MAX_FRAME_BYTES).unwrap();
                assert!(Request::decode(kind, &payload).is_some());
                let resp = if round < 2 {
                    overloaded.clone()
                } else {
                    Response::Probed { hit: false }
                };
                let (rkind, rpayload) = resp.encode();
                write_frame(&mut stream, rkind, id, &rpayload).unwrap();
            }
        });
        let mut client = LimadClient::new(&addr, "t", options(3));
        assert!(!client.probe("(1) L f:1").unwrap());
        assert!(client.retry_tokens() < 64, "retries should spend budget");
    }

    #[test]
    fn typed_server_errors_are_not_retried() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        serve(listener, 1, |_, stream| {
            answer(
                stream,
                &Response::Error(ServiceError::new(ErrorCode::Cancelled, 0, "cancelled")),
            );
        });
        let mut client = LimadClient::new(&addr, "t", options(3));
        let err = client.probe("(1) L f:1").unwrap_err();
        assert_eq!(err.code(), Some(ErrorCode::Cancelled));
        assert_eq!(err.exit_code(), 5);
    }

    #[test]
    fn malformed_response_is_a_protocol_error() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        serve(listener, 1, |_, mut stream| {
            let (_, _, _) = read_frame(&mut stream, MAX_FRAME_BYTES).unwrap();
            let _ = stream.write_all(b"this is not a frame at all, sorry!!!");
        });
        let mut client = LimadClient::new(&addr, "t", options(0));
        let err = client.ping().unwrap_err();
        assert!(
            matches!(err, ClientError::Io(_) | ClientError::Protocol(_)),
            "got {err:?}"
        );
    }

    #[test]
    fn client_side_deadline_maps_to_typed_code() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        // Server accepts but never answers.
        serve(listener, 1, |_, stream| {
            std::thread::sleep(Duration::from_millis(900));
            drop(stream);
        });
        let mut opts = options(0);
        opts.default_deadline = Duration::from_millis(120);
        let mut client = LimadClient::new(&addr, "t", opts);
        let err = client.ping().unwrap_err();
        assert_eq!(err.code(), Some(ErrorCode::DeadlineExceeded));
        assert_eq!(err.exit_code(), 4);
    }
}
