//! Retrying, deadline-aware, replica-set client for `limad`.
//!
//! The client holds one lazily-(re)connected TCP connection *per replica
//! member*. Idempotent requests (probe, fetch, cancel, metrics, ping) are
//! retried through the shared [`RetryPolicy`] with jittered exponential
//! backoff; each retry spends a token from a client-wide [`RetryBudget`] so a
//! flapping server cannot trigger an unbounded retry storm. Submits are *not*
//! retried on transport failure by default (the script may have executed),
//! but `Overloaded` responses are always safely retryable because the server
//! sheds before executing anything.
//!
//! With more than one member configured, three resilience layers activate:
//!
//! * **Health-gated failover** — each member carries a consecutive-failure
//!   [`CircuitBreaker`]; transport failures fail over to a healthy sibling
//!   immediately, *without* spending the retry budget or sleeping a backoff,
//!   so a dead member costs one connect attempt instead of the whole
//!   schedule. Open breakers steer subsequent calls away until a half-open
//!   probe succeeds.
//! * **Hedged reads** — a fetch that has not answered within the hedge delay
//!   (configurable; default: the observed p99 of recent fetches via a
//!   [`LatencyWindow`]) fires a second request at another member and takes
//!   the first success, bounding tail latency under a slow shard.
//! * **Typed deadlines** — each call computes its absolute deadline once,
//!   every (re)encoded request carries the *remaining* milliseconds, socket
//!   timeouts are clamped to that remainder plus a small grace, and a retry
//!   loop that would sleep past the deadline returns the typed
//!   `DeadlineExceeded` (exit code 4) instead of burning budget past it.
//!
//! [`ClientStats`] snapshots the resilience counters (retries, failovers,
//! hedges fired/won, per-member breaker state) so harnesses can assert the
//! behavior instead of inferring it from timing.

use crate::proto::{
    read_frame, write_frame, ErrorCode, Request, Response, ServiceError, MAX_FRAME_BYTES,
};
use lima_core::resilience::{Attempt, CircuitBreaker, LatencyWindow, RetryBudget, RetryPolicy};
use lima_matrix::Value;
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Extra socket-timeout slack beyond the request deadline, giving the server
/// room to deliver its typed `DeadlineExceeded` response.
const SOCKET_GRACE: Duration = Duration::from_millis(250);

/// Floor for socket timeouts (`set_read_timeout(Some(ZERO))` is an error).
const MIN_SOCKET_TIMEOUT: Duration = Duration::from_millis(10);

/// Hedge delay used before the latency window has any samples to estimate
/// a p99 from.
const DEFAULT_HEDGE_DELAY_MS: u64 = 25;

/// Samples retained by the adaptive hedge-delay estimator.
const LATENCY_WINDOW: usize = 256;

/// Client-side failure taxonomy.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write) after any retries.
    Io(std::io::Error),
    /// The peer spoke, but not the protocol (bad frame, wrong request id).
    Protocol(String),
    /// A typed error from the service — including client-side deadline
    /// expiry, which is reported as [`ErrorCode::DeadlineExceeded`] so both
    /// ends share one exit-code mapping.
    Service(ServiceError),
}

impl ClientError {
    /// The machine-readable error code, when one exists.
    pub fn code(&self) -> Option<ErrorCode> {
        match self {
            ClientError::Service(e) => Some(e.code),
            _ => None,
        }
    }

    /// Process exit code: the service code's mapping, or 1 for transport
    /// and protocol failures.
    pub fn exit_code(&self) -> u8 {
        self.code().map_or(1, ErrorCode::exit_code)
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol: {msg}"),
            ClientError::Service(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ClientError {}

fn deadline_error(msg: &str) -> ClientError {
    ClientError::Service(ServiceError::new(ErrorCode::DeadlineExceeded, 0, msg))
}

/// Tunables for a [`LimadClient`].
#[derive(Debug, Clone)]
pub struct ClientOptions {
    /// TCP connect timeout.
    pub connect_timeout: Duration,
    /// Deadline applied when a call does not specify one.
    pub default_deadline: Duration,
    /// Backoff schedule shared by transport retries and overload retries.
    pub retry: RetryPolicy,
    /// Cap of the client-wide retry token bucket.
    pub retry_budget_cap: u64,
    /// Retry submits on transport failure. Off by default: a torn connection
    /// after the request was written may mean the script already ran.
    pub retry_submits: bool,
    /// Largest response frame this client will accept.
    pub max_frame_bytes: usize,
    /// Hedge fetches against a second replica (no effect with one member).
    pub hedge_reads: bool,
    /// Fixed hedge delay; `None` adapts to the observed fetch p99 (falling
    /// back to [`DEFAULT_HEDGE_DELAY_MS`] until samples accumulate).
    pub hedge_delay: Option<Duration>,
    /// Consecutive transport failures before a member's breaker opens
    /// (0 disables per-member health gating).
    pub breaker_failures: u32,
    /// Cooldown before an open member breaker grants a half-open probe.
    pub breaker_cooldown_ms: u64,
}

impl Default for ClientOptions {
    fn default() -> Self {
        ClientOptions {
            connect_timeout: Duration::from_secs(2),
            default_deadline: Duration::from_secs(30),
            retry: RetryPolicy::new(4, 10, 0x11AD),
            retry_budget_cap: 64,
            retry_submits: false,
            max_frame_bytes: MAX_FRAME_BYTES,
            hedge_reads: true,
            hedge_delay: None,
            breaker_failures: 3,
            breaker_cooldown_ms: 200,
        }
    }
}

/// Per-submit knobs.
#[derive(Debug, Clone, Default)]
pub struct SubmitOptions {
    /// System-seed base for reproducible `rand`/`sample` in the script.
    pub seed: Option<u64>,
    /// Output variables to return.
    pub outputs: Vec<String>,
    /// Overrides the client's default deadline for this call.
    pub deadline: Option<Duration>,
}

/// A completed submit.
#[derive(Debug, Clone, PartialEq)]
pub struct Submitted {
    /// Server-assigned session id (target for [`LimadClient::cancel`]).
    pub session: u64,
    /// Requested output variables and their values.
    pub values: Vec<(String, Value)>,
    /// Collected `print` output.
    pub stdout: Vec<String>,
}

impl Submitted {
    /// The value of a named output, if returned.
    pub fn value(&self, name: &str) -> Option<&Value> {
        self.values
            .iter()
            .find_map(|(n, v)| (n == name).then_some(v))
    }
}

/// Point-in-time snapshot of a client's resilience counters.
#[derive(Debug, Clone, Default)]
pub struct ClientStats {
    /// Budgeted retries performed (backoff sleeps, transport or overload).
    pub retries: u64,
    /// Calls moved to a different member (dead-member or overload failover).
    pub failovers: u64,
    /// Hedged secondary fetches fired after the hedge delay elapsed.
    pub hedges_fired: u64,
    /// Hedged fetches where the secondary answered first.
    pub hedges_won: u64,
    /// Per-member health, index-aligned with the configured replica list.
    pub members: Vec<MemberStats>,
}

/// Health counters for one replica member.
#[derive(Debug, Clone)]
pub struct MemberStats {
    /// The member's address as configured.
    pub addr: String,
    /// Transport failures attributed to this member.
    pub transport_failures: u64,
    /// Times this member's breaker transitioned closed → open.
    pub breaker_opens: u64,
    /// True while the breaker is open or half-open (member suspect).
    pub breaker_open: bool,
}

#[derive(Debug, Default)]
struct SharedCounters {
    retries: AtomicU64,
    failovers: AtomicU64,
    hedges_fired: AtomicU64,
    hedges_won: AtomicU64,
}

/// Member state shared with hedge threads: address, breaker, counters.
#[derive(Debug)]
struct MemberShared {
    addr: String,
    breaker: CircuitBreaker,
    transport_failures: AtomicU64,
    breaker_opens: AtomicU64,
}

impl MemberShared {
    fn note_failure(&self) {
        self.transport_failures.fetch_add(1, Ordering::Relaxed);
        let was_open = self.breaker.is_open();
        self.breaker.record_failure();
        if !was_open && self.breaker.is_open() {
            self.breaker_opens.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[derive(Debug)]
struct Member {
    shared: Arc<MemberShared>,
    conn: Option<TcpStream>,
}

/// A connection to a `limad` replica set (one or more members) on behalf of
/// one tenant.
#[derive(Debug)]
pub struct LimadClient {
    tenant: String,
    opts: ClientOptions,
    budget: RetryBudget,
    members: Vec<Member>,
    preferred: usize,
    stats: Arc<SharedCounters>,
    latency: Arc<LatencyWindow>,
    next_id: u64,
}

impl LimadClient {
    /// A client for a single server `addr` (e.g. `"127.0.0.1:7461"`)
    /// identifying as `tenant`. Connects lazily on the first call.
    pub fn new(addr: &str, tenant: &str, opts: ClientOptions) -> Self {
        Self::new_replicated(&[addr.to_string()], tenant, opts)
    }

    /// A client for a replica set. `addrs[0]` is the initially preferred
    /// member; calls fail over to healthy siblings and fetches hedge across
    /// members. An empty list is treated as a single unresolvable member so
    /// every call fails with a clear error instead of panicking.
    pub fn new_replicated(addrs: &[String], tenant: &str, opts: ClientOptions) -> Self {
        let budget = RetryBudget::new(opts.retry_budget_cap);
        let mut members: Vec<Member> = addrs
            .iter()
            .map(|addr| Member {
                shared: Arc::new(MemberShared {
                    addr: addr.clone(),
                    breaker: CircuitBreaker::new(opts.breaker_failures, opts.breaker_cooldown_ms),
                    transport_failures: AtomicU64::new(0),
                    breaker_opens: AtomicU64::new(0),
                }),
                conn: None,
            })
            .collect();
        if members.is_empty() {
            members.push(Member {
                shared: Arc::new(MemberShared {
                    addr: "<no replica addresses>".to_string(),
                    breaker: CircuitBreaker::new(0, 0),
                    transport_failures: AtomicU64::new(0),
                    breaker_opens: AtomicU64::new(0),
                }),
                conn: None,
            });
        }
        LimadClient {
            tenant: tenant.to_string(),
            opts,
            budget,
            members,
            preferred: 0,
            stats: Arc::new(SharedCounters::default()),
            latency: Arc::new(LatencyWindow::new(LATENCY_WINDOW)),
            next_id: 0,
        }
    }

    /// Retry tokens left in the client-wide budget (observability hook).
    pub fn retry_tokens(&self) -> u64 {
        self.budget.remaining()
    }

    /// Number of configured replica members.
    pub fn member_count(&self) -> usize {
        self.members.len()
    }

    /// Pins the initially tried member for subsequent calls (clamped to the
    /// member list). Chaos harnesses use this to steer load.
    pub fn set_preferred(&mut self, member: usize) {
        self.preferred = member.min(self.members.len() - 1);
    }

    /// Snapshot of the resilience counters.
    pub fn stats(&self) -> ClientStats {
        ClientStats {
            retries: self.stats.retries.load(Ordering::Relaxed),
            failovers: self.stats.failovers.load(Ordering::Relaxed),
            hedges_fired: self.stats.hedges_fired.load(Ordering::Relaxed),
            hedges_won: self.stats.hedges_won.load(Ordering::Relaxed),
            members: self
                .members
                .iter()
                .map(|m| MemberStats {
                    addr: m.shared.addr.clone(),
                    transport_failures: m.shared.transport_failures.load(Ordering::Relaxed),
                    breaker_opens: m.shared.breaker_opens.load(Ordering::Relaxed),
                    breaker_open: m.shared.breaker.is_open(),
                })
                .collect(),
        }
    }

    /// Runs a script and returns the requested outputs.
    pub fn submit(&mut self, script: &str, sub: &SubmitOptions) -> Result<Submitted, ClientError> {
        let deadline = self.deadline(sub.deadline);
        let tenant = self.tenant.clone();
        let script = script.to_string();
        let seed = sub.seed;
        let outputs = sub.outputs.clone();
        let resp = self.call(self.opts.retry_submits, deadline, move |deadline_ms| {
            Request::Submit {
                tenant: tenant.clone(),
                script: script.clone(),
                seed,
                outputs: outputs.clone(),
                deadline_ms,
            }
        })?;
        match resp {
            Response::Submitted {
                session,
                values,
                stdout,
            } => Ok(Submitted {
                session,
                values,
                stdout,
            }),
            other => Err(unexpected(&other)),
        }
    }

    /// Does the routed shard hold a cached value for this serialized lineage?
    pub fn probe(&mut self, lineage: &str) -> Result<bool, ClientError> {
        let deadline = self.deadline(None);
        let tenant = self.tenant.clone();
        let lineage = lineage.to_string();
        let resp = self.call(true, deadline, move |deadline_ms| Request::Probe {
            tenant: tenant.clone(),
            lineage: lineage.clone(),
            deadline_ms,
        })?;
        match resp {
            Response::Probed { hit } => Ok(hit),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches the cached value for this serialized lineage, if any. With
    /// multiple members and hedging enabled, a fetch that has not answered
    /// within the hedge delay races a second member; the first success wins.
    pub fn fetch(&mut self, lineage: &str) -> Result<Option<Value>, ClientError> {
        let deadline = self.deadline(None);
        let started = Instant::now();
        let res = if self.opts.hedge_reads && self.members.len() > 1 {
            self.fetch_hedged(lineage, deadline)
        } else {
            self.fetch_plain(lineage, deadline)
        };
        if res.is_ok() {
            self.latency
                .record((started.elapsed().as_millis() as u64).max(1));
        }
        res
    }

    /// Cancels a running session; `Ok(false)` means it was not found (it may
    /// have already finished).
    pub fn cancel(&mut self, session: u64) -> Result<bool, ClientError> {
        let deadline = self.deadline(None);
        let resp = self.call(true, deadline, move |_| Request::Cancel { session })?;
        match resp {
            Response::Cancelled { found } => Ok(found),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches the aggregated Prometheus metrics text over the wire protocol
    /// (the server also exposes the same text as HTTP `GET /metrics`).
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        let deadline = self.deadline(None);
        let resp = self.call(true, deadline, |_| Request::Metrics)?;
        match resp {
            Response::MetricsText(text) => Ok(text),
            other => Err(unexpected(&other)),
        }
    }

    /// Admin: runs one full integrity-scrub pass over every shard's
    /// persistent store, returning per-shard findings. Idempotent — a scrub
    /// repairs or quarantines, never invents state — so it retries like the
    /// other read-side calls.
    pub fn scrub(&mut self) -> Result<Vec<crate::proto::ShardScrub>, ClientError> {
        let deadline = self.deadline(None);
        let resp = self.call(true, deadline, |_| Request::Scrub)?;
        match resp {
            Response::Scrubbed(reports) => Ok(reports),
            other => Err(unexpected(&other)),
        }
    }

    /// Liveness check.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        let deadline = self.deadline(None);
        let resp = self.call(true, deadline, |_| Request::Ping)?;
        match resp {
            Response::Pong => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    fn deadline(&self, per_call: Option<Duration>) -> Instant {
        Instant::now() + per_call.unwrap_or(self.opts.default_deadline)
    }

    /// First member from `start` whose breaker admits an attempt; falls back
    /// to `start` itself when every breaker is open (some member must be
    /// tried, and a rejected breaker only means "probably down").
    fn pick_member(&self, start: usize) -> usize {
        let n = self.members.len();
        let start = start % n;
        for off in 0..n {
            let idx = (start + off) % n;
            if self.members[idx].shared.breaker.allow() != Attempt::Rejected {
                return idx;
            }
        }
        start
    }

    /// A healthy member other than `not`, scanning from the preferred one.
    fn sibling_of(&self, not: usize) -> Option<usize> {
        let n = self.members.len();
        for off in 0..n {
            let idx = (self.preferred + off) % n;
            if idx != not && self.members[idx].shared.breaker.allow() != Attempt::Rejected {
                return Some(idx);
            }
        }
        None
    }

    /// The retry loop: re-encodes the request each attempt with the shrunken
    /// remaining deadline, fails over to healthy members after transport
    /// failures (free of budget for the first pass over the set), honors
    /// server `retry_after_ms` hints for overload responses, and returns the
    /// typed `DeadlineExceeded` rather than sleeping past the deadline.
    fn call(
        &mut self,
        idempotent: bool,
        deadline: Instant,
        make: impl Fn(u64) -> Request,
    ) -> Result<Response, ClientError> {
        let mut retries = 0u32;
        let max_retries = self.opts.retry.attempts;
        let mut member = self.pick_member(self.preferred);
        // One free (no token, no sleep) failover per sibling: a dead member
        // must not consume the whole backoff schedule before a healthy one
        // is even tried.
        let mut free_failovers = self.members.len().saturating_sub(1);
        loop {
            let now = Instant::now();
            if now >= deadline {
                return Err(deadline_error(
                    "deadline elapsed before the request was sent",
                ));
            }
            let remaining = deadline - now;
            let req = make((remaining.as_millis() as u64).max(1));
            match self.attempt_on(member, &req, remaining) {
                Ok(Response::Error(e)) if e.code.retryable() => {
                    // The member answered: healthy but shedding.
                    self.members[member].shared.breaker.record_success();
                    if !(retries < max_retries && self.budget.try_spend()) {
                        return Err(ClientError::Service(e));
                    }
                    let delay = self
                        .opts
                        .retry
                        .delay(retries)
                        .max(Duration::from_millis(e.retry_after_ms));
                    retries += 1;
                    self.stats.retries.fetch_add(1, Ordering::Relaxed);
                    if Instant::now() + delay >= deadline {
                        return Err(ClientError::Service(e));
                    }
                    std::thread::sleep(delay);
                    // Prefer a sibling for the retry: it may not be shedding.
                    if let Some(next) = self.sibling_of(member) {
                        self.stats.failovers.fetch_add(1, Ordering::Relaxed);
                        member = next;
                    }
                }
                Ok(Response::Error(e)) => {
                    self.members[member].shared.breaker.record_success();
                    return Err(ClientError::Service(e));
                }
                Ok(resp) => {
                    self.budget.record_success();
                    self.members[member].shared.breaker.record_success();
                    return Ok(resp);
                }
                Err(err) => {
                    // The connection is suspect after any failure; rebuild it
                    // on the next attempt.
                    self.members[member].conn = None;
                    let transient = matches!(&err, ClientError::Io(_));
                    if transient {
                        self.members[member].shared.note_failure();
                    }
                    if !transient || !idempotent {
                        return Err(err);
                    }
                    if free_failovers > 0 {
                        if let Some(next) = self.sibling_of(member) {
                            free_failovers -= 1;
                            self.stats.failovers.fetch_add(1, Ordering::Relaxed);
                            member = next;
                            continue;
                        }
                    }
                    if !(retries < max_retries && self.budget.try_spend()) {
                        return Err(err);
                    }
                    let delay = self.opts.retry.delay(retries);
                    retries += 1;
                    self.stats.retries.fetch_add(1, Ordering::Relaxed);
                    if Instant::now() + delay >= deadline {
                        return Err(deadline_error(
                            "request deadline reached during transport retries",
                        ));
                    }
                    std::thread::sleep(delay);
                    member = self.pick_member(member);
                }
            }
        }
    }

    /// One wire round-trip to member `idx` within `remaining` time.
    fn attempt_on(
        &mut self,
        idx: usize,
        req: &Request,
        remaining: Duration,
    ) -> Result<Response, ClientError> {
        let timeout = (remaining + SOCKET_GRACE).max(MIN_SOCKET_TIMEOUT);
        let connect_timeout = self.opts.connect_timeout;
        let member = &mut self.members[idx];
        if member.conn.is_none() {
            let addr = member
                .shared
                .addr
                .to_socket_addrs()
                .map_err(ClientError::Io)?
                .next()
                .ok_or_else(|| {
                    ClientError::Protocol(format!("unresolvable addr {}", member.shared.addr))
                })?;
            let stream =
                TcpStream::connect_timeout(&addr, connect_timeout).map_err(ClientError::Io)?;
            stream.set_nodelay(true).map_err(ClientError::Io)?;
            member.conn = Some(stream);
        }
        let stream = member.conn.as_mut().ok_or_else(|| {
            ClientError::Protocol("connection vanished between connect and use".into())
        })?;
        stream
            .set_read_timeout(Some(timeout))
            .and_then(|()| stream.set_write_timeout(Some(timeout)))
            .map_err(ClientError::Io)?;

        self.next_id += 1;
        let id = self.next_id;
        let (kind, payload) = req.encode();
        write_frame(stream, kind, id, &payload).map_err(|e| map_io(e, remaining))?;
        let (rkind, rid, rpayload) =
            read_frame(stream, self.opts.max_frame_bytes).map_err(|e| map_io(e, remaining))?;
        if rid != id {
            return Err(ClientError::Protocol(format!(
                "response id {rid} does not match request id {id}"
            )));
        }
        Response::decode(rkind, &rpayload)
            .ok_or_else(|| ClientError::Protocol(format!("undecodable response kind {rkind:#x}")))
    }

    fn fetch_plain(
        &mut self,
        lineage: &str,
        deadline: Instant,
    ) -> Result<Option<Value>, ClientError> {
        let tenant = self.tenant.clone();
        let lineage = lineage.to_string();
        let resp = self.call(true, deadline, move |deadline_ms| Request::Fetch {
            tenant: tenant.clone(),
            lineage: lineage.clone(),
            deadline_ms,
        })?;
        match resp {
            Response::Fetched(v) => Ok(v),
            other => Err(unexpected(&other)),
        }
    }

    /// Hedged fetch: race the primary against the hedge timer; when the
    /// timer fires first (or the primary fails), fire the same fetch at a
    /// sibling and take the first success. Both legs run on one-shot
    /// connections so a slow loser can be abandoned without poisoning the
    /// pooled connections. Total failure falls back to the plain budgeted
    /// retry loop.
    fn fetch_hedged(
        &mut self,
        lineage: &str,
        deadline: Instant,
    ) -> Result<Option<Value>, ClientError> {
        let primary = self.pick_member(self.preferred);
        let Some(secondary) = self.sibling_of(primary) else {
            return self.fetch_plain(lineage, deadline);
        };
        let hedge_delay = self.opts.hedge_delay.unwrap_or_else(|| {
            Duration::from_millis(
                self.latency
                    .quantile(0.99)
                    .unwrap_or(DEFAULT_HEDGE_DELAY_MS)
                    .max(1),
            )
        });

        let (tx, rx) = mpsc::channel::<(usize, Result<Response, ClientError>)>();
        self.spawn_leg(primary, 0, lineage, deadline, tx.clone());
        let mut pending = 1usize;
        let mut fired = false;
        let mut hedged = false; // fired due to the timer (vs primary failure)
        let mut failure: Option<ClientError> = None;

        loop {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let wait = if fired {
                deadline - now
            } else {
                hedge_delay.min(deadline - now)
            };
            match rx.recv_timeout(wait) {
                Ok((leg, Ok(Response::Fetched(v)))) => {
                    if leg == 1 && hedged {
                        self.stats.hedges_won.fetch_add(1, Ordering::Relaxed);
                    }
                    self.budget.record_success();
                    return Ok(v);
                }
                Ok((_, Ok(Response::Error(e)))) if !e.code.retryable() => {
                    // Authoritative verdict (bad lineage, cancelled, ...).
                    return Err(ClientError::Service(e));
                }
                Ok((_, Ok(other))) => {
                    pending -= 1;
                    failure.get_or_insert(unexpected(&other));
                }
                Ok((_, Err(e))) => {
                    pending -= 1;
                    failure.get_or_insert(e);
                }
                Err(mpsc::RecvTimeoutError::Timeout) if !fired => {
                    // The hedge timer elapsed with the primary still silent.
                }
                Err(_) => break,
            }
            if !fired {
                fired = true;
                hedged = pending > 0; // timer-fired hedge, not a failover
                if hedged {
                    self.stats.hedges_fired.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.stats.failovers.fetch_add(1, Ordering::Relaxed);
                }
                self.spawn_leg(secondary, 1, lineage, deadline, tx.clone());
                pending += 1;
            }
            if pending == 0 {
                break;
            }
        }
        drop(tx);
        // Both legs failed (or the deadline is gone): one plain budgeted
        // pass decides the final answer with the usual typed errors.
        match failure {
            Some(ClientError::Service(e)) => Err(ClientError::Service(e)),
            _ => self.fetch_plain(lineage, deadline),
        }
    }

    fn spawn_leg(
        &self,
        idx: usize,
        leg: usize,
        lineage: &str,
        deadline: Instant,
        tx: mpsc::Sender<(usize, Result<Response, ClientError>)>,
    ) {
        let shared = Arc::clone(&self.members[idx].shared);
        let tenant = self.tenant.clone();
        let lineage = lineage.to_string();
        let connect_timeout = self.opts.connect_timeout;
        let max_frame = self.opts.max_frame_bytes;
        std::thread::spawn(move || {
            let res = leg_fetch(
                &shared,
                &tenant,
                &lineage,
                deadline,
                connect_timeout,
                max_frame,
            );
            let _ = tx.send((leg, res));
        });
    }
}

/// One self-contained fetch round-trip on a fresh connection (hedge leg).
fn leg_fetch(
    shared: &MemberShared,
    tenant: &str,
    lineage: &str,
    deadline: Instant,
    connect_timeout: Duration,
    max_frame: usize,
) -> Result<Response, ClientError> {
    let now = Instant::now();
    if now >= deadline {
        return Err(deadline_error("deadline elapsed before the hedged fetch"));
    }
    let remaining = deadline - now;
    let timeout = (remaining + SOCKET_GRACE).max(MIN_SOCKET_TIMEOUT);
    let run = || -> Result<Response, ClientError> {
        let addr = shared
            .addr
            .to_socket_addrs()
            .map_err(ClientError::Io)?
            .next()
            .ok_or_else(|| ClientError::Protocol(format!("unresolvable addr {}", shared.addr)))?;
        let mut stream =
            TcpStream::connect_timeout(&addr, connect_timeout).map_err(ClientError::Io)?;
        stream.set_nodelay(true).map_err(ClientError::Io)?;
        stream
            .set_read_timeout(Some(timeout))
            .and_then(|()| stream.set_write_timeout(Some(timeout)))
            .map_err(ClientError::Io)?;
        let req = Request::Fetch {
            tenant: tenant.to_string(),
            lineage: lineage.to_string(),
            deadline_ms: (remaining.as_millis() as u64).max(1),
        };
        let (kind, payload) = req.encode();
        write_frame(&mut stream, kind, 1, &payload).map_err(|e| map_io(e, remaining))?;
        let (rkind, rid, rpayload) =
            read_frame(&mut stream, max_frame).map_err(|e| map_io(e, remaining))?;
        if rid != 1 {
            return Err(ClientError::Protocol(format!(
                "response id {rid} does not match request id 1"
            )));
        }
        Response::decode(rkind, &rpayload)
            .ok_or_else(|| ClientError::Protocol(format!("undecodable response kind {rkind:#x}")))
    };
    let res = run();
    match &res {
        Ok(_) => shared.breaker.record_success(),
        Err(ClientError::Io(_)) => shared.note_failure(),
        Err(_) => {}
    }
    res
}

/// A socket timeout while the deadline budget is gone is a deadline, not a
/// transport flake — report it with the shared typed code.
fn map_io(e: std::io::Error, remaining: Duration) -> ClientError {
    let timed_out = matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    );
    if timed_out && remaining <= SOCKET_GRACE + MIN_SOCKET_TIMEOUT {
        deadline_error("timed out waiting for the server response")
    } else if timed_out {
        deadline_error("socket timeout at the request deadline")
    } else {
        ClientError::Io(e)
    }
}

fn unexpected(resp: &Response) -> ClientError {
    ClientError::Protocol(format!("unexpected response variant: {resp:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpListener;

    fn options(attempts: u32) -> ClientOptions {
        ClientOptions {
            retry: RetryPolicy::new(attempts, 1, 9),
            default_deadline: Duration::from_secs(5),
            ..ClientOptions::default()
        }
    }

    /// A one-shot server thread that answers `n` connections with the given
    /// behaviour and then exits.
    fn serve(
        listener: TcpListener,
        conns: usize,
        behave: impl Fn(usize, TcpStream) + Send + 'static,
    ) {
        std::thread::spawn(move || {
            for i in 0..conns {
                let Ok((stream, _)) = listener.accept() else {
                    return;
                };
                behave(i, stream);
            }
        });
    }

    fn answer(mut stream: TcpStream, resp: &Response) {
        let (kind, id, _payload) = read_frame(&mut stream, MAX_FRAME_BYTES).unwrap();
        assert!(Request::decode(kind, &_payload).is_some());
        let (rkind, rpayload) = resp.encode();
        write_frame(&mut stream, rkind, id, &rpayload).unwrap();
    }

    /// Serves every connection on a thread of its own (hedge legs open
    /// fresh connections concurrently).
    fn serve_each(listener: TcpListener, behave: impl Fn(TcpStream) + Send + Sync + 'static) {
        let behave = Arc::new(behave);
        std::thread::spawn(move || {
            while let Ok((stream, _)) = listener.accept() {
                let behave = Arc::clone(&behave);
                std::thread::spawn(move || behave(stream));
            }
        });
    }

    #[test]
    fn ping_round_trips() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        serve(listener, 1, |_, stream| answer(stream, &Response::Pong));
        let mut client = LimadClient::new(&addr, "t", options(0));
        client.ping().unwrap();
    }

    #[test]
    fn idempotent_calls_reconnect_after_connection_drop() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        // First connection: read the request, then drop without answering.
        serve(listener, 2, |i, mut stream| {
            if i == 0 {
                let mut buf = [0u8; 64];
                let _ = stream.read(&mut buf);
                drop(stream);
            } else {
                answer(stream, &Response::Probed { hit: true });
            }
        });
        let mut client = LimadClient::new(&addr, "t", options(3));
        assert!(client.probe("(1) L f:1").unwrap());
    }

    #[test]
    fn submits_do_not_retry_transport_failures_by_default() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        serve(listener, 1, |_, mut stream| {
            let mut buf = [0u8; 64];
            let _ = stream.read(&mut buf);
            drop(stream);
        });
        let mut client = LimadClient::new(&addr, "t", options(3));
        let err = client
            .submit("s = 1;", &SubmitOptions::default())
            .unwrap_err();
        assert!(matches!(err, ClientError::Io(_)), "got {err:?}");
    }

    #[test]
    fn overloaded_responses_are_retried_with_hint() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let overloaded = Response::Error(ServiceError::new(ErrorCode::Overloaded, 5, "shedding"));
        serve(listener, 1, move |_, mut stream| {
            // Same connection: shed twice, then accept.
            for round in 0..3 {
                let (kind, id, payload) = read_frame(&mut stream, MAX_FRAME_BYTES).unwrap();
                assert!(Request::decode(kind, &payload).is_some());
                let resp = if round < 2 {
                    overloaded.clone()
                } else {
                    Response::Probed { hit: false }
                };
                let (rkind, rpayload) = resp.encode();
                write_frame(&mut stream, rkind, id, &rpayload).unwrap();
            }
        });
        let mut client = LimadClient::new(&addr, "t", options(3));
        assert!(!client.probe("(1) L f:1").unwrap());
        assert!(client.retry_tokens() < 64, "retries should spend budget");
        assert_eq!(client.stats().retries, 2);
    }

    #[test]
    fn typed_server_errors_are_not_retried() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        serve(listener, 1, |_, stream| {
            answer(
                stream,
                &Response::Error(ServiceError::new(ErrorCode::Cancelled, 0, "cancelled")),
            );
        });
        let mut client = LimadClient::new(&addr, "t", options(3));
        let err = client.probe("(1) L f:1").unwrap_err();
        assert_eq!(err.code(), Some(ErrorCode::Cancelled));
        assert_eq!(err.exit_code(), 5);
    }

    #[test]
    fn malformed_response_is_a_protocol_error() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        serve(listener, 1, |_, mut stream| {
            let (_, _, _) = read_frame(&mut stream, MAX_FRAME_BYTES).unwrap();
            let _ = stream.write_all(b"this is not a frame at all, sorry!!!");
        });
        let mut client = LimadClient::new(&addr, "t", options(0));
        let err = client.ping().unwrap_err();
        assert!(
            matches!(err, ClientError::Io(_) | ClientError::Protocol(_)),
            "got {err:?}"
        );
    }

    #[test]
    fn client_side_deadline_maps_to_typed_code() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        // Server accepts but never answers.
        serve(listener, 1, |_, stream| {
            std::thread::sleep(Duration::from_millis(900));
            drop(stream);
        });
        let mut opts = options(0);
        opts.default_deadline = Duration::from_millis(120);
        let mut client = LimadClient::new(&addr, "t", opts);
        let err = client.ping().unwrap_err();
        assert_eq!(err.code(), Some(ErrorCode::DeadlineExceeded));
        assert_eq!(err.exit_code(), 4);
    }

    /// Satellite: transport-error retries must re-check the remaining
    /// deadline before sleeping and surface the typed `deadline` (exit 4)
    /// instead of burning the backoff schedule past it.
    #[test]
    fn transport_retries_respect_deadline() {
        // A listener that accepts and instantly drops every connection: each
        // attempt fails fast with a transport error, so only the backoff
        // schedule can eat the clock.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        serve(listener, 64, |_, mut stream| {
            let mut buf = [0u8; 8];
            let _ = stream.read(&mut buf);
            drop(stream);
        });
        let mut opts = ClientOptions {
            // Backoff far larger than the deadline: the first retry's sleep
            // would sail past it.
            retry: RetryPolicy::new(8, 400, 9),
            default_deadline: Duration::from_millis(150),
            ..ClientOptions::default()
        };
        opts.breaker_failures = 0; // keep every attempt on the one member
        let mut client = LimadClient::new(&addr, "t", opts);
        let started = Instant::now();
        let err = client.probe("(1) L f:1").unwrap_err();
        assert_eq!(err.code(), Some(ErrorCode::DeadlineExceeded), "got {err:?}");
        assert_eq!(err.exit_code(), 4);
        assert!(
            started.elapsed() < Duration::from_millis(400),
            "retries slept past the deadline: {:?}",
            started.elapsed()
        );
    }

    #[test]
    fn failover_reaches_healthy_sibling_without_spending_budget() {
        // Member 0: a bound-then-dropped port (connection refused).
        let dead = TcpListener::bind("127.0.0.1:0").unwrap();
        let dead_addr = dead.local_addr().unwrap().to_string();
        drop(dead);
        // Member 1: answers.
        let live = TcpListener::bind("127.0.0.1:0").unwrap();
        let live_addr = live.local_addr().unwrap().to_string();
        serve(live, 1, |_, stream| {
            answer(stream, &Response::Probed { hit: true })
        });
        let mut client = LimadClient::new_replicated(&[dead_addr, live_addr], "t", options(3));
        assert!(client.probe("(1) L f:1").unwrap());
        let stats = client.stats();
        assert!(stats.failovers >= 1, "stats: {stats:?}");
        assert_eq!(stats.retries, 0, "failover must not spend retries");
        assert_eq!(client.retry_tokens(), 64, "failover must not spend budget");
        assert!(stats.members[0].transport_failures >= 1);
        assert_eq!(stats.members[1].transport_failures, 0);
    }

    #[test]
    fn open_breaker_steers_calls_away_from_dead_member() {
        let dead = TcpListener::bind("127.0.0.1:0").unwrap();
        let dead_addr = dead.local_addr().unwrap().to_string();
        drop(dead);
        let live = TcpListener::bind("127.0.0.1:0").unwrap();
        let live_addr = live.local_addr().unwrap().to_string();
        serve(live, 16, |_, stream| {
            answer(stream, &Response::Probed { hit: false })
        });
        let mut opts = options(3);
        opts.breaker_failures = 2;
        opts.breaker_cooldown_ms = 60_000; // stays open for the test
        let mut client = LimadClient::new_replicated(&[dead_addr, live_addr], "t", opts);
        for _ in 0..6 {
            assert!(!client.probe("(1) L f:1").unwrap());
        }
        let stats = client.stats();
        assert!(stats.members[0].breaker_open, "stats: {stats:?}");
        assert_eq!(stats.members[0].breaker_opens, 1);
        // Once open, later calls go straight to the healthy member: the dead
        // one saw only the failures needed to trip the breaker.
        assert!(stats.members[0].transport_failures <= 2);
    }

    #[test]
    fn hedged_fetch_wins_on_slow_primary() {
        let fetched = Response::Fetched(Some(Value::f64(6.5)));
        // Primary: answers correctly but only after a long stall.
        let slow = TcpListener::bind("127.0.0.1:0").unwrap();
        let slow_addr = slow.local_addr().unwrap().to_string();
        let slow_resp = fetched.clone();
        serve_each(slow, move |mut stream| {
            let Ok((_, id, _)) = read_frame(&mut stream, MAX_FRAME_BYTES) else {
                return;
            };
            std::thread::sleep(Duration::from_millis(600));
            let (rkind, rpayload) = slow_resp.encode();
            let _ = write_frame(&mut stream, rkind, id, &rpayload);
        });
        // Secondary: answers immediately.
        let fast = TcpListener::bind("127.0.0.1:0").unwrap();
        let fast_addr = fast.local_addr().unwrap().to_string();
        let fast_resp = fetched.clone();
        serve_each(fast, move |mut stream| {
            let Ok((_, id, _)) = read_frame(&mut stream, MAX_FRAME_BYTES) else {
                return;
            };
            let (rkind, rpayload) = fast_resp.encode();
            let _ = write_frame(&mut stream, rkind, id, &rpayload);
        });
        let mut opts = options(0);
        opts.hedge_delay = Some(Duration::from_millis(30));
        let mut client = LimadClient::new_replicated(&[slow_addr, fast_addr], "t", opts);
        let started = Instant::now();
        let v = client.fetch("(1) L f:1").unwrap();
        assert_eq!(v, Some(Value::f64(6.5)));
        assert!(
            started.elapsed() < Duration::from_millis(400),
            "hedge did not bound the slow primary: {:?}",
            started.elapsed()
        );
        let stats = client.stats();
        assert_eq!(stats.hedges_fired, 1, "stats: {stats:?}");
        assert_eq!(stats.hedges_won, 1, "stats: {stats:?}");
    }

    #[test]
    fn stats_snapshot_is_zero_for_untouched_client() {
        let client = LimadClient::new("127.0.0.1:1", "t", options(0));
        let stats = client.stats();
        assert_eq!(stats.retries, 0);
        assert_eq!(stats.failovers, 0);
        assert_eq!(stats.hedges_fired, 0);
        assert_eq!(stats.hedges_won, 0);
        assert_eq!(stats.members.len(), 1);
        assert!(!stats.members[0].breaker_open);
    }
}
