//! Static analyses for LIMA (paper §4.1/§4.3): the determinism &
//! cache-eligibility lattice with call-graph propagation, affine dependence
//! machinery for `parfor` result writes, and lineage DAG verification /
//! lineage-log linting (the `lima-lint` CLI).
//!
//! This crate depends only on `lima-core`: the runtime lowers its own IR
//! (instructions, blocks, functions) into the IR-agnostic inputs these passes
//! consume, and `lima-lint` operates on serialized lineage logs directly.

pub mod affine;
pub mod determinism;
pub mod lint;
pub mod parfor;
pub mod verify;

pub use affine::Affine;
pub use determinism::{solve_call_graph, ClassSource};
pub use lima_core::opcodes::{classify_opcode, opcode_info, OpClass};
pub use lint::{LintEvent, LintFunction, LintModel, LintOp, LintPass, LintRegistry};
pub use parfor::{check_parfor_writes, ParforViolation, ResultWrite};
pub use verify::{lint_log, LintDiagnostic};
