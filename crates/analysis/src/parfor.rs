//! Parfor dependence checking (paper §2: parfor result merging).
//!
//! A `parfor` merges each worker's writes to *result variables* (variables
//! that are live-in and written in the body) back into the parent scope by
//! cell-difference. Two iterations writing the same cell race: the merged
//! value depends on worker scheduling. This pass proves, per result
//! variable, that all cross-iteration writes are disjoint — every indexed
//! write must address the variable through an affine function of the loop
//! variable with a provably nonzero coefficient — and rejects conservatively
//! otherwise. The runtime lowers its instructions into [`ResultWrite`]s; the
//! decision procedure here is IR-agnostic.

use crate::affine::Affine;
use lima_core::Span;

/// One write to a parfor result variable, as lowered by the runtime.
#[derive(Debug, Clone)]
pub struct ResultWrite {
    /// The result variable written.
    pub var: String,
    /// Affine row index of the write (None when not provably affine).
    pub row: Option<Affine>,
    /// Affine column index of the write (None when not provably affine).
    pub col: Option<Affine>,
    /// True when the write replaces the whole variable (any non-indexed
    /// assignment), or occurs somewhere the index cannot be reasoned about
    /// (e.g. under a nested loop over a different variable).
    pub whole: bool,
    /// Byte span of the source statement performing the write, when known;
    /// used to anchor dependence diagnostics on the offending write site.
    pub span: Option<Span>,
}

impl ResultWrite {
    /// An indexed (sub-block) write.
    pub fn indexed(var: impl Into<String>, row: Option<Affine>, col: Option<Affine>) -> Self {
        ResultWrite {
            var: var.into(),
            row,
            col,
            whole: false,
            span: None,
        }
    }

    /// A whole-variable write.
    pub fn whole(var: impl Into<String>) -> Self {
        ResultWrite {
            var: var.into(),
            row: None,
            col: None,
            whole: true,
            span: None,
        }
    }

    /// Attaches the source span of the write.
    pub fn with_span(mut self, span: Option<Span>) -> Self {
        self.span = span;
        self
    }
}

/// Why a parfor cannot be proven race-free.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParforViolation {
    /// A result variable is (re)assigned as a whole; every iteration writes
    /// every cell.
    WholeVarWrite {
        /// Offending result variable.
        var: String,
    },
    /// All indexed writes to the variable use loop-invariant indices; every
    /// iteration writes the same cells.
    LoopInvariantIndex {
        /// Offending result variable.
        var: String,
    },
    /// An index expression is not affine in the loop variable, so
    /// disjointness cannot be established.
    NonAffineIndex {
        /// Offending result variable.
        var: String,
    },
    /// Multiple writes to the variable separate iterations through different
    /// index expressions; their footprints may overlap across iterations.
    ConflictingWrites {
        /// Offending result variable.
        var: String,
    },
}

impl ParforViolation {
    /// The result variable the violation is about.
    pub fn var(&self) -> &str {
        match self {
            ParforViolation::WholeVarWrite { var }
            | ParforViolation::LoopInvariantIndex { var }
            | ParforViolation::NonAffineIndex { var }
            | ParforViolation::ConflictingWrites { var } => var,
        }
    }
}

impl std::fmt::Display for ParforViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParforViolation::WholeVarWrite { var } => write!(
                f,
                "parfor result variable '{var}' is assigned as a whole; \
                 concurrent iterations race on every cell"
            ),
            ParforViolation::LoopInvariantIndex { var } => write!(
                f,
                "parfor result variable '{var}' is written at a loop-invariant \
                 index; concurrent iterations race on the same cells"
            ),
            ParforViolation::NonAffineIndex { var } => write!(
                f,
                "cannot prove parfor writes to result variable '{var}' \
                 disjoint: index is not affine in the loop variable"
            ),
            ParforViolation::ConflictingWrites { var } => write!(
                f,
                "writes to parfor result variable '{var}' use conflicting \
                 index expressions; iterations may overlap"
            ),
        }
    }
}

/// Decides whether the given result-variable writes of a parfor body are
/// provably disjoint across iterations. `trip_at_most_one` short-circuits
/// the check for loops with a statically known trip count of zero or one
/// (a single iteration cannot race with itself).
///
/// Acceptance rule per result variable: there must exist one dimension (row
/// or column) in which *every* write uses the *same* affine index with a
/// nonzero loop-variable coefficient. That dimension then partitions the
/// written cells by iteration.
pub fn check_parfor_writes(
    writes: &[ResultWrite],
    trip_at_most_one: bool,
) -> Result<(), ParforViolation> {
    if trip_at_most_one {
        return Ok(());
    }
    let mut vars: Vec<&str> = writes.iter().map(|w| w.var.as_str()).collect();
    vars.dedup();
    vars.sort_unstable();
    vars.dedup();
    for var in vars {
        let group: Vec<&ResultWrite> = writes.iter().filter(|w| w.var == var).collect();
        check_var(var, &group)?;
    }
    Ok(())
}

fn check_var(var: &str, group: &[&ResultWrite]) -> Result<(), ParforViolation> {
    if group.iter().any(|w| w.whole) {
        return Err(ParforViolation::WholeVarWrite { var: var.into() });
    }
    // Accept if some dimension separates iterations consistently across all
    // writes to this variable.
    fn row_of(w: &ResultWrite) -> Option<&Affine> {
        w.row.as_ref()
    }
    fn col_of(w: &ResultWrite) -> Option<&Affine> {
        w.col.as_ref()
    }
    for dim in [row_of as fn(&ResultWrite) -> Option<&Affine>, col_of] {
        let idxs: Vec<&Affine> = group.iter().filter_map(|w| dim(w)).collect();
        if idxs.len() == group.len()
            && idxs.iter().all(|a| a.separates_iterations())
            && idxs.windows(2).all(|p| p[0].same_index(p[1]))
        {
            return Ok(());
        }
    }
    // Classification of the failure, most specific first.
    let separates = |w: &ResultWrite| {
        [w.row.as_ref(), w.col.as_ref()]
            .into_iter()
            .flatten()
            .any(Affine::separates_iterations)
    };
    if let Some(w) = group.iter().find(|w| !separates(w)) {
        if w.row.is_none() || w.col.is_none() {
            return Err(ParforViolation::NonAffineIndex { var: var.into() });
        }
        return Err(ParforViolation::LoopInvariantIndex { var: var.into() });
    }
    Err(ParforViolation::ConflictingWrites { var: var.into() })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn aff(coeff: i64, konst: i64) -> Option<Affine> {
        let mut a = Affine::konst(konst);
        a.coeff = coeff;
        Some(a)
    }

    #[test]
    fn disjoint_row_and_column_writes_accepted() {
        // L[i, 1] = ...
        let w = [ResultWrite::indexed("L", aff(1, 0), aff(0, 1))];
        assert!(check_parfor_writes(&w, false).is_ok());
        // W[, class] = ...  (row slice invariant, column varies)
        let w = [ResultWrite::indexed("W", aff(0, 1), aff(1, 0))];
        assert!(check_parfor_writes(&w, false).is_ok());
        // Offset and scaled indices are fine: B[2*i - 1, 1].
        let w = [ResultWrite::indexed("B", aff(2, -1), aff(0, 1))];
        assert!(check_parfor_writes(&w, false).is_ok());
    }

    #[test]
    fn multiple_agreeing_writes_accepted() {
        // L[i, 1] = x; L[i, 2] = y;  — same varying row index.
        let w = [
            ResultWrite::indexed("L", aff(1, 0), aff(0, 1)),
            ResultWrite::indexed("L", aff(1, 0), aff(0, 2)),
        ];
        assert!(check_parfor_writes(&w, false).is_ok());
    }

    #[test]
    fn whole_variable_write_rejected() {
        let w = [ResultWrite::whole("acc")];
        assert_eq!(
            check_parfor_writes(&w, false),
            Err(ParforViolation::WholeVarWrite { var: "acc".into() })
        );
    }

    #[test]
    fn loop_invariant_index_rejected() {
        // R[1, 1] = f(i)  — every iteration writes the same cell.
        let w = [ResultWrite::indexed("R", aff(0, 1), aff(0, 1))];
        assert_eq!(
            check_parfor_writes(&w, false),
            Err(ParforViolation::LoopInvariantIndex { var: "R".into() })
        );
    }

    #[test]
    fn non_affine_index_rejected() {
        let w = [ResultWrite::indexed("R", None, aff(0, 1))];
        assert_eq!(
            check_parfor_writes(&w, false),
            Err(ParforViolation::NonAffineIndex { var: "R".into() })
        );
    }

    #[test]
    fn overlapping_offsets_rejected() {
        // R[i, 1] and R[i + 1, 1] collide across adjacent iterations.
        let w = [
            ResultWrite::indexed("R", aff(1, 0), aff(0, 1)),
            ResultWrite::indexed("R", aff(1, 1), aff(0, 1)),
        ];
        assert_eq!(
            check_parfor_writes(&w, false),
            Err(ParforViolation::ConflictingWrites { var: "R".into() })
        );
        // Mixed dimensions: R[i, 1] and R[1, i] may collide at (1, 1)-style
        // intersections; no single dimension separates all writes.
        let w = [
            ResultWrite::indexed("R", aff(1, 0), aff(0, 1)),
            ResultWrite::indexed("R", aff(0, 1), aff(1, 0)),
        ];
        assert_eq!(
            check_parfor_writes(&w, false),
            Err(ParforViolation::ConflictingWrites { var: "R".into() })
        );
    }

    #[test]
    fn single_trip_loops_skip_the_check() {
        let w = [ResultWrite::indexed("R", aff(0, 1), aff(0, 1))];
        assert!(check_parfor_writes(&w, true).is_ok());
    }

    #[test]
    fn independent_variables_checked_separately() {
        let w = [
            ResultWrite::indexed("A", aff(1, 0), aff(0, 1)),
            ResultWrite::indexed("B", aff(0, 1), aff(1, 0)),
        ];
        assert!(check_parfor_writes(&w, false).is_ok());
        let w = [
            ResultWrite::indexed("A", aff(1, 0), aff(0, 1)),
            ResultWrite::whole("B"),
        ];
        assert_eq!(
            check_parfor_writes(&w, false),
            Err(ParforViolation::WholeVarWrite { var: "B".into() })
        );
    }
}
