//! `lima-lint` — lint serialized lineage logs.
//!
//! Usage: `lima-lint <log-file>... ` (or `-` for stdin). Prints one typed
//! diagnostic per problem (`file: [kind] node (id): message`) and exits
//! non-zero when any log fails; clean logs print nothing unless `--verbose`.

use lima_analysis::lint_log;
use std::io::Read as _;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut paths = Vec::new();
    let mut verbose = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--verbose" | "-v" => verbose = true,
            "--help" | "-h" => {
                println!(
                    "usage: lima-lint [--verbose] <lineage-log>...\n\
                     Lints serialized lineage logs ('-' reads stdin). Exits 1 \
                     when any log has diagnostics."
                );
                return ExitCode::SUCCESS;
            }
            _ => paths.push(arg),
        }
    }
    if paths.is_empty() {
        eprintln!("lima-lint: no input files (try --help)");
        return ExitCode::from(2);
    }

    let mut failed = false;
    for path in &paths {
        let log = if path == "-" {
            let mut buf = String::new();
            match std::io::stdin().read_to_string(&mut buf) {
                Ok(_) => buf,
                Err(e) => {
                    eprintln!("lima-lint: stdin: {e}");
                    failed = true;
                    continue;
                }
            }
        } else {
            match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("lima-lint: {path}: {e}");
                    failed = true;
                    continue;
                }
            }
        };
        let diags = lint_log(&log);
        if diags.is_empty() {
            if verbose {
                println!("{path}: ok");
            }
        } else {
            failed = true;
            for d in &diags {
                println!("{path}: {d}");
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
