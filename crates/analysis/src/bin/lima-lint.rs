//! `lima-lint` — lint serialized lineage logs and verify persist directories.
//!
//! Usage: `lima-lint <log-file>... ` (or `-` for stdin). Prints one typed
//! diagnostic per problem (`file: [kind] node (id): message`) and exits
//! non-zero when any log fails; clean logs print nothing unless `--verbose`.
//!
//! `lima-lint fsck <dir>...` runs the offline persistence checker instead:
//! WAL framing, value checksums, lineage parse/DAG checks, and orphan/debris
//! detection over each persist directory (a `limad` shard dir or any
//! `persist_dir`). Debris findings are informational; the exit code is
//! non-zero only when committed data is damaged or lost.

use lima_analysis::lint_log;
use std::io::Read as _;
use std::process::ExitCode;

/// The `fsck` subcommand: read-only verification of persist directories.
fn run_fsck(dirs: &[String], verbose: bool) -> ExitCode {
    if dirs.is_empty() {
        eprintln!("lima-lint: fsck needs at least one directory (try --help)");
        return ExitCode::from(2);
    }
    let mut corrupt = false;
    for dir in dirs {
        let path = std::path::Path::new(dir);
        if !path.is_dir() {
            eprintln!("lima-lint: {dir}: not a directory");
            corrupt = true;
            continue;
        }
        let report = lima_core::fsck(path);
        for finding in &report.findings {
            println!("{dir}: {}", finding.render());
        }
        if report.has_corruption() {
            corrupt = true;
        }
        if verbose || !report.findings.is_empty() {
            let generation = report
                .generation
                .map(|g| g.to_string())
                .unwrap_or_else(|| "none".to_string());
            println!(
                "{dir}: generation={generation} live_entries={} live_bytes={} findings={} {}",
                report.live_entries,
                report.live_bytes,
                report.findings.len(),
                if report.has_corruption() {
                    "CORRUPT"
                } else {
                    "ok"
                }
            );
        }
    }
    if corrupt {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let mut paths = Vec::new();
    let mut verbose = false;
    let mut fsck_mode = false;
    for (i, arg) in std::env::args().skip(1).enumerate() {
        match arg.as_str() {
            "fsck" if i == 0 => fsck_mode = true,
            "--verbose" | "-v" => verbose = true,
            "--help" | "-h" => {
                println!(
                    "usage: lima-lint [--verbose] <lineage-log>...\n\
                     \x20      lima-lint fsck [--verbose] <persist-dir>...\n\
                     Lints serialized lineage logs ('-' reads stdin); exits 1 \
                     when any log has diagnostics.\n\
                     fsck verifies persist directories offline (WAL framing, \
                     checksums, lineage, orphans); exits 1 on corruption."
                );
                return ExitCode::SUCCESS;
            }
            _ => paths.push(arg),
        }
    }
    if fsck_mode {
        return run_fsck(&paths, verbose);
    }
    if paths.is_empty() {
        eprintln!("lima-lint: no input files (try --help)");
        return ExitCode::from(2);
    }

    let mut failed = false;
    for path in &paths {
        let log = if path == "-" {
            let mut buf = String::new();
            match std::io::stdin().read_to_string(&mut buf) {
                Ok(_) => buf,
                Err(e) => {
                    eprintln!("lima-lint: stdin: {e}");
                    failed = true;
                    continue;
                }
            }
        } else {
            match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("lima-lint: {path}: {e}");
                    failed = true;
                    continue;
                }
            }
        };
        let diags = lint_log(&log);
        if diags.is_empty() {
            if verbose {
                println!("{path}: ok");
            }
        } else {
            failed = true;
            for d in &diags {
                println!("{path}: {d}");
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
