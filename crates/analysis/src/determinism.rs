//! Determinism & cache-eligibility dataflow analysis (paper §4.1, §4.3).
//!
//! Every instruction is classified on the [`OpClass`] lattice
//! (`Deterministic < Seeded < NonDeterministic < SideEffecting`, join = max)
//! and per-function classes are derived bottom-up over the call graph: a
//! function's class is the join of its instructions' classes, where a call
//! contributes the callee's class. The runtime lowers each instruction to a
//! [`ClassSource`] (applying syntactic refinements such as "rand with an
//! explicit literal seed is deterministic") and this module solves the
//! interprocedural fixpoint.

use lima_core::opcodes::OpClass;
use std::collections::HashMap;

/// The determinism contribution of one instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClassSource {
    /// An intrinsic operation with a known class.
    Fixed(OpClass),
    /// A call to a named function: contributes the callee's class.
    Call(String),
}

impl ClassSource {
    /// The class this source contributes given the current per-function
    /// classes.
    pub fn eval(&self, classes: &HashMap<String, OpClass>) -> OpClass {
        match self {
            ClassSource::Fixed(c) => *c,
            // Unknown callees (undefined functions) are conservatively
            // non-deterministic; execution will fail before reuse matters.
            ClassSource::Call(name) => classes
                .get(name)
                .copied()
                .unwrap_or(OpClass::NonDeterministic),
        }
    }
}

/// Solves the call-graph fixpoint: `bodies` maps each function name to the
/// class sources of its instructions (across all nested blocks). Returns the
/// least fixpoint, i.e. each function's class assuming the best about
/// recursive cycles — a self-recursive function whose body is otherwise pure
/// solves to `Deterministic`.
pub fn solve_call_graph(bodies: &HashMap<String, Vec<ClassSource>>) -> HashMap<String, OpClass> {
    let mut classes: HashMap<String, OpClass> = bodies
        .keys()
        .map(|k| (k.clone(), OpClass::Deterministic))
        .collect();
    // Kleene iteration from bottom; the lattice has height 4 and the
    // transfer function is monotone, so this terminates quickly.
    loop {
        let mut changed = false;
        for (name, sources) in bodies {
            let class = sources
                .iter()
                .fold(OpClass::Deterministic, |acc, s| acc.join(s.eval(&classes)));
            if let Some(slot) = classes.get_mut(name) {
                if *slot != class {
                    *slot = class;
                    changed = true;
                }
            }
        }
        if !changed {
            return classes;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixed(c: OpClass) -> ClassSource {
        ClassSource::Fixed(c)
    }

    #[test]
    fn pure_functions_solve_deterministic() {
        let mut bodies = HashMap::new();
        bodies.insert(
            "f".to_string(),
            vec![fixed(OpClass::Deterministic), fixed(OpClass::Deterministic)],
        );
        let classes = solve_call_graph(&bodies);
        assert_eq!(classes["f"], OpClass::Deterministic);
    }

    #[test]
    fn classes_propagate_through_calls() {
        let mut bodies = HashMap::new();
        bodies.insert("noisy".to_string(), vec![fixed(OpClass::NonDeterministic)]);
        bodies.insert(
            "caller".to_string(),
            vec![
                fixed(OpClass::Deterministic),
                ClassSource::Call("noisy".into()),
            ],
        );
        bodies.insert(
            "outer".to_string(),
            vec![ClassSource::Call("caller".into())],
        );
        let classes = solve_call_graph(&bodies);
        assert_eq!(classes["noisy"], OpClass::NonDeterministic);
        assert_eq!(classes["caller"], OpClass::NonDeterministic);
        assert_eq!(classes["outer"], OpClass::NonDeterministic);
    }

    #[test]
    fn side_effects_dominate_and_seeded_stays_eligible() {
        let mut bodies = HashMap::new();
        bodies.insert(
            "printer".to_string(),
            vec![fixed(OpClass::Seeded), fixed(OpClass::SideEffecting)],
        );
        bodies.insert("sampler".to_string(), vec![fixed(OpClass::Seeded)]);
        let classes = solve_call_graph(&bodies);
        assert_eq!(classes["printer"], OpClass::SideEffecting);
        assert!(!classes["printer"].reuse_eligible());
        assert_eq!(classes["sampler"], OpClass::Seeded);
        assert!(classes["sampler"].reuse_eligible());
    }

    #[test]
    fn recursion_solves_to_least_fixpoint() {
        let mut bodies = HashMap::new();
        bodies.insert(
            "rec".to_string(),
            vec![
                fixed(OpClass::Deterministic),
                ClassSource::Call("rec".into()),
            ],
        );
        let classes = solve_call_graph(&bodies);
        assert_eq!(classes["rec"], OpClass::Deterministic);
        // Mutual recursion through a non-deterministic partner degrades both.
        let mut bodies = HashMap::new();
        bodies.insert("a".to_string(), vec![ClassSource::Call("b".into())]);
        bodies.insert(
            "b".to_string(),
            vec![
                fixed(OpClass::NonDeterministic),
                ClassSource::Call("a".into()),
            ],
        );
        let classes = solve_call_graph(&bodies);
        assert_eq!(classes["a"], OpClass::NonDeterministic);
        assert_eq!(classes["b"], OpClass::NonDeterministic);
    }

    #[test]
    fn unknown_callee_is_conservative() {
        let mut bodies = HashMap::new();
        bodies.insert("f".to_string(), vec![ClassSource::Call("undefined".into())]);
        let classes = solve_call_graph(&bodies);
        assert_eq!(classes["f"], OpClass::NonDeterministic);
    }
}
