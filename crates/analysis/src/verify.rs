//! Lineage-log linting: parse + structural verification of serialized
//! lineage logs, with typed diagnostics. The DAG-level invariants live in
//! [`lima_core::lineage::verify`] (so the interpreter and persistent-cache
//! recovery can check in-memory DAGs without this crate); this module layers
//! the textual checks only a serialized log can violate — duplicate node
//! ids, which the parser silently resolves by overwriting.

pub use lima_core::lineage::verify::{verify_dag, Verifier, VerifyError, VerifyErrorKind};
use lima_core::lineage::{deserialize_lineage, LineageParseError};
use std::collections::HashMap;

/// One problem found in a lineage log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LintDiagnostic {
    /// The log does not parse (malformed lines, dangling or forward input
    /// references, bad patch structure, ...).
    Parse(LineageParseError),
    /// The parsed DAG violates a structural invariant.
    Verify(VerifyError),
    /// The same node id is defined twice with different content; the parser
    /// silently keeps the later definition, changing every earlier use.
    DuplicateId {
        /// 1-based line of the second, conflicting definition.
        line: usize,
        /// The re-defined node id.
        id: u64,
    },
}

impl LintDiagnostic {
    /// Offending node id, when the diagnostic is about one.
    pub fn node(&self) -> Option<u64> {
        match self {
            LintDiagnostic::Parse(_) => None,
            LintDiagnostic::Verify(v) => v.node,
            LintDiagnostic::DuplicateId { id, .. } => Some(*id),
        }
    }
}

impl std::fmt::Display for LintDiagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LintDiagnostic::Parse(e) => write!(f, "parse error: {e}"),
            LintDiagnostic::Verify(e) => write!(f, "invalid lineage: {e}"),
            LintDiagnostic::DuplicateId { line, id } => write!(
                f,
                "line {line}: node id {id} redefined with different content \
                 (earlier uses silently rebind)"
            ),
        }
    }
}

/// Lints a serialized lineage log. An empty result means the log parses and
/// its DAG satisfies every lineage invariant.
pub fn lint_log(log: &str) -> Vec<LintDiagnostic> {
    let mut out = Vec::new();

    // Textual pass: duplicate item-definition ids. Identical re-emissions
    // (the same item serialized into two patch bodies) are benign; a second
    // definition with different content silently rewires earlier uses.
    let mut defs: HashMap<u64, &str> = HashMap::new();
    for (lineno, line) in log.lines().enumerate() {
        let line = line.trim();
        let Some(rest) = line.strip_prefix('(') else {
            continue;
        };
        let Some((id_tok, _)) = rest.split_once(')') else {
            continue;
        };
        let Ok(id) = id_tok.parse::<u64>() else {
            continue;
        };
        match defs.get(&id) {
            Some(prev) if *prev != line => {
                out.push(LintDiagnostic::DuplicateId {
                    line: lineno + 1,
                    id,
                });
            }
            Some(_) => {}
            None => {
                defs.insert(id, line);
            }
        }
    }

    match deserialize_lineage(log) {
        Err(e) => out.push(LintDiagnostic::Parse(e)),
        Ok(root) => {
            if let Err(e) = verify_dag(&root) {
                out.push(LintDiagnostic::Verify(e));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lima_core::lineage::serialize::serialize_lineage;
    use lima_core::lineage::{DedupPatch, LineageItem};

    #[test]
    fn clean_logs_produce_no_diagnostics() {
        let x = LineageItem::op_with_data("read", "X", vec![]);
        let root = LineageItem::op("+", vec![x.clone(), x]);
        assert!(lint_log(&serialize_lineage(&root)).is_empty());

        let p0 = LineageItem::placeholder(0);
        let body = LineageItem::op("exp", vec![p0]);
        let patch = DedupPatch::new("loop:1", 0, 1, vec![("o".into(), body)]);
        let mut p = LineageItem::op_with_data("read", "p", vec![]);
        for _ in 0..3 {
            p = LineageItem::dedup(patch.clone(), "o", vec![p]);
        }
        assert!(lint_log(&serialize_lineage(&p)).is_empty());
    }

    #[test]
    fn dangling_input_is_a_parse_diagnostic() {
        let diags = lint_log("(1) I + (99)\n::out (1)\n");
        assert_eq!(diags.len(), 1);
        assert!(matches!(&diags[0], LintDiagnostic::Parse(e) if e.line == 1));
    }

    #[test]
    fn bare_placeholder_is_a_verify_diagnostic() {
        let diags = lint_log("(1) P 0\n::out (1)\n");
        assert_eq!(diags.len(), 1);
        match &diags[0] {
            LintDiagnostic::Verify(v) => {
                assert_eq!(v.kind, VerifyErrorKind::PlaceholderOutsidePatch);
                assert!(v.node.is_some());
            }
            other => panic!("expected verify diagnostic, got {other:?}"),
        }
    }

    #[test]
    fn conflicting_duplicate_ids_are_flagged() {
        let log = "(1) L i:1\n(2) I exp (1)\n(1) L i:2\n::out (2)\n";
        let diags = lint_log(log);
        assert!(diags
            .iter()
            .any(|d| matches!(d, LintDiagnostic::DuplicateId { id: 1, line: 3 })));
        // Identical re-definitions stay silent.
        let log = "(1) L i:1\n(1) L i:1\n::out (1)\n";
        assert!(lint_log(log).is_empty());
    }

    #[test]
    fn path_key_collision_is_reported_with_node_id() {
        let log = "\
::patch 0 loop:k 1 1
(1) P 0
(2) I exp (1)
::root o (2)
::endpatch
::patch 1 loop:k 1 1
(3) P 0
(4) I log (3)
::root o (4)
::endpatch
(5) L i:7
(6) D 0 o (5)
(7) D 1 o (5)
(8) I + (6) (7)
::out (8)
";
        let diags = lint_log(log);
        assert_eq!(diags.len(), 1);
        match &diags[0] {
            LintDiagnostic::Verify(v) => {
                assert_eq!(v.kind, VerifyErrorKind::PatchConflict);
            }
            other => panic!("expected patch conflict, got {other:?}"),
        }
    }
}
