//! Affine index expressions over a single loop variable.
//!
//! The parfor dependence checker models every index expression as
//! `coeff · i + offset` where `i` is the parfor loop variable, `coeff` is a
//! compile-time integer constant, and `offset` is loop-invariant (either a
//! known integer or a canonical symbolic form such as `((fi-1)*nHP)`).
//! Anything that cannot be brought into this shape is "not affine" and the
//! checker rejects conservatively.
//!
//! The key disjointness fact: if `coeff != 0`, two distinct iterations
//! `i1 != i2` produce distinct indices `coeff·i1 + b != coeff·i2 + b`, so
//! writes indexed by the expression never collide across iterations.

/// Loop-invariant part of an affine expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Offset {
    /// A compile-time integer constant.
    Const(i64),
    /// A loop-invariant value in canonical structural form; two equal strings
    /// denote the same value in every iteration.
    Sym(String),
}

impl Offset {
    fn sym_repr(&self) -> String {
        match self {
            Offset::Const(c) => c.to_string(),
            Offset::Sym(s) => s.clone(),
        }
    }
}

/// An affine expression `coeff · i + offset` in the parfor loop variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Affine {
    /// Integer coefficient of the loop variable.
    pub coeff: i64,
    /// Loop-invariant offset.
    pub offset: Offset,
}

impl Affine {
    /// The loop variable itself: `1·i + 0`.
    pub fn loop_var() -> Self {
        Affine {
            coeff: 1,
            offset: Offset::Const(0),
        }
    }

    /// A compile-time constant.
    pub fn konst(c: i64) -> Self {
        Affine {
            coeff: 0,
            offset: Offset::Const(c),
        }
    }

    /// A loop-invariant value identified by a canonical symbol (typically a
    /// variable name not written inside the loop body).
    pub fn invariant(sym: impl Into<String>) -> Self {
        Affine {
            coeff: 0,
            offset: Offset::Sym(sym.into()),
        }
    }

    /// True when the expression's value is loop-invariant.
    pub fn is_invariant(&self) -> bool {
        self.coeff == 0
    }

    /// True when distinct iterations are guaranteed distinct values.
    pub fn separates_iterations(&self) -> bool {
        self.coeff != 0
    }

    /// Structural equality of the index expression: same coefficient and the
    /// same canonical offset.
    pub fn same_index(&self, other: &Affine) -> bool {
        self.coeff == other.coeff && self.offset.sym_repr() == other.offset.sym_repr()
    }

    /// Sum of two affine expressions.
    pub fn add(&self, other: &Affine) -> Option<Affine> {
        Some(Affine {
            coeff: self.coeff.checked_add(other.coeff)?,
            offset: offset_combine(&self.offset, &other.offset, "+"),
        })
    }

    /// Difference of two affine expressions.
    pub fn sub(&self, other: &Affine) -> Option<Affine> {
        Some(Affine {
            coeff: self.coeff.checked_sub(other.coeff)?,
            offset: offset_combine(&self.offset, &other.offset, "-"),
        })
    }

    /// Product of two affine expressions. Defined when at least one side is
    /// invariant; a varying side may only be scaled by a *known integer*
    /// constant (scaling by a symbolic invariant would make the coefficient
    /// unprovably nonzero).
    pub fn mul(&self, other: &Affine) -> Option<Affine> {
        match (self.is_invariant(), other.is_invariant()) {
            (true, true) => Some(Affine {
                coeff: 0,
                offset: offset_combine(&self.offset, &other.offset, "*"),
            }),
            (true, false) => scale(other, &self.offset),
            (false, true) => scale(self, &other.offset),
            (false, false) => None, // quadratic in the loop variable
        }
    }
}

/// Scales a varying affine expression by an invariant factor.
fn scale(varying: &Affine, factor: &Offset) -> Option<Affine> {
    match factor {
        Offset::Const(c) => Some(Affine {
            coeff: varying.coeff.checked_mul(*c)?,
            offset: match &varying.offset {
                Offset::Const(b) => Offset::Const(b.checked_mul(*c)?),
                Offset::Sym(s) => Offset::Sym(format!("({s}*{c})")),
            },
        }),
        // Symbolic factor: cannot prove the scaled coefficient nonzero.
        Offset::Sym(_) => None,
    }
}

/// Combines two offsets; constants fold, anything else becomes a canonical
/// symbolic form.
fn offset_combine(a: &Offset, b: &Offset, op: &str) -> Offset {
    match (a, b, op) {
        (Offset::Const(x), Offset::Const(y), "+") => x
            .checked_add(*y)
            .map(Offset::Const)
            .unwrap_or_else(|| Offset::Sym(format!("({x}+{y})"))),
        (Offset::Const(x), Offset::Const(y), "-") => x
            .checked_sub(*y)
            .map(Offset::Const)
            .unwrap_or_else(|| Offset::Sym(format!("({x}-{y})"))),
        (Offset::Const(x), Offset::Const(y), "*") => x
            .checked_mul(*y)
            .map(Offset::Const)
            .unwrap_or_else(|| Offset::Sym(format!("({x}*{y})"))),
        _ => Offset::Sym(format!("({}{op}{})", a.sym_repr(), b.sym_repr())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loop_var_arithmetic() {
        let i = Affine::loop_var();
        // i + 1
        let e = i.add(&Affine::konst(1)).unwrap();
        assert_eq!(e.coeff, 1);
        assert_eq!(e.offset, Offset::Const(1));
        assert!(e.separates_iterations());
        // 3 * i - 2
        let e = Affine::konst(3)
            .mul(&i)
            .unwrap()
            .sub(&Affine::konst(2))
            .unwrap();
        assert_eq!(e.coeff, 3);
        assert_eq!(e.offset, Offset::Const(-2));
        // i - i is invariant
        let z = i.sub(&i).unwrap();
        assert!(z.is_invariant());
        assert!(!z.separates_iterations());
    }

    #[test]
    fn symbolic_invariant_offsets_compare_structurally() {
        // (fi-1)*nHP + i, built twice, compares equal.
        let build = || {
            let fi = Affine::invariant("fi");
            let nhp = Affine::invariant("nHP");
            let base = fi.sub(&Affine::konst(1)).unwrap().mul(&nhp).unwrap();
            base.add(&Affine::loop_var()).unwrap()
        };
        let (a, b) = (build(), build());
        assert_eq!(a.coeff, 1);
        assert!(a.separates_iterations());
        assert!(a.same_index(&b));
        // Different invariant offsets do not compare equal.
        let other = Affine::invariant("fj")
            .sub(&Affine::konst(1))
            .unwrap()
            .mul(&Affine::invariant("nHP"))
            .unwrap()
            .add(&Affine::loop_var())
            .unwrap();
        assert!(!a.same_index(&other));
    }

    #[test]
    fn unprovable_shapes_are_rejected() {
        let i = Affine::loop_var();
        // i * i is quadratic.
        assert!(i.mul(&i).is_none());
        // i * n with symbolic n: coefficient not provably nonzero.
        assert!(i.mul(&Affine::invariant("n")).is_none());
        // i * 0 is fine (degrades to an invariant).
        let z = i.mul(&Affine::konst(0)).unwrap();
        assert!(z.is_invariant());
    }

    #[test]
    fn invariant_products_stay_invariant() {
        let e = Affine::invariant("a").mul(&Affine::invariant("b")).unwrap();
        assert!(e.is_invariant());
        let f = Affine::invariant("a").mul(&Affine::invariant("b")).unwrap();
        assert!(e.same_index(&f));
    }
}
