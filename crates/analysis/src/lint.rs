//! Extensible lint-pass framework over a span-annotated program model
//! (DESIGN.md §14).
//!
//! The frontend lowers its AST + compiled program into an IR-agnostic
//! [`LintModel`]; each [`LintPass`] walks the model and emits source-anchored
//! [`Diagnostic`]s. This crate depends only on `lima-core`, so the model
//! deliberately carries just what the passes need: assignment/read events
//! with spans, loop structure, per-function determinism sources, and the
//! per-instruction cache-marking outcome.
//!
//! Registered default passes:
//!
//! | code    | severity | pass                                              |
//! |---------|----------|---------------------------------------------------|
//! | `L0201` | warning  | function ineligible for lineage reuse             |
//! | `L0202` | warning  | assigned value never used inside a function       |
//! | `L0203` | warning  | dead store (overwritten before any read)          |
//! | `L0204` | warning  | loop variable shadows an existing variable        |
//! | `L0205` | note     | redundant `no_cache` on a never-cached operation  |
//! | `L0206` | note     | `parfor` with a tiny constant trip count          |

use crate::determinism::{solve_call_graph, ClassSource};
use lima_core::opcodes::OpClass;
use lima_core::{sort_diagnostics, Diagnostic, Span};
use std::collections::{HashMap, HashSet};

/// One event in a straight-line region of the program, in source order.
#[derive(Debug, Clone)]
pub enum LintEvent {
    /// A variable assignment (whole or indexed; indexed writes list the
    /// target among `reads` since they preserve untouched cells).
    Assign {
        var: String,
        /// Span of the assignment statement.
        span: Option<Span>,
        /// Variables read by the right-hand side (and indices).
        reads: Vec<String>,
    },
    /// A bare read (print/write statements, branch-free expression uses).
    Read { vars: Vec<String> },
    /// A counted loop (`for` or `parfor`).
    Loop {
        var: String,
        /// Span of the loop-variable name in the header.
        var_span: Option<Span>,
        /// Span of the loop header (keyword through bounds).
        header_span: Option<Span>,
        parallel: bool,
        /// Trip count when all bounds are integer literals.
        const_trip: Option<i64>,
        /// Variables read by the loop bounds.
        bound_reads: Vec<String>,
        body: Vec<LintEvent>,
    },
    /// A conditional (`if`/`else`) or condition-controlled loop (`while`,
    /// modeled as a single arm whose events may repeat).
    Branch {
        cond_reads: Vec<String>,
        arms: Vec<Vec<LintEvent>>,
    },
}

/// A user-defined function in the model.
#[derive(Debug, Clone)]
pub struct LintFunction {
    pub name: String,
    /// Span of the function name at its definition site.
    pub name_span: Option<Span>,
    pub params: Vec<String>,
    pub outputs: Vec<String>,
    /// Determinism contribution of each instruction in the lowered body,
    /// paired with the source span of the construct it came from.
    pub sources: Vec<(ClassSource, Option<Span>)>,
    pub body: Vec<LintEvent>,
}

/// One lowered instruction's cache-marking outcome (for `no_cache` lints).
#[derive(Debug, Clone)]
pub struct LintOp {
    pub opcode: String,
    pub class: OpClass,
    /// True when the compiler excluded the instruction from caching.
    pub no_cache: bool,
    /// False for pure effects (print/write) that produce no value.
    pub has_outputs: bool,
    pub span: Option<Span>,
}

/// The span-annotated program model the passes run over.
#[derive(Debug, Clone, Default)]
pub struct LintModel {
    pub functions: Vec<LintFunction>,
    /// Script-level statements.
    pub body: Vec<LintEvent>,
    /// Every lowered instruction (script body and functions).
    pub ops: Vec<LintOp>,
}

/// A lint pass: walks the model and appends diagnostics.
pub trait LintPass {
    /// Stable pass name (kebab-case, shown in tooling).
    fn name(&self) -> &'static str;
    fn run(&self, model: &LintModel, out: &mut Vec<Diagnostic>);
}

/// An ordered collection of passes.
#[derive(Default)]
pub struct LintRegistry {
    passes: Vec<Box<dyn LintPass>>,
}

impl LintRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        LintRegistry { passes: Vec::new() }
    }

    /// The registry with all built-in passes installed.
    pub fn with_default_passes() -> Self {
        let mut r = Self::new();
        r.register(Box::new(ReuseEligibilityPass));
        r.register(Box::new(UnusedResultPass));
        r.register(Box::new(DeadStorePass));
        r.register(Box::new(ShadowPass));
        r.register(Box::new(NoCacheRedundancyPass));
        r.register(Box::new(ConstTripParforPass));
        r
    }

    /// Appends a pass; passes run in registration order.
    pub fn register(&mut self, pass: Box<dyn LintPass>) {
        self.passes.push(pass);
    }

    /// Registered pass names, in order.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Runs every pass and returns the findings in stable source order.
    pub fn run(&self, model: &LintModel) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for p in &self.passes {
            p.run(model, &mut out);
        }
        sort_diagnostics(&mut out);
        out
    }
}

// ------------------------------------------------------------ event helpers

/// True when any event in the region (recursively) reads *or writes* `var` —
/// used as a conservative barrier for the dead-store scan.
fn region_touches(events: &[LintEvent], var: &str) -> bool {
    events.iter().any(|e| match e {
        LintEvent::Assign { var: v, reads, .. } => v == var || reads.iter().any(|r| r == var),
        LintEvent::Read { vars } => vars.iter().any(|r| r == var),
        LintEvent::Loop {
            var: lv,
            bound_reads,
            body,
            ..
        } => lv == var || bound_reads.iter().any(|r| r == var) || region_touches(body, var),
        LintEvent::Branch { cond_reads, arms } => {
            cond_reads.iter().any(|r| r == var) || arms.iter().any(|a| region_touches(a, var))
        }
    })
}

/// Collects every variable read anywhere in the region.
fn collect_reads(events: &[LintEvent], out: &mut HashSet<String>) {
    for e in events {
        match e {
            LintEvent::Assign { reads, .. } => out.extend(reads.iter().cloned()),
            LintEvent::Read { vars } => out.extend(vars.iter().cloned()),
            LintEvent::Loop {
                bound_reads, body, ..
            } => {
                out.extend(bound_reads.iter().cloned());
                collect_reads(body, out);
            }
            LintEvent::Branch { cond_reads, arms } => {
                out.extend(cond_reads.iter().cloned());
                for a in arms {
                    collect_reads(a, out);
                }
            }
        }
    }
}

/// Collects the first assignment site of every variable in the region.
fn collect_first_assigns(events: &[LintEvent], out: &mut Vec<(String, Option<Span>)>) {
    for e in events {
        match e {
            LintEvent::Assign { var, span, .. } => {
                if !out.iter().any(|(v, _)| v == var) {
                    out.push((var.clone(), *span));
                }
            }
            LintEvent::Loop { body, .. } => collect_first_assigns(body, out),
            LintEvent::Branch { arms, .. } => {
                for a in arms {
                    collect_first_assigns(a, out);
                }
            }
            LintEvent::Read { .. } => {}
        }
    }
}

fn class_phrase(c: OpClass) -> &'static str {
    match c {
        OpClass::Deterministic => "deterministic",
        OpClass::Seeded => "seeded",
        OpClass::NonDeterministic => "non-deterministic",
        OpClass::SideEffecting => "side-effecting",
    }
}

// ------------------------------------------------------------------- passes

/// `L0201`: functions whose determinism class is not `Deterministic` are
/// excluded from function-level lineage reuse (paper §4.1); warn at the
/// definition with the first offending call/operation labeled.
pub struct ReuseEligibilityPass;

impl LintPass for ReuseEligibilityPass {
    fn name(&self) -> &'static str {
        "reuse-eligibility"
    }

    fn run(&self, model: &LintModel, out: &mut Vec<Diagnostic>) {
        let bodies: HashMap<String, Vec<ClassSource>> = model
            .functions
            .iter()
            .map(|f| {
                (
                    f.name.clone(),
                    f.sources.iter().map(|(s, _)| s.clone()).collect(),
                )
            })
            .collect();
        let classes = solve_call_graph(&bodies);
        for f in &model.functions {
            let class = classes
                .get(&f.name)
                .copied()
                .unwrap_or(OpClass::Deterministic);
            if class == OpClass::Deterministic {
                continue;
            }
            let mut d = Diagnostic::warning(
                "L0201",
                format!(
                    "function '{}' is {} and ineligible for lineage reuse",
                    f.name,
                    class_phrase(class)
                ),
            )
            .with_span_opt(f.name_span);
            // Label the first construct whose class taints the function.
            let offender = f
                .sources
                .iter()
                .find(|(s, _)| s.eval(&classes) != OpClass::Deterministic);
            if let Some((src, Some(sp))) = offender {
                let what = match src {
                    ClassSource::Fixed(c) => {
                        format!("this {} operation", class_phrase(*c))
                    }
                    ClassSource::Call(callee) => format!(
                        "this call to '{}' ({})",
                        callee,
                        class_phrase(
                            classes
                                .get(callee)
                                .copied()
                                .unwrap_or(OpClass::NonDeterministic)
                        )
                    ),
                };
                d = d.with_label(
                    *sp,
                    format!("{what} makes the enclosing function reuse-ineligible"),
                );
            }
            out.push(d.with_help(
                "function results are memoized by lineage only when the body is \
                 deterministic; pin seeds or hoist the effect out of the function",
            ));
        }
    }
}

/// `L0202`: a variable assigned inside a function body that is never read
/// and is not an output — the computation (and its lineage) is wasted.
pub struct UnusedResultPass;

impl LintPass for UnusedResultPass {
    fn name(&self) -> &'static str {
        "unused-result"
    }

    fn run(&self, model: &LintModel, out: &mut Vec<Diagnostic>) {
        for f in &model.functions {
            let mut reads = HashSet::new();
            collect_reads(&f.body, &mut reads);
            let mut assigns = Vec::new();
            collect_first_assigns(&f.body, &mut assigns);
            for (var, span) in assigns {
                if reads.contains(&var) || f.outputs.contains(&var) {
                    continue;
                }
                out.push(
                    Diagnostic::warning(
                        "L0202",
                        format!(
                            "value assigned to '{var}' in function '{}' is never used",
                            f.name
                        ),
                    )
                    .with_span_opt(span)
                    .with_help(
                        "the result is neither read nor returned; \
                         remove the assignment or add it to the outputs",
                    ),
                );
            }
        }
    }
}

/// `L0203`: an assignment overwritten by a later same-scope assignment with
/// no intervening read — the first store is dead.
pub struct DeadStorePass;

impl DeadStorePass {
    fn scan(&self, events: &[LintEvent], out: &mut Vec<Diagnostic>) {
        for (i, e) in events.iter().enumerate() {
            // Recurse into nested regions first.
            match e {
                LintEvent::Loop { body, .. } => self.scan(body, out),
                LintEvent::Branch { arms, .. } => {
                    for a in arms {
                        self.scan(a, out);
                    }
                }
                _ => {}
            }
            let LintEvent::Assign { var, span, .. } = e else {
                continue;
            };
            for later in &events[i + 1..] {
                if let LintEvent::Assign {
                    var: v2,
                    span: span2,
                    reads,
                } = later
                {
                    if v2 == var {
                        if !reads.iter().any(|r| r == var) {
                            let mut d = Diagnostic::warning(
                                "L0203",
                                format!(
                                    "value assigned to '{var}' is overwritten before it is read"
                                ),
                            )
                            .with_span_opt(*span);
                            if let Some(sp2) = span2 {
                                d = d.with_label(*sp2, "overwritten here");
                            }
                            out.push(d.with_help(
                                "the first assignment is a dead store; \
                                 its result (and lineage) is discarded",
                            ));
                        }
                        break;
                    }
                }
                // Any other touch of the variable (read, or a conditional /
                // nested write we cannot order) ends the scan conservatively.
                if region_touches(std::slice::from_ref(later), var) {
                    break;
                }
            }
        }
    }
}

impl LintPass for DeadStorePass {
    fn name(&self) -> &'static str {
        "dead-store"
    }

    fn run(&self, model: &LintModel, out: &mut Vec<Diagnostic>) {
        self.scan(&model.body, out);
        for f in &model.functions {
            self.scan(&f.body, out);
        }
    }
}

/// `L0204`: a loop variable that shadows an existing variable. The outer
/// value keeps its lineage, but reads inside the loop silently resolve to
/// the iteration counter — a classic source of wrong-but-plausible results.
pub struct ShadowPass;

impl ShadowPass {
    fn walk(
        &self,
        events: &[LintEvent],
        defined: &mut HashMap<String, Option<Span>>,
        out: &mut Vec<Diagnostic>,
    ) {
        for e in events {
            match e {
                LintEvent::Assign { var, span, .. } => {
                    defined.entry(var.clone()).or_insert(*span);
                }
                LintEvent::Loop {
                    var,
                    var_span,
                    body,
                    ..
                } => {
                    if let Some(orig) = defined.get(var) {
                        let mut d = Diagnostic::warning(
                            "L0204",
                            format!("loop variable '{var}' shadows an existing variable"),
                        )
                        .with_span_opt(*var_span);
                        if let Some(osp) = orig {
                            d = d.with_label(*osp, "first defined here");
                        }
                        out.push(
                            d.with_help(
                                "inside the loop, '{var}' is the iteration counter; lineage \
                             recorded for the outer value no longer describes what reads see"
                                    .replace("{var}", var),
                            ),
                        );
                    }
                    self.walk(body, defined, out);
                    defined.entry(var.clone()).or_insert(*var_span);
                }
                LintEvent::Branch { arms, .. } => {
                    for a in arms {
                        self.walk(a, defined, out);
                    }
                }
                LintEvent::Read { .. } => {}
            }
        }
    }
}

impl LintPass for ShadowPass {
    fn name(&self) -> &'static str {
        "shadowing"
    }

    fn run(&self, model: &LintModel, out: &mut Vec<Diagnostic>) {
        let mut defined = HashMap::new();
        self.walk(&model.body, &mut defined, out);
        for f in &model.functions {
            let mut defined: HashMap<String, Option<Span>> =
                f.params.iter().map(|p| (p.clone(), None)).collect();
            self.walk(&f.body, &mut defined, out);
        }
    }
}

/// `L0205`: `no_cache` on an operation that could never be cached anyway
/// (side-effecting, or producing no value).
pub struct NoCacheRedundancyPass;

impl LintPass for NoCacheRedundancyPass {
    fn name(&self) -> &'static str {
        "no-cache-redundancy"
    }

    fn run(&self, model: &LintModel, out: &mut Vec<Diagnostic>) {
        for op in &model.ops {
            if !op.no_cache {
                continue;
            }
            if op.class == OpClass::SideEffecting || !op.has_outputs {
                out.push(
                    Diagnostic::note(
                        "L0205",
                        format!(
                            "redundant no_cache: '{}' is never cached ({})",
                            op.opcode,
                            if op.has_outputs {
                                "it has side effects"
                            } else {
                                "it produces no value"
                            }
                        ),
                    )
                    .with_span_opt(op.span)
                    .with_help(
                        "the loop-carried taint pass unmarked this instruction, but \
                         side-effecting operations never enter the lineage cache",
                    ),
                );
            }
        }
    }
}

/// `L0206`: a `parfor` whose trip count is a tiny constant — worker spawn
/// and result-merge overhead likely dominates the parallel gain.
pub struct ConstTripParforPass;

impl ConstTripParforPass {
    fn walk(&self, events: &[LintEvent], out: &mut Vec<Diagnostic>) {
        for e in events {
            match e {
                LintEvent::Loop {
                    parallel,
                    const_trip,
                    header_span,
                    body,
                    ..
                } => {
                    if *parallel {
                        if let Some(n) = const_trip {
                            if *n <= 2 {
                                out.push(
                                    Diagnostic::note(
                                        "L0206",
                                        format!(
                                            "parfor has a constant trip count of {n}; \
                                             parallel execution gains little"
                                        ),
                                    )
                                    .with_span_opt(*header_span)
                                    .with_help(
                                        "worker spawn and result merging cost more than \
                                         {n} iteration(s) save; consider a plain for loop"
                                            .replace("{n}", &n.to_string()),
                                    ),
                                );
                            }
                        }
                    }
                    self.walk(body, out);
                }
                LintEvent::Branch { arms, .. } => {
                    for a in arms {
                        self.walk(a, out);
                    }
                }
                _ => {}
            }
        }
    }
}

impl LintPass for ConstTripParforPass {
    fn name(&self) -> &'static str {
        "const-trip-parfor"
    }

    fn run(&self, model: &LintModel, out: &mut Vec<Diagnostic>) {
        self.walk(&model.body, out);
        for f in &model.functions {
            self.walk(&f.body, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assign(var: &str, at: u32, reads: &[&str]) -> LintEvent {
        LintEvent::Assign {
            var: var.into(),
            span: Some(Span::new(at, at + 4)),
            reads: reads.iter().map(|s| s.to_string()).collect(),
        }
    }

    fn codes(ds: &[Diagnostic]) -> Vec<&str> {
        ds.iter().map(|d| d.code.as_str()).collect()
    }

    #[test]
    fn reuse_eligibility_flags_nondeterministic_functions() {
        let model = LintModel {
            functions: vec![
                LintFunction {
                    name: "noisy".into(),
                    name_span: Some(Span::new(0, 5)),
                    params: vec![],
                    outputs: vec!["y".into()],
                    sources: vec![(
                        ClassSource::Fixed(OpClass::NonDeterministic),
                        Some(Span::new(10, 20)),
                    )],
                    body: vec![assign("y", 10, &[])],
                },
                LintFunction {
                    name: "pure".into(),
                    name_span: Some(Span::new(30, 34)),
                    params: vec![],
                    outputs: vec!["y".into()],
                    sources: vec![(ClassSource::Fixed(OpClass::Deterministic), None)],
                    body: vec![assign("y", 40, &[])],
                },
                LintFunction {
                    name: "caller".into(),
                    name_span: Some(Span::new(50, 56)),
                    params: vec![],
                    outputs: vec!["y".into()],
                    sources: vec![(ClassSource::Call("noisy".into()), Some(Span::new(60, 70)))],
                    body: vec![assign("y", 60, &["noisy"])],
                },
            ],
            ..Default::default()
        };
        let ds = LintRegistry::with_default_passes().run(&model);
        let l0201: Vec<_> = ds.iter().filter(|d| d.code == "L0201").collect();
        assert_eq!(l0201.len(), 2, "noisy and caller flagged: {ds:?}");
        assert!(l0201.iter().all(|d| d.primary.is_some()));
        assert!(l0201.iter().all(|d| !d.labels.is_empty()));
        assert!(l0201[1].labels[0].message.contains("call to 'noisy'"));
    }

    #[test]
    fn unused_result_only_fires_in_functions() {
        let model = LintModel {
            functions: vec![LintFunction {
                name: "f".into(),
                name_span: None,
                params: vec!["x".into()],
                outputs: vec!["y".into()],
                sources: vec![],
                body: vec![assign("waste", 10, &["x"]), assign("y", 20, &["x"])],
            }],
            // Script-level unused assignments are results, not waste.
            body: vec![assign("final", 0, &[])],
            ..Default::default()
        };
        let ds = LintRegistry::with_default_passes().run(&model);
        let unused: Vec<_> = ds.iter().filter(|d| d.code == "L0202").collect();
        assert_eq!(unused.len(), 1);
        assert!(unused[0].message.contains("'waste'"));
    }

    #[test]
    fn dead_store_requires_no_intervening_read() {
        let body = vec![
            assign("x", 0, &[]),
            assign("x", 10, &[]), // overwrites without reading: dead store at 0
            assign("y", 20, &[]),
            assign("y", 30, &["y"]), // y = y + 1: not dead
            assign("z", 40, &[]),
            LintEvent::Read {
                vars: vec!["z".into()],
            },
            assign("z", 50, &[]), // read intervenes: not dead
        ];
        let model = LintModel {
            body,
            ..Default::default()
        };
        let mut out = Vec::new();
        DeadStorePass.run(&model, &mut out);
        assert_eq!(codes(&out), vec!["L0203"]);
        assert_eq!(out[0].primary, Some(Span::new(0, 4)));
        assert_eq!(out[0].labels[0].span, Span::new(10, 14));
    }

    #[test]
    fn dead_store_barriers_on_loops_that_touch_the_var() {
        let body = vec![
            assign("s", 0, &[]),
            LintEvent::Loop {
                var: "i".into(),
                var_span: None,
                header_span: None,
                parallel: false,
                const_trip: Some(10),
                bound_reads: vec![],
                body: vec![assign("s", 10, &["s", "i"])],
            },
            assign("s", 20, &["s"]),
        ];
        let model = LintModel {
            body,
            ..Default::default()
        };
        let mut out = Vec::new();
        DeadStorePass.run(&model, &mut out);
        assert!(out.is_empty(), "loop reads s: {out:?}");
    }

    #[test]
    fn shadowing_flags_loop_vars_over_existing_names() {
        let body = vec![
            assign("i", 0, &[]),
            LintEvent::Loop {
                var: "i".into(),
                var_span: Some(Span::new(20, 21)),
                header_span: Some(Span::new(14, 30)),
                parallel: false,
                const_trip: None,
                bound_reads: vec![],
                body: vec![],
            },
        ];
        let model = LintModel {
            body,
            ..Default::default()
        };
        let ds = LintRegistry::with_default_passes().run(&model);
        let shadow: Vec<_> = ds.iter().filter(|d| d.code == "L0204").collect();
        assert_eq!(shadow.len(), 1);
        assert_eq!(shadow[0].primary, Some(Span::new(20, 21)));
        assert_eq!(shadow[0].labels[0].message, "first defined here");
    }

    #[test]
    fn no_cache_redundancy_notes_side_effecting_marks() {
        let model = LintModel {
            ops: vec![
                LintOp {
                    opcode: "print".into(),
                    class: OpClass::SideEffecting,
                    no_cache: true,
                    has_outputs: false,
                    span: Some(Span::new(5, 15)),
                },
                LintOp {
                    opcode: "+".into(),
                    class: OpClass::Deterministic,
                    no_cache: true, // loop-carried: legitimate, no lint
                    has_outputs: true,
                    span: None,
                },
            ],
            ..Default::default()
        };
        let ds = LintRegistry::with_default_passes().run(&model);
        let notes: Vec<_> = ds.iter().filter(|d| d.code == "L0205").collect();
        assert_eq!(notes.len(), 1);
        assert!(notes[0].message.contains("print"));
    }

    #[test]
    fn const_trip_parfor_notes_tiny_loops() {
        let mk = |parallel: bool, trip: Option<i64>| LintEvent::Loop {
            var: "i".into(),
            var_span: None,
            header_span: Some(Span::new(0, 16)),
            parallel,
            const_trip: trip,
            bound_reads: vec![],
            body: vec![],
        };
        let model = LintModel {
            body: vec![mk(true, Some(2)), mk(true, Some(100)), mk(false, Some(1))],
            ..Default::default()
        };
        let ds = LintRegistry::with_default_passes().run(&model);
        let notes: Vec<_> = ds.iter().filter(|d| d.code == "L0206").collect();
        assert_eq!(notes.len(), 1);
        assert!(notes[0].message.contains("trip count of 2"));
    }

    #[test]
    fn registry_reports_pass_names_and_sorts_output() {
        let r = LintRegistry::with_default_passes();
        assert_eq!(
            r.pass_names(),
            vec![
                "reuse-eligibility",
                "unused-result",
                "dead-store",
                "shadowing",
                "no-cache-redundancy",
                "const-trip-parfor"
            ]
        );
        // Findings come back ordered by source position.
        let model = LintModel {
            body: vec![
                assign("b", 50, &[]),
                assign("b", 60, &[]),
                assign("a", 0, &[]),
                assign("a", 10, &[]),
            ],
            ..Default::default()
        };
        let ds = r.run(&model);
        assert_eq!(codes(&ds), vec!["L0203", "L0203"]);
        assert!(ds[0].primary < ds[1].primary);
    }
}
