//! Property tests of the lineage verifier / linter: randomly generated
//! valid plain and deduplicated DAGs always pass, and a single textual
//! mutation of a serialized log (edge swap, patch path-key flip, dangling
//! input, id redefinition, arity flip) is always rejected with the right
//! diagnostic class.

use lima_analysis::verify::{verify_dag, VerifyErrorKind};
use lima_analysis::{lint_log, LintDiagnostic};
use lima_core::lineage::item::LinRef;
use lima_core::lineage::serialize::serialize_lineage;
use lima_core::lineage::{DedupPatch, LineageItem};
use proptest::prelude::*;
use std::sync::Arc;

/// Deterministic splitmix64 — keeps DAG shapes reproducible per seed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

const OPS: [&str; 6] = ["+", "*", "exp", "t", "tsmm", "%*%"];

/// A random plain (patch-free) DAG: leaves are literals/reads, inner nodes
/// pick inputs among earlier nodes, and a fold guarantees one root reaches
/// every node.
fn gen_plain_dag(seed: u64, n: usize) -> LinRef {
    let mut rng = Rng(seed);
    let mut nodes: Vec<LinRef> = vec![LineageItem::op_with_data("read", "X", vec![])];
    for k in 1..n {
        let node = match rng.below(5) {
            0 => LineageItem::literal(format!("f:{k}")),
            1 => LineageItem::op_with_data("read", format!("in{k}"), vec![]),
            _ => {
                let nin = 1 + rng.below(2);
                let ins = (0..nin)
                    .map(|_| nodes[rng.below(nodes.len())].clone())
                    .collect();
                LineageItem::op(OPS[rng.below(OPS.len())], ins)
            }
        };
        nodes.push(node);
    }
    let mut root = nodes[0].clone();
    for node in nodes.into_iter().skip(1) {
        root = LineageItem::op("+", vec![root, node]);
    }
    root
}

/// A random deduplicated DAG: two distinct patches over the same block key
/// (path keys 0 and 1 — i.e. different taken-path bitvectors), chained over
/// `iters` iterations with both paths exercised.
fn gen_dedup_dag(seed: u64, iters: usize) -> LinRef {
    let mut rng = Rng(seed ^ 0xD5D0);
    let body0 = LineageItem::op(
        "+",
        vec![
            LineageItem::op("exp", vec![LineageItem::placeholder(0)]),
            LineageItem::placeholder(1),
        ],
    );
    let body1 = LineageItem::op(
        "*",
        vec![LineageItem::placeholder(0), LineageItem::placeholder(1)],
    );
    let patches = [
        DedupPatch::new("loop:prop", 0, 2, vec![("o".into(), body0)]),
        DedupPatch::new("loop:prop", 1, 2, vec![("o".into(), body1)]),
    ];
    let aux = LineageItem::op_with_data("read", "aux", vec![]);
    let mut cur = LineageItem::op_with_data("read", "acc", vec![]);
    for i in 0..iters.max(2) {
        // First two iterations take each path once so both patches appear.
        let which = if i < 2 { i } else { rng.below(2) };
        cur = LineageItem::dedup(Arc::clone(&patches[which]), "o", vec![cur, aux.clone()]);
    }
    cur
}

/// `(line-index, line)` of the definition the `::out` directive points at.
fn out_def_line(log: &str) -> usize {
    let out_id = log
        .lines()
        .find_map(|l| l.strip_prefix("::out "))
        .expect("log has ::out")
        .trim();
    log.lines()
        .position(|l| l.starts_with(&format!("{out_id} ")))
        .expect("out id is defined")
}

/// Rewrites the first op line before `stop` that has an input, replacing its
/// first input reference with `new_ref`. Returns `None` when no such line
/// exists (degenerate DAG shapes).
fn swap_first_input(log: &str, stop: usize, new_ref: &str) -> Option<String> {
    let mut lines: Vec<String> = log.lines().map(str::to_string).collect();
    for line in lines.iter_mut().take(stop) {
        let toks: Vec<&str> = line.split(' ').collect();
        if toks.len() >= 4 && toks[1] == "I" && toks[3].starts_with('(') && toks[3] != new_ref {
            let mut new_toks: Vec<String> = toks.iter().map(|t| t.to_string()).collect();
            new_toks[3] = new_ref.to_string();
            *line = new_toks.join(" ");
            return Some(lines.join("\n"));
        }
    }
    None
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // ------------------------------------------------ valid DAGs are accepted

    #[test]
    fn random_plain_dags_verify_and_lint_clean(seed in 0u64..10_000, n in 3usize..40) {
        let root = gen_plain_dag(seed, n);
        prop_assert!(verify_dag(&root).is_ok());
        let diags = lint_log(&serialize_lineage(&root));
        prop_assert!(diags.is_empty(), "unexpected diagnostics: {diags:?}");
    }

    #[test]
    fn random_dedup_dags_verify_and_lint_clean(seed in 0u64..10_000, iters in 2usize..20) {
        let root = gen_dedup_dag(seed, iters);
        prop_assert!(verify_dag(&root).is_ok());
        let diags = lint_log(&serialize_lineage(&root));
        prop_assert!(diags.is_empty(), "unexpected diagnostics: {diags:?}");
    }

    // ------------------------------------- single mutations are rejected with
    // ------------------------------------- the right diagnostic class

    #[test]
    fn edge_swap_to_forward_reference_rejected(seed in 0u64..10_000, n in 5usize..40) {
        let root = gen_plain_dag(seed, n);
        let log = serialize_lineage(&root);
        // Point an early edge at the root, which is defined later in the log:
        // a forward reference the parser must reject.
        let root_ref = format!("({})", root.id());
        if let Some(mutated) = swap_first_input(&log, out_def_line(&log), &root_ref) {
            let diags = lint_log(&mutated);
            prop_assert!(!diags.is_empty());
            prop_assert!(
                diags.iter().any(|d| matches!(d, LintDiagnostic::Parse(_))),
                "expected a parse diagnostic, got {diags:?}"
            );
        }
    }

    #[test]
    fn dangling_input_rejected(seed in 0u64..10_000, n in 5usize..40) {
        let root = gen_plain_dag(seed, n);
        let log = serialize_lineage(&root);
        // An input id nothing in the log ever defines.
        if let Some(mutated) = swap_first_input(&log, usize::MAX, "(18446744073709551615)") {
            let diags = lint_log(&mutated);
            prop_assert!(!diags.is_empty());
            prop_assert!(
                diags.iter().any(|d| matches!(d, LintDiagnostic::Parse(_))),
                "expected a parse diagnostic, got {diags:?}"
            );
        }
    }

    #[test]
    fn patch_path_key_flip_rejected(seed in 0u64..10_000, iters in 2usize..20) {
        let root = gen_dedup_dag(seed, iters);
        let log = serialize_lineage(&root);
        // Flip path key 1 to 0: two different bodies now claim the same
        // (block-key, path-bitvector) identity.
        let mutated: Vec<String> = log
            .lines()
            .map(|l| {
                let toks: Vec<&str> = l.split(' ').collect();
                if toks[0] == "::patch" && toks.len() == 5 && toks[3] == "1" {
                    format!("{} {} {} 0 {}", toks[0], toks[1], toks[2], toks[4])
                } else {
                    l.to_string()
                }
            })
            .collect();
        let diags = lint_log(&mutated.join("\n"));
        prop_assert!(
            diags.iter().any(|d| matches!(
                d,
                LintDiagnostic::Verify(e) if e.kind == VerifyErrorKind::PatchConflict
            )),
            "expected patch-conflict, got {diags:?}"
        );
    }

    #[test]
    fn node_id_redefinition_rejected(seed in 0u64..10_000, n in 3usize..40) {
        let root = gen_plain_dag(seed, n);
        let log = serialize_lineage(&root);
        // Redefine the first node's id with different content just before
        // ::out — earlier uses would silently rebind.
        let first_id = log
            .lines()
            .find(|l| l.starts_with('('))
            .and_then(|l| l.split(')').next())
            .map(|t| t.trim_start_matches('(').to_string())
            .expect("log has an item line");
        let mutated = log.replace("::out", &format!("({first_id}) L clobbered\n::out"));
        let diags = lint_log(&mutated);
        prop_assert!(
            diags.iter().any(|d| matches!(
                d,
                LintDiagnostic::DuplicateId { id, .. } if id.to_string() == first_id
            )),
            "expected duplicate-id on node {first_id}, got {diags:?}"
        );
    }

    #[test]
    fn patch_arity_flip_rejected(seed in 0u64..10_000, iters in 2usize..20) {
        let root = gen_dedup_dag(seed, iters);
        let log = serialize_lineage(&root);
        // Bump a patch's declared input count: every dedup item of that patch
        // now has too few inputs.
        let mutated: Vec<String> = log
            .lines()
            .map(|l| {
                let toks: Vec<&str> = l.split(' ').collect();
                if toks[0] == "::patch" && toks.len() == 5 && toks[3] == "0" {
                    let n: usize = toks[4].parse().expect("numeric arity");
                    format!("{} {} {} {} {}", toks[0], toks[1], toks[2], toks[3], n + 1)
                } else {
                    l.to_string()
                }
            })
            .collect();
        let diags = lint_log(&mutated.join("\n"));
        prop_assert!(!diags.is_empty());
        prop_assert!(
            diags.iter().any(|d| matches!(d, LintDiagnostic::Parse(_))),
            "expected a parse diagnostic, got {diags:?}"
        );
    }
}

/// A bare placeholder outside any patch body parses (slots are only range
/// checked inside patches) but must be caught by the structural verifier.
#[test]
fn placeholder_outside_patch_rejected() {
    let log = "(1) P 0\n(2) I exp (1)\n::out (2)\n";
    let diags = lint_log(log);
    assert!(
        diags.iter().any(|d| matches!(
            d,
            LintDiagnostic::Verify(e) if e.kind == VerifyErrorKind::PlaceholderOutsidePatch
        )),
        "expected placeholder-outside-patch, got {diags:?}"
    );
}
