//! Property tests of the matrix substrate: algebraic laws of the kernels the
//! runtime and the partial-reuse rewrites depend on.

use lima_matrix::ops::{
    cbind, col_agg, ew_matrix_matrix, ew_matrix_scalar, ew_unary, full_agg, matmult, rbind,
    row_agg, slice, transpose, tsmm, AggFn, BinOp, TsmmSide, UnOp,
};
use lima_matrix::rand_gen::{rand_matrix, sample_without_replacement, RandDist};
use lima_matrix::{CsrMatrix, DenseMatrix};
use proptest::prelude::*;

fn det_matrix(rows: usize, cols: usize, seed: u64) -> DenseMatrix {
    DenseMatrix::from_fn(rows.max(1), cols.max(1), |i, j| {
        let h = (i as u64)
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add((j as u64).wrapping_mul(0xBF58476D1CE4E5B9))
            .wrapping_add(seed.wrapping_mul(0x94D049BB133111EB));
        ((h >> 20) % 1000) as f64 / 100.0 - 5.0
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_distributes_over_addition((m, k, n) in (1usize..7, 1usize..7, 1usize..7),
                                        seed in 0u64..1000) {
        let a = det_matrix(m, k, seed);
        let b = det_matrix(k, n, seed ^ 1);
        let c = det_matrix(k, n, seed ^ 2);
        let lhs = matmult(&a, &ew_matrix_matrix(BinOp::Add, &b, &c).unwrap()).unwrap();
        let rhs = ew_matrix_matrix(
            BinOp::Add,
            &matmult(&a, &b).unwrap(),
            &matmult(&a, &c).unwrap(),
        ).unwrap();
        prop_assert!(lhs.rel_eq(&rhs, 1e-9));
    }

    #[test]
    fn transpose_reverses_products((m, k, n) in (1usize..7, 1usize..7, 1usize..7),
                                   seed in 0u64..1000) {
        let a = det_matrix(m, k, seed);
        let b = det_matrix(k, n, seed ^ 3);
        let lhs = transpose(&matmult(&a, &b).unwrap());
        let rhs = matmult(&transpose(&b), &transpose(&a)).unwrap();
        prop_assert!(lhs.rel_eq(&rhs, 1e-9));
    }

    #[test]
    fn tsmm_equals_explicit_gram((m, n) in (1usize..10, 1usize..8), seed in 0u64..1000) {
        let x = det_matrix(m, n, seed);
        let explicit = matmult(&transpose(&x), &x).unwrap();
        prop_assert!(tsmm(&x, TsmmSide::Left).unwrap().rel_eq(&explicit, 1e-9));
        let explicit_r = matmult(&x, &transpose(&x)).unwrap();
        prop_assert!(tsmm(&x, TsmmSide::Right).unwrap().rel_eq(&explicit_r, 1e-9));
    }

    #[test]
    fn cbind_rbind_slice_round_trip((m, k1, k2) in (1usize..8, 1usize..6, 1usize..6),
                                    seed in 0u64..1000) {
        let a = det_matrix(m, k1, seed);
        let b = det_matrix(m, k2, seed ^ 4);
        let c = cbind(&a, &b).unwrap();
        prop_assert!(slice(&c, 0, m - 1, 0, k1 - 1).unwrap().approx_eq(&a, 0.0));
        prop_assert!(slice(&c, 0, m - 1, k1, k1 + k2 - 1).unwrap().approx_eq(&b, 0.0));
        let ta = det_matrix(k1, m, seed ^ 5);
        let tb = det_matrix(k2, m, seed ^ 6);
        let r = rbind(&ta, &tb).unwrap();
        prop_assert!(slice(&r, 0, k1 - 1, 0, m - 1).unwrap().approx_eq(&ta, 0.0));
        prop_assert!(slice(&r, k1, k1 + k2 - 1, 0, m - 1).unwrap().approx_eq(&tb, 0.0));
    }

    #[test]
    fn transpose_swaps_cbind_rbind((m, k1, k2) in (1usize..8, 1usize..6, 1usize..6),
                                   seed in 0u64..1000) {
        let a = det_matrix(m, k1, seed);
        let b = det_matrix(m, k2, seed ^ 7);
        let lhs = transpose(&cbind(&a, &b).unwrap());
        let rhs = rbind(&transpose(&a), &transpose(&b)).unwrap();
        prop_assert!(lhs.approx_eq(&rhs, 0.0));
    }

    #[test]
    fn aggregates_are_consistent((m, n) in (1usize..9, 1usize..9), seed in 0u64..1000) {
        let x = det_matrix(m, n, seed);
        let total = full_agg(&x, AggFn::Sum);
        let via_cols = full_agg(&col_agg(&x, AggFn::Sum), AggFn::Sum);
        let via_rows = full_agg(&row_agg(&x, AggFn::Sum), AggFn::Sum);
        prop_assert!((total - via_cols).abs() <= 1e-9 * total.abs().max(1.0));
        prop_assert!((total - via_rows).abs() <= 1e-9 * total.abs().max(1.0));
        prop_assert!(full_agg(&x, AggFn::Min) <= full_agg(&x, AggFn::Max));
    }

    #[test]
    fn elementwise_scalar_laws(v in -100.0f64..100.0, (m, n) in (1usize..6, 1usize..6),
                               seed in 0u64..1000) {
        let x = det_matrix(m, n, seed);
        // x + v - v == x
        let back = ew_matrix_scalar(BinOp::Sub, &ew_matrix_scalar(BinOp::Add, &x, v), v);
        prop_assert!(back.rel_eq(&x, 1e-9));
        // abs(x) >= 0, sign(x)*abs(x) == x
        let a = ew_unary(UnOp::Abs, &x);
        prop_assert!(a.data().iter().all(|&c| c >= 0.0));
        let s = ew_unary(UnOp::Sign, &x);
        let prod = ew_matrix_matrix(BinOp::Mul, &s, &a).unwrap();
        prop_assert!(prod.rel_eq(&x, 1e-12));
    }

    #[test]
    fn csr_round_trip_and_spmm((m, k, n) in (1usize..8, 1usize..8, 1usize..6),
                               seed in 0u64..1000) {
        let mut d = det_matrix(m, k, seed);
        // Sparsify deterministically.
        for (idx, v) in d.data_mut().iter_mut().enumerate() {
            if idx % 3 != 0 {
                *v = 0.0;
            }
        }
        let sp = CsrMatrix::from_dense(&d);
        prop_assert!(sp.to_dense().approx_eq(&d, 0.0));
        let b = det_matrix(k, n, seed ^ 9);
        let fast = sp.matmult_dense(&b).unwrap();
        let slow = matmult(&d, &b).unwrap();
        prop_assert!(fast.rel_eq(&slow, 1e-9));
    }

    #[test]
    fn rand_respects_seed_and_bounds(seed in 0u64..10_000, (m, n) in (1usize..12, 1usize..12)) {
        let a = rand_matrix(m, n, RandDist::Uniform { min: -1.0, max: 1.0 }, 1.0, seed).unwrap();
        let b = rand_matrix(m, n, RandDist::Uniform { min: -1.0, max: 1.0 }, 1.0, seed).unwrap();
        prop_assert!(a.approx_eq(&b, 0.0));
        prop_assert!(a.data().iter().all(|&v| (-1.0..1.0).contains(&v)));
    }

    #[test]
    fn sample_is_a_partial_permutation(range in 1usize..200, seed in 0u64..10_000) {
        let size = range / 2 + 1;
        let s = sample_without_replacement(range, size, seed).unwrap();
        let mut seen = std::collections::HashSet::new();
        for &v in s.data() {
            prop_assert!(v >= 1.0 && v <= range as f64);
            prop_assert!(seen.insert(v as i64));
        }
    }

    #[test]
    fn solve_inverts_spd_systems(n in 1usize..12, seed in 0u64..1000) {
        let x = det_matrix(n + 3, n, seed);
        let mut a = tsmm(&x, TsmmSide::Left).unwrap();
        for i in 0..n {
            a.set(i, i, a.get(i, i) + (n as f64));
        }
        let b = det_matrix(n, 2, seed ^ 11);
        let sol = lima_matrix::ops::solve(&a, &b).unwrap();
        let back = matmult(&a, &sol).unwrap();
        prop_assert!(back.rel_eq(&b, 1e-7));
    }

    #[test]
    fn eigen_reconstructs_symmetric_matrices(n in 1usize..8, seed in 0u64..500) {
        let x = det_matrix(n + 2, n, seed);
        let a = tsmm(&x, TsmmSide::Left).unwrap();
        let r = lima_matrix::ops::eigen_symmetric(&a).unwrap();
        // A == V diag(λ) Vᵀ
        let vl = DenseMatrix::from_fn(n, n, |i, j| r.vectors.get(i, j) * r.values.get(j, 0));
        let back = matmult(&vl, &transpose(&r.vectors)).unwrap();
        prop_assert!(back.rel_eq(&a, 1e-6));
    }
}
