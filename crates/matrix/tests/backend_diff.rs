//! Differential suite: the Optimized backend must be **bit-identical** to the
//! Reference backend on every kernel, for every shape the dispatch layer can
//! hand it — including degenerate (0×N, N×0, 1×N), non-tile-multiple, and
//! highly sparse operands. Reference is the ground truth; any drift here is a
//! bug in the Optimized engine, never an acceptable rounding difference
//! (both engines accumulate each output element in the same ascending-index
//! chain, so for finite inputs the results agree to the last bit).
//!
//! Also pins the two dispatch-level guarantees that ride on the backend
//! split: `matmult` routes identically (CSR vs dense GEMM) no matter which
//! backend is active, and the Optimized right-side `tsmm` never materializes
//! a transpose (`tsmm_right_transposes` counter stays flat).

use lima_matrix::backend::{
    backend_for, set_backend, tsmm_right_transposes, BackendKind, KernelBackend,
};
use lima_matrix::ops::elementwise::{BinOp, UnOp};
use lima_matrix::ops::matmult::{matmult, uses_sparse_dispatch};
use lima_matrix::DenseMatrix;
use proptest::prelude::*;

const REF: &dyn KernelBackend = &lima_matrix::backend::ReferenceBackend;
const OPT: &dyn KernelBackend = &lima_matrix::backend::OptimizedBackend;

/// Deterministic matrix with controllable density: `density` per mille of
/// cells are non-zero (0 ⇒ all-zero matrix, 1000 ⇒ fully dense). Values span
/// both signs and several magnitudes so accumulation order differences would
/// actually show up in the low bits.
fn det(rows: usize, cols: usize, seed: u64, density: u64) -> DenseMatrix {
    DenseMatrix::from_fn(rows, cols, |i, j| {
        let mut z = seed ^ (((i * cols.max(1) + j) as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        if z % 1000 >= density {
            0.0
        } else {
            ((z >> 40) as f64 / (1u64 << 24) as f64) * 8.0 - 4.0
        }
    })
}

/// Bit-exact equality with a first-divergence diagnostic.
fn assert_bits_eq(got: &DenseMatrix, want: &DenseMatrix, what: &str) {
    assert_eq!(got.shape(), want.shape(), "{what}: shape mismatch");
    for (idx, (g, w)) in got.data().iter().zip(want.data().iter()).enumerate() {
        assert!(
            g.to_bits() == w.to_bits(),
            "{what}: first bit divergence at flat index {idx}: \
             optimized {g:?} ({:#018x}) vs reference {w:?} ({:#018x})",
            g.to_bits(),
            w.to_bits()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// GEMM over random shapes — degenerate dims, tile tails, and sparsity
    /// levels from all-zero through fully dense (the zero-skip in the scalar
    /// kernel must not perturb the bit pattern).
    #[test]
    fn gemm_bit_exact((m, k, n) in (0usize..33, 0usize..33, 0usize..33),
                      seed in 0u64..1_000,
                      density in prop_oneof![Just(0u64), Just(30), Just(500), Just(1000)]) {
        let a = det(m, k, seed, density);
        let b = det(k, n, seed ^ 1, density.max(500));
        let got = OPT.gemm(&a, &b).unwrap();
        let want = REF.gemm(&a, &b).unwrap();
        assert_bits_eq(&got, &want, &format!("gemm {m}x{k}x{n} density {density}"));
    }

    /// Both `tsmm` sides. Shapes stay under the parallel partial-sum
    /// threshold, where the contract is bit-exactness (above it, Reference's
    /// right-side split over the shared dimension reassociates and the
    /// backends are only approximately equal — documented divergence).
    #[test]
    fn tsmm_bit_exact((m, n) in (0usize..33, 0usize..33),
                      seed in 0u64..1_000,
                      density in prop_oneof![Just(0u64), Just(30), Just(1000)]) {
        let x = det(m, n, seed, density);
        assert_bits_eq(
            &OPT.tsmm_left(&x).unwrap(),
            &REF.tsmm_left(&x).unwrap(),
            &format!("tsmm_left {m}x{n}"),
        );
        assert_bits_eq(
            &OPT.tsmm_right(&x).unwrap(),
            &REF.tsmm_right(&x).unwrap(),
            &format!("tsmm_right {m}x{n}"),
        );
    }

    /// Transpose, including single-row/column and empty shapes.
    #[test]
    fn transpose_bit_exact((m, n) in (0usize..70, 0usize..70), seed in 0u64..1_000) {
        let x = det(m, n, seed, 900);
        assert_bits_eq(&OPT.transpose(&x), &REF.transpose(&x), &format!("transpose {m}x{n}"));
    }

    /// Every element-wise entry point, every operator.
    #[test]
    fn elementwise_bit_exact((m, n) in (0usize..20, 0usize..20),
                             seed in 0u64..1_000,
                             s in -4.0f64..4.0) {
        let a = det(m, n, seed, 800);
        let b = det(m, n, seed ^ 2, 800);
        for op in [
            BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Div, BinOp::Pow,
            BinOp::Min, BinOp::Max, BinOp::Eq, BinOp::Neq, BinOp::Lt,
            BinOp::Le, BinOp::Gt, BinOp::Ge, BinOp::And, BinOp::Or,
        ] {
            assert_bits_eq(
                &OPT.ew_binary(op, &a, &b),
                &REF.ew_binary(op, &a, &b),
                &format!("ew_binary {op:?} {m}x{n}"),
            );
            assert_bits_eq(
                &OPT.ew_matrix_scalar(op, &a, s),
                &REF.ew_matrix_scalar(op, &a, s),
                &format!("ew_matrix_scalar {op:?}"),
            );
            assert_bits_eq(
                &OPT.ew_scalar_matrix(op, s, &a),
                &REF.ew_scalar_matrix(op, s, &a),
                &format!("ew_scalar_matrix {op:?}"),
            );
        }
        for op in [
            UnOp::Neg, UnOp::Abs, UnOp::Exp, UnOp::Log, UnOp::Sqrt,
            UnOp::Round, UnOp::Floor, UnOp::Ceil, UnOp::Sign,
            UnOp::Sigmoid, UnOp::Not,
        ] {
            assert_bits_eq(
                &OPT.ew_unary(op, &a),
                &REF.ew_unary(op, &a),
                &format!("ew_unary {op:?} {m}x{n}"),
            );
        }
    }
}

/// Non-tile-multiple shapes around the GEMM register-block boundaries
/// (MR = 4 rows, NR = 8 columns, k unrolled by 2): every combination of
/// block-aligned, one-over, and one-under must agree bit-for-bit.
#[test]
fn gemm_bit_exact_on_tile_boundary_shapes() {
    for &m in &[1usize, 3, 4, 5, 8, 9] {
        for &k in &[1usize, 2, 3, 16, 17] {
            for &n in &[1usize, 7, 8, 9, 16, 17, 24] {
                let a = det(m, k, 42, 1000);
                let b = det(k, n, 43, 1000);
                assert_bits_eq(
                    &OPT.gemm(&a, &b).unwrap(),
                    &REF.gemm(&a, &b).unwrap(),
                    &format!("gemm tile-boundary {m}x{k}x{n}"),
                );
            }
        }
    }
}

/// Above the parallel-GEMM threshold both backends split work across row
/// panels; the join order is shared, so parity must still be bit-exact.
#[test]
fn gemm_bit_exact_above_parallel_threshold() {
    let (m, k, n) = (160, 160, 160); // 160³ > PAR_FLOP_THRESHOLD
    let a = det(m, k, 7, 900);
    let b = det(k, n, 8, 900);
    assert_bits_eq(
        &OPT.gemm(&a, &b).unwrap(),
        &REF.gemm(&a, &b).unwrap(),
        "gemm parallel 160x160x160",
    );
}

/// `matmult` dispatch parity: the CSR-vs-dense routing decision comes from
/// the *cached* non-zero count and is backend-independent, so switching the
/// active backend must not change results — sparse operands take the same
/// CSR kernel either way, dense operands take bit-identical GEMMs.
#[test]
fn dispatch_parity_across_backends() {
    // Highly sparse left operand (≥64×64 cells, ~2% density) → CSR route.
    let sparse_a = det(70, 70, 11, 20);
    assert!(
        uses_sparse_dispatch(&sparse_a),
        "sparse operand must route to CSR"
    );
    assert!(
        sparse_a.nnz_is_cached(),
        "from_fn must leave the nnz cache warm"
    );
    // Dense operand → backend GEMM route.
    let dense_a = det(70, 70, 12, 1000);
    assert!(!uses_sparse_dispatch(&dense_a));
    let b = det(70, 70, 13, 1000);

    let run = |kind: BackendKind| {
        set_backend(kind);
        let s = matmult(&sparse_a, &b).unwrap();
        let d = matmult(&dense_a, &b).unwrap();
        set_backend(BackendKind::Optimized); // restore process default
        (s, d)
    };
    let (s_ref, d_ref) = run(BackendKind::Reference);
    let (s_opt, d_opt) = run(BackendKind::Optimized);
    assert_bits_eq(&s_opt, &s_ref, "matmult sparse route");
    assert_bits_eq(&d_opt, &d_ref, "matmult dense route");

    // The decision itself must match a fresh scan (cached nnz is not stale).
    let rescanned = sparse_a.data().iter().filter(|v| **v != 0.0).count();
    assert_eq!(
        sparse_a.nnz(),
        rescanned,
        "cached nnz diverged from fresh scan"
    );
}

/// The Optimized right-side `tsmm` computes `X·Xᵀ` directly; the Reference
/// path materializes `Xᵀ` first. Pin both behaviors via the thread-local
/// transpose counter.
#[test]
fn optimized_tsmm_right_never_materializes_transpose() {
    let x = det(48, 36, 21, 1000);
    let before = tsmm_right_transposes();
    let direct = backend_for(BackendKind::Optimized).tsmm_right(&x).unwrap();
    assert_eq!(
        tsmm_right_transposes(),
        before,
        "Optimized tsmm_right must not materialize a transpose"
    );
    let via_ref = backend_for(BackendKind::Reference).tsmm_right(&x).unwrap();
    assert!(
        tsmm_right_transposes() > before,
        "Reference tsmm_right is expected to materialize the transpose"
    );
    assert_bits_eq(&direct, &via_ref, "tsmm_right 48x36");
}
