//! Compressed-sparse-row matrix, used for graph workloads (PageRank in the
//! paper's deduplication example operates on a sparse link matrix).

use crate::dense::DenseMatrix;
use crate::error::{MatrixError, Result};

/// A CSR sparse `f64` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from `(row, col, value)` triplets; duplicate
    /// coordinates are summed.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        mut triplets: Vec<(usize, usize, f64)>,
    ) -> Result<Self> {
        for &(r, c, _) in &triplets {
            if r >= rows {
                return Err(MatrixError::IndexOutOfBounds {
                    op: "csr",
                    index: r,
                    bound: rows,
                });
            }
            if c >= cols {
                return Err(MatrixError::IndexOutOfBounds {
                    op: "csr",
                    index: c,
                    bound: cols,
                });
            }
        }
        triplets.sort_unstable_by_key(|&(r, c, _)| (r, c));
        let mut row_ptr = vec![0usize; rows + 1];
        let mut col_idx = Vec::with_capacity(triplets.len());
        let mut values = Vec::with_capacity(triplets.len());
        for (r, c, v) in triplets {
            if v == 0.0 {
                continue;
            }
            if let (Some(&last_c), true) = (col_idx.last(), row_ptr[r + 1] > row_ptr[r]) {
                if last_c == c && col_idx.len() > row_ptr[r] {
                    // Duplicate coordinate within this row: accumulate.
                    *values.last_mut().expect("values non-empty") += v;
                    continue;
                }
            }
            col_idx.push(c);
            values.push(v);
            row_ptr[r + 1] = col_idx.len();
        }
        // Fix up empty rows: make row_ptr monotone.
        for r in 0..rows {
            if row_ptr[r + 1] < row_ptr[r] {
                row_ptr[r + 1] = row_ptr[r];
            }
        }
        Ok(Self {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Converts a dense matrix into CSR form.
    pub fn from_dense(d: &DenseMatrix) -> Self {
        let mut row_ptr = Vec::with_capacity(d.rows() + 1);
        row_ptr.push(0);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        for i in 0..d.rows() {
            for (j, &v) in d.row(i).iter().enumerate() {
                if v != 0.0 {
                    col_idx.push(j);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        Self {
            rows: d.rows(),
            cols: d.cols(),
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Expands to a dense matrix.
    pub fn to_dense(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                out.set(r, self.col_idx[k], self.values[k]);
            }
        }
        out
    }

    /// Sparse-matrix × dense-matrix product.
    pub fn matmult_dense(&self, b: &DenseMatrix) -> Result<DenseMatrix> {
        if self.cols != b.rows() {
            return Err(MatrixError::DimensionMismatch {
                op: "spmm",
                lhs: (self.rows, self.cols),
                rhs: b.shape(),
            });
        }
        let n = b.cols();
        let mut out = DenseMatrix::zeros(self.rows, n);
        for r in 0..self.rows {
            let orow = out.row_mut(r);
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                let v = self.values[k];
                let brow = b.row(self.col_idx[k]);
                for j in 0..n {
                    orow[j] += v * brow[j];
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::matmult::matmult;

    #[test]
    fn triplets_round_trip_through_dense() {
        let m =
            CsrMatrix::from_triplets(3, 3, vec![(0, 1, 2.0), (2, 0, 5.0), (1, 1, -1.0)]).unwrap();
        let d = m.to_dense();
        assert_eq!(d.get(0, 1), 2.0);
        assert_eq!(d.get(2, 0), 5.0);
        assert_eq!(d.get(1, 1), -1.0);
        assert_eq!(m.nnz(), 3);
        let back = CsrMatrix::from_dense(&d);
        assert_eq!(back, m);
    }

    #[test]
    fn duplicate_triplets_accumulate() {
        let m = CsrMatrix::from_triplets(2, 2, vec![(0, 0, 1.0), (0, 0, 2.0)]).unwrap();
        assert_eq!(m.to_dense().get(0, 0), 3.0);
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn out_of_bounds_triplets_rejected() {
        assert!(CsrMatrix::from_triplets(2, 2, vec![(2, 0, 1.0)]).is_err());
        assert!(CsrMatrix::from_triplets(2, 2, vec![(0, 2, 1.0)]).is_err());
    }

    #[test]
    fn spmm_matches_dense_matmult() {
        let d = DenseMatrix::from_fn(6, 5, |i, j| {
            if (i + j) % 3 == 0 {
                (i + 1) as f64
            } else {
                0.0
            }
        });
        let sp = CsrMatrix::from_dense(&d);
        let b = DenseMatrix::from_fn(5, 4, |i, j| (i * 4 + j) as f64 * 0.5);
        let got = sp.matmult_dense(&b).unwrap();
        let expect = matmult(&d, &b).unwrap();
        assert!(got.approx_eq(&expect, 1e-12));
        assert!(sp.matmult_dense(&DenseMatrix::zeros(4, 4)).is_err());
    }

    #[test]
    fn empty_rows_are_handled() {
        let m = CsrMatrix::from_triplets(4, 2, vec![(3, 1, 7.0)]).unwrap();
        let d = m.to_dense();
        assert_eq!(d.get(3, 1), 7.0);
        assert_eq!(d.get(0, 0), 0.0);
        assert_eq!(m.rows(), 4);
        assert_eq!(m.cols(), 2);
    }
}
