//! Operator kernels dispatched by LIMA runtime instructions.
//!
//! Each submodule implements one family of SystemDS-style operators:
//!
//! * [`elementwise`] — cell-wise binary/unary/scalar operators,
//! * [`mod@matmult`] — GEMM, matrix-vector, `tsmm` (Xᵀ X), transpose,
//! * [`agg`] — full/row/column aggregates,
//! * [`reorg`] — cbind/rbind/slicing/diag/table/seq/order,
//! * [`mod@solve`] — dense linear solvers (Cholesky with LU fallback),
//! * [`eigen`] — symmetric eigen decomposition (cyclic Jacobi).

pub mod agg;
pub mod eigen;
pub mod elementwise;
pub mod matmult;
pub(crate) mod optimized;
pub mod reorg;
pub mod solve;

pub use agg::*;
pub use eigen::*;
pub use elementwise::*;
pub use matmult::*;
pub use reorg::*;
pub use solve::*;
