//! Reorganisation kernels: cbind/rbind, slicing, diag, table, seq, order.
//!
//! These operators are central to LIMA's *partial reuse* rewrites (paper §4.2),
//! which all revolve around `rbind`, `cbind`, and right-indexing.

use crate::dense::DenseMatrix;
use crate::error::{MatrixError, Result};

/// Horizontal concatenation `cbind(A, B)`.
pub fn cbind(a: &DenseMatrix, b: &DenseMatrix) -> Result<DenseMatrix> {
    if a.rows() != b.rows() {
        return Err(MatrixError::DimensionMismatch {
            op: "cbind",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let (m, na, nb) = (a.rows(), a.cols(), b.cols());
    let mut data = Vec::with_capacity(m * (na + nb));
    for i in 0..m {
        data.extend_from_slice(a.row(i));
        data.extend_from_slice(b.row(i));
    }
    DenseMatrix::new(m, na + nb, data)
}

/// Vertical concatenation `rbind(A, B)`.
pub fn rbind(a: &DenseMatrix, b: &DenseMatrix) -> Result<DenseMatrix> {
    if a.cols() != b.cols() {
        return Err(MatrixError::DimensionMismatch {
            op: "rbind",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let mut data = Vec::with_capacity((a.rows() + b.rows()) * a.cols());
    data.extend_from_slice(a.data());
    data.extend_from_slice(b.data());
    DenseMatrix::new(a.rows() + b.rows(), a.cols(), data)
}

/// Right-indexing `X[rl:ru, cl:cu]` with *inclusive*, 0-based bounds
/// (the language front-end converts from 1-based script indices).
pub fn slice(a: &DenseMatrix, rl: usize, ru: usize, cl: usize, cu: usize) -> Result<DenseMatrix> {
    if ru >= a.rows() || rl > ru {
        return Err(MatrixError::IndexOutOfBounds {
            op: "rightIndex",
            index: ru,
            bound: a.rows(),
        });
    }
    if cu >= a.cols() || cl > cu {
        return Err(MatrixError::IndexOutOfBounds {
            op: "rightIndex",
            index: cu,
            bound: a.cols(),
        });
    }
    let (m, n) = (ru - rl + 1, cu - cl + 1);
    let mut data = Vec::with_capacity(m * n);
    for i in rl..=ru {
        let row = a.row(i);
        data.extend_from_slice(&row[cl..=cu]);
    }
    DenseMatrix::new(m, n, data)
}

/// Column projection by an explicit 0-based column index list
/// (`X[, s]` with a vector of column positions, as in Example 1's `sample`).
pub fn select_cols(a: &DenseMatrix, cols: &[usize]) -> Result<DenseMatrix> {
    for &c in cols {
        if c >= a.cols() {
            return Err(MatrixError::IndexOutOfBounds {
                op: "selectCols",
                index: c,
                bound: a.cols(),
            });
        }
    }
    let m = a.rows();
    let mut data = Vec::with_capacity(m * cols.len());
    for i in 0..m {
        let row = a.row(i);
        for &c in cols {
            data.push(row[c]);
        }
    }
    DenseMatrix::new(m, cols.len(), data)
}

/// Row projection by an explicit 0-based row index list.
pub fn select_rows(a: &DenseMatrix, rows: &[usize]) -> Result<DenseMatrix> {
    for &r in rows {
        if r >= a.rows() {
            return Err(MatrixError::IndexOutOfBounds {
                op: "selectRows",
                index: r,
                bound: a.rows(),
            });
        }
    }
    let mut data = Vec::with_capacity(rows.len() * a.cols());
    for &r in rows {
        data.extend_from_slice(a.row(r));
    }
    DenseMatrix::new(rows.len(), a.cols(), data)
}

/// Left-indexing `X[rl:ru, cl:cu] = S`: returns a fresh matrix with the
/// sub-block replaced (inputs stay immutable, preserving lineage semantics).
pub fn left_index(a: &DenseMatrix, s: &DenseMatrix, rl: usize, cl: usize) -> Result<DenseMatrix> {
    if rl + s.rows() > a.rows() || cl + s.cols() > a.cols() {
        return Err(MatrixError::DimensionMismatch {
            op: "leftIndex",
            lhs: a.shape(),
            rhs: s.shape(),
        });
    }
    let mut out = a.clone();
    for i in 0..s.rows() {
        let dst = &mut out.row_mut(rl + i)[cl..cl + s.cols()];
        dst.copy_from_slice(s.row(i));
    }
    Ok(out)
}

/// `diag(V)`: a column vector becomes a diagonal matrix; a square matrix
/// yields its diagonal as a column vector (R semantics used by `lmDS`).
pub fn diag(a: &DenseMatrix) -> Result<DenseMatrix> {
    if a.cols() == 1 {
        let n = a.rows();
        let mut out = DenseMatrix::zeros(n, n);
        for i in 0..n {
            out.set(i, i, a.get(i, 0));
        }
        Ok(out)
    } else if a.rows() == a.cols() {
        Ok(DenseMatrix::from_fn(a.rows(), 1, |i, _| a.get(i, i)))
    } else {
        Err(MatrixError::DimensionMismatch {
            op: "rdiag",
            lhs: a.shape(),
            rhs: a.shape(),
        })
    }
}

/// `seq(from, to, by)` as a column vector.
pub fn seq(from: f64, to: f64, by: f64) -> Result<DenseMatrix> {
    if by == 0.0 {
        return Err(MatrixError::InvalidArgument(
            "seq step must be nonzero".into(),
        ));
    }
    let n = if (by > 0.0 && from > to) || (by < 0.0 && from < to) {
        0
    } else {
        ((to - from) / by).floor() as usize + 1
    };
    Ok(DenseMatrix::from_fn(n, 1, |i, _| from + by * i as f64))
}

/// `table(seq, idx)`-style contingency/permutation matrix used by PCA's eigen
/// reordering: builds a `n × n` selection matrix with `out[i, idx[i]-1] = 1`.
pub fn permutation_from_index(idx: &DenseMatrix) -> Result<DenseMatrix> {
    if idx.cols() != 1 {
        return Err(MatrixError::InvalidArgument(
            "table: index must be a column vector".into(),
        ));
    }
    let n = idx.rows();
    let mut out = DenseMatrix::zeros(n, n);
    for i in 0..n {
        let j = idx.get(i, 0);
        if j < 1.0 || j > n as f64 || j.fract() != 0.0 {
            return Err(MatrixError::InvalidArgument(format!(
                "table: index value {j} out of range 1..={n}"
            )));
        }
        out.set(i, j as usize - 1, 1.0);
    }
    Ok(out)
}

/// General 2-arg `table(a, b)` contingency matrix: counts co-occurrences of
/// the (1-based, integral) codes in `a` and `b`. Used by one-hot encoding.
pub fn table2(a: &DenseMatrix, b: &DenseMatrix) -> Result<DenseMatrix> {
    if a.shape() != b.shape() || a.cols() != 1 {
        return Err(MatrixError::DimensionMismatch {
            op: "table",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let to_idx = |v: f64, what: &str| -> Result<usize> {
        if v < 1.0 || v.fract() != 0.0 {
            return Err(MatrixError::InvalidArgument(format!(
                "table: {what} value {v} is not a positive integer"
            )));
        }
        Ok(v as usize)
    };
    let mut max_a = 0usize;
    let mut max_b = 0usize;
    for i in 0..a.rows() {
        max_a = max_a.max(to_idx(a.get(i, 0), "row")?);
        max_b = max_b.max(to_idx(b.get(i, 0), "col")?);
    }
    let mut out = DenseMatrix::zeros(max_a, max_b);
    for i in 0..a.rows() {
        let r = a.get(i, 0) as usize - 1;
        let c = b.get(i, 0) as usize - 1;
        out.set(r, c, out.get(r, c) + 1.0);
    }
    Ok(out)
}

/// Sort order of a column vector. Returns the 1-based permutation indices
/// (`order(V, decreasing, index.return=TRUE)` in DML).
pub fn order_index(v: &DenseMatrix, decreasing: bool) -> Result<DenseMatrix> {
    if v.cols() != 1 {
        return Err(MatrixError::InvalidArgument(
            "order: expected a column vector".into(),
        ));
    }
    let mut idx: Vec<usize> = (0..v.rows()).collect();
    idx.sort_by(|&a, &b| {
        let (x, y) = (v.get(a, 0), v.get(b, 0));
        let ord = x.partial_cmp(&y).unwrap_or(std::cmp::Ordering::Equal);
        if decreasing {
            ord.reverse()
        } else {
            ord
        }
    });
    Ok(DenseMatrix::from_fn(v.rows(), 1, |i, _| {
        (idx[i] + 1) as f64
    }))
}

/// Reverses the rows of a matrix (`rev`).
pub fn rev(a: &DenseMatrix) -> DenseMatrix {
    let m = a.rows();
    DenseMatrix::from_fn(m, a.cols(), |i, j| a.get(m - 1 - i, j))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, v: &[f64]) -> DenseMatrix {
        DenseMatrix::new(rows, cols, v.to_vec()).unwrap()
    }

    #[test]
    fn cbind_concatenates_columns() {
        let a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = m(2, 1, &[9.0, 8.0]);
        let c = cbind(&a, &b).unwrap();
        assert_eq!(c.shape(), (2, 3));
        assert_eq!(c.data(), &[1.0, 2.0, 9.0, 3.0, 4.0, 8.0]);
        assert!(cbind(&a, &m(3, 1, &[0.0; 3])).is_err());
    }

    #[test]
    fn rbind_concatenates_rows() {
        let a = m(1, 2, &[1.0, 2.0]);
        let b = m(2, 2, &[3.0, 4.0, 5.0, 6.0]);
        let c = rbind(&a, &b).unwrap();
        assert_eq!(c.shape(), (3, 2));
        assert_eq!(c.data(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert!(rbind(&a, &m(1, 3, &[0.0; 3])).is_err());
    }

    #[test]
    fn slice_is_inclusive() {
        let a = DenseMatrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        let s = slice(&a, 1, 2, 1, 3).unwrap();
        assert_eq!(s.shape(), (2, 3));
        assert_eq!(s.data(), &[5.0, 6.0, 7.0, 9.0, 10.0, 11.0]);
        assert!(slice(&a, 0, 4, 0, 0).is_err());
        assert!(slice(&a, 2, 1, 0, 0).is_err());
    }

    #[test]
    fn select_cols_projects_in_order() {
        let a = DenseMatrix::from_fn(2, 4, |i, j| (i * 10 + j) as f64);
        let s = select_cols(&a, &[3, 0]).unwrap();
        assert_eq!(s.data(), &[3.0, 0.0, 13.0, 10.0]);
        assert!(select_cols(&a, &[4]).is_err());
    }

    #[test]
    fn select_rows_projects_in_order() {
        let a = DenseMatrix::from_fn(3, 2, |i, j| (i * 10 + j) as f64);
        let s = select_rows(&a, &[2, 0]).unwrap();
        assert_eq!(s.data(), &[20.0, 21.0, 0.0, 1.0]);
        assert!(select_rows(&a, &[3]).is_err());
    }

    #[test]
    fn left_index_replaces_block_immutably() {
        let a = DenseMatrix::zeros(3, 3);
        let s = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let out = left_index(&a, &s, 1, 1).unwrap();
        assert_eq!(out.get(1, 1), 1.0);
        assert_eq!(out.get(2, 2), 4.0);
        assert_eq!(a.get(1, 1), 0.0); // original untouched
        assert!(left_index(&a, &s, 2, 2).is_err());
    }

    #[test]
    fn diag_both_directions() {
        let v = m(3, 1, &[1.0, 2.0, 3.0]);
        let d = diag(&v).unwrap();
        assert_eq!(d.get(1, 1), 2.0);
        assert_eq!(d.get(0, 1), 0.0);
        let back = diag(&d).unwrap();
        assert_eq!(back.data(), v.data());
        assert!(diag(&m(2, 3, &[0.0; 6])).is_err());
    }

    #[test]
    fn seq_generates_inclusive_ranges() {
        assert_eq!(
            seq(1.0, 5.0, 1.0).unwrap().data(),
            &[1.0, 2.0, 3.0, 4.0, 5.0]
        );
        assert_eq!(seq(5.0, 1.0, -2.0).unwrap().data(), &[5.0, 3.0, 1.0]);
        assert_eq!(seq(1.0, 0.0, 1.0).unwrap().rows(), 0);
        assert!(seq(0.0, 1.0, 0.0).is_err());
    }

    #[test]
    fn permutation_from_index_builds_selection_matrix() {
        let idx = m(3, 1, &[2.0, 3.0, 1.0]);
        let p = permutation_from_index(&idx).unwrap();
        assert_eq!(p.get(0, 1), 1.0);
        assert_eq!(p.get(1, 2), 1.0);
        assert_eq!(p.get(2, 0), 1.0);
        assert!(permutation_from_index(&m(1, 1, &[0.0])).is_err());
        assert!(permutation_from_index(&m(1, 1, &[1.5])).is_err());
    }

    #[test]
    fn table2_counts_cooccurrences() {
        let a = m(4, 1, &[1.0, 2.0, 1.0, 2.0]);
        let b = m(4, 1, &[1.0, 1.0, 2.0, 1.0]);
        let t = table2(&a, &b).unwrap();
        assert_eq!(t.shape(), (2, 2));
        assert_eq!(t.get(0, 0), 1.0);
        assert_eq!(t.get(1, 0), 2.0);
        assert_eq!(t.get(0, 1), 1.0);
        assert_eq!(t.get(1, 1), 0.0);
        assert!(table2(&a, &m(1, 1, &[1.0])).is_err());
    }

    #[test]
    fn order_index_sorts_both_ways() {
        let v = m(4, 1, &[3.0, 1.0, 4.0, 2.0]);
        assert_eq!(
            order_index(&v, false).unwrap().data(),
            &[2.0, 4.0, 1.0, 3.0]
        );
        assert_eq!(order_index(&v, true).unwrap().data(), &[3.0, 1.0, 4.0, 2.0]);
        assert!(order_index(&m(1, 2, &[0.0, 0.0]), false).is_err());
    }

    #[test]
    fn rev_reverses_rows() {
        let a = m(3, 1, &[1.0, 2.0, 3.0]);
        assert_eq!(rev(&a).data(), &[3.0, 2.0, 1.0]);
    }
}
