//! Dense direct solvers: Cholesky for SPD systems (the `solve(A, b)` in
//! `lmDS`), with a partially-pivoted LU fallback for general square systems.

use crate::dense::DenseMatrix;
use crate::error::{MatrixError, Result};
use crate::ops::matmult::matmult;

/// Solves `A X = B` for square `A`. Tries Cholesky first (the common case in
/// the paper's workloads where `A = XᵀX + λI` is SPD), falling back to LU
/// with partial pivoting.
pub fn solve(a: &DenseMatrix, b: &DenseMatrix) -> Result<DenseMatrix> {
    if a.rows() != a.cols() {
        return Err(MatrixError::DimensionMismatch {
            op: "solve",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    if a.rows() != b.rows() {
        return Err(MatrixError::DimensionMismatch {
            op: "solve",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    match cholesky(a) {
        Ok(l) => cholesky_solve(&l, b),
        Err(_) => lu_solve(a, b),
    }
}

/// Computes the lower Cholesky factor `L` with `A = L Lᵀ`. Fails if `A` is
/// not (numerically) symmetric positive definite.
pub fn cholesky(a: &DenseMatrix) -> Result<DenseMatrix> {
    let n = a.rows();
    if n != a.cols() {
        return Err(MatrixError::DimensionMismatch {
            op: "cholesky",
            lhs: a.shape(),
            rhs: a.shape(),
        });
    }
    let mut l = DenseMatrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut s = a.get(i, j);
            for k in 0..j {
                s -= l.get(i, k) * l.get(j, k);
            }
            if i == j {
                if s <= 0.0 || !s.is_finite() {
                    return Err(MatrixError::Singular("cholesky"));
                }
                l.set(i, j, s.sqrt());
            } else {
                l.set(i, j, s / l.get(j, j));
            }
        }
    }
    Ok(l)
}

/// Solves `L Lᵀ X = B` given the Cholesky factor `L`.
pub fn cholesky_solve(l: &DenseMatrix, b: &DenseMatrix) -> Result<DenseMatrix> {
    let n = l.rows();
    let k = b.cols();
    let mut x = b.clone();
    // Forward substitution: L Y = B.
    for col in 0..k {
        for i in 0..n {
            let mut s = x.get(i, col);
            for j in 0..i {
                s -= l.get(i, j) * x.get(j, col);
            }
            x.set(i, col, s / l.get(i, i));
        }
        // Backward substitution: Lᵀ X = Y.
        for i in (0..n).rev() {
            let mut s = x.get(i, col);
            for j in (i + 1)..n {
                s -= l.get(j, i) * x.get(j, col);
            }
            x.set(i, col, s / l.get(i, i));
        }
    }
    Ok(x)
}

/// Solves `A X = B` by LU decomposition with partial pivoting.
pub fn lu_solve(a: &DenseMatrix, b: &DenseMatrix) -> Result<DenseMatrix> {
    let n = a.rows();
    let mut lu = a.clone();
    let mut piv: Vec<usize> = (0..n).collect();
    for col in 0..n {
        // Pivot selection.
        let mut pivot = col;
        let mut max = lu.get(col, col).abs();
        for r in (col + 1)..n {
            let v = lu.get(r, col).abs();
            if v > max {
                max = v;
                pivot = r;
            }
        }
        if max < 1e-300 {
            return Err(MatrixError::Singular("lu"));
        }
        if pivot != col {
            piv.swap(pivot, col);
            for c in 0..n {
                let tmp = lu.get(col, c);
                lu.set(col, c, lu.get(pivot, c));
                lu.set(pivot, c, tmp);
            }
        }
        let d = lu.get(col, col);
        for r in (col + 1)..n {
            let f = lu.get(r, col) / d;
            lu.set(r, col, f);
            for c in (col + 1)..n {
                lu.set(r, c, lu.get(r, c) - f * lu.get(col, c));
            }
        }
    }
    // Apply permutation to B, then forward/backward substitute.
    let k = b.cols();
    let mut x = DenseMatrix::from_fn(n, k, |i, j| b.get(piv[i], j));
    for col in 0..k {
        for i in 0..n {
            let mut s = x.get(i, col);
            for j in 0..i {
                s -= lu.get(i, j) * x.get(j, col);
            }
            x.set(i, col, s);
        }
        for i in (0..n).rev() {
            let mut s = x.get(i, col);
            for j in (i + 1)..n {
                s -= lu.get(i, j) * x.get(j, col);
            }
            x.set(i, col, s / lu.get(i, i));
        }
    }
    Ok(x)
}

/// Matrix inverse via `solve(A, I)` — used sparingly by tests.
pub fn inverse(a: &DenseMatrix) -> Result<DenseMatrix> {
    solve(a, &DenseMatrix::identity(a.rows()))
}

/// Residual norm `‖A X − B‖_F`, a test helper.
pub fn residual_norm(a: &DenseMatrix, x: &DenseMatrix, b: &DenseMatrix) -> Result<f64> {
    let ax = matmult(a, x)?;
    Ok(ax
        .data()
        .iter()
        .zip(b.data())
        .map(|(p, q)| (p - q) * (p - q))
        .sum::<f64>()
        .sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, v: &[f64]) -> DenseMatrix {
        DenseMatrix::new(rows, cols, v.to_vec()).unwrap()
    }

    #[test]
    fn cholesky_solve_spd_system() {
        // A = [[4,2],[2,3]] is SPD.
        let a = m(2, 2, &[4.0, 2.0, 2.0, 3.0]);
        let b = m(2, 1, &[8.0, 7.0]);
        let x = solve(&a, &b).unwrap();
        assert!(residual_norm(&a, &x, &b).unwrap() < 1e-10);
    }

    #[test]
    fn lu_fallback_for_indefinite_system() {
        // Symmetric but indefinite → Cholesky fails, LU succeeds.
        let a = m(2, 2, &[0.0, 1.0, 1.0, 0.0]);
        let b = m(2, 1, &[3.0, 5.0]);
        let x = solve(&a, &b).unwrap();
        assert!(x.approx_eq(&m(2, 1, &[5.0, 3.0]), 1e-12));
    }

    #[test]
    fn singular_matrix_is_rejected() {
        let a = m(2, 2, &[1.0, 2.0, 2.0, 4.0]);
        let b = m(2, 1, &[1.0, 2.0]);
        assert!(matches!(solve(&a, &b), Err(MatrixError::Singular(_))));
    }

    #[test]
    fn shape_mismatches_are_rejected() {
        let a = m(2, 3, &[0.0; 6]);
        let b = m(2, 1, &[0.0; 2]);
        assert!(solve(&a, &b).is_err());
        let a = m(2, 2, &[1.0, 0.0, 0.0, 1.0]);
        let b = m(3, 1, &[0.0; 3]);
        assert!(solve(&a, &b).is_err());
    }

    #[test]
    fn multi_rhs_solve() {
        let a = m(3, 3, &[5.0, 1.0, 0.0, 1.0, 4.0, 1.0, 0.0, 1.0, 3.0]);
        let b = m(3, 2, &[1.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
        let x = solve(&a, &b).unwrap();
        assert!(residual_norm(&a, &x, &b).unwrap() < 1e-10);
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = m(3, 3, &[4.0, 1.0, 2.0, 1.0, 5.0, 1.0, 2.0, 1.0, 6.0]);
        let inv = inverse(&a).unwrap();
        let prod = matmult(&a, &inv).unwrap();
        assert!(prod.approx_eq(&DenseMatrix::identity(3), 1e-10));
    }

    #[test]
    fn larger_random_spd_system() {
        // Build an SPD matrix A = M Mᵀ + n·I and check the residual.
        let n = 24;
        let mmat = DenseMatrix::from_fn(n, n, |i, j| ((i * 7 + j * 3) % 11) as f64 / 11.0);
        let mt = crate::ops::matmult::transpose(&mmat);
        let mut a = matmult(&mmat, &mt).unwrap();
        for i in 0..n {
            a.set(i, i, a.get(i, i) + n as f64);
        }
        let b = DenseMatrix::from_fn(n, 1, |i, _| (i % 5) as f64 - 2.0);
        let x = solve(&a, &b).unwrap();
        assert!(residual_norm(&a, &x, &b).unwrap() < 1e-8);
    }
}
