//! Cell-wise binary, scalar, and unary operators.
//!
//! Binary operators support full matrix-matrix application plus the
//! row/column-vector broadcasting SystemDS scripts rely on (e.g. `X - colMeans(X)`).

use crate::dense::DenseMatrix;
use crate::error::{MatrixError, Result};

/// Cell-wise binary operator codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Pow,
    Min,
    Max,
    Eq,
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

impl BinOp {
    /// SystemDS-style opcode string, used in lineage items.
    pub fn opcode(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Pow => "^",
            BinOp::Min => "min",
            BinOp::Max => "max",
            BinOp::Eq => "==",
            BinOp::Neq => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&",
            BinOp::Or => "|",
        }
    }

    /// Parses the opcode string back into an operator.
    pub fn from_opcode(op: &str) -> Option<Self> {
        Some(match op {
            "+" => BinOp::Add,
            "-" => BinOp::Sub,
            "*" => BinOp::Mul,
            "/" => BinOp::Div,
            "^" => BinOp::Pow,
            "min" => BinOp::Min,
            "max" => BinOp::Max,
            "==" => BinOp::Eq,
            "!=" => BinOp::Neq,
            "<" => BinOp::Lt,
            "<=" => BinOp::Le,
            ">" => BinOp::Gt,
            ">=" => BinOp::Ge,
            "&" => BinOp::And,
            "|" => BinOp::Or,
            _ => return None,
        })
    }

    /// Applies the operator to a pair of scalars.
    #[inline]
    pub fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            BinOp::Add => a + b,
            BinOp::Sub => a - b,
            BinOp::Mul => a * b,
            BinOp::Div => a / b,
            BinOp::Pow => a.powf(b),
            BinOp::Min => a.min(b),
            BinOp::Max => a.max(b),
            BinOp::Eq => f64::from(a == b),
            BinOp::Neq => f64::from(a != b),
            BinOp::Lt => f64::from(a < b),
            BinOp::Le => f64::from(a <= b),
            BinOp::Gt => f64::from(a > b),
            BinOp::Ge => f64::from(a >= b),
            BinOp::And => f64::from(a != 0.0 && b != 0.0),
            BinOp::Or => f64::from(a != 0.0 || b != 0.0),
        }
    }
}

/// Cell-wise unary operator codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    Neg,
    Abs,
    Exp,
    Log,
    Sqrt,
    Round,
    Floor,
    Ceil,
    Sign,
    Sigmoid,
    Not,
}

impl UnOp {
    /// SystemDS-style opcode string, used in lineage items.
    pub fn opcode(self) -> &'static str {
        match self {
            UnOp::Neg => "uneg",
            UnOp::Abs => "abs",
            UnOp::Exp => "exp",
            UnOp::Log => "log",
            UnOp::Sqrt => "sqrt",
            UnOp::Round => "round",
            UnOp::Floor => "floor",
            UnOp::Ceil => "ceil",
            UnOp::Sign => "sign",
            UnOp::Sigmoid => "sigmoid",
            UnOp::Not => "!",
        }
    }

    /// Parses the opcode string back into an operator.
    pub fn from_opcode(op: &str) -> Option<Self> {
        Some(match op {
            "uneg" => UnOp::Neg,
            "abs" => UnOp::Abs,
            "exp" => UnOp::Exp,
            "log" => UnOp::Log,
            "sqrt" => UnOp::Sqrt,
            "round" => UnOp::Round,
            "floor" => UnOp::Floor,
            "ceil" => UnOp::Ceil,
            "sign" => UnOp::Sign,
            "sigmoid" => UnOp::Sigmoid,
            "!" => UnOp::Not,
            _ => return None,
        })
    }

    /// Applies the operator to a scalar.
    #[inline]
    pub fn apply(self, a: f64) -> f64 {
        match self {
            UnOp::Neg => -a,
            UnOp::Abs => a.abs(),
            UnOp::Exp => a.exp(),
            UnOp::Log => a.ln(),
            UnOp::Sqrt => a.sqrt(),
            UnOp::Round => a.round(),
            UnOp::Floor => a.floor(),
            UnOp::Ceil => a.ceil(),
            UnOp::Sign => {
                if a > 0.0 {
                    1.0
                } else if a < 0.0 {
                    -1.0
                } else {
                    0.0
                }
            }
            UnOp::Sigmoid => 1.0 / (1.0 + (-a).exp()),
            UnOp::Not => f64::from(a == 0.0),
        }
    }
}

/// Matrix ⊕ matrix with SystemDS-style broadcasting: the right operand may be
/// the same shape, a column vector with matching rows, a row vector with
/// matching cols, or a 1×1 matrix. Shape resolution happens here; the dense
/// cell-wise work routes to the active backend.
pub fn ew_matrix_matrix(op: BinOp, a: &DenseMatrix, b: &DenseMatrix) -> Result<DenseMatrix> {
    let (m, n) = a.shape();
    let mismatch = || MatrixError::DimensionMismatch {
        op: "ew-binary",
        lhs: a.shape(),
        rhs: b.shape(),
    };
    if b.shape() == (m, n) {
        return Ok(crate::backend::active().ew_binary(op, a, b));
    }
    if b.shape() == (1, 1) {
        return Ok(ew_matrix_scalar(op, a, b.get(0, 0)));
    }
    if a.shape() == (1, 1) {
        return Ok(ew_scalar_matrix(op, a.get(0, 0), b));
    }
    if b.rows() == m && b.cols() == 1 {
        // column-vector broadcast
        let mut out = DenseMatrix::zeros(m, n);
        for i in 0..m {
            let bi = b.get(i, 0);
            let (or, ar) = (out.row_mut(i), a.row(i));
            for j in 0..n {
                or[j] = op.apply(ar[j], bi);
            }
        }
        return Ok(out);
    }
    if b.rows() == 1 && b.cols() == n {
        // row-vector broadcast
        let mut out = DenseMatrix::zeros(m, n);
        let brow = b.row(0);
        for i in 0..m {
            let (or, ar) = (out.row_mut(i), a.row(i));
            for j in 0..n {
                or[j] = op.apply(ar[j], brow[j]);
            }
        }
        return Ok(out);
    }
    // Symmetric broadcasts with the vector on the left.
    if a.rows() == b.rows() && a.cols() == 1 {
        let mut out = DenseMatrix::zeros(b.rows(), b.cols());
        for i in 0..b.rows() {
            let ai = a.get(i, 0);
            let (or, br) = (out.row_mut(i), b.row(i));
            for j in 0..br.len() {
                or[j] = op.apply(ai, br[j]);
            }
        }
        return Ok(out);
    }
    if a.rows() == 1 && a.cols() == b.cols() {
        let mut out = DenseMatrix::zeros(b.rows(), b.cols());
        let arow = a.row(0);
        for i in 0..b.rows() {
            let (or, br) = (out.row_mut(i), b.row(i));
            for j in 0..br.len() {
                or[j] = op.apply(arow[j], br[j]);
            }
        }
        return Ok(out);
    }
    Err(mismatch())
}

/// Matrix ⊕ scalar, routed through the active backend.
pub fn ew_matrix_scalar(op: BinOp, a: &DenseMatrix, s: f64) -> DenseMatrix {
    crate::backend::active().ew_matrix_scalar(op, a, s)
}

/// Scalar ⊕ matrix (for non-commutative operators), routed through the
/// active backend.
pub fn ew_scalar_matrix(op: BinOp, s: f64, a: &DenseMatrix) -> DenseMatrix {
    crate::backend::active().ew_scalar_matrix(op, s, a)
}

/// Cell-wise unary application, routed through the active backend.
pub fn ew_unary(op: UnOp, a: &DenseMatrix) -> DenseMatrix {
    crate::backend::active().ew_unary(op, a)
}

// ---------------------------------------------------------------------------
// Reference backend kernels
// ---------------------------------------------------------------------------

/// Reference same-shape cell-wise binary.
pub(crate) fn ref_ew_binary(op: BinOp, a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    let data = a
        .data()
        .iter()
        .zip(b.data())
        .map(|(&x, &y)| op.apply(x, y))
        .collect();
    DenseMatrix::new(a.rows(), a.cols(), data).expect("shape preserved")
}

/// Reference matrix ⊕ scalar.
pub(crate) fn ref_ew_matrix_scalar(op: BinOp, a: &DenseMatrix, s: f64) -> DenseMatrix {
    let data = a.data().iter().map(|&x| op.apply(x, s)).collect();
    DenseMatrix::new(a.rows(), a.cols(), data).expect("shape preserved")
}

/// Reference scalar ⊕ matrix.
pub(crate) fn ref_ew_scalar_matrix(op: BinOp, s: f64, a: &DenseMatrix) -> DenseMatrix {
    let data = a.data().iter().map(|&x| op.apply(s, x)).collect();
    DenseMatrix::new(a.rows(), a.cols(), data).expect("shape preserved")
}

/// Reference cell-wise unary.
pub(crate) fn ref_ew_unary(op: UnOp, a: &DenseMatrix) -> DenseMatrix {
    let data = a.data().iter().map(|&x| op.apply(x)).collect();
    DenseMatrix::new(a.rows(), a.cols(), data).expect("shape preserved")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, v: &[f64]) -> DenseMatrix {
        DenseMatrix::new(rows, cols, v.to_vec()).unwrap()
    }

    #[test]
    fn add_same_shape() {
        let a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = m(2, 2, &[10.0, 20.0, 30.0, 40.0]);
        let c = ew_matrix_matrix(BinOp::Add, &a, &b).unwrap();
        assert_eq!(c.data(), &[11.0, 22.0, 33.0, 44.0]);
    }

    #[test]
    fn col_vector_broadcast() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(2, 1, &[10.0, 100.0]);
        let c = ew_matrix_matrix(BinOp::Mul, &a, &b).unwrap();
        assert_eq!(c.data(), &[10.0, 20.0, 30.0, 400.0, 500.0, 600.0]);
    }

    #[test]
    fn row_vector_broadcast() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(1, 3, &[1.0, 10.0, 100.0]);
        let c = ew_matrix_matrix(BinOp::Add, &a, &b).unwrap();
        assert_eq!(c.data(), &[2.0, 12.0, 103.0, 5.0, 15.0, 106.0]);
    }

    #[test]
    fn left_vector_broadcast() {
        let a = m(2, 1, &[1.0, 2.0]);
        let b = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let c = ew_matrix_matrix(BinOp::Sub, &a, &b).unwrap();
        assert_eq!(c.data(), &[0.0, -1.0, -2.0, -2.0, -3.0, -4.0]);
        let r = m(1, 3, &[1.0, 2.0, 3.0]);
        let c = ew_matrix_matrix(BinOp::Add, &r, &b).unwrap();
        assert_eq!(c.data(), &[2.0, 4.0, 6.0, 5.0, 7.0, 9.0]);
    }

    #[test]
    fn one_by_one_acts_as_scalar() {
        let a = m(1, 1, &[2.0]);
        let b = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let c = ew_matrix_matrix(BinOp::Mul, &a, &b).unwrap();
        assert_eq!(c.data(), &[2.0, 4.0, 6.0, 8.0]);
        let d = ew_matrix_matrix(BinOp::Sub, &b, &a).unwrap();
        assert_eq!(d.data(), &[-1.0, 0.0, 1.0, 2.0]);
    }

    #[test]
    fn mismatched_shapes_error() {
        let a = m(2, 2, &[0.0; 4]);
        let b = m(3, 3, &[0.0; 9]);
        assert!(ew_matrix_matrix(BinOp::Add, &a, &b).is_err());
    }

    #[test]
    fn comparisons_yield_indicator_values() {
        let a = m(1, 3, &[1.0, 2.0, 3.0]);
        let c = ew_matrix_scalar(BinOp::Gt, &a, 1.5);
        assert_eq!(c.data(), &[0.0, 1.0, 1.0]);
        let c = ew_scalar_matrix(BinOp::Ge, 2.0, &a);
        assert_eq!(c.data(), &[1.0, 1.0, 0.0]);
    }

    #[test]
    fn unary_ops() {
        let a = m(1, 4, &[-1.0, 0.0, 4.0, 2.25]);
        assert_eq!(ew_unary(UnOp::Abs, &a).data(), &[1.0, 0.0, 4.0, 2.25]);
        assert_eq!(ew_unary(UnOp::Sign, &a).data(), &[-1.0, 0.0, 1.0, 1.0]);
        assert_eq!(ew_unary(UnOp::Sqrt, &a).data()[2], 2.0);
        assert_eq!(ew_unary(UnOp::Not, &a).data(), &[0.0, 1.0, 0.0, 0.0]);
        let s = ew_unary(UnOp::Sigmoid, &m(1, 1, &[0.0]));
        assert_eq!(s.get(0, 0), 0.5);
    }

    #[test]
    fn opcode_round_trips() {
        for op in [
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::Div,
            BinOp::Pow,
            BinOp::Min,
            BinOp::Max,
            BinOp::Eq,
            BinOp::Neq,
            BinOp::Lt,
            BinOp::Le,
            BinOp::Gt,
            BinOp::Ge,
            BinOp::And,
            BinOp::Or,
        ] {
            assert_eq!(BinOp::from_opcode(op.opcode()), Some(op));
        }
        for op in [
            UnOp::Neg,
            UnOp::Abs,
            UnOp::Exp,
            UnOp::Log,
            UnOp::Sqrt,
            UnOp::Round,
            UnOp::Floor,
            UnOp::Ceil,
            UnOp::Sign,
            UnOp::Sigmoid,
            UnOp::Not,
        ] {
            assert_eq!(UnOp::from_opcode(op.opcode()), Some(op));
        }
        assert_eq!(BinOp::from_opcode("nope"), None);
        assert_eq!(UnOp::from_opcode("nope"), None);
    }
}
