//! Matrix multiplication kernels: GEMM, transpose, and `tsmm` (Xᵀ X).
//!
//! The public functions in this module are thin dispatchers: they validate
//! shapes, apply SystemDS-style dense/sparse dispatch, and then route the
//! dense work to the active [`crate::backend::KernelBackend`]. The kernel
//! bodies below are the always-available *Reference* backend; the unrolled
//! engine lives in [`crate::ops::optimized`]. Both backends share the
//! parallel scaffolding in this module (row-panel partition, stripe
//! partition, join order) so their outputs stay bit-identical.
//!
//! `tsmm` exploits the symmetry of the result the way SystemDS' dedicated
//! `tsmm` instruction does — it is the operator that dominates the `lmDS`
//! workloads in the paper's evaluation.

use crate::backend;
use crate::dense::DenseMatrix;
use crate::error::{MatrixError, Result};
use std::any::Any;

/// Rows per parallel panel; below this GEMM stays single-threaded.
pub(crate) const PAR_ROW_THRESHOLD: usize = 256;
/// Minimum FLOP count (m*n*k) before threads are spawned.
pub(crate) const PAR_FLOP_THRESHOLD: usize = 2_000_000;
/// Cache-blocking tile edge for the k dimension.
const BLOCK_K: usize = 64;

/// Number of worker threads for parallel kernels (physical parallelism capped
/// at 8 to stay deterministic-ish on CI machines).
pub fn kernel_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

/// Sparsity threshold below which the left operand is converted to CSR and
/// multiplied sparsely (SystemDS-style dense/sparse dispatch).
const SPARSE_DISPATCH_THRESHOLD: f64 = 0.15;
/// Minimum cell count before sparsity estimation is worth the scan.
const SPARSE_DISPATCH_MIN_CELLS: usize = 64 * 64;

/// True when `matmult` would route this left operand through the CSR kernel.
/// The sparsity read is O(1) after the first scan thanks to the cached
/// non-zero count in [`DenseMatrix`]; exposed so dispatch-parity tests can
/// compare the cached decision against a fresh scan.
pub fn uses_sparse_dispatch(a: &DenseMatrix) -> bool {
    a.len() >= SPARSE_DISPATCH_MIN_CELLS && a.sparsity() < SPARSE_DISPATCH_THRESHOLD
}

/// Matrix multiply `A (m×k) %*% B (k×n)` with dense/sparse dispatch: very
/// sparse left operands (e.g. PageRank link matrices) take a CSR kernel,
/// dense operands the active backend's GEMM.
pub fn matmult(a: &DenseMatrix, b: &DenseMatrix) -> Result<DenseMatrix> {
    if a.cols() != b.rows() {
        return Err(MatrixError::DimensionMismatch {
            op: "ba+*",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    if uses_sparse_dispatch(a) {
        return crate::sparse::CsrMatrix::from_dense(a).matmult_dense(b);
    }
    backend::active().gemm(a, b)
}

/// Transpose, routed through the active backend.
pub fn transpose(a: &DenseMatrix) -> DenseMatrix {
    backend::active().transpose(a)
}

/// Transpose-self matrix multiply `tsmm`: computes `Xᵀ X` (left) or `X Xᵀ`
/// (right), exploiting the symmetry of the result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TsmmSide {
    /// `Xᵀ X` — SystemDS `tsmm ... LEFT`.
    Left,
    /// `X Xᵀ` — SystemDS `tsmm ... RIGHT`.
    Right,
}

/// `tsmm(X)`: symmetric rank-k update via the active backend. Returns a
/// `Result` because parallel kernels surface worker panics as typed errors.
pub fn tsmm(x: &DenseMatrix, side: TsmmSide) -> Result<DenseMatrix> {
    match side {
        TsmmSide::Left => backend::active().tsmm_left(x),
        TsmmSide::Right => backend::active().tsmm_right(x),
    }
}

// ---------------------------------------------------------------------------
// Shared parallel scaffolding (both backends)
// ---------------------------------------------------------------------------

/// Renders a worker panic payload into a human-readable message.
pub(crate) fn panic_message(payload: Box<dyn Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked".to_string()
    }
}

/// Shared GEMM parallelization decision; both backends must agree so the
/// row-panel partition (and therefore the output) is identical.
pub(crate) fn gemm_parallel(m: usize, n: usize, k: usize) -> bool {
    m >= PAR_ROW_THRESHOLD && m * n * k >= PAR_FLOP_THRESHOLD && kernel_threads() > 1
}

/// Runs `panel(out_chunk, row0, rows)` over row panels of `out`, in parallel
/// when requested. Each output row is written by exactly one worker, so the
/// partition never changes the computed values. Worker panics are joined
/// explicitly and surfaced as [`MatrixError::WorkerPanic`] instead of
/// unwinding through the scope (which would re-raise and abort the caller).
pub(crate) fn run_row_panels<F>(out: &mut DenseMatrix, parallel: bool, panel: F) -> Result<()>
where
    F: Fn(&mut [f64], usize, usize) + Sync,
{
    let (m, n) = out.shape();
    let threads = kernel_threads();
    if !parallel || threads <= 1 || m == 0 || n == 0 {
        panel(out.data_mut(), 0, m);
        return Ok(());
    }
    let chunk = m.div_ceil(threads);
    let data = out.data_mut();
    let scoped: crossbeam::thread::Result<Result<()>> = crossbeam::thread::scope(|s| {
        let panel = &panel;
        let mut handles = Vec::new();
        for (t, out_chunk) in data.chunks_mut(chunk * n).enumerate() {
            let row0 = t * chunk;
            handles.push(s.spawn(move |_| {
                let rows = out_chunk.len() / n;
                panel(out_chunk, row0, rows);
            }));
        }
        // Join every worker: an unjoined panicked child would re-raise
        // through the scope and take the whole process down.
        let mut first_panic: Option<String> = None;
        for h in handles {
            if let Err(p) = h.join() {
                first_panic.get_or_insert_with(|| panic_message(p));
            }
        }
        match first_panic {
            Some(msg) => Err(MatrixError::WorkerPanic(msg)),
            None => Ok(()),
        }
    });
    match scoped {
        Ok(r) => r,
        Err(p) => Err(MatrixError::WorkerPanic(panic_message(p))),
    }
}

/// Shared `tsmm` left-side driver: stripes the rows of `X` across workers,
/// each accumulating a partial Gram matrix via `gram(x, lo, hi, acc)`, then
/// sums partials in stripe order and mirrors the upper triangle. Both
/// backends use this driver with their own `gram` kernel, so the stripe
/// partition and the join order — the only places threading could perturb
/// floating-point results — are identical by construction.
pub(crate) fn tsmm_left_with<G>(x: &DenseMatrix, gram: G) -> Result<DenseMatrix>
where
    G: Fn(&DenseMatrix, usize, usize, &mut [f64]) + Sync,
{
    let (m, n) = x.shape();
    let threads = kernel_threads();
    let mut out = DenseMatrix::zeros(n, n);
    if m * n * n >= PAR_FLOP_THRESHOLD && threads > 1 && m >= threads {
        // Each worker accumulates a partial Gram matrix over a row stripe;
        // partials are summed afterwards. This mirrors SystemDS' parallel tsmm.
        let chunk = m.div_ceil(threads);
        let scoped: crossbeam::thread::Result<Result<Vec<Vec<f64>>>> =
            crossbeam::thread::scope(|s| {
                let gram = &gram;
                let mut handles = Vec::new();
                for t in 0..threads {
                    let lo = t * chunk;
                    let hi = ((t + 1) * chunk).min(m);
                    if lo >= hi {
                        break;
                    }
                    handles.push(s.spawn(move |_| {
                        let mut acc = vec![0.0f64; n * n];
                        gram(x, lo, hi, &mut acc);
                        acc
                    }));
                }
                let mut partials = Vec::with_capacity(handles.len());
                let mut first_panic: Option<String> = None;
                for h in handles {
                    match h.join() {
                        Ok(acc) => partials.push(acc),
                        Err(p) => {
                            first_panic.get_or_insert_with(|| panic_message(p));
                        }
                    }
                }
                match first_panic {
                    Some(msg) => Err(MatrixError::WorkerPanic(msg)),
                    None => Ok(partials),
                }
            });
        let partials = match scoped {
            Ok(r) => r?,
            Err(p) => return Err(MatrixError::WorkerPanic(panic_message(p))),
        };
        let out_data = out.data_mut();
        for p in partials {
            for (o, v) in out_data.iter_mut().zip(p) {
                *o += v;
            }
        }
    } else {
        gram(x, 0, m, out.data_mut());
    }
    mirror_upper(&mut out);
    Ok(out)
}

/// Mirrors the upper triangle of a square matrix into the lower.
pub(crate) fn mirror_upper(out: &mut DenseMatrix) {
    let n = out.rows();
    for i in 0..n {
        for j in (i + 1)..n {
            let v = out.get(i, j);
            out.set(j, i, v);
        }
    }
}

// ---------------------------------------------------------------------------
// Reference backend kernels
// ---------------------------------------------------------------------------

/// Reference GEMM: cache-blocked i-k-j loops, optionally parallel over row
/// panels.
pub(crate) fn ref_gemm(a: &DenseMatrix, b: &DenseMatrix) -> Result<DenseMatrix> {
    let (m, k) = a.shape();
    let n = b.cols();
    let mut out = DenseMatrix::zeros(m, n);
    let parallel = gemm_parallel(m, n, k);
    run_row_panels(&mut out, parallel, |panel, row0, rows| {
        gemm_panel(a, b, panel, row0, rows)
    })?;
    Ok(out)
}

/// Computes `rows` rows of the product starting at `row0` into `out_panel`.
fn gemm_panel(a: &DenseMatrix, b: &DenseMatrix, out_panel: &mut [f64], row0: usize, rows: usize) {
    let k = a.cols();
    let n = b.cols();
    // i-k-j loop order with k blocking: streams through B row-major.
    #[allow(clippy::needless_range_loop)] // kk indexes both arow and b rows
    for kb in (0..k).step_by(BLOCK_K) {
        let kend = (kb + BLOCK_K).min(k);
        for i in 0..rows {
            let arow = a.row(row0 + i);
            let orow = &mut out_panel[i * n..(i + 1) * n];
            for kk in kb..kend {
                let aik = arow[kk];
                if aik == 0.0 {
                    continue;
                }
                let brow = b.row(kk);
                for j in 0..n {
                    orow[j] += aik * brow[j];
                }
            }
        }
    }
}

/// Reference transpose: tiled for cache friendliness.
pub(crate) fn ref_transpose(a: &DenseMatrix) -> DenseMatrix {
    let (m, n) = a.shape();
    let mut out = DenseMatrix::zeros(n, m);
    const T: usize = 32;
    for ib in (0..m).step_by(T) {
        for jb in (0..n).step_by(T) {
            for i in ib..(ib + T).min(m) {
                for j in jb..(jb + T).min(n) {
                    out.set(j, i, a.get(i, j));
                }
            }
        }
    }
    out
}

/// Reference `tsmm` left side.
pub(crate) fn ref_tsmm_left(x: &DenseMatrix) -> Result<DenseMatrix> {
    tsmm_left_with(x, gram_upper)
}

/// Reference `tsmm` right side: materializes `Xᵀ` and reuses the left-side
/// kernel. This doubles peak memory — the Optimized backend computes `X·Xᵀ`
/// directly; the transpose counter lets tests pin that difference.
pub(crate) fn ref_tsmm_right(x: &DenseMatrix) -> Result<DenseMatrix> {
    backend::note_tsmm_right_transpose();
    let xt = ref_transpose(x);
    ref_tsmm_left(&xt)
}

/// Accumulates the upper triangle of `X[lo..hi,:]ᵀ X[lo..hi,:]` into `acc`.
/// Shared with the Optimized backend: the rank-1 axpy update is already the
/// form the auto-vectorizer handles best, so both engines run this kernel
/// (keeping tsmm-left trivially bit-identical between them).
pub(crate) fn gram_upper(x: &DenseMatrix, lo: usize, hi: usize, acc: &mut [f64]) {
    let n = x.cols();
    for r in lo..hi {
        let row = x.row(r);
        for i in 0..n {
            let xi = row[i];
            if xi == 0.0 {
                continue;
            }
            let arow = &mut acc[i * n..(i + 1) * n];
            for j in i..n {
                arow[j] += xi * row[j];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, v: &[f64]) -> DenseMatrix {
        DenseMatrix::new(rows, cols, v.to_vec()).unwrap()
    }

    fn naive_mm(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut s = 0.0;
                for k in 0..a.cols() {
                    s += a.get(i, k) * b.get(k, j);
                }
                out.set(i, j, s);
            }
        }
        out
    }

    #[test]
    fn small_matmult_matches_hand_result() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = matmult(&a, &b).unwrap();
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmult_rejects_shape_mismatch() {
        let a = m(2, 3, &[0.0; 6]);
        let b = m(2, 3, &[0.0; 6]);
        assert!(matmult(&a, &b).is_err());
    }

    #[test]
    fn blocked_matmult_matches_naive_on_odd_shapes() {
        let a = DenseMatrix::from_fn(17, 71, |i, j| ((i * 31 + j * 7) % 13) as f64 - 6.0);
        let b = DenseMatrix::from_fn(71, 23, |i, j| ((i * 5 + j * 11) % 7) as f64 - 3.0);
        let fast = matmult(&a, &b).unwrap();
        let slow = naive_mm(&a, &b);
        assert!(fast.approx_eq(&slow, 1e-9));
    }

    #[test]
    fn parallel_matmult_matches_naive() {
        // Large enough to cross both parallel thresholds.
        let a = DenseMatrix::from_fn(300, 80, |i, j| ((i + 2 * j) % 17) as f64 * 0.25);
        let b = DenseMatrix::from_fn(80, 90, |i, j| ((3 * i + j) % 11) as f64 * 0.5 - 2.0);
        let fast = matmult(&a, &b).unwrap();
        let slow = naive_mm(&a, &b);
        assert!(fast.rel_eq(&slow, 1e-12));
    }

    #[test]
    fn sparse_dispatch_matches_dense_path() {
        // 2% dense 100x100 left operand crosses the dispatch threshold.
        let a = DenseMatrix::from_fn(100, 100, |i, j| {
            if (i * 100 + j) % 50 == 0 {
                (i + j) as f64 * 0.5 - 3.0
            } else {
                0.0
            }
        });
        assert!(a.sparsity() < 0.15);
        assert!(uses_sparse_dispatch(&a));
        let b = DenseMatrix::from_fn(100, 20, |i, j| ((i * 3 + j) % 7) as f64 - 3.0);
        let got = matmult(&a, &b).unwrap();
        let slow = naive_mm(&a, &b);
        assert!(got.rel_eq(&slow, 1e-12));
    }

    #[test]
    fn transpose_round_trips() {
        let a = DenseMatrix::from_fn(13, 37, |i, j| (i * 100 + j) as f64);
        let t = transpose(&a);
        assert_eq!(t.shape(), (37, 13));
        assert_eq!(t.get(5, 7), a.get(7, 5));
        assert!(transpose(&t).approx_eq(&a, 0.0));
    }

    #[test]
    fn tsmm_left_matches_explicit_product() {
        let x = DenseMatrix::from_fn(40, 9, |i, j| ((i * j + 3) % 5) as f64 - 2.0);
        let expect = naive_mm(&transpose(&x), &x);
        let got = tsmm(&x, TsmmSide::Left).unwrap();
        assert!(got.approx_eq(&expect, 1e-9));
        // Result must be exactly symmetric by construction.
        for i in 0..9 {
            for j in 0..9 {
                assert_eq!(got.get(i, j), got.get(j, i));
            }
        }
    }

    #[test]
    fn tsmm_right_matches_explicit_product() {
        let x = DenseMatrix::from_fn(6, 15, |i, j| (i as f64) - (j as f64) * 0.5);
        let expect = naive_mm(&x, &transpose(&x));
        let got = tsmm(&x, TsmmSide::Right).unwrap();
        assert!(got.approx_eq(&expect, 1e-9));
    }

    #[test]
    fn parallel_tsmm_matches_serial() {
        let x = DenseMatrix::from_fn(2_000, 40, |i, j| ((i * 7 + j * 13) % 19) as f64 * 0.1);
        let got = tsmm(&x, TsmmSide::Left).unwrap();
        let expect = naive_mm(&transpose(&x), &x);
        assert!(got.rel_eq(&expect, 1e-12));
    }

    #[test]
    fn worker_panic_surfaces_as_typed_error_not_abort() {
        if kernel_threads() <= 1 {
            return; // parallel path unreachable on a single-core runner
        }
        // Drive run_row_panels directly with a panicking panel across the
        // parallel path; the panic must come back as MatrixError::WorkerPanic.
        let mut out = DenseMatrix::zeros(512, 8);
        let r = run_row_panels(&mut out, true, |_panel, row0, _rows| {
            if row0 > 0 {
                panic!("injected kernel fault");
            }
        });
        match r {
            Err(MatrixError::WorkerPanic(msg)) => assert!(msg.contains("injected")),
            other => panic!("expected WorkerPanic, got {other:?}"),
        }
        // Serial path with a healthy panel still succeeds.
        let mut out = DenseMatrix::zeros(4, 4);
        assert!(run_row_panels(&mut out, false, |_p, _r0, _rs| {}).is_ok());
    }

    #[test]
    fn tsmm_worker_panic_surfaces_as_typed_error() {
        if kernel_threads() <= 1 {
            return; // parallel path unreachable on a single-core runner
        }
        // Large enough to take the parallel stripe path.
        let x = DenseMatrix::from_fn(2_000, 40, |i, j| (i + j) as f64);
        let r = tsmm_left_with(&x, |_x, lo, _hi, _acc| {
            if lo > 0 {
                panic!("injected tsmm fault");
            }
        });
        match r {
            Err(MatrixError::WorkerPanic(msg)) => assert!(msg.contains("injected")),
            other => panic!("expected WorkerPanic, got {other:?}"),
        }
    }
}
