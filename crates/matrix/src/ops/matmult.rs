//! Matrix multiplication kernels: GEMM, transpose, and `tsmm` (Xᵀ X).
//!
//! GEMM is cache-blocked and optionally multi-threaded over row panels using
//! crossbeam scoped threads; `tsmm` exploits the symmetry of the result the
//! way SystemDS' dedicated `tsmm` instruction does — it is the operator that
//! dominates the `lmDS` workloads in the paper's evaluation.

use crate::dense::DenseMatrix;
use crate::error::{MatrixError, Result};

/// Rows per parallel panel; below this GEMM stays single-threaded.
const PAR_ROW_THRESHOLD: usize = 256;
/// Minimum FLOP count (m*n*k) before threads are spawned.
const PAR_FLOP_THRESHOLD: usize = 2_000_000;
/// Cache-blocking tile edge for the k dimension.
const BLOCK_K: usize = 64;

/// Number of worker threads for parallel kernels (physical parallelism capped
/// at 8 to stay deterministic-ish on CI machines).
pub fn kernel_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

/// Sparsity threshold below which the left operand is converted to CSR and
/// multiplied sparsely (SystemDS-style dense/sparse dispatch).
const SPARSE_DISPATCH_THRESHOLD: f64 = 0.15;
/// Minimum cell count before sparsity estimation is worth the scan.
const SPARSE_DISPATCH_MIN_CELLS: usize = 64 * 64;

/// Matrix multiply `A (m×k) %*% B (k×n)` with dense/sparse dispatch: very
/// sparse left operands (e.g. PageRank link matrices) take a CSR kernel.
pub fn matmult(a: &DenseMatrix, b: &DenseMatrix) -> Result<DenseMatrix> {
    if a.cols() != b.rows() {
        return Err(MatrixError::DimensionMismatch {
            op: "ba+*",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    if a.len() >= SPARSE_DISPATCH_MIN_CELLS && a.sparsity() < SPARSE_DISPATCH_THRESHOLD {
        return crate::sparse::CsrMatrix::from_dense(a).matmult_dense(b);
    }
    let (m, k) = a.shape();
    let n = b.cols();
    let mut out = DenseMatrix::zeros(m, n);
    let flops = m * n * k;
    let threads = kernel_threads();
    if m >= PAR_ROW_THRESHOLD && flops >= PAR_FLOP_THRESHOLD && threads > 1 {
        let chunk = m.div_ceil(threads);
        let out_data = out.data_mut();
        crossbeam::thread::scope(|s| {
            for (t, out_chunk) in out_data.chunks_mut(chunk * n).enumerate() {
                let row0 = t * chunk;
                s.spawn(move |_| {
                    gemm_panel(a, b, out_chunk, row0, out_chunk.len() / n);
                });
            }
        })
        .expect("gemm worker panicked");
    } else {
        let rows = m;
        gemm_panel(a, b, out.data_mut(), 0, rows);
    }
    Ok(out)
}

/// Computes `rows` rows of the product starting at `row0` into `out_panel`.
fn gemm_panel(a: &DenseMatrix, b: &DenseMatrix, out_panel: &mut [f64], row0: usize, rows: usize) {
    let k = a.cols();
    let n = b.cols();
    // i-k-j loop order with k blocking: streams through B row-major.
    #[allow(clippy::needless_range_loop)] // kk indexes both arow and b rows
    for kb in (0..k).step_by(BLOCK_K) {
        let kend = (kb + BLOCK_K).min(k);
        for i in 0..rows {
            let arow = a.row(row0 + i);
            let orow = &mut out_panel[i * n..(i + 1) * n];
            for kk in kb..kend {
                let aik = arow[kk];
                if aik == 0.0 {
                    continue;
                }
                let brow = b.row(kk);
                for j in 0..n {
                    orow[j] += aik * brow[j];
                }
            }
        }
    }
}

/// Transpose.
pub fn transpose(a: &DenseMatrix) -> DenseMatrix {
    let (m, n) = a.shape();
    let mut out = DenseMatrix::zeros(n, m);
    // Tiled transpose for cache friendliness.
    const T: usize = 32;
    for ib in (0..m).step_by(T) {
        for jb in (0..n).step_by(T) {
            for i in ib..(ib + T).min(m) {
                for j in jb..(jb + T).min(n) {
                    out.set(j, i, a.get(i, j));
                }
            }
        }
    }
    out
}

/// Transpose-self matrix multiply `tsmm`: computes `Xᵀ X` (left) or `X Xᵀ`
/// (right), exploiting the symmetry of the result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TsmmSide {
    /// `Xᵀ X` — SystemDS `tsmm ... LEFT`.
    Left,
    /// `X Xᵀ` — SystemDS `tsmm ... RIGHT`.
    Right,
}

/// `tsmm(X)`: symmetric rank-k update.
pub fn tsmm(x: &DenseMatrix, side: TsmmSide) -> DenseMatrix {
    match side {
        TsmmSide::Left => tsmm_left(x),
        TsmmSide::Right => {
            let xt = transpose(x);
            tsmm_left(&xt)
        }
    }
}

fn tsmm_left(x: &DenseMatrix) -> DenseMatrix {
    let (m, n) = x.shape();
    let threads = kernel_threads();
    let mut out = DenseMatrix::zeros(n, n);
    if m * n * n >= PAR_FLOP_THRESHOLD && threads > 1 && m >= threads {
        // Each worker accumulates a partial Gram matrix over a row stripe;
        // partials are summed afterwards. This mirrors SystemDS' parallel tsmm.
        let chunk = m.div_ceil(threads);
        let partials: Vec<Vec<f64>> = crossbeam::thread::scope(|s| {
            let mut handles = Vec::new();
            for t in 0..threads {
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(m);
                if lo >= hi {
                    break;
                }
                handles.push(s.spawn(move |_| {
                    let mut acc = vec![0.0f64; n * n];
                    gram_upper(x, lo, hi, &mut acc);
                    acc
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("tsmm worker"))
                .collect()
        })
        .expect("tsmm scope");
        let out_data = out.data_mut();
        for p in partials {
            for (o, v) in out_data.iter_mut().zip(p) {
                *o += v;
            }
        }
    } else {
        gram_upper(x, 0, m, out.data_mut());
    }
    // Mirror the upper triangle into the lower.
    for i in 0..n {
        for j in (i + 1)..n {
            let v = out.get(i, j);
            out.set(j, i, v);
        }
    }
    out
}

/// Accumulates the upper triangle of `X[lo..hi,:]ᵀ X[lo..hi,:]` into `acc`.
fn gram_upper(x: &DenseMatrix, lo: usize, hi: usize, acc: &mut [f64]) {
    let n = x.cols();
    for r in lo..hi {
        let row = x.row(r);
        for i in 0..n {
            let xi = row[i];
            if xi == 0.0 {
                continue;
            }
            let arow = &mut acc[i * n..(i + 1) * n];
            for j in i..n {
                arow[j] += xi * row[j];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, v: &[f64]) -> DenseMatrix {
        DenseMatrix::new(rows, cols, v.to_vec()).unwrap()
    }

    fn naive_mm(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut s = 0.0;
                for k in 0..a.cols() {
                    s += a.get(i, k) * b.get(k, j);
                }
                out.set(i, j, s);
            }
        }
        out
    }

    #[test]
    fn small_matmult_matches_hand_result() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = matmult(&a, &b).unwrap();
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmult_rejects_shape_mismatch() {
        let a = m(2, 3, &[0.0; 6]);
        let b = m(2, 3, &[0.0; 6]);
        assert!(matmult(&a, &b).is_err());
    }

    #[test]
    fn blocked_matmult_matches_naive_on_odd_shapes() {
        let a = DenseMatrix::from_fn(17, 71, |i, j| ((i * 31 + j * 7) % 13) as f64 - 6.0);
        let b = DenseMatrix::from_fn(71, 23, |i, j| ((i * 5 + j * 11) % 7) as f64 - 3.0);
        let fast = matmult(&a, &b).unwrap();
        let slow = naive_mm(&a, &b);
        assert!(fast.approx_eq(&slow, 1e-9));
    }

    #[test]
    fn parallel_matmult_matches_naive() {
        // Large enough to cross both parallel thresholds.
        let a = DenseMatrix::from_fn(300, 80, |i, j| ((i + 2 * j) % 17) as f64 * 0.25);
        let b = DenseMatrix::from_fn(80, 90, |i, j| ((3 * i + j) % 11) as f64 * 0.5 - 2.0);
        let fast = matmult(&a, &b).unwrap();
        let slow = naive_mm(&a, &b);
        assert!(fast.rel_eq(&slow, 1e-12));
    }

    #[test]
    fn sparse_dispatch_matches_dense_path() {
        // 2% dense 100x100 left operand crosses the dispatch threshold.
        let a = DenseMatrix::from_fn(100, 100, |i, j| {
            if (i * 100 + j) % 50 == 0 {
                (i + j) as f64 * 0.5 - 3.0
            } else {
                0.0
            }
        });
        assert!(a.sparsity() < 0.15);
        let b = DenseMatrix::from_fn(100, 20, |i, j| ((i * 3 + j) % 7) as f64 - 3.0);
        let got = matmult(&a, &b).unwrap();
        let slow = naive_mm(&a, &b);
        assert!(got.rel_eq(&slow, 1e-12));
    }

    #[test]
    fn transpose_round_trips() {
        let a = DenseMatrix::from_fn(13, 37, |i, j| (i * 100 + j) as f64);
        let t = transpose(&a);
        assert_eq!(t.shape(), (37, 13));
        assert_eq!(t.get(5, 7), a.get(7, 5));
        assert!(transpose(&t).approx_eq(&a, 0.0));
    }

    #[test]
    fn tsmm_left_matches_explicit_product() {
        let x = DenseMatrix::from_fn(40, 9, |i, j| ((i * j + 3) % 5) as f64 - 2.0);
        let expect = naive_mm(&transpose(&x), &x);
        let got = tsmm(&x, TsmmSide::Left);
        assert!(got.approx_eq(&expect, 1e-9));
        // Result must be exactly symmetric by construction.
        for i in 0..9 {
            for j in 0..9 {
                assert_eq!(got.get(i, j), got.get(j, i));
            }
        }
    }

    #[test]
    fn tsmm_right_matches_explicit_product() {
        let x = DenseMatrix::from_fn(6, 15, |i, j| (i as f64) - (j as f64) * 0.5);
        let expect = naive_mm(&x, &transpose(&x));
        let got = tsmm(&x, TsmmSide::Right);
        assert!(got.approx_eq(&expect, 1e-9));
    }

    #[test]
    fn parallel_tsmm_matches_serial() {
        let x = DenseMatrix::from_fn(2_000, 40, |i, j| ((i * 7 + j * 13) % 19) as f64 * 0.1);
        let got = tsmm(&x, TsmmSide::Left);
        let expect = naive_mm(&transpose(&x), &x);
        assert!(got.rel_eq(&expect, 1e-12));
    }
}
