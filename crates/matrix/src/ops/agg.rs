//! Full, row-wise, and column-wise aggregates.

use crate::dense::DenseMatrix;
use crate::error::{MatrixError, Result};

/// Aggregate function codes shared by full/row/col aggregates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFn {
    Sum,
    Mean,
    Min,
    Max,
    SumSq,
    Var,
}

impl AggFn {
    /// Opcode fragment used in lineage items (`uack+`, `uacmin`, ...).
    pub fn name(self) -> &'static str {
        match self {
            AggFn::Sum => "sum",
            AggFn::Mean => "mean",
            AggFn::Min => "min",
            AggFn::Max => "max",
            AggFn::SumSq => "sumsq",
            AggFn::Var => "var",
        }
    }

    /// Parses the aggregate name back.
    pub fn from_name(s: &str) -> Option<Self> {
        Some(match s {
            "sum" => AggFn::Sum,
            "mean" => AggFn::Mean,
            "min" => AggFn::Min,
            "max" => AggFn::Max,
            "sumsq" => AggFn::SumSq,
            "var" => AggFn::Var,
            _ => return None,
        })
    }
}

fn fold(values: impl Iterator<Item = f64>, f: AggFn, n: usize) -> f64 {
    match f {
        AggFn::Sum => values.sum(),
        AggFn::Mean => {
            if n == 0 {
                f64::NAN
            } else {
                values.sum::<f64>() / n as f64
            }
        }
        AggFn::Min => values.fold(f64::INFINITY, f64::min),
        AggFn::Max => values.fold(f64::NEG_INFINITY, f64::max),
        AggFn::SumSq => values.map(|v| v * v).sum(),
        AggFn::Var => {
            // Two-pass sample variance over a collected buffer.
            let buf: Vec<f64> = values.collect();
            if buf.len() < 2 {
                return 0.0;
            }
            let mean = buf.iter().sum::<f64>() / buf.len() as f64;
            buf.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (buf.len() - 1) as f64
        }
    }
}

/// Full aggregate over all cells, producing a scalar.
pub fn full_agg(a: &DenseMatrix, f: AggFn) -> f64 {
    fold(a.data().iter().copied(), f, a.len())
}

/// Column aggregate, producing a `1 × cols` row vector.
pub fn col_agg(a: &DenseMatrix, f: AggFn) -> DenseMatrix {
    let (m, n) = a.shape();
    match f {
        // Streaming implementations for the common cases.
        AggFn::Sum | AggFn::Mean | AggFn::SumSq => {
            let mut acc = vec![0.0f64; n];
            for i in 0..m {
                let row = a.row(i);
                for j in 0..n {
                    let v = row[j];
                    acc[j] += if f == AggFn::SumSq { v * v } else { v };
                }
            }
            if f == AggFn::Mean && m > 0 {
                for v in &mut acc {
                    *v /= m as f64;
                }
            }
            DenseMatrix::new(1, n, acc).expect("shape")
        }
        _ => DenseMatrix::from_fn(1, n, |_, j| fold((0..m).map(|i| a.get(i, j)), f, m)),
    }
}

/// Row aggregate, producing a `rows × 1` column vector.
pub fn row_agg(a: &DenseMatrix, f: AggFn) -> DenseMatrix {
    let (m, n) = a.shape();
    DenseMatrix::from_fn(m, 1, |i, _| fold(a.row(i).iter().copied(), f, n))
}

/// `rowMaxs`-style index variant: per-row argmax as a 1-based index column
/// (SystemDS `rowIndexMax`).
pub fn row_index_max(a: &DenseMatrix) -> Result<DenseMatrix> {
    if a.cols() == 0 {
        return Err(MatrixError::InvalidArgument(
            "rowIndexMax of empty matrix".into(),
        ));
    }
    Ok(DenseMatrix::from_fn(a.rows(), 1, |i, _| {
        let row = a.row(i);
        let mut best = 0usize;
        for (j, v) in row.iter().enumerate() {
            if *v > row[best] {
                best = j;
            }
        }
        (best + 1) as f64
    }))
}

/// Trace of a square matrix.
pub fn trace(a: &DenseMatrix) -> Result<f64> {
    if a.rows() != a.cols() {
        return Err(MatrixError::DimensionMismatch {
            op: "trace",
            lhs: a.shape(),
            rhs: a.shape(),
        });
    }
    Ok((0..a.rows()).map(|i| a.get(i, i)).sum())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, v: &[f64]) -> DenseMatrix {
        DenseMatrix::new(rows, cols, v.to_vec()).unwrap()
    }

    #[test]
    fn full_aggregates() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(full_agg(&a, AggFn::Sum), 21.0);
        assert_eq!(full_agg(&a, AggFn::Mean), 3.5);
        assert_eq!(full_agg(&a, AggFn::Min), 1.0);
        assert_eq!(full_agg(&a, AggFn::Max), 6.0);
        assert_eq!(full_agg(&a, AggFn::SumSq), 91.0);
        assert!((full_agg(&a, AggFn::Var) - 3.5).abs() < 1e-12);
    }

    #[test]
    fn col_aggregates() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(col_agg(&a, AggFn::Sum).data(), &[5.0, 7.0, 9.0]);
        assert_eq!(col_agg(&a, AggFn::Mean).data(), &[2.5, 3.5, 4.5]);
        assert_eq!(col_agg(&a, AggFn::Max).data(), &[4.0, 5.0, 6.0]);
        assert_eq!(col_agg(&a, AggFn::Min).data(), &[1.0, 2.0, 3.0]);
        assert_eq!(col_agg(&a, AggFn::SumSq).data(), &[17.0, 29.0, 45.0]);
    }

    #[test]
    fn row_aggregates() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(row_agg(&a, AggFn::Sum).data(), &[6.0, 15.0]);
        assert_eq!(row_agg(&a, AggFn::Min).data(), &[1.0, 4.0]);
        assert_eq!(row_agg(&a, AggFn::Mean).data(), &[2.0, 5.0]);
    }

    #[test]
    fn row_index_max_is_one_based() {
        let a = m(2, 3, &[1.0, 9.0, 3.0, 7.0, 5.0, 6.0]);
        let idx = row_index_max(&a).unwrap();
        assert_eq!(idx.data(), &[2.0, 1.0]);
        assert!(row_index_max(&DenseMatrix::zeros(2, 0)).is_err());
    }

    #[test]
    fn trace_requires_square() {
        let a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(trace(&a).unwrap(), 5.0);
        assert!(trace(&m(1, 2, &[1.0, 2.0])).is_err());
    }

    #[test]
    fn variance_of_constant_rows_is_zero() {
        let a = m(3, 1, &[2.0, 2.0, 2.0]);
        assert_eq!(full_agg(&a, AggFn::Var), 0.0);
        assert_eq!(col_agg(&a, AggFn::Var).data(), &[0.0]);
    }

    #[test]
    fn agg_fn_names_round_trip() {
        for f in [
            AggFn::Sum,
            AggFn::Mean,
            AggFn::Min,
            AggFn::Max,
            AggFn::SumSq,
            AggFn::Var,
        ] {
            assert_eq!(AggFn::from_name(f.name()), Some(f));
        }
        assert_eq!(AggFn::from_name("bogus"), None);
    }
}
