//! The Optimized kernel engine: manual 4-wide f64 unrolled inner loops on
//! stable Rust.
//!
//! "Explicit SIMD" here means writing the loops in the shape the
//! auto-vectorizer and out-of-order core want — four independent accumulator
//! chains per loop body, register-blocked micro-kernels, no data-dependent
//! branches — rather than nightly intrinsics. The payoff over the Reference
//! kernels comes from (a) keeping GEMM accumulators in registers across a
//! whole k block instead of load-add-storing the output row per k step,
//! (b) giving the CPU many independent multiply-add chains to overlap (no
//! fused `mul_add` — fusing would change rounding versus Reference), and
//! (c) packing operands into cache-resident k-blocked panels so the inner
//! loops stream contiguous lines.
//!
//! **Bit-exactness contract.** Every kernel accumulates each output element
//! in a single chain over the shared dimension in ascending order — the same
//! order the Reference kernels use — and the parallel partitions are shared
//! with Reference (`ops::matmult`). Zero terms that Reference skips are
//! added here as `x·0.0`, which cannot change a running sum that starts at
//! `+0.0` for finite inputs. The differential suite in
//! `tests/backend_diff.rs` asserts byte equality on randomized shapes.

use crate::dense::DenseMatrix;
use crate::error::Result;
use crate::ops::elementwise::{BinOp, UnOp};
use crate::ops::matmult::{gemm_parallel, gram_upper, kernel_threads, run_row_panels};
use crate::ops::matmult::{mirror_upper, tsmm_left_with, PAR_FLOP_THRESHOLD};

/// Micro-kernel register block: MR output rows × NR output columns live in
/// registers for the whole k loop (4×8 f64 = 8 AVX2 accumulators, leaving
/// registers for the packed-B vectors and the broadcast A values).
const MR: usize = 4;
const NR: usize = 8;

/// Optimized GEMM: the shared dimension is processed in cache-sized `kc`
/// blocks. Each block packs its slice of B into contiguous k-major column
/// panels (so the micro-kernel streams full cache lines instead of striding
/// by `n`), then a 4×8 register-blocked kernel accumulates the block into the
/// output. Accumulators *reload* from the output between blocks, so every
/// element is still one sequential ascending-k chain — the blocking changes
/// cache traffic, never associativity. Parallel over the same row panels as
/// Reference.
pub(crate) fn gemm(a: &DenseMatrix, b: &DenseMatrix) -> Result<DenseMatrix> {
    let (m, k) = a.shape();
    let n = b.cols();
    let mut out = DenseMatrix::zeros(m, n);
    if m == 0 || n == 0 {
        return Ok(out);
    }
    let parallel = gemm_parallel(m, n, k);
    let kc = kc_block(n, k);
    let mut k0 = 0;
    while k0 < k {
        let kb = kc.min(k - k0);
        // Pack before partitioning: workers share one read-only packed image.
        let pack = pack_b_block(b, k0, kb);
        run_row_panels(&mut out, parallel, |panel, row0, rows| {
            gemm_panel(a, &pack, k0..k0 + kb, n, panel, row0, rows)
        })?;
        k0 += kb;
    }
    Ok(out)
}

/// Shared-dimension block size: targets a packed B block of ~1MB (half the
/// typical L2) so it stays resident while every row panel streams over it,
/// rounded to the k-unroll granule.
fn kc_block(n: usize, k: usize) -> usize {
    let target = (1 << 17) / n.max(1); // f64 count for a 1MB block
    (target & !7).clamp(64, k.max(64))
}

/// Packs rows `k0..k0+kb` of `B` into `ceil(n/NR)` column panels, each laid
/// out kk-major (`panel[kk*NR + c] = B[k0 + kk, j0 + c]`). The tail panel is
/// zero-padded to NR; padded lanes are computed but never stored, so they
/// cannot perturb real output elements (each accumulator lane is
/// independent).
fn pack_b_block(b: &DenseMatrix, k0: usize, kb: usize) -> Vec<f64> {
    let n = b.cols();
    let nb = n.div_ceil(NR);
    let mut pack = vec![0.0f64; nb * kb * NR];
    let bd = b.data();
    for jb in 0..nb {
        let j0 = jb * NR;
        let w = NR.min(n - j0);
        let dst0 = jb * kb * NR;
        for kk in 0..kb {
            let src = (k0 + kk) * n + j0;
            pack[dst0 + kk * NR..dst0 + kk * NR + w].copy_from_slice(&bd[src..src + w]);
        }
    }
    pack
}

/// Computes the contribution of shared-dimension block `kblk` to `rows`
/// output rows starting at `row0` in `out_panel`, against the packed B block.
/// Accumulators start from the output values already in place (zeros for the
/// first block), so each output element remains one register-resident
/// accumulation chain over ascending `kk` — Reference's order exactly.
fn gemm_panel(
    a: &DenseMatrix,
    pack: &[f64],
    kblk: std::ops::Range<usize>,
    n: usize,
    out_panel: &mut [f64],
    row0: usize,
    rows: usize,
) {
    let (k0, kb) = (kblk.start, kblk.len());
    let nb = n.div_ceil(NR);
    let mut i = 0;
    // MR×NR register-blocked body over a kk-major packed A slab: per kk the
    // micro-kernel reads MR contiguous A values and NR contiguous B values,
    // with no bounds checks (both sides come from `chunks_exact`).
    let mut apack = vec![0.0f64; MR * kb];
    while i + MR <= rows {
        for r in 0..MR {
            let arow = &a.row(row0 + i + r)[k0..k0 + kb];
            for (kk, &v) in arow.iter().enumerate() {
                apack[kk * MR + r] = v;
            }
        }
        for jb in 0..nb {
            let j0 = jb * NR;
            let w = NR.min(n - j0);
            let bp = &pack[jb * kb * NR..(jb + 1) * kb * NR];
            let mut acc = [[0.0f64; NR]; MR];
            for (r, accr) in acc.iter_mut().enumerate() {
                let base = (i + r) * n + j0;
                accr[..w].copy_from_slice(&out_panel[base..base + w]);
            }
            // k unrolled by 2: each accumulator lane still receives its adds
            // in ascending-kk order (the two steps run sequentially).
            let mut bit = bp.chunks_exact(2 * NR);
            let mut ait = apack.chunks_exact(2 * MR);
            for (bk2, av2) in (&mut bit).zip(&mut ait) {
                let b0: &[f64; NR] = bk2[..NR].try_into().expect("chunk half is NR");
                let b1: &[f64; NR] = bk2[NR..].try_into().expect("chunk half is NR");
                let a0: &[f64; MR] = av2[..MR].try_into().expect("chunk half is MR");
                let a1: &[f64; MR] = av2[MR..].try_into().expect("chunk half is MR");
                for (accr, &ar) in acc.iter_mut().zip(a0.iter()) {
                    for (o, &bv) in accr.iter_mut().zip(b0.iter()) {
                        *o += ar * bv;
                    }
                }
                for (accr, &ar) in acc.iter_mut().zip(a1.iter()) {
                    for (o, &bv) in accr.iter_mut().zip(b1.iter()) {
                        *o += ar * bv;
                    }
                }
            }
            for (bk, av) in bit
                .remainder()
                .chunks_exact(NR)
                .zip(ait.remainder().chunks_exact(MR))
            {
                let bk: &[f64; NR] = bk.try_into().expect("chunks_exact yields NR");
                let av: &[f64; MR] = av.try_into().expect("chunks_exact yields MR");
                for (accr, &ar) in acc.iter_mut().zip(av.iter()) {
                    for (o, &bv) in accr.iter_mut().zip(bk.iter()) {
                        *o += ar * bv;
                    }
                }
            }
            for (r, accr) in acc.iter().enumerate() {
                let base = (i + r) * n + j0;
                out_panel[base..base + w].copy_from_slice(&accr[..w]);
            }
        }
        i += MR;
    }
    // Row tail: one row at a time against the same packed panels.
    while i < rows {
        let ai = &a.row(row0 + i)[k0..k0 + kb];
        for jb in 0..nb {
            let j0 = jb * NR;
            let w = NR.min(n - j0);
            let bp = &pack[jb * kb * NR..(jb + 1) * kb * NR];
            let mut acc = [0.0f64; NR];
            let base = i * n + j0;
            acc[..w].copy_from_slice(&out_panel[base..base + w]);
            for (bk, &av) in bp.chunks_exact(NR).zip(ai) {
                let bk: &[f64; NR] = bk.try_into().expect("chunks_exact yields NR");
                for (o, &bv) in acc.iter_mut().zip(bk.iter()) {
                    *o += av * bv;
                }
            }
            out_panel[base..base + w].copy_from_slice(&acc[..w]);
        }
        i += 1;
    }
}

/// Optimized `tsmm` left side: shared stripe driver over the shared Gram
/// kernel. The rank-1 axpy update is already in the auto-vectorizer's
/// preferred form, so Reference's kernel is the fast one here too — sharing
/// it makes the left side bit-identical between backends by construction.
pub(crate) fn tsmm_left(x: &DenseMatrix) -> Result<DenseMatrix> {
    tsmm_left_with(x, gram_upper)
}

/// Optimized `tsmm` right side: computes `X·Xᵀ` directly as row-dot-products
/// — no transpose materialization, so peak memory stays at `m×m + m×n`
/// instead of `m×m + 2·m×n`. Each output element is one sequential dot over
/// the shared dimension; threading stripes whole output rows, so the result
/// is identical at any thread count.
pub(crate) fn tsmm_right(x: &DenseMatrix) -> Result<DenseMatrix> {
    let (m, n) = x.shape();
    let mut out = DenseMatrix::zeros(m, m);
    let parallel = m * m * n >= PAR_FLOP_THRESHOLD && m >= kernel_threads();
    run_row_panels(&mut out, parallel, |panel, row0, rows| {
        gram_right_panel(x, panel, row0, rows)
    })?;
    mirror_upper(&mut out);
    Ok(out)
}

/// Fills rows `row0..row0+rows` of the upper triangle of `X·Xᵀ`: four
/// independent dot-product chains run against a common left row.
fn gram_right_panel(x: &DenseMatrix, panel: &mut [f64], row0: usize, rows: usize) {
    let (m, n) = x.shape();
    for ii in 0..rows {
        let i = row0 + ii;
        let ri = x.row(i);
        let orow = &mut panel[ii * m..(ii + 1) * m];
        let mut j = i;
        while j + 4 <= m {
            let r0 = x.row(j);
            let r1 = x.row(j + 1);
            let r2 = x.row(j + 2);
            let r3 = x.row(j + 3);
            let mut acc = [0.0f64; 4];
            for kk in 0..n {
                let v = ri[kk];
                acc[0] += v * r0[kk];
                acc[1] += v * r1[kk];
                acc[2] += v * r2[kk];
                acc[3] += v * r3[kk];
            }
            orow[j..j + 4].copy_from_slice(&acc);
            j += 4;
        }
        while j < m {
            let rj = x.row(j);
            let mut s = 0.0;
            for kk in 0..n {
                s += ri[kk] * rj[kk];
            }
            orow[j] = s;
            j += 1;
        }
    }
}

/// Optimized transpose: same 32×32 tiling as Reference, but the inner copy
/// runs on raw slices (one bounds check per row segment instead of per cell).
pub(crate) fn transpose(a: &DenseMatrix) -> DenseMatrix {
    let (m, n) = a.shape();
    let mut out = DenseMatrix::zeros(n, m);
    const T: usize = 32;
    let ad = a.data();
    let od = out.data_mut();
    for jb in (0..n).step_by(T) {
        let jend = (jb + T).min(n);
        for ib in (0..m).step_by(T) {
            let iend = (ib + T).min(m);
            for j in jb..jend {
                let orow = &mut od[j * m + ib..j * m + iend];
                let mut src = ib * n + j;
                for o in orow.iter_mut() {
                    *o = ad[src];
                    src += n;
                }
            }
        }
    }
    out
}

/// 4-wide unrolled binary map over two equal-length slices.
fn bin_map(a: &[f64], b: &[f64], f: impl Fn(f64, f64) -> f64) -> Vec<f64> {
    let n = a.len();
    let mut out = vec![0.0f64; n];
    let head = n - n % 4;
    for ((o, x), y) in out[..head]
        .chunks_exact_mut(4)
        .zip(a[..head].chunks_exact(4))
        .zip(b[..head].chunks_exact(4))
    {
        o[0] = f(x[0], y[0]);
        o[1] = f(x[1], y[1]);
        o[2] = f(x[2], y[2]);
        o[3] = f(x[3], y[3]);
    }
    for idx in head..n {
        out[idx] = f(a[idx], b[idx]);
    }
    out
}

/// 4-wide unrolled unary map.
fn un_map(a: &[f64], f: impl Fn(f64) -> f64) -> Vec<f64> {
    let n = a.len();
    let mut out = vec![0.0f64; n];
    let head = n - n % 4;
    for (o, x) in out[..head]
        .chunks_exact_mut(4)
        .zip(a[..head].chunks_exact(4))
    {
        o[0] = f(x[0]);
        o[1] = f(x[1]);
        o[2] = f(x[2]);
        o[3] = f(x[3]);
    }
    for idx in head..n {
        out[idx] = f(a[idx]);
    }
    out
}

fn with_shape(a: &DenseMatrix, data: Vec<f64>) -> DenseMatrix {
    DenseMatrix::new(a.rows(), a.cols(), data).expect("shape preserved")
}

/// Same-shape cell-wise binary. The arithmetic-heavy operators are
/// monomorphized so the unrolled loop contains no opcode dispatch; the rest
/// fall back to `BinOp::apply`, which is exactly what Reference computes.
pub(crate) fn ew_binary(op: BinOp, a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    let (ad, bd) = (a.data(), b.data());
    let data = match op {
        BinOp::Add => bin_map(ad, bd, |x, y| x + y),
        BinOp::Sub => bin_map(ad, bd, |x, y| x - y),
        BinOp::Mul => bin_map(ad, bd, |x, y| x * y),
        BinOp::Div => bin_map(ad, bd, |x, y| x / y),
        op => bin_map(ad, bd, move |x, y| op.apply(x, y)),
    };
    with_shape(a, data)
}

/// Matrix ⊕ scalar with monomorphized hot operators.
pub(crate) fn ew_matrix_scalar(op: BinOp, a: &DenseMatrix, s: f64) -> DenseMatrix {
    let ad = a.data();
    let data = match op {
        BinOp::Add => un_map(ad, |x| x + s),
        BinOp::Sub => un_map(ad, |x| x - s),
        BinOp::Mul => un_map(ad, |x| x * s),
        BinOp::Div => un_map(ad, |x| x / s),
        op => un_map(ad, move |x| op.apply(x, s)),
    };
    with_shape(a, data)
}

/// Scalar ⊕ matrix with monomorphized hot operators.
pub(crate) fn ew_scalar_matrix(op: BinOp, s: f64, a: &DenseMatrix) -> DenseMatrix {
    let ad = a.data();
    let data = match op {
        BinOp::Add => un_map(ad, |x| s + x),
        BinOp::Sub => un_map(ad, |x| s - x),
        BinOp::Mul => un_map(ad, |x| s * x),
        BinOp::Div => un_map(ad, |x| s / x),
        op => un_map(ad, move |x| op.apply(s, x)),
    };
    with_shape(a, data)
}

/// Cell-wise unary with monomorphized hot operators.
pub(crate) fn ew_unary(op: UnOp, a: &DenseMatrix) -> DenseMatrix {
    let ad = a.data();
    let data = match op {
        UnOp::Neg => un_map(ad, |x| -x),
        UnOp::Abs => un_map(ad, f64::abs),
        UnOp::Sqrt => un_map(ad, f64::sqrt),
        op => un_map(ad, move |x| op.apply(x)),
    };
    with_shape(a, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{backend_for, BackendKind};

    fn det(rows: usize, cols: usize, seed: u64) -> DenseMatrix {
        DenseMatrix::from_fn(rows, cols, |i, j| {
            let mut h = seed ^ ((i as u64) << 32) ^ (j as u64);
            h ^= h >> 33;
            h = h.wrapping_mul(0xff51afd7ed558ccd);
            h ^= h >> 33;
            ((h % 2001) as f64 - 1000.0) / 250.0
        })
    }

    #[test]
    fn optimized_gemm_bit_matches_reference_on_awkward_shapes() {
        let r = backend_for(BackendKind::Reference);
        let o = backend_for(BackendKind::Optimized);
        for (m, k, n) in [(1, 1, 1), (5, 7, 3), (4, 4, 4), (9, 33, 6), (2, 64, 5)] {
            let a = det(m, k, 7);
            let b = det(k, n, 13);
            assert_eq!(r.gemm(&a, &b).unwrap(), o.gemm(&a, &b).unwrap());
        }
    }

    #[test]
    fn optimized_tsmm_right_skips_transpose() {
        let x = det(30, 11, 5);
        let before = crate::backend::tsmm_right_transposes();
        let got = backend_for(BackendKind::Optimized).tsmm_right(&x).unwrap();
        assert_eq!(crate::backend::tsmm_right_transposes(), before);
        let expect = backend_for(BackendKind::Reference).tsmm_right(&x).unwrap();
        assert!(crate::backend::tsmm_right_transposes() > before);
        assert_eq!(got, expect);
    }

    /// Manual perf probe for micro-kernel tuning — not a correctness test:
    /// `cargo test -p lima-matrix --release gemm_timing_probe -- --ignored --nocapture`
    #[test]
    #[ignore = "manual perf probe, prints timings"]
    fn gemm_timing_probe() {
        use std::time::Instant;
        let n = 512;
        let a = det(n, n, 1);
        let b = det(n, n, 2);
        for (label, be) in [
            ("reference", backend_for(BackendKind::Reference)),
            ("optimized", backend_for(BackendKind::Optimized)),
        ] {
            be.gemm(&a, &b).unwrap();
            let mut best = u128::MAX;
            for _ in 0..5 {
                let t0 = Instant::now();
                be.gemm(&a, &b).unwrap();
                best = best.min(t0.elapsed().as_nanos());
            }
            println!("{label} {n}^3 best {:.2} ms", best as f64 / 1e6);
        }
    }

    #[test]
    fn unrolled_maps_handle_tails() {
        for len in [0usize, 1, 3, 4, 5, 8, 11] {
            let a = det(1, len, 3);
            let b = det(1, len, 9);
            let ref_b = backend_for(BackendKind::Reference);
            let opt_b = backend_for(BackendKind::Optimized);
            assert_eq!(
                ref_b.ew_binary(BinOp::Add, &a, &b),
                opt_b.ew_binary(BinOp::Add, &a, &b)
            );
            assert_eq!(
                ref_b.ew_unary(UnOp::Sigmoid, &a),
                opt_b.ew_unary(UnOp::Sigmoid, &a)
            );
        }
    }
}
