//! Symmetric eigen decomposition via the cyclic Jacobi method.
//!
//! PCA in the paper (`[evals, evects] = eigen(C)`) operates on covariance
//! matrices, which are symmetric — Jacobi is simple, robust, and accurate for
//! the moderate dimensionalities used in the evaluation.

use crate::dense::DenseMatrix;
use crate::error::{MatrixError, Result};

/// Result of a symmetric eigen decomposition.
#[derive(Debug, Clone)]
pub struct EigenResult {
    /// Eigenvalues as an `n × 1` column vector (unsorted, matching `evects`).
    pub values: DenseMatrix,
    /// Eigenvectors as columns of an `n × n` matrix.
    pub vectors: DenseMatrix,
}

/// Computes the eigen decomposition of a symmetric matrix with the cyclic
/// Jacobi method. The input must be square and (numerically) symmetric.
pub fn eigen_symmetric(a: &DenseMatrix) -> Result<EigenResult> {
    let n = a.rows();
    if n != a.cols() {
        return Err(MatrixError::DimensionMismatch {
            op: "eigen",
            lhs: a.shape(),
            rhs: a.shape(),
        });
    }
    // Verify symmetry within a loose tolerance relative to the matrix scale.
    let scale = a.data().iter().fold(0.0f64, |m, v| m.max(v.abs())).max(1.0);
    for i in 0..n {
        for j in (i + 1)..n {
            if (a.get(i, j) - a.get(j, i)).abs() > 1e-8 * scale {
                return Err(MatrixError::InvalidArgument(
                    "eigen: matrix is not symmetric".into(),
                ));
            }
        }
    }

    let mut m = a.clone();
    let mut v = DenseMatrix::identity(n);
    const MAX_SWEEPS: usize = 64;
    for _ in 0..MAX_SWEEPS {
        let off: f64 = {
            let mut s = 0.0;
            for i in 0..n {
                for j in (i + 1)..n {
                    s += m.get(i, j) * m.get(i, j);
                }
            }
            s
        };
        if off.sqrt() <= 1e-12 * scale {
            let values = DenseMatrix::from_fn(n, 1, |i, _| m.get(i, i));
            return Ok(EigenResult { values, vectors: v });
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m.get(p, q);
                if apq.abs() <= 1e-300 {
                    continue;
                }
                let app = m.get(p, p);
                let aqq = m.get(q, q);
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Apply the rotation G(p,q,θ) on both sides of M and
                // accumulate it into V.
                for k in 0..n {
                    let mkp = m.get(k, p);
                    let mkq = m.get(k, q);
                    m.set(k, p, c * mkp - s * mkq);
                    m.set(k, q, s * mkp + c * mkq);
                }
                for k in 0..n {
                    let mpk = m.get(p, k);
                    let mqk = m.get(q, k);
                    m.set(p, k, c * mpk - s * mqk);
                    m.set(q, k, s * mpk + c * mqk);
                }
                for k in 0..n {
                    let vkp = v.get(k, p);
                    let vkq = v.get(k, q);
                    v.set(k, p, c * vkp - s * vkq);
                    v.set(k, q, s * vkp + c * vkq);
                }
            }
        }
    }
    Err(MatrixError::NoConvergence("eigen"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::matmult::{matmult, transpose};

    #[test]
    fn diagonal_matrix_eigenvalues_are_the_diagonal() {
        let a = DenseMatrix::new(2, 2, vec![3.0, 0.0, 0.0, 7.0]).unwrap();
        let r = eigen_symmetric(&a).unwrap();
        let mut vals: Vec<f64> = r.values.data().to_vec();
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((vals[0] - 3.0).abs() < 1e-10);
        assert!((vals[1] - 7.0).abs() < 1e-10);
    }

    #[test]
    fn reconstruction_av_equals_v_lambda() {
        // Symmetric test matrix.
        let a =
            DenseMatrix::new(3, 3, vec![2.0, -1.0, 0.0, -1.0, 2.0, -1.0, 0.0, -1.0, 2.0]).unwrap();
        let r = eigen_symmetric(&a).unwrap();
        let av = matmult(&a, &r.vectors).unwrap();
        // V·diag(λ)
        let vl = DenseMatrix::from_fn(3, 3, |i, j| r.vectors.get(i, j) * r.values.get(j, 0));
        assert!(av.approx_eq(&vl, 1e-9));
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = DenseMatrix::new(
            4,
            4,
            vec![
                4.0, 1.0, 0.5, 0.0, 1.0, 3.0, 0.25, 0.1, 0.5, 0.25, 5.0, 0.3, 0.0, 0.1, 0.3, 2.0,
            ],
        )
        .unwrap();
        let r = eigen_symmetric(&a).unwrap();
        let vtv = matmult(&transpose(&r.vectors), &r.vectors).unwrap();
        assert!(vtv.approx_eq(&DenseMatrix::identity(4), 1e-9));
    }

    #[test]
    fn asymmetric_matrix_is_rejected() {
        let a = DenseMatrix::new(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert!(eigen_symmetric(&a).is_err());
        let a = DenseMatrix::new(1, 2, vec![1.0, 2.0]).unwrap();
        assert!(eigen_symmetric(&a).is_err());
    }

    #[test]
    fn known_2x2_eigenvalues() {
        // [[2,1],[1,2]] has eigenvalues 1 and 3.
        let a = DenseMatrix::new(2, 2, vec![2.0, 1.0, 1.0, 2.0]).unwrap();
        let r = eigen_symmetric(&a).unwrap();
        let mut vals: Vec<f64> = r.values.data().to_vec();
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((vals[0] - 1.0).abs() < 1e-10);
        assert!((vals[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn moderately_sized_covariance_matrix() {
        // Gram matrix of a random-ish tall matrix is symmetric PSD.
        let x = DenseMatrix::from_fn(50, 12, |i, j| ((i * 13 + j * 29) % 23) as f64 / 23.0 - 0.5);
        let g = crate::ops::matmult::tsmm(&x, crate::ops::matmult::TsmmSide::Left).unwrap();
        let r = eigen_symmetric(&g).unwrap();
        // All eigenvalues of a PSD matrix are >= 0 (numerically).
        for &v in r.values.data() {
            assert!(v > -1e-9);
        }
        // A V = V diag(λ)
        let av = matmult(&g, &r.vectors).unwrap();
        let vl = DenseMatrix::from_fn(12, 12, |i, j| r.vectors.get(i, j) * r.values.get(j, 0));
        assert!(av.rel_eq(&vl, 1e-7));
    }
}
