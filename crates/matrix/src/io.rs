//! Plain-text matrix I/O: the format the runtime's `write` instruction emits
//! and its `read` instruction loads when a path is not served by the
//! in-memory data registry.
//!
//! Format: an optional `rows cols` header line followed by one
//! comma-separated row per line. Files without the header are parsed as bare
//! CSV with dimensions inferred.

use crate::dense::DenseMatrix;
use std::io::{BufRead, BufReader, Write};
use std::path::Path;

/// Writes a matrix with a `rows cols` header and comma-separated rows.
pub fn write_matrix_text(path: &Path, m: &DenseMatrix) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut w = std::io::BufWriter::new(file);
    writeln!(w, "{} {}", m.rows(), m.cols())?;
    for i in 0..m.rows() {
        let mut first = true;
        for v in m.row(i) {
            if !first {
                write!(w, ",")?;
            }
            write!(w, "{v}")?;
            first = false;
        }
        writeln!(w)?;
    }
    w.flush()
}

/// Reads a matrix written by [`write_matrix_text`], or bare header-less CSV.
pub fn read_matrix_text(path: &Path) -> std::io::Result<DenseMatrix> {
    let bad = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
    let file = std::fs::File::open(path)?;
    let reader = BufReader::new(file);
    let mut lines = reader.lines();

    let first = match lines.next() {
        Some(l) => l?,
        None => return Err(bad("empty matrix file".into())),
    };
    // Header detection: exactly two whitespace-separated positive integers.
    let header: Option<(usize, usize)> = {
        let toks: Vec<&str> = first.split_whitespace().collect();
        if toks.len() == 2 {
            match (toks[0].parse::<usize>(), toks[1].parse::<usize>()) {
                (Ok(r), Ok(c)) if !first.contains(',') => Some((r, c)),
                _ => None,
            }
        } else {
            None
        }
    };

    let parse_row = |line: &str| -> std::io::Result<Vec<f64>> {
        line.split(',')
            .map(|t| {
                let t = t.trim();
                if t.eq_ignore_ascii_case("nan") {
                    Ok(f64::NAN)
                } else {
                    t.parse::<f64>()
                        .map_err(|e| bad(format!("bad cell '{t}': {e}")))
                }
            })
            .collect()
    };

    let mut data = Vec::new();
    let mut cols = None;
    let mut push_row = |line: &str, data: &mut Vec<f64>| -> std::io::Result<()> {
        if line.trim().is_empty() {
            return Ok(());
        }
        let row = parse_row(line)?;
        match cols {
            None => cols = Some(row.len()),
            Some(c) if c == row.len() => {}
            Some(c) => {
                return Err(bad(format!(
                    "ragged row: expected {c} cells, found {}",
                    row.len()
                )))
            }
        }
        data.extend(row);
        Ok(())
    };

    if header.is_none() {
        push_row(&first, &mut data)?;
    }
    for line in lines {
        push_row(&line?, &mut data)?;
    }

    let (rows, cols) = match header {
        Some((r, c)) => (r, c),
        None => {
            let c = cols.ok_or_else(|| bad("empty matrix file".into()))?;
            (data.len() / c, c)
        }
    };
    DenseMatrix::new(rows, cols, data).map_err(|e| bad(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("lima-io-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn round_trips_with_header() {
        let m = DenseMatrix::from_fn(5, 3, |i, j| (i * 3 + j) as f64 * 0.5 - 2.0);
        let p = tmp("rt.csv");
        write_matrix_text(&p, &m).unwrap();
        let back = read_matrix_text(&p).unwrap();
        assert!(back.approx_eq(&m, 0.0));
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn reads_bare_csv_without_header() {
        let p = tmp("bare.csv");
        std::fs::write(&p, "1,2.5,3\n4,5,6\n").unwrap();
        let m = read_matrix_text(&p).unwrap();
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.get(0, 1), 2.5);
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn reads_nan_cells() {
        let p = tmp("nan.csv");
        std::fs::write(&p, "1,NaN\nnan,4\n").unwrap();
        let m = read_matrix_text(&p).unwrap();
        assert!(m.get(0, 1).is_nan());
        assert!(m.get(1, 0).is_nan());
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn rejects_garbage() {
        let p = tmp("bad.csv");
        std::fs::write(&p, "1,2\n3\n").unwrap();
        assert!(read_matrix_text(&p).is_err()); // ragged
        std::fs::write(&p, "").unwrap();
        assert!(read_matrix_text(&p).is_err()); // empty
        std::fs::write(&p, "a,b\n").unwrap();
        assert!(read_matrix_text(&p).is_err()); // non-numeric
        std::fs::remove_file(&p).unwrap();
        assert!(read_matrix_text(&p).is_err()); // missing file
    }

    #[test]
    fn single_cell_and_column_vectors() {
        let p = tmp("one.csv");
        std::fs::write(&p, "42\n").unwrap();
        let m = read_matrix_text(&p).unwrap();
        assert_eq!(m.shape(), (1, 1));
        std::fs::write(&p, "1\n2\n3\n").unwrap();
        let m = read_matrix_text(&p).unwrap();
        assert_eq!(m.shape(), (3, 1));
        std::fs::remove_file(&p).unwrap();
    }
}
