//! # lima-matrix
//!
//! Dense and sparse linear-algebra substrate for the LIMA reproduction.
//!
//! This crate plays the role of SystemDS' local matrix runtime: it provides the
//! operator kernels that the LIMA runtime instructions dispatch to, plus the
//! [`Value`] type stored in symbol tables and in the lineage reuse cache.
//!
//! Everything is `f64`; matrices are row-major and immutable once shared (they
//! are handed around as `Arc<DenseMatrix>`), which matches the copy-on-write
//! discipline LIMA relies on ("immutable files/RDDs", paper §3.4).

pub mod backend;
pub mod dense;
pub mod error;
pub mod frame;
pub mod io;
pub mod ops;
pub mod rand_gen;
pub mod sparse;
pub mod value;

pub use backend::{BackendKind, KernelBackend};
pub use dense::DenseMatrix;
pub use error::{MatrixError, Result};
pub use sparse::CsrMatrix;
pub use value::{ScalarValue, Value};

/// Convenient alias used throughout the workspace: matrices are shared
/// immutably between the symbol table and the lineage cache.
pub type MatrixRef = std::sync::Arc<DenseMatrix>;
