//! Runtime value types stored in symbol tables and the lineage cache.

use crate::dense::DenseMatrix;
use crate::error::{MatrixError, Result};
use std::fmt;
use std::sync::Arc;

/// A scalar runtime value.
#[derive(Debug, Clone, PartialEq)]
pub enum ScalarValue {
    F64(f64),
    I64(i64),
    Bool(bool),
    Str(Arc<str>),
}

impl ScalarValue {
    /// Numeric view; booleans map to 0/1, strings fail.
    pub fn as_f64(&self) -> Result<f64> {
        match self {
            ScalarValue::F64(v) => Ok(*v),
            ScalarValue::I64(v) => Ok(*v as f64),
            ScalarValue::Bool(b) => Ok(f64::from(*b)),
            ScalarValue::Str(s) => Err(MatrixError::InvalidArgument(format!(
                "string '{s}' is not numeric"
            ))),
        }
    }

    /// Integer view; rejects non-integral floats.
    pub fn as_i64(&self) -> Result<i64> {
        match self {
            ScalarValue::I64(v) => Ok(*v),
            ScalarValue::F64(v) if v.fract() == 0.0 => Ok(*v as i64),
            ScalarValue::Bool(b) => Ok(i64::from(*b)),
            other => Err(MatrixError::InvalidArgument(format!(
                "{other:?} is not an integer"
            ))),
        }
    }

    /// Boolean view; numbers use C semantics (nonzero is true).
    pub fn as_bool(&self) -> Result<bool> {
        match self {
            ScalarValue::Bool(b) => Ok(*b),
            ScalarValue::F64(v) => Ok(*v != 0.0),
            ScalarValue::I64(v) => Ok(*v != 0),
            ScalarValue::Str(s) => Err(MatrixError::InvalidArgument(format!(
                "string '{s}' is not boolean"
            ))),
        }
    }

    /// Canonical text form, used for literal lineage items. The encoding is
    /// type-tagged so `1` (int) and `1.0` (float) produce distinct lineage.
    pub fn lineage_literal(&self) -> String {
        match self {
            ScalarValue::F64(v) => format!("f:{v}"),
            ScalarValue::I64(v) => format!("i:{v}"),
            ScalarValue::Bool(b) => format!("b:{b}"),
            ScalarValue::Str(s) => format!("s:{s}"),
        }
    }

    /// Parses the canonical [`Self::lineage_literal`] form back.
    pub fn from_lineage_literal(s: &str) -> Option<ScalarValue> {
        let (tag, body) = s.split_once(':')?;
        match tag {
            "f" => body.parse().ok().map(ScalarValue::F64),
            "i" => body.parse().ok().map(ScalarValue::I64),
            "b" => body.parse().ok().map(ScalarValue::Bool),
            "s" => Some(ScalarValue::Str(body.into())),
            _ => None,
        }
    }
}

impl fmt::Display for ScalarValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalarValue::F64(v) => write!(f, "{v}"),
            ScalarValue::I64(v) => write!(f, "{v}"),
            ScalarValue::Bool(b) => write!(f, "{b}"),
            ScalarValue::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<f64> for ScalarValue {
    fn from(v: f64) -> Self {
        ScalarValue::F64(v)
    }
}
impl From<i64> for ScalarValue {
    fn from(v: i64) -> Self {
        ScalarValue::I64(v)
    }
}
impl From<bool> for ScalarValue {
    fn from(v: bool) -> Self {
        ScalarValue::Bool(v)
    }
}
impl From<&str> for ScalarValue {
    fn from(v: &str) -> Self {
        ScalarValue::Str(v.into())
    }
}

/// A runtime value: scalar, matrix, or list (DML `list(...)`).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Scalar(ScalarValue),
    Matrix(Arc<DenseMatrix>),
    List(Arc<Vec<Value>>),
}

impl Value {
    /// Wraps a matrix.
    pub fn matrix(m: DenseMatrix) -> Self {
        Value::Matrix(Arc::new(m))
    }

    /// Wraps a float scalar.
    pub fn f64(v: f64) -> Self {
        Value::Scalar(ScalarValue::F64(v))
    }

    /// Wraps an integer scalar.
    pub fn i64(v: i64) -> Self {
        Value::Scalar(ScalarValue::I64(v))
    }

    /// Wraps a boolean scalar.
    pub fn bool(v: bool) -> Self {
        Value::Scalar(ScalarValue::Bool(v))
    }

    /// Wraps a string scalar.
    pub fn str(v: &str) -> Self {
        Value::Scalar(ScalarValue::Str(v.into()))
    }

    /// Wraps a list.
    pub fn list(items: Vec<Value>) -> Self {
        Value::List(Arc::new(items))
    }

    /// Matrix view.
    pub fn as_matrix(&self) -> Result<&Arc<DenseMatrix>> {
        match self {
            Value::Matrix(m) => Ok(m),
            other => Err(MatrixError::InvalidArgument(format!(
                "expected matrix, got {}",
                other.type_name()
            ))),
        }
    }

    /// Scalar view.
    pub fn as_scalar(&self) -> Result<&ScalarValue> {
        match self {
            Value::Scalar(s) => Ok(s),
            other => Err(MatrixError::InvalidArgument(format!(
                "expected scalar, got {}",
                other.type_name()
            ))),
        }
    }

    /// List view.
    pub fn as_list(&self) -> Result<&Arc<Vec<Value>>> {
        match self {
            Value::List(l) => Ok(l),
            other => Err(MatrixError::InvalidArgument(format!(
                "expected list, got {}",
                other.type_name()
            ))),
        }
    }

    /// Numeric view of a scalar (or 1×1 matrix, which DML treats as `as.scalar`).
    pub fn as_f64(&self) -> Result<f64> {
        match self {
            Value::Scalar(s) => s.as_f64(),
            Value::Matrix(m) if m.shape() == (1, 1) => Ok(m.get(0, 0)),
            other => Err(MatrixError::InvalidArgument(format!(
                "expected numeric scalar, got {}",
                other.type_name()
            ))),
        }
    }

    /// Human-readable type tag.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Scalar(ScalarValue::F64(_)) => "f64",
            Value::Scalar(ScalarValue::I64(_)) => "i64",
            Value::Scalar(ScalarValue::Bool(_)) => "bool",
            Value::Scalar(ScalarValue::Str(_)) => "string",
            Value::Matrix(_) => "matrix",
            Value::List(_) => "list",
        }
    }

    /// Approximate in-memory footprint in bytes, used by the cache budget.
    pub fn size_in_bytes(&self) -> usize {
        match self {
            Value::Scalar(ScalarValue::Str(s)) => s.len() + 32,
            Value::Scalar(_) => 16,
            Value::Matrix(m) => m.size_in_bytes(),
            Value::List(items) => 24 + items.iter().map(Value::size_in_bytes).sum::<usize>(),
        }
    }

    /// Structural approximate equality used by tests: matrices compare with
    /// relative tolerance, scalars exactly by numeric value.
    pub fn approx_eq(&self, other: &Value, tol: f64) -> bool {
        match (self, other) {
            (Value::Matrix(a), Value::Matrix(b)) => a.rel_eq(b, tol),
            (Value::Scalar(a), Value::Scalar(b)) => match (a.as_f64(), b.as_f64()) {
                (Ok(x), Ok(y)) => {
                    let scale = x.abs().max(y.abs()).max(1.0);
                    (x - y).abs() <= tol * scale
                }
                _ => a == b,
            },
            (Value::List(a), Value::List(b)) => {
                a.len() == b.len() && a.iter().zip(b.iter()).all(|(x, y)| x.approx_eq(y, tol))
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_conversions() {
        assert_eq!(ScalarValue::F64(2.0).as_i64().unwrap(), 2);
        assert!(ScalarValue::F64(2.5).as_i64().is_err());
        assert_eq!(ScalarValue::Bool(true).as_f64().unwrap(), 1.0);
        assert!(ScalarValue::Str("x".into()).as_f64().is_err());
        assert!(ScalarValue::F64(0.0).as_bool() == Ok(false));
        assert!(ScalarValue::I64(3).as_bool() == Ok(true));
        assert!(ScalarValue::Str("t".into()).as_bool().is_err());
    }

    #[test]
    fn lineage_literals_round_trip() {
        for s in [
            ScalarValue::F64(1.5),
            ScalarValue::I64(-3),
            ScalarValue::Bool(true),
            ScalarValue::Str("hello world".into()),
        ] {
            let lit = s.lineage_literal();
            assert_eq!(ScalarValue::from_lineage_literal(&lit), Some(s));
        }
        assert_eq!(ScalarValue::from_lineage_literal("junk"), None);
        assert_eq!(ScalarValue::from_lineage_literal("z:1"), None);
    }

    #[test]
    fn int_and_float_literals_differ() {
        assert_ne!(
            ScalarValue::I64(1).lineage_literal(),
            ScalarValue::F64(1.0).lineage_literal()
        );
    }

    #[test]
    fn value_accessors() {
        let m = Value::matrix(DenseMatrix::zeros(2, 2));
        assert!(m.as_matrix().is_ok());
        assert!(m.as_scalar().is_err());
        let s = Value::f64(3.0);
        assert_eq!(s.as_f64().unwrap(), 3.0);
        assert!(s.as_matrix().is_err());
        let one_by_one = Value::matrix(DenseMatrix::filled(1, 1, 9.0));
        assert_eq!(one_by_one.as_f64().unwrap(), 9.0);
        let l = Value::list(vec![s.clone()]);
        assert_eq!(l.as_list().unwrap().len(), 1);
        assert!(l.as_f64().is_err());
    }

    #[test]
    fn size_estimates_are_monotone() {
        let small = Value::matrix(DenseMatrix::zeros(2, 2));
        let big = Value::matrix(DenseMatrix::zeros(100, 100));
        assert!(big.size_in_bytes() > small.size_in_bytes());
        let l = Value::list(vec![small.clone(), big.clone()]);
        assert!(l.size_in_bytes() > big.size_in_bytes());
    }

    #[test]
    fn approx_eq_compares_structurally() {
        let a = Value::matrix(DenseMatrix::filled(2, 2, 1.0));
        let b = Value::matrix(DenseMatrix::filled(2, 2, 1.0 + 1e-13));
        assert!(a.approx_eq(&b, 1e-9));
        assert!(!a.approx_eq(&Value::f64(1.0), 1e-9));
        assert!(Value::str("x").approx_eq(&Value::str("x"), 0.0));
        assert!(!Value::str("x").approx_eq(&Value::str("y"), 0.0));
        let la = Value::list(vec![a]);
        let lb = Value::list(vec![b]);
        assert!(la.approx_eq(&lb, 1e-9));
    }
}
