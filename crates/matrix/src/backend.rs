//! Pluggable kernel backends (the ROADMAP's `Substrate`-style trait).
//!
//! One trait, interchangeable engines: [`KernelBackend`] abstracts the dense
//! compute kernels (GEMM, `tsmm`, transpose, cell-wise maps) so alternative
//! implementations can sit side by side and be differential-tested against
//! each other.
//!
//! * [`ReferenceBackend`] — the original scalar kernels; always available,
//!   the ground truth for diff tests.
//! * [`OptimizedBackend`] — manual 4-wide unrolled inner loops (explicit SIMD
//!   shape on stable Rust: independent accumulator chains the compiler lowers
//!   to vector registers), register-blocked GEMM micro-kernel, and a direct
//!   `X·Xᵀ` right-side `tsmm` that skips the transpose materialization.
//!
//! Both engines share the parallel partition and join order (see
//! `ops::matmult`), and the Optimized engine preserves the Reference
//! per-element accumulation order, so for finite inputs the two produce
//! **bit-identical** results. (Non-finite inputs can differ where Reference's
//! zero-skip drops a `0·inf`/`0·NaN` term; kernels only ever see finite data
//! from the runtime's rand/IO paths.) The one intentional divergence:
//! Reference's *parallel* right-side `tsmm` splits partial sums over the
//! shared dimension, so above its parallel threshold it is only
//! approximately equal to the direct product.
//!
//! Selection: `LIMA_BACKEND=reference|optimized` in the environment, or
//! programmatically via [`set_backend`] (wired to `LimaConfig` in
//! `lima-core`). Default is Optimized.

use crate::dense::DenseMatrix;
use crate::error::Result;
use crate::ops::elementwise::{BinOp, UnOp};
use crate::ops::{matmult, optimized};
use std::sync::atomic::{AtomicU8, Ordering};

/// A dense compute engine. All entry points receive shape-validated inputs —
/// the `ops::` dispatch layer rejects mismatched operands before routing, so
/// backends only implement the arithmetic.
pub trait KernelBackend: Send + Sync {
    /// Engine name, used in bench artifacts and logs.
    fn name(&self) -> &'static str;
    /// Dense GEMM `A (m×k) · B (k×n)`; `a.cols() == b.rows()` is guaranteed.
    fn gemm(&self, a: &DenseMatrix, b: &DenseMatrix) -> Result<DenseMatrix>;
    /// `Xᵀ X` (n×n from m×n).
    fn tsmm_left(&self, x: &DenseMatrix) -> Result<DenseMatrix>;
    /// `X Xᵀ` (m×m from m×n).
    fn tsmm_right(&self, x: &DenseMatrix) -> Result<DenseMatrix>;
    /// Transpose.
    fn transpose(&self, a: &DenseMatrix) -> DenseMatrix;
    /// Cell-wise binary on same-shape operands (broadcasting is resolved by
    /// the dispatch layer before reaching the backend).
    fn ew_binary(&self, op: BinOp, a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix;
    /// Matrix ⊕ scalar.
    fn ew_matrix_scalar(&self, op: BinOp, a: &DenseMatrix, s: f64) -> DenseMatrix;
    /// Scalar ⊕ matrix (non-commutative operators).
    fn ew_scalar_matrix(&self, op: BinOp, s: f64, a: &DenseMatrix) -> DenseMatrix;
    /// Cell-wise unary.
    fn ew_unary(&self, op: UnOp, a: &DenseMatrix) -> DenseMatrix;
}

/// Identifies a kernel backend in config / env / bench artifacts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// Original scalar kernels; diff-test ground truth.
    Reference,
    /// Unrolled + register-blocked engine (default).
    Optimized,
}

impl BackendKind {
    /// Stable lowercase name (env var / JSON value).
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Reference => "reference",
            BackendKind::Optimized => "optimized",
        }
    }

    /// Parses an env/config value; accepts short aliases.
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "reference" | "ref" | "scalar" => Some(BackendKind::Reference),
            "optimized" | "opt" | "simd" | "fast" => Some(BackendKind::Optimized),
            _ => None,
        }
    }
}

/// The always-available scalar engine.
pub struct ReferenceBackend;

impl KernelBackend for ReferenceBackend {
    fn name(&self) -> &'static str {
        "reference"
    }
    fn gemm(&self, a: &DenseMatrix, b: &DenseMatrix) -> Result<DenseMatrix> {
        matmult::ref_gemm(a, b)
    }
    fn tsmm_left(&self, x: &DenseMatrix) -> Result<DenseMatrix> {
        matmult::ref_tsmm_left(x)
    }
    fn tsmm_right(&self, x: &DenseMatrix) -> Result<DenseMatrix> {
        matmult::ref_tsmm_right(x)
    }
    fn transpose(&self, a: &DenseMatrix) -> DenseMatrix {
        matmult::ref_transpose(a)
    }
    fn ew_binary(&self, op: BinOp, a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
        crate::ops::elementwise::ref_ew_binary(op, a, b)
    }
    fn ew_matrix_scalar(&self, op: BinOp, a: &DenseMatrix, s: f64) -> DenseMatrix {
        crate::ops::elementwise::ref_ew_matrix_scalar(op, a, s)
    }
    fn ew_scalar_matrix(&self, op: BinOp, s: f64, a: &DenseMatrix) -> DenseMatrix {
        crate::ops::elementwise::ref_ew_scalar_matrix(op, s, a)
    }
    fn ew_unary(&self, op: UnOp, a: &DenseMatrix) -> DenseMatrix {
        crate::ops::elementwise::ref_ew_unary(op, a)
    }
}

/// The unrolled engine (see [`crate::ops::optimized`]).
pub struct OptimizedBackend;

impl KernelBackend for OptimizedBackend {
    fn name(&self) -> &'static str {
        "optimized"
    }
    fn gemm(&self, a: &DenseMatrix, b: &DenseMatrix) -> Result<DenseMatrix> {
        optimized::gemm(a, b)
    }
    fn tsmm_left(&self, x: &DenseMatrix) -> Result<DenseMatrix> {
        optimized::tsmm_left(x)
    }
    fn tsmm_right(&self, x: &DenseMatrix) -> Result<DenseMatrix> {
        optimized::tsmm_right(x)
    }
    fn transpose(&self, a: &DenseMatrix) -> DenseMatrix {
        optimized::transpose(a)
    }
    fn ew_binary(&self, op: BinOp, a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
        optimized::ew_binary(op, a, b)
    }
    fn ew_matrix_scalar(&self, op: BinOp, a: &DenseMatrix, s: f64) -> DenseMatrix {
        optimized::ew_matrix_scalar(op, a, s)
    }
    fn ew_scalar_matrix(&self, op: BinOp, s: f64, a: &DenseMatrix) -> DenseMatrix {
        optimized::ew_scalar_matrix(op, s, a)
    }
    fn ew_unary(&self, op: UnOp, a: &DenseMatrix) -> DenseMatrix {
        optimized::ew_unary(op, a)
    }
}

static REFERENCE: ReferenceBackend = ReferenceBackend;
static OPTIMIZED: OptimizedBackend = OptimizedBackend;

/// 0 = unset (resolve from env on first use), 1 = Reference, 2 = Optimized.
static ACTIVE: AtomicU8 = AtomicU8::new(0);

/// Resolves the process-wide active backend kind, reading `LIMA_BACKEND`
/// once on first use (default: Optimized).
pub fn active_kind() -> BackendKind {
    match ACTIVE.load(Ordering::Relaxed) {
        1 => BackendKind::Reference,
        2 => BackendKind::Optimized,
        _ => {
            let kind = std::env::var("LIMA_BACKEND")
                .ok()
                .and_then(|s| BackendKind::parse(&s))
                .unwrap_or(BackendKind::Optimized);
            set_backend(kind);
            kind
        }
    }
}

/// Sets the process-wide active backend (config takes precedence over env).
pub fn set_backend(kind: BackendKind) {
    let tag = match kind {
        BackendKind::Reference => 1,
        BackendKind::Optimized => 2,
    };
    ACTIVE.store(tag, Ordering::Relaxed);
}

/// The engine behind a kind, for explicit side-by-side use (diff tests,
/// benches).
pub fn backend_for(kind: BackendKind) -> &'static dyn KernelBackend {
    match kind {
        BackendKind::Reference => &REFERENCE,
        BackendKind::Optimized => &OPTIMIZED,
    }
}

/// The engine all `ops::` dispatchers route through.
pub fn active() -> &'static dyn KernelBackend {
    backend_for(active_kind())
}

thread_local! {
    /// Counts full-transpose materializations taken by the Reference
    /// right-side `tsmm` path on this thread. The Optimized backend computes
    /// `X·Xᵀ` directly; a test pins that it never bumps this counter.
    /// Thread-local (the bump happens on the calling thread before workers
    /// spawn) so concurrent tests cannot perturb each other's readings.
    static TSMM_RIGHT_TRANSPOSES: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Transpose materializations performed for right-side `tsmm` by the current
/// thread so far.
pub fn tsmm_right_transposes() -> u64 {
    TSMM_RIGHT_TRANSPOSES.with(|c| c.get())
}

pub(crate) fn note_tsmm_right_transpose() {
    TSMM_RIGHT_TRANSPOSES.with(|c| c.set(c.get() + 1));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_parse_round_trips_and_accepts_aliases() {
        assert_eq!(
            BackendKind::parse(BackendKind::Reference.name()),
            Some(BackendKind::Reference)
        );
        assert_eq!(
            BackendKind::parse(BackendKind::Optimized.name()),
            Some(BackendKind::Optimized)
        );
        assert_eq!(BackendKind::parse(" SIMD "), Some(BackendKind::Optimized));
        assert_eq!(BackendKind::parse("ref"), Some(BackendKind::Reference));
        assert_eq!(BackendKind::parse("tpu"), None);
    }

    #[test]
    fn set_backend_switches_active_engine() {
        // Note: process-global; restore the default before returning so other
        // tests in this binary see the standard configuration.
        set_backend(BackendKind::Reference);
        assert_eq!(active_kind(), BackendKind::Reference);
        assert_eq!(active().name(), "reference");
        set_backend(BackendKind::Optimized);
        assert_eq!(active_kind(), BackendKind::Optimized);
        assert_eq!(active().name(), "optimized");
    }

    #[test]
    fn backends_are_reachable_by_kind() {
        assert_eq!(backend_for(BackendKind::Reference).name(), "reference");
        assert_eq!(backend_for(BackendKind::Optimized).name(), "optimized");
    }
}
