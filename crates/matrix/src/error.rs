//! Error type shared by all matrix kernels.

use std::fmt;

/// Result alias for matrix operations.
pub type Result<T> = std::result::Result<T, MatrixError>;

/// Errors raised by matrix kernels. Kernels validate shapes up front so that
/// the runtime can surface script-level errors instead of panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatrixError {
    /// Operand shapes are incompatible for the requested operation.
    DimensionMismatch {
        op: &'static str,
        lhs: (usize, usize),
        rhs: (usize, usize),
    },
    /// An index or range fell outside the matrix bounds.
    IndexOutOfBounds {
        op: &'static str,
        index: usize,
        bound: usize,
    },
    /// A numerically singular (or non-positive-definite) system was given to a
    /// direct solver.
    Singular(&'static str),
    /// The iterative kernel failed to converge within its iteration budget.
    NoConvergence(&'static str),
    /// Catch-all for invalid arguments (bad probability, empty matrix, ...).
    InvalidArgument(String),
    /// A parallel kernel worker thread panicked. Surfaced as a typed error so
    /// the runtime can fail the script instead of aborting the process.
    WorkerPanic(String),
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixError::DimensionMismatch { op, lhs, rhs } => write!(
                f,
                "{op}: dimension mismatch {}x{} vs {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            MatrixError::IndexOutOfBounds { op, index, bound } => {
                write!(f, "{op}: index {index} out of bounds (<{bound})")
            }
            MatrixError::Singular(op) => write!(f, "{op}: matrix is singular"),
            MatrixError::NoConvergence(op) => write!(f, "{op}: did not converge"),
            MatrixError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            MatrixError::WorkerPanic(msg) => write!(f, "kernel worker panicked: {msg}"),
        }
    }
}

impl std::error::Error for MatrixError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_readable() {
        let e = MatrixError::DimensionMismatch {
            op: "mm",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        assert_eq!(e.to_string(), "mm: dimension mismatch 2x3 vs 4x5");
        let e = MatrixError::IndexOutOfBounds {
            op: "slice",
            index: 9,
            bound: 4,
        };
        assert!(e.to_string().contains("index 9"));
        assert!(MatrixError::Singular("solve")
            .to_string()
            .contains("singular"));
        assert!(MatrixError::NoConvergence("eigen")
            .to_string()
            .contains("converge"));
        assert!(MatrixError::InvalidArgument("x".into())
            .to_string()
            .contains("x"));
    }
}
