//! Row-major dense `f64` matrix.

use crate::error::{MatrixError, Result};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Sentinel for "non-zero count not currently known".
const NNZ_UNKNOWN: u64 = u64::MAX;

/// A dense, row-major `f64` matrix.
///
/// This is the workhorse data type of the LIMA reproduction. It is cheap to
/// share (`Arc<DenseMatrix>`), and all kernels treat inputs as immutable,
/// producing fresh outputs — the discipline the lineage cache depends on.
///
/// The non-zero count backing [`DenseMatrix::sparsity`] is cached: dense/
/// sparse kernel dispatch consults sparsity on every multiply, and a full
/// O(cells) rescan per call would dominate small GEMMs. The cache is
/// maintained incrementally by cell-level mutators and invalidated by bulk
/// mutable access; it never affects equality or the stored values.
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
    /// Cached count of non-zero cells; `NNZ_UNKNOWN` until first computed.
    nnz: AtomicU64,
}

impl Clone for DenseMatrix {
    fn clone(&self) -> Self {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.clone(),
            nnz: AtomicU64::new(self.nnz.load(Ordering::Relaxed)),
        }
    }
}

impl PartialEq for DenseMatrix {
    fn eq(&self, other: &Self) -> bool {
        self.rows == other.rows && self.cols == other.cols && self.data == other.data
    }
}

impl DenseMatrix {
    /// Creates a matrix from a row-major buffer. The buffer length must be
    /// exactly `rows * cols`.
    pub fn new(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(MatrixError::InvalidArgument(format!(
                "buffer length {} does not match {}x{}",
                data.len(),
                rows,
                cols
            )));
        }
        Ok(Self {
            rows,
            cols,
            data,
            nnz: AtomicU64::new(NNZ_UNKNOWN),
        })
    }

    /// Creates a matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        let cells = rows * cols;
        let nnz = if value != 0.0 { cells as u64 } else { 0 };
        Self {
            rows,
            cols,
            data: vec![value; cells],
            nnz: AtomicU64::new(nnz),
        }
    }

    /// Creates an all-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self::filled(rows, cols, 0.0)
    }

    /// Creates an identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a column vector from a slice.
    pub fn col_vector(values: &[f64]) -> Self {
        Self {
            rows: values.len(),
            cols: 1,
            data: values.to_vec(),
            nnz: AtomicU64::new(NNZ_UNKNOWN),
        }
    }

    /// Creates a row vector from a slice.
    pub fn row_vector(values: &[f64]) -> Self {
        Self {
            rows: 1,
            cols: values.len(),
            data: values.to_vec(),
            nnz: AtomicU64::new(NNZ_UNKNOWN),
        }
    }

    /// Builds a matrix from a closure evaluated at each `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        let mut nnz = 0u64;
        for i in 0..rows {
            for j in 0..cols {
                let v = f(i, j);
                if v != 0.0 {
                    nnz += 1;
                }
                data.push(v);
            }
        }
        Self {
            rows,
            cols,
            data,
            nnz: AtomicU64::new(nnz),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of cells.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix has no cells.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Estimated in-memory size in bytes (used by the cache cost model).
    #[inline]
    pub fn size_in_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f64>() + std::mem::size_of::<Self>()
    }

    /// Unchecked cell accessor (debug-asserted).
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        debug_assert!(row < self.rows && col < self.cols);
        self.data[row * self.cols + col]
    }

    /// Bounds-checked cell accessor.
    pub fn try_get(&self, row: usize, col: usize) -> Result<f64> {
        if row >= self.rows {
            return Err(MatrixError::IndexOutOfBounds {
                op: "get",
                index: row,
                bound: self.rows,
            });
        }
        if col >= self.cols {
            return Err(MatrixError::IndexOutOfBounds {
                op: "get",
                index: col,
                bound: self.cols,
            });
        }
        Ok(self.get(row, col))
    }

    /// Mutable cell accessor for construction-time code. Maintains the cached
    /// non-zero count incrementally when it is known.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        debug_assert!(row < self.rows && col < self.cols);
        let idx = row * self.cols + col;
        let old = self.data[idx];
        self.data[idx] = value;
        let nnz = self.nnz.get_mut();
        if *nnz != NNZ_UNKNOWN && (old != 0.0) != (value != 0.0) {
            if value != 0.0 {
                *nnz += 1;
            } else {
                *nnz -= 1;
            }
        }
    }

    /// Row-major view of the underlying buffer.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable row-major view (construction-time only). Invalidates the
    /// cached non-zero count: callers may rewrite arbitrary cells.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        *self.nnz.get_mut() = NNZ_UNKNOWN;
        &mut self.data
    }

    /// Consumes the matrix, returning the row-major buffer.
    pub fn into_data(self) -> Vec<f64> {
        self.data
    }

    /// A single row as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// A single row as a mutable slice. Invalidates the cached non-zero count.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        *self.nnz.get_mut() = NNZ_UNKNOWN;
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Iterator over rows.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Count of non-zero cells, cached after the first scan. Kernel dispatch
    /// consults this on every multiply, so repeated calls must be O(1): the
    /// count is maintained by [`DenseMatrix::set`] and invalidated by the
    /// bulk mutators ([`DenseMatrix::data_mut`] / [`DenseMatrix::row_mut`]).
    pub fn nnz(&self) -> usize {
        let cached = self.nnz.load(Ordering::Relaxed);
        if cached != NNZ_UNKNOWN {
            return cached as usize;
        }
        let counted = self.data.iter().filter(|v| **v != 0.0).count();
        self.nnz.store(counted as u64, Ordering::Relaxed);
        counted
    }

    /// True when the cached non-zero count is currently known (no scan would
    /// be needed to answer [`DenseMatrix::sparsity`]). Exposed for dispatch
    /// tests; not part of the numeric contract.
    pub fn nnz_is_cached(&self) -> bool {
        self.nnz.load(Ordering::Relaxed) != NNZ_UNKNOWN
    }

    /// Fraction of non-zero cells; drives sparse-vs-dense cost estimates.
    pub fn sparsity(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.nnz() as f64 / self.data.len() as f64
    }

    /// True when both shapes and all cells match within `tol` absolutely.
    pub fn approx_eq(&self, other: &DenseMatrix, tol: f64) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| (a - b).abs() <= tol || (a.is_nan() && b.is_nan()))
    }

    /// Relative comparison used by tests on larger aggregates: each cell must
    /// match within `tol * max(1, |a|, |b|)`.
    pub fn rel_eq(&self, other: &DenseMatrix, tol: f64) -> bool {
        self.shape() == other.shape()
            && self.data.iter().zip(&other.data).all(|(a, b)| {
                let scale = a.abs().max(b.abs()).max(1.0);
                (a - b).abs() <= tol * scale || (a.is_nan() && b.is_nan())
            })
    }
}

impl fmt::Debug for DenseMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DenseMatrix {}x{} [", self.rows, self.cols)?;
        let show_rows = self.rows.min(8);
        for i in 0..show_rows {
            write!(f, "  ")?;
            let show_cols = self.cols.min(8);
            for j in 0..show_cols {
                write!(f, "{:10.4} ", self.get(i, j))?;
            }
            if self.cols > show_cols {
                write!(f, "...")?;
            }
            writeln!(f)?;
        }
        if self.rows > show_rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_buffer_length() {
        assert!(DenseMatrix::new(2, 3, vec![0.0; 6]).is_ok());
        assert!(DenseMatrix::new(2, 3, vec![0.0; 5]).is_err());
    }

    #[test]
    fn identity_has_unit_diagonal() {
        let i3 = DenseMatrix::identity(3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(i3.get(r, c), if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_fn_is_row_major() {
        let m = DenseMatrix::from_fn(2, 3, |i, j| (i * 10 + j) as f64);
        assert_eq!(m.data(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        assert_eq!(m.row(1), &[10.0, 11.0, 12.0]);
    }

    #[test]
    fn try_get_checks_bounds() {
        let m = DenseMatrix::zeros(2, 2);
        assert!(m.try_get(1, 1).is_ok());
        assert!(m.try_get(2, 0).is_err());
        assert!(m.try_get(0, 2).is_err());
    }

    #[test]
    fn sparsity_counts_nonzeros() {
        let m = DenseMatrix::new(1, 4, vec![0.0, 1.0, 0.0, 2.0]).unwrap();
        assert_eq!(m.sparsity(), 0.5);
        assert_eq!(DenseMatrix::zeros(0, 0).sparsity(), 0.0);
    }

    #[test]
    fn nnz_cache_tracks_set_mutations() {
        let mut m = DenseMatrix::zeros(3, 3);
        assert!(m.nnz_is_cached());
        assert_eq!(m.nnz(), 0);
        m.set(0, 0, 2.0);
        m.set(1, 1, 3.0);
        assert_eq!(m.nnz(), 2);
        m.set(0, 0, 0.0);
        assert_eq!(m.nnz(), 1);
        m.set(1, 1, 5.0); // nonzero -> nonzero: count unchanged
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.sparsity(), 1.0 / 9.0);
    }

    #[test]
    fn nnz_cache_invalidated_by_bulk_mutators() {
        let mut m = DenseMatrix::zeros(2, 2);
        assert_eq!(m.nnz(), 0);
        m.data_mut()[0] = 7.0;
        assert!(!m.nnz_is_cached());
        assert_eq!(m.nnz(), 1); // recomputed lazily, then cached again
        assert!(m.nnz_is_cached());
        m.row_mut(1)[0] = 1.0;
        assert!(!m.nnz_is_cached());
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    fn nnz_cache_survives_clone_and_ignores_eq() {
        let mut m = DenseMatrix::from_fn(2, 2, |i, j| (i + j) as f64);
        assert_eq!(m.nnz(), 3);
        let c = m.clone();
        assert!(c.nnz_is_cached());
        assert_eq!(c.nnz(), 3);
        // Equality compares values only, regardless of cache state.
        m.data_mut();
        assert!(!m.nnz_is_cached());
        assert_eq!(m, c);
    }

    #[test]
    fn approx_eq_tolerates_small_differences() {
        let a = DenseMatrix::new(1, 2, vec![1.0, 2.0]).unwrap();
        let b = DenseMatrix::new(1, 2, vec![1.0 + 1e-12, 2.0]).unwrap();
        assert!(a.approx_eq(&b, 1e-9));
        assert!(!a.approx_eq(&b, 1e-15));
        let c = DenseMatrix::zeros(2, 1);
        assert!(!a.approx_eq(&c, 1.0));
    }

    #[test]
    fn vectors_have_expected_shapes() {
        assert_eq!(DenseMatrix::col_vector(&[1.0, 2.0]).shape(), (2, 1));
        assert_eq!(DenseMatrix::row_vector(&[1.0, 2.0]).shape(), (1, 2));
    }

    #[test]
    fn size_in_bytes_scales_with_cells() {
        let small = DenseMatrix::zeros(2, 2);
        let big = DenseMatrix::zeros(20, 20);
        assert!(big.size_in_bytes() > small.size_in_bytes());
    }
}
