//! Row-major dense `f64` matrix.

use crate::error::{MatrixError, Result};
use std::fmt;

/// A dense, row-major `f64` matrix.
///
/// This is the workhorse data type of the LIMA reproduction. It is cheap to
/// share (`Arc<DenseMatrix>`), and all kernels treat inputs as immutable,
/// producing fresh outputs — the discipline the lineage cache depends on.
#[derive(Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a matrix from a row-major buffer. The buffer length must be
    /// exactly `rows * cols`.
    pub fn new(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(MatrixError::InvalidArgument(format!(
                "buffer length {} does not match {}x{}",
                data.len(),
                rows,
                cols
            )));
        }
        Ok(Self { rows, cols, data })
    }

    /// Creates a matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates an all-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self::filled(rows, cols, 0.0)
    }

    /// Creates an identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Creates a column vector from a slice.
    pub fn col_vector(values: &[f64]) -> Self {
        Self {
            rows: values.len(),
            cols: 1,
            data: values.to_vec(),
        }
    }

    /// Creates a row vector from a slice.
    pub fn row_vector(values: &[f64]) -> Self {
        Self {
            rows: 1,
            cols: values.len(),
            data: values.to_vec(),
        }
    }

    /// Builds a matrix from a closure evaluated at each `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of cells.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix has no cells.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Estimated in-memory size in bytes (used by the cache cost model).
    #[inline]
    pub fn size_in_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f64>() + std::mem::size_of::<Self>()
    }

    /// Unchecked cell accessor (debug-asserted).
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        debug_assert!(row < self.rows && col < self.cols);
        self.data[row * self.cols + col]
    }

    /// Bounds-checked cell accessor.
    pub fn try_get(&self, row: usize, col: usize) -> Result<f64> {
        if row >= self.rows {
            return Err(MatrixError::IndexOutOfBounds {
                op: "get",
                index: row,
                bound: self.rows,
            });
        }
        if col >= self.cols {
            return Err(MatrixError::IndexOutOfBounds {
                op: "get",
                index: col,
                bound: self.cols,
            });
        }
        Ok(self.get(row, col))
    }

    /// Mutable cell accessor for construction-time code.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        debug_assert!(row < self.rows && col < self.cols);
        self.data[row * self.cols + col] = value;
    }

    /// Row-major view of the underlying buffer.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable row-major view (construction-time only).
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix, returning the row-major buffer.
    pub fn into_data(self) -> Vec<f64> {
        self.data
    }

    /// A single row as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// A single row as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Iterator over rows.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Fraction of non-zero cells; drives sparse-vs-dense cost estimates.
    pub fn sparsity(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        let nnz = self.data.iter().filter(|v| **v != 0.0).count();
        nnz as f64 / self.data.len() as f64
    }

    /// True when both shapes and all cells match within `tol` absolutely.
    pub fn approx_eq(&self, other: &DenseMatrix, tol: f64) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| (a - b).abs() <= tol || (a.is_nan() && b.is_nan()))
    }

    /// Relative comparison used by tests on larger aggregates: each cell must
    /// match within `tol * max(1, |a|, |b|)`.
    pub fn rel_eq(&self, other: &DenseMatrix, tol: f64) -> bool {
        self.shape() == other.shape()
            && self.data.iter().zip(&other.data).all(|(a, b)| {
                let scale = a.abs().max(b.abs()).max(1.0);
                (a - b).abs() <= tol * scale || (a.is_nan() && b.is_nan())
            })
    }
}

impl fmt::Debug for DenseMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DenseMatrix {}x{} [", self.rows, self.cols)?;
        let show_rows = self.rows.min(8);
        for i in 0..show_rows {
            write!(f, "  ")?;
            let show_cols = self.cols.min(8);
            for j in 0..show_cols {
                write!(f, "{:10.4} ", self.get(i, j))?;
            }
            if self.cols > show_cols {
                write!(f, "...")?;
            }
            writeln!(f)?;
        }
        if self.rows > show_rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_buffer_length() {
        assert!(DenseMatrix::new(2, 3, vec![0.0; 6]).is_ok());
        assert!(DenseMatrix::new(2, 3, vec![0.0; 5]).is_err());
    }

    #[test]
    fn identity_has_unit_diagonal() {
        let i3 = DenseMatrix::identity(3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(i3.get(r, c), if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_fn_is_row_major() {
        let m = DenseMatrix::from_fn(2, 3, |i, j| (i * 10 + j) as f64);
        assert_eq!(m.data(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        assert_eq!(m.row(1), &[10.0, 11.0, 12.0]);
    }

    #[test]
    fn try_get_checks_bounds() {
        let m = DenseMatrix::zeros(2, 2);
        assert!(m.try_get(1, 1).is_ok());
        assert!(m.try_get(2, 0).is_err());
        assert!(m.try_get(0, 2).is_err());
    }

    #[test]
    fn sparsity_counts_nonzeros() {
        let m = DenseMatrix::new(1, 4, vec![0.0, 1.0, 0.0, 2.0]).unwrap();
        assert_eq!(m.sparsity(), 0.5);
        assert_eq!(DenseMatrix::zeros(0, 0).sparsity(), 0.0);
    }

    #[test]
    fn approx_eq_tolerates_small_differences() {
        let a = DenseMatrix::new(1, 2, vec![1.0, 2.0]).unwrap();
        let b = DenseMatrix::new(1, 2, vec![1.0 + 1e-12, 2.0]).unwrap();
        assert!(a.approx_eq(&b, 1e-9));
        assert!(!a.approx_eq(&b, 1e-15));
        let c = DenseMatrix::zeros(2, 1);
        assert!(!a.approx_eq(&c, 1.0));
    }

    #[test]
    fn vectors_have_expected_shapes() {
        assert_eq!(DenseMatrix::col_vector(&[1.0, 2.0]).shape(), (2, 1));
        assert_eq!(DenseMatrix::row_vector(&[1.0, 2.0]).shape(), (1, 2));
    }

    #[test]
    fn size_in_bytes_scales_with_cells() {
        let small = DenseMatrix::zeros(2, 2);
        let big = DenseMatrix::zeros(20, 20);
        assert!(big.size_in_bytes() > small.size_in_bytes());
    }
}
