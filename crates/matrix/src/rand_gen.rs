//! Seeded random matrix generation and sampling.
//!
//! These are the non-deterministic "basic randomized operations like `rand`
//! or `sample`" from the paper (§1). The LIMA runtime generates a *system
//! seed* for each invocation and records it in the lineage item, which is what
//! makes the trace deterministic and reusable.

use crate::dense::DenseMatrix;
use crate::error::{MatrixError, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Distribution for [`rand_matrix`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RandDist {
    /// Uniform in `[min, max)`.
    Uniform { min: f64, max: f64 },
    /// Gaussian with the given mean and standard deviation (Box–Muller).
    Normal { mean: f64, std: f64 },
}

/// Generates a `rows × cols` random matrix from `seed`. A `sparsity` in
/// `(0, 1]` zeroes cells with probability `1 - sparsity`, matching DML's
/// `rand(..., sparsity=s)`.
pub fn rand_matrix(
    rows: usize,
    cols: usize,
    dist: RandDist,
    sparsity: f64,
    seed: u64,
) -> Result<DenseMatrix> {
    if !(0.0..=1.0).contains(&sparsity) {
        return Err(MatrixError::InvalidArgument(format!(
            "sparsity {sparsity} not in [0,1]"
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = Vec::with_capacity(rows * cols);
    match dist {
        RandDist::Uniform { min, max } => {
            if max < min {
                return Err(MatrixError::InvalidArgument(format!(
                    "uniform bounds inverted: [{min}, {max})"
                )));
            }
            for _ in 0..rows * cols {
                let keep = sparsity >= 1.0 || rng.gen::<f64>() < sparsity;
                let v = if keep {
                    if max > min {
                        rng.gen::<f64>() * (max - min) + min
                    } else {
                        min
                    }
                } else {
                    0.0
                };
                data.push(v);
            }
        }
        RandDist::Normal { mean, std } => {
            // Box–Muller transform; draws pairs but we consume singly for
            // simplicity (generation cost is irrelevant to the benchmarks).
            for _ in 0..rows * cols {
                let keep = sparsity >= 1.0 || rng.gen::<f64>() < sparsity;
                let v = if keep {
                    let u1: f64 = rng.gen::<f64>().max(1e-300);
                    let u2: f64 = rng.gen();
                    mean + std * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
                } else {
                    0.0
                };
                data.push(v);
            }
        }
    }
    DenseMatrix::new(rows, cols, data)
}

/// `sample(range, size)`: draws `size` distinct values from `1..=range`
/// (without replacement), as a column vector — DML's `sample`.
pub fn sample_without_replacement(range: usize, size: usize, seed: u64) -> Result<DenseMatrix> {
    if size > range {
        return Err(MatrixError::InvalidArgument(format!(
            "sample: size {size} exceeds range {range}"
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    // Partial Fisher–Yates: only the first `size` positions are needed.
    let mut pool: Vec<usize> = (1..=range).collect();
    for i in 0..size {
        let j = rng.gen_range(i..range);
        pool.swap(i, j);
    }
    Ok(DenseMatrix::from_fn(size, 1, |i, _| pool[i] as f64))
}

/// A random permutation of `1..=n` as a column vector (used for reshuffling
/// in mini-batch training and CV fold assignment).
pub fn permutation(n: usize, seed: u64) -> DenseMatrix {
    sample_without_replacement(n, n, seed).expect("size == range")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rand_is_deterministic_per_seed() {
        let a = rand_matrix(4, 5, RandDist::Uniform { min: 0.0, max: 1.0 }, 1.0, 42).unwrap();
        let b = rand_matrix(4, 5, RandDist::Uniform { min: 0.0, max: 1.0 }, 1.0, 42).unwrap();
        let c = rand_matrix(4, 5, RandDist::Uniform { min: 0.0, max: 1.0 }, 1.0, 43).unwrap();
        assert_eq!(a.data(), b.data());
        assert_ne!(a.data(), c.data());
    }

    #[test]
    fn uniform_respects_bounds() {
        let a = rand_matrix(10, 10, RandDist::Uniform { min: 2.0, max: 3.0 }, 1.0, 7).unwrap();
        assert!(a.data().iter().all(|&v| (2.0..3.0).contains(&v)));
        // Degenerate bounds produce the constant.
        let c = rand_matrix(2, 2, RandDist::Uniform { min: 5.0, max: 5.0 }, 1.0, 7).unwrap();
        assert!(c.data().iter().all(|&v| v == 5.0));
        assert!(rand_matrix(1, 1, RandDist::Uniform { min: 1.0, max: 0.0 }, 1.0, 0).is_err());
    }

    #[test]
    fn normal_has_plausible_moments() {
        let a = rand_matrix(
            200,
            50,
            RandDist::Normal {
                mean: 3.0,
                std: 2.0,
            },
            1.0,
            99,
        )
        .unwrap();
        let mean = a.data().iter().sum::<f64>() / a.len() as f64;
        let var = a
            .data()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f64>()
            / a.len() as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn sparsity_zeroes_roughly_the_right_fraction() {
        let a = rand_matrix(100, 100, RandDist::Uniform { min: 1.0, max: 2.0 }, 0.3, 5).unwrap();
        let nnz = a.data().iter().filter(|v| **v != 0.0).count() as f64 / 10_000.0;
        assert!((nnz - 0.3).abs() < 0.03, "observed sparsity {nnz}");
        assert!(rand_matrix(1, 1, RandDist::Uniform { min: 0.0, max: 1.0 }, 1.5, 0).is_err());
    }

    #[test]
    fn sample_draws_distinct_values_in_range() {
        let s = sample_without_replacement(100, 15, 11).unwrap();
        let mut seen = std::collections::HashSet::new();
        for &v in s.data() {
            assert!((1.0..=100.0).contains(&v) && v.fract() == 0.0);
            assert!(seen.insert(v as i64), "duplicate {v}");
        }
        assert!(sample_without_replacement(5, 6, 0).is_err());
    }

    #[test]
    fn permutation_covers_all_values() {
        let p = permutation(50, 3);
        let mut vals: Vec<i64> = p.data().iter().map(|v| *v as i64).collect();
        vals.sort_unstable();
        assert_eq!(vals, (1..=50).collect::<Vec<i64>>());
    }
}
