//! Feature-transformation kernels for the paper's pre-processing pipelines:
//! mean imputation, minority-class oversampling, categorical recoding,
//! equi-width binning, and one-hot encoding (paper §5.4: APS and KDD98
//! pre-processing; §5.5: the Autoencoder's batch-wise transform map).
//!
//! SystemDS performs these with `transformencode` on frames; here the data is
//! numerically coded already (categories are small integers, missing values
//! are NaN), so the kernels operate directly on matrices.

use crate::dense::DenseMatrix;
use crate::error::{MatrixError, Result};
use crate::ops::reorg::cbind;

/// Replaces NaN cells in every column with the column mean of the non-NaN
/// cells (mean imputation, as used for APS).
pub fn impute_mean(x: &DenseMatrix) -> DenseMatrix {
    let (m, n) = x.shape();
    let mut sums = vec![0.0f64; n];
    let mut counts = vec![0usize; n];
    for i in 0..m {
        for (j, &v) in x.row(i).iter().enumerate() {
            if !v.is_nan() {
                sums[j] += v;
                counts[j] += 1;
            }
        }
    }
    let means: Vec<f64> = sums
        .iter()
        .zip(&counts)
        .map(|(s, c)| if *c > 0 { s / *c as f64 } else { 0.0 })
        .collect();
    DenseMatrix::from_fn(m, n, |i, j| {
        let v = x.get(i, j);
        if v.is_nan() {
            means[j]
        } else {
            v
        }
    })
}

/// Oversamples rows whose label (in `y`, a column vector) equals
/// `minority_label` until it reaches roughly `target_fraction` of the output,
/// by cyclic duplication. Returns `(X', y')`.
pub fn oversample_minority(
    x: &DenseMatrix,
    y: &DenseMatrix,
    minority_label: f64,
    target_fraction: f64,
) -> Result<(DenseMatrix, DenseMatrix)> {
    if y.cols() != 1 || y.rows() != x.rows() {
        return Err(MatrixError::DimensionMismatch {
            op: "oversample",
            lhs: x.shape(),
            rhs: y.shape(),
        });
    }
    if !(0.0..1.0).contains(&target_fraction) {
        return Err(MatrixError::InvalidArgument(format!(
            "target fraction {target_fraction} not in [0,1)"
        )));
    }
    let minority: Vec<usize> = (0..y.rows())
        .filter(|&i| y.get(i, 0) == minority_label)
        .collect();
    if minority.is_empty() {
        return Ok((x.clone(), y.clone()));
    }
    let m = x.rows();
    let k = minority.len();
    // Solve (k + extra) / (m + extra) >= f for the number of extra rows.
    let extra = if (k as f64 / m as f64) >= target_fraction {
        0
    } else {
        (((target_fraction * m as f64 - k as f64) / (1.0 - target_fraction)).ceil()) as usize
    };
    let mut xd = Vec::with_capacity((m + extra) * x.cols());
    xd.extend_from_slice(x.data());
    let mut yd = Vec::with_capacity(m + extra);
    yd.extend_from_slice(y.data());
    for e in 0..extra {
        let src = minority[e % k];
        xd.extend_from_slice(x.row(src));
        yd.push(minority_label);
    }
    Ok((
        DenseMatrix::new(m + extra, x.cols(), xd)?,
        DenseMatrix::new(m + extra, 1, yd)?,
    ))
}

/// Recodes an arbitrary-valued column into dense 1-based category codes,
/// assigning codes by order of first appearance. Returns `(codes, #distinct)`.
pub fn recode_column(col: &DenseMatrix) -> Result<(DenseMatrix, usize)> {
    if col.cols() != 1 {
        return Err(MatrixError::InvalidArgument(
            "recode expects a column vector".into(),
        ));
    }
    let mut dict: Vec<f64> = Vec::new();
    let mut codes = Vec::with_capacity(col.rows());
    for i in 0..col.rows() {
        let v = col.get(i, 0);
        let code = match dict
            .iter()
            .position(|d| *d == v || (d.is_nan() && v.is_nan()))
        {
            Some(p) => p + 1,
            None => {
                dict.push(v);
                dict.len()
            }
        };
        codes.push(code as f64);
    }
    Ok((DenseMatrix::new(col.rows(), 1, codes)?, dict.len()))
}

/// Equi-width binning of a numeric column into `bins` 1-based bin codes
/// (KDD98 pre-processing uses 10 equi-width bins).
pub fn bin_column(col: &DenseMatrix, bins: usize) -> Result<DenseMatrix> {
    if col.cols() != 1 {
        return Err(MatrixError::InvalidArgument(
            "binning expects a column vector".into(),
        ));
    }
    if bins == 0 {
        return Err(MatrixError::InvalidArgument("bins must be > 0".into()));
    }
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &v in col.data() {
        if v.is_nan() {
            continue;
        }
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if !lo.is_finite() {
        // all-NaN column: everything lands in bin 1
        return Ok(DenseMatrix::filled(col.rows(), 1, 1.0));
    }
    let width = if hi > lo {
        (hi - lo) / bins as f64
    } else {
        1.0
    };
    Ok(DenseMatrix::from_fn(col.rows(), 1, |i, _| {
        let v = col.get(i, 0);
        if v.is_nan() {
            return 1.0;
        }
        let b = ((v - lo) / width).floor() as usize;
        (b.min(bins - 1) + 1) as f64
    }))
}

/// One-hot (dummy) encodes a 1-based code column with `num_codes` categories.
pub fn one_hot(codes: &DenseMatrix, num_codes: usize) -> Result<DenseMatrix> {
    if codes.cols() != 1 {
        return Err(MatrixError::InvalidArgument(
            "one_hot expects a column vector".into(),
        ));
    }
    let mut out = DenseMatrix::zeros(codes.rows(), num_codes);
    for i in 0..codes.rows() {
        let v = codes.get(i, 0);
        if v < 1.0 || v.fract() != 0.0 || v > num_codes as f64 {
            return Err(MatrixError::InvalidArgument(format!(
                "one_hot: code {v} out of range 1..={num_codes}"
            )));
        }
        out.set(i, v as usize - 1, 1.0);
    }
    Ok(out)
}

/// Column-wise min-max normalization into `[0, 1]`; constant columns map to 0.
pub fn normalize_min_max(x: &DenseMatrix) -> DenseMatrix {
    let (m, n) = x.shape();
    let mut lo = vec![f64::INFINITY; n];
    let mut hi = vec![f64::NEG_INFINITY; n];
    for i in 0..m {
        for (j, &v) in x.row(i).iter().enumerate() {
            lo[j] = lo[j].min(v);
            hi[j] = hi[j].max(v);
        }
    }
    DenseMatrix::from_fn(m, n, |i, j| {
        let range = hi[j] - lo[j];
        if range > 0.0 {
            (x.get(i, j) - lo[j]) / range
        } else {
            0.0
        }
    })
}

/// A compiled feature-wise pre-processing map (the Keras-style "pre-processing
/// layer" used in the Autoencoder comparison): per input column either pass
/// through normalized, or bin+one-hot, or recode+one-hot.
#[derive(Debug, Clone)]
pub enum ColumnTransform {
    /// Min-max normalize the numeric column.
    Normalize,
    /// Equi-width bin into `bins` and one-hot encode.
    BinOneHot { bins: usize },
    /// Recode (with a fixed dictionary size) and one-hot encode.
    RecodeOneHot { num_codes: usize },
}

/// Applies a per-column transform map, cbinding the encoded outputs.
pub fn apply_transform_map(x: &DenseMatrix, map: &[ColumnTransform]) -> Result<DenseMatrix> {
    if map.len() != x.cols() {
        return Err(MatrixError::InvalidArgument(format!(
            "transform map has {} entries for {} columns",
            map.len(),
            x.cols()
        )));
    }
    let mut out: Option<DenseMatrix> = None;
    for (j, t) in map.iter().enumerate() {
        let col = crate::ops::reorg::slice(x, 0, x.rows() - 1, j, j)?;
        let enc = match t {
            ColumnTransform::Normalize => normalize_min_max(&col),
            ColumnTransform::BinOneHot { bins } => one_hot(&bin_column(&col, *bins)?, *bins)?,
            ColumnTransform::RecodeOneHot { num_codes } => one_hot(&col, *num_codes)?,
        };
        out = Some(match out {
            None => enc,
            Some(acc) => cbind(&acc, &enc)?,
        });
    }
    out.ok_or_else(|| MatrixError::InvalidArgument("empty transform map".into()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn impute_mean_col_means_are_correct() {
        // col0: [1, NaN, 5] -> mean 3; col1: [NaN, 4, 8] -> mean 6
        let x = DenseMatrix::new(3, 2, vec![1.0, f64::NAN, f64::NAN, 4.0, 5.0, 8.0]).unwrap();
        let y = impute_mean(&x);
        assert_eq!(y.get(1, 0), 3.0);
        assert_eq!(y.get(0, 1), 6.0);
        // all-NaN column maps to 0
        let z = impute_mean(&DenseMatrix::new(2, 1, vec![f64::NAN, f64::NAN]).unwrap());
        assert_eq!(z.data(), &[0.0, 0.0]);
    }

    #[test]
    fn oversample_reaches_target_fraction() {
        let x = DenseMatrix::from_fn(10, 2, |i, j| (i * 2 + j) as f64);
        let y = DenseMatrix::from_fn(10, 1, |i, _| if i < 2 { 1.0 } else { 0.0 });
        let (x2, y2) = oversample_minority(&x, &y, 1.0, 0.4).unwrap();
        let k = y2.data().iter().filter(|v| **v == 1.0).count();
        let frac = k as f64 / y2.rows() as f64;
        assert!(frac >= 0.4 - 1e-9, "fraction {frac}");
        assert_eq!(x2.rows(), y2.rows());
        // duplicated rows are copies of minority rows
        assert_eq!(x2.row(10), x.row(0));
    }

    #[test]
    fn oversample_noop_cases() {
        let x = DenseMatrix::zeros(4, 1);
        let y = DenseMatrix::filled(4, 1, 1.0);
        // already all minority
        let (x2, _) = oversample_minority(&x, &y, 1.0, 0.5).unwrap();
        assert_eq!(x2.rows(), 4);
        // label absent
        let (x3, _) = oversample_minority(&x, &y, 2.0, 0.5).unwrap();
        assert_eq!(x3.rows(), 4);
        assert!(oversample_minority(&x, &DenseMatrix::zeros(3, 1), 1.0, 0.5).is_err());
        assert!(oversample_minority(&x, &y, 1.0, 1.5).is_err());
    }

    #[test]
    fn recode_assigns_first_appearance_codes() {
        let c = DenseMatrix::new(5, 1, vec![7.0, 3.0, 7.0, 9.0, 3.0]).unwrap();
        let (codes, n) = recode_column(&c).unwrap();
        assert_eq!(codes.data(), &[1.0, 2.0, 1.0, 3.0, 2.0]);
        assert_eq!(n, 3);
        assert!(recode_column(&DenseMatrix::zeros(1, 2)).is_err());
    }

    #[test]
    fn binning_is_equi_width() {
        let c = DenseMatrix::new(5, 1, vec![0.0, 2.5, 5.0, 7.5, 10.0]).unwrap();
        let b = bin_column(&c, 2).unwrap();
        assert_eq!(b.data(), &[1.0, 1.0, 2.0, 2.0, 2.0]);
        // constant column lands in bin 1
        let b = bin_column(&DenseMatrix::filled(3, 1, 4.0), 5).unwrap();
        assert_eq!(b.data(), &[1.0, 1.0, 1.0]);
        assert!(bin_column(&c, 0).is_err());
    }

    #[test]
    fn one_hot_encodes_codes() {
        let c = DenseMatrix::new(3, 1, vec![2.0, 1.0, 3.0]).unwrap();
        let oh = one_hot(&c, 3).unwrap();
        assert_eq!(oh.shape(), (3, 3));
        assert_eq!(oh.row(0), &[0.0, 1.0, 0.0]);
        assert_eq!(oh.row(1), &[1.0, 0.0, 0.0]);
        assert_eq!(oh.row(2), &[0.0, 0.0, 1.0]);
        assert!(one_hot(&DenseMatrix::filled(1, 1, 4.0), 3).is_err());
        assert!(one_hot(&DenseMatrix::filled(1, 1, 0.0), 3).is_err());
    }

    #[test]
    fn normalize_min_max_bounds() {
        let x = DenseMatrix::new(3, 2, vec![0.0, 5.0, 5.0, 5.0, 10.0, 5.0]).unwrap();
        let n = normalize_min_max(&x);
        assert_eq!(n.get(0, 0), 0.0);
        assert_eq!(n.get(1, 0), 0.5);
        assert_eq!(n.get(2, 0), 1.0);
        // constant column -> all zeros
        assert_eq!(n.get(0, 1), 0.0);
        assert_eq!(n.get(2, 1), 0.0);
    }

    #[test]
    fn transform_map_encodes_and_concatenates() {
        let x = DenseMatrix::new(4, 2, vec![0.0, 1.0, 5.0, 2.0, 10.0, 1.0, 2.0, 2.0]).unwrap();
        let map = vec![
            ColumnTransform::Normalize,
            ColumnTransform::RecodeOneHot { num_codes: 2 },
        ];
        let out = apply_transform_map(&x, &map).unwrap();
        assert_eq!(out.shape(), (4, 3));
        assert_eq!(out.get(0, 0), 0.0);
        assert_eq!(out.get(2, 0), 1.0);
        assert_eq!(out.row(0)[1..], [1.0, 0.0]);
        assert!(apply_transform_map(&x, &[ColumnTransform::Normalize]).is_err());
    }
}
