//! Live-variable analysis (paper §3.2/§4.1: loop/function/block inputs and
//! outputs are obtained from live-variable analysis).
//!
//! `live_in` is conservative: a variable counts as an input if any execution
//! path may read it before the block definitely writes it.

use crate::program::Block;
use std::collections::BTreeSet;

/// Variables possibly read before being definitely written in `blocks`,
/// given the set of variables already definitely written (`written`).
/// Returns inputs in sorted order (stable placeholder slots for dedup).
pub fn live_in(blocks: &[Block]) -> Vec<String> {
    let mut inputs = BTreeSet::new();
    let mut written = BTreeSet::new();
    scan(blocks, &mut written, &mut inputs);
    inputs.into_iter().collect()
}

/// All variables read anywhere in `blocks` (regardless of prior writes),
/// sorted. Used by the dedup live-out pass: a loop-carried next-iteration
/// read counts as "read after" for nested loops.
pub fn collect_reads(blocks: &[Block]) -> std::collections::BTreeSet<String> {
    let mut out = std::collections::BTreeSet::new();
    collect_reads_into(blocks, &mut out);
    out
}

fn collect_reads_into(blocks: &[Block], out: &mut std::collections::BTreeSet<String>) {
    let expr = |e: &crate::program::ExprProg, out: &mut std::collections::BTreeSet<String>| {
        for i in &e.instrs {
            for r in i.reads() {
                out.insert(r.to_string());
            }
        }
        if let Some(v) = e.result.as_var() {
            out.insert(v.to_string());
        }
    };
    for b in blocks {
        match b {
            Block::Basic { instrs, .. } => {
                for i in instrs {
                    for r in i.reads() {
                        out.insert(r.to_string());
                    }
                }
            }
            Block::If {
                pred,
                then_body,
                else_body,
                ..
            } => {
                expr(pred, out);
                collect_reads_into(then_body, out);
                collect_reads_into(else_body, out);
            }
            Block::For {
                from, to, by, body, ..
            }
            | Block::ParFor {
                from, to, by, body, ..
            } => {
                expr(from, out);
                expr(to, out);
                expr(by, out);
                collect_reads_into(body, out);
            }
            Block::While { pred, body, .. } => {
                expr(pred, out);
                collect_reads_into(body, out);
            }
        }
    }
}

/// All variables possibly written by `blocks`, sorted.
pub fn writes(blocks: &[Block]) -> Vec<String> {
    let mut out = BTreeSet::new();
    collect_writes(blocks, &mut out);
    out.into_iter().collect()
}

fn scan(blocks: &[Block], written: &mut BTreeSet<String>, inputs: &mut BTreeSet<String>) {
    for block in blocks {
        match block {
            Block::Basic { instrs, .. } => {
                for i in instrs {
                    for r in i.reads() {
                        if !written.contains(r) {
                            inputs.insert(r.to_string());
                        }
                    }
                    for w in i.writes() {
                        written.insert(w.to_string());
                    }
                }
            }
            Block::If {
                pred,
                then_body,
                else_body,
                ..
            } => {
                scan_expr(pred, written, inputs);
                let mut then_written = written.clone();
                let mut else_written = written.clone();
                scan(then_body, &mut then_written, inputs);
                scan(else_body, &mut else_written, inputs);
                // Only variables written on *both* paths are definitely
                // written after the conditional.
                *written = then_written.intersection(&else_written).cloned().collect();
            }
            Block::For {
                var,
                from,
                to,
                by,
                body,
                ..
            }
            | Block::ParFor {
                var,
                from,
                to,
                by,
                body,
                ..
            } => {
                scan_expr(from, written, inputs);
                scan_expr(to, written, inputs);
                scan_expr(by, written, inputs);
                // Loop may execute zero times: body reads are evaluated with
                // the current written set (plus the index variable), but body
                // writes are not definite.
                let mut body_written = written.clone();
                body_written.insert(var.clone());
                scan(body, &mut body_written, inputs);
            }
            Block::While { pred, body, .. } => {
                scan_expr(pred, written, inputs);
                let mut body_written = written.clone();
                scan(body, &mut body_written, inputs);
            }
        }
    }
}

fn scan_expr(
    e: &crate::program::ExprProg,
    written: &mut BTreeSet<String>,
    inputs: &mut BTreeSet<String>,
) {
    for i in &e.instrs {
        for r in i.reads() {
            if !written.contains(r) {
                inputs.insert(r.to_string());
            }
        }
        for w in i.writes() {
            written.insert(w.to_string());
        }
    }
    if let Some(v) = e.result.as_var() {
        if !written.contains(v) {
            inputs.insert(v.to_string());
        }
    }
}

fn collect_writes(blocks: &[Block], out: &mut BTreeSet<String>) {
    for block in blocks {
        match block {
            Block::Basic { instrs, .. } => {
                for i in instrs {
                    for w in i.writes() {
                        out.insert(w.to_string());
                    }
                }
            }
            Block::If {
                pred,
                then_body,
                else_body,
                ..
            } => {
                for i in &pred.instrs {
                    for w in i.writes() {
                        out.insert(w.to_string());
                    }
                }
                collect_writes(then_body, out);
                collect_writes(else_body, out);
            }
            Block::For {
                var,
                body,
                from,
                to,
                by,
                ..
            }
            | Block::ParFor {
                var,
                body,
                from,
                to,
                by,
                ..
            } => {
                out.insert(var.clone());
                for e in [from, to, by] {
                    for i in &e.instrs {
                        for w in i.writes() {
                            out.insert(w.to_string());
                        }
                    }
                }
                collect_writes(body, out);
            }
            Block::While { pred, body, .. } => {
                for i in &pred.instrs {
                    for w in i.writes() {
                        out.insert(w.to_string());
                    }
                }
                collect_writes(body, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{Instr, Op, Operand};
    use crate::program::ExprProg;
    use lima_matrix::ops::BinOp;

    fn add(a: &str, b: &str, out: &str) -> Instr {
        Instr::new(
            Op::Binary(BinOp::Add),
            vec![Operand::var(a), Operand::var(b)],
            out,
        )
    }

    #[test]
    fn read_before_write_is_input() {
        let b = Block::basic(vec![add("x", "y", "z"), add("z", "x", "w")]);
        assert_eq!(live_in(std::slice::from_ref(&b)), vec!["x", "y"]);
        assert_eq!(writes(&[b]), vec!["w", "z"]);
    }

    #[test]
    fn write_then_read_is_not_input() {
        let b = Block::basic(vec![add("x", "x", "t"), add("t", "t", "u")]);
        assert_eq!(live_in(&[b]), vec!["x"]);
    }

    #[test]
    fn loop_carried_variable_is_input() {
        // for i: p = G + p  (p read at top, written at bottom → carried)
        let body = Block::basic(vec![add("G", "p", "p")]);
        let f = Block::for_loop(
            "i",
            ExprProg::lit(Operand::i64(1)),
            ExprProg::lit(Operand::i64(3)),
            ExprProg::lit(Operand::i64(1)),
            vec![body],
        );
        assert_eq!(live_in(std::slice::from_ref(&f)), vec!["G", "p"]);
        let w = writes(&[f]);
        assert!(w.contains(&"p".to_string()));
        assert!(w.contains(&"i".to_string()));
    }

    #[test]
    fn conditional_writes_are_not_definite() {
        // if (c) { x = a+a } ; y = x+x  → x is an input (else-path reads old x)
        let cond = Block::if_else(
            ExprProg::var("c"),
            vec![Block::basic(vec![add("a", "a", "x")])],
            vec![],
        );
        let after = Block::basic(vec![add("x", "x", "y")]);
        assert_eq!(live_in(&[cond, after]), vec!["a", "c", "x"]);
    }

    #[test]
    fn writes_on_both_branches_are_definite() {
        let cond = Block::if_else(
            ExprProg::var("c"),
            vec![Block::basic(vec![add("a", "a", "x")])],
            vec![Block::basic(vec![add("b", "b", "x")])],
        );
        let after = Block::basic(vec![add("x", "x", "y")]);
        assert_eq!(live_in(&[cond, after]), vec!["a", "b", "c"]);
    }

    #[test]
    fn loop_index_is_local_not_input() {
        let body = Block::basic(vec![add("i", "i", "t")]);
        let f = Block::for_loop(
            "i",
            ExprProg::lit(Operand::i64(1)),
            ExprProg::var("n"),
            ExprProg::lit(Operand::i64(1)),
            vec![body],
        );
        assert_eq!(live_in(&[f]), vec!["n"]);
    }

    #[test]
    fn predicate_reads_count() {
        let w = Block::while_loop(ExprProg::var("cond"), vec![Block::basic(vec![])]);
        assert_eq!(live_in(&[w]), vec!["cond"]);
    }
}
