//! Task-parallel `parfor` loops (paper §3.3 and §4.1).
//!
//! Iterations run on worker threads. Each worker owns a forked context —
//! worker-local symbol table and lineage map sharing the common input lineage
//! — while all workers share the thread-safe lineage cache (whose placeholder
//! entries prevent redundant computation across the first wave of
//! iterations). Results are merged back by comparing against the initial
//! value of each result variable, and result lineage is linearized with a
//! merge item.

use crate::context::ExecutionContext;
use crate::error::{Result, RuntimeError};
use crate::interp::execute_blocks;
use crate::program::{Block, Program};
use lima_core::lineage::item::{LinRef, LineageItem};
use lima_matrix::{DenseMatrix, Value};

/// Default worker cap (matches the matrix-kernel thread cap).
fn default_degree() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn execute_parfor(
    var: &str,
    from: i64,
    to: i64,
    by: i64,
    body: &[Block],
    results: &[String],
    degree: Option<usize>,
    program: &Program,
    ctx: &mut ExecutionContext,
) -> Result<()> {
    if by == 0 {
        return Err(RuntimeError::TypeError("parfor step must be nonzero".into()));
    }
    let mut iterations = Vec::new();
    let mut i = from;
    while (by > 0 && i <= to) || (by < 0 && i >= to) {
        iterations.push(i);
        i += by;
    }
    if iterations.is_empty() {
        return Ok(());
    }
    let workers = degree.unwrap_or_else(default_degree).max(1).min(iterations.len());

    // Snapshot initial result values for the merge.
    let initial: Vec<(String, Option<Value>)> = results
        .iter()
        .map(|r| (r.clone(), ctx.symtab.get(r).cloned()))
        .collect();

    if workers == 1 {
        // Degenerate case: serial execution in place.
        for i in iterations {
            ctx.set(var, Value::i64(i));
            execute_blocks(body, program, ctx)?;
        }
        return Ok(());
    }

    // Contiguous chunks per worker (the parfor optimizer in SystemDS would
    // choose; contiguous chunks preserve per-worker temporal locality).
    let chunk = iterations.len().div_ceil(workers);
    struct WorkerOut {
        results: Vec<(String, Option<Value>, Option<LinRef>)>,
        stdout: Vec<String>,
    }
    let outs: Vec<Result<WorkerOut>> = crossbeam::thread::scope(|s| {
        let mut handles = Vec::new();
        for w in 0..workers {
            let lo = w * chunk;
            let hi = ((w + 1) * chunk).min(iterations.len());
            if lo >= hi {
                break;
            }
            let iters = iterations[lo..hi].to_vec();
            let mut wctx = ctx.fork_worker();
            let var = var.to_string();
            let results = results.to_vec();
            handles.push(s.spawn(move |_| -> Result<WorkerOut> {
                for i in iters {
                    wctx.set(var.clone(), Value::i64(i));
                    execute_blocks(body, program, &mut wctx)?;
                }
                let results = results
                    .iter()
                    .map(|r| {
                        (
                            r.clone(),
                            wctx.symtab.get(r).cloned(),
                            wctx.lineage.get(r).cloned(),
                        )
                    })
                    .collect();
                Ok(WorkerOut {
                    results,
                    stdout: std::mem::take(&mut wctx.stdout),
                })
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("parfor worker panicked"))
            .collect()
    })
    .expect("parfor scope");

    let mut worker_outs = Vec::with_capacity(outs.len());
    for o in outs {
        worker_outs.push(o?);
    }

    // Merge results: cells differing from the initial value win (SystemDS'
    // result-merge-with-compare); scalars take the last differing worker.
    for (idx, (rvar, init)) in initial.iter().enumerate() {
        let mut merged = init.clone();
        let mut lineage_roots: Vec<LinRef> = Vec::new();
        for w in &worker_outs {
            let (_, val, lin) = &w.results[idx];
            if let Some(l) = lin {
                lineage_roots.push(l.clone());
            }
            let Some(val) = val else { continue };
            merged = Some(match (&merged, init, val) {
                (Some(Value::Matrix(acc)), Some(Value::Matrix(init_m)), Value::Matrix(wm))
                    if acc.shape() == wm.shape() && init_m.shape() == wm.shape() =>
                {
                    let mut out = acc.as_ref().clone();
                    merge_noninitial(&mut out, init_m, wm);
                    Value::matrix(out)
                }
                _ => val.clone(),
            });
        }
        if let Some(m) = merged {
            ctx.set(rvar, m);
        }
        if !lineage_roots.is_empty() && ctx.tracing() {
            // Linearized merged lineage (paper §3.3: "worker results are
            // merged by taking their lineage roots").
            let item = LineageItem::op_with_data("rmerge", rvar.clone(), lineage_roots);
            if let Some(Value::Matrix(m)) = ctx.symtab.get(rvar) {
                item.set_shape(m.rows(), m.cols());
            }
            ctx.lineage.set(rvar, item);
        }
    }
    // The loop variable does not survive the parfor (body-local scope).
    ctx.symtab.remove(var);
    ctx.lineage.remove(var);
    for w in &mut worker_outs {
        ctx.stdout.append(&mut w.stdout);
    }
    Ok(())
}

/// Copies every cell of `worker` that differs from `init` into `acc`.
fn merge_noninitial(acc: &mut DenseMatrix, init: &DenseMatrix, worker: &DenseMatrix) {
    let (a, i, w) = (acc.data_mut(), init.data(), worker.data());
    for k in 0..a.len() {
        if w[k] != i[k] || (w[k].is_nan() && !i[k].is_nan()) {
            a[k] = w[k];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_takes_non_initial_cells() {
        let init = DenseMatrix::zeros(2, 2);
        let mut acc = init.clone();
        let w1 = DenseMatrix::new(2, 2, vec![1.0, 0.0, 0.0, 0.0]).unwrap();
        let w2 = DenseMatrix::new(2, 2, vec![0.0, 0.0, 0.0, 2.0]).unwrap();
        merge_noninitial(&mut acc, &init, &w1);
        merge_noninitial(&mut acc, &init, &w2);
        assert_eq!(acc.data(), &[1.0, 0.0, 0.0, 2.0]);
    }

    #[test]
    fn default_degree_is_bounded() {
        let d = default_degree();
        assert!((1..=8).contains(&d));
    }
}
