//! Task-parallel `parfor` loops (paper §3.3 and §4.1).
//!
//! Iterations run on worker threads. Each worker owns a forked context —
//! worker-local symbol table and lineage map sharing the common input lineage
//! — while all workers share the thread-safe lineage cache (whose placeholder
//! entries prevent redundant computation across the first wave of
//! iterations). Results are merged back by comparing against the initial
//! value of each result variable, and result lineage is linearized with a
//! merge item.
//!
//! Failure semantics: a panicking worker is isolated with `catch_unwind` and
//! surfaces as [`RuntimeError::WorkerPanic`] instead of aborting the process.
//! The first failure (by worker index, so deterministically) is propagated;
//! sibling workers observe a shared cancellation flag and stop at their next
//! iteration boundary. Unwinding drops any cache [`Reservation`]s a worker
//! held, which aborts the placeholders and wakes blocked waiters.
//!
//! [`Reservation`]: lima_core::cache::Reservation

use crate::context::ExecutionContext;
use crate::error::{Result, RuntimeError};
use crate::interp::execute_blocks;
use crate::program::{Block, Program};
use lima_core::faults::FaultSite;
use lima_core::lineage::item::{LinRef, LineageItem};
use lima_core::{EventKind, LimaStats};
use lima_matrix::{DenseMatrix, Value};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};

/// Default worker cap (matches the matrix-kernel thread cap).
fn default_degree() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn execute_parfor(
    var: &str,
    from: i64,
    to: i64,
    by: i64,
    body: &[Block],
    results: &[String],
    degree: Option<usize>,
    program: &Program,
    ctx: &mut ExecutionContext,
) -> Result<()> {
    if by == 0 {
        return Err(RuntimeError::TypeError(
            "parfor step must be nonzero".into(),
        ));
    }
    let mut iterations = Vec::new();
    let mut i = from;
    while (by > 0 && i <= to) || (by < 0 && i >= to) {
        iterations.push(i);
        i += by;
    }
    if iterations.is_empty() {
        return Ok(());
    }
    let workers = degree
        .unwrap_or_else(default_degree)
        .max(1)
        .min(iterations.len());

    // Snapshot initial result values for the merge.
    let initial: Vec<(String, Option<Value>)> = results
        .iter()
        .map(|r| (r.clone(), ctx.symtab.get(r).cloned()))
        .collect();

    if workers == 1 {
        // Degenerate case: serial execution in place, with the same panic
        // isolation as the threaded path.
        let n_iters = iterations.len() as u64;
        let obs = ctx.config.obs.clone().filter(|o| o.enabled());
        let obs_t0 = obs.as_ref().map(|o| o.now_ns());
        let outcome = catch_unwind(AssertUnwindSafe(|| -> Result<()> {
            for i in iterations {
                ctx.check_interrupt()?;
                maybe_inject_panic(ctx, i);
                ctx.set(var, Value::i64(i));
                execute_blocks(body, program, ctx)?;
            }
            Ok(())
        }));
        if let (Some(o), Some(t0)) = (&obs, obs_t0) {
            o.record_span(EventKind::ParforWorker, "parfor", 0, t0, 0, n_iters);
        }
        // The loop variable does not survive the parfor (body-local scope),
        // matching the threaded path where it never enters the parent
        // context at all.
        ctx.symtab.remove(var);
        ctx.lineage.remove(var);
        return match outcome {
            Ok(r) => r,
            Err(payload) => {
                LimaStats::bump(&ctx.stats.worker_panics);
                Err(RuntimeError::WorkerPanic(panic_message(payload)))
            }
        };
    }

    // Contiguous chunks per worker (the parfor optimizer in SystemDS would
    // choose; contiguous chunks preserve per-worker temporal locality).
    let chunk = iterations.len().div_ceil(workers);
    struct WorkerOut {
        results: Vec<(String, Option<Value>, Option<LinRef>)>,
        stdout: Vec<String>,
    }
    // Set by the first failing worker; siblings stop at their next iteration
    // boundary instead of computing results that will be discarded.
    let cancel = AtomicBool::new(false);
    let outs: Vec<Result<WorkerOut>> = crossbeam::thread::scope(|s| {
        let cancel = &cancel;
        let mut handles = Vec::new();
        for w in 0..workers {
            let lo = w * chunk;
            let hi = ((w + 1) * chunk).min(iterations.len());
            if lo >= hi {
                break;
            }
            let iters = iterations[lo..hi].to_vec();
            let mut wctx = ctx.fork_worker();
            let stats = std::sync::Arc::clone(&wctx.stats);
            let var = var.to_string();
            let results = results.to_vec();
            handles.push(s.spawn(move |_| -> Result<WorkerOut> {
                let outcome = catch_unwind(AssertUnwindSafe(|| -> Result<WorkerOut> {
                    let n_iters = iters.len() as u64;
                    let obs = wctx.config.obs.clone().filter(|o| o.enabled());
                    let obs_t0 = obs.as_ref().map(|o| o.now_ns());
                    for i in iters {
                        if cancel.load(Ordering::Relaxed) {
                            break;
                        }
                        // Session cancellation/deadline stops every worker at
                        // its next iteration boundary; the error unwinds
                        // through the sibling-cancel path below.
                        wctx.check_interrupt()?;
                        maybe_inject_panic(&wctx, i);
                        wctx.set(var.clone(), Value::i64(i));
                        execute_blocks(body, program, &mut wctx)?;
                    }
                    if let (Some(o), Some(t0)) = (&obs, obs_t0) {
                        o.record_span(EventKind::ParforWorker, "parfor", 0, t0, w as u64, n_iters);
                    }
                    let results = results
                        .iter()
                        .map(|r| {
                            (
                                r.clone(),
                                wctx.symtab.get(r).cloned(),
                                wctx.lineage.get(r).cloned(),
                            )
                        })
                        .collect();
                    Ok(WorkerOut {
                        results,
                        stdout: std::mem::take(&mut wctx.stdout),
                    })
                }));
                match outcome {
                    Ok(Ok(out)) => Ok(out),
                    Ok(Err(e)) => {
                        cancel.store(true, Ordering::Relaxed);
                        Err(e)
                    }
                    Err(payload) => {
                        // The unwind already dropped the worker's context and
                        // with it any held cache reservations (their Drop
                        // aborts the placeholders, waking blocked waiters).
                        cancel.store(true, Ordering::Relaxed);
                        LimaStats::bump(&stats.worker_panics);
                        Err(RuntimeError::WorkerPanic(panic_message(payload)))
                    }
                }
            }));
        }
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                Err(payload) => Err(RuntimeError::WorkerPanic(panic_message(payload))),
            })
            .collect()
    })
    .map_err(|payload| RuntimeError::WorkerPanic(panic_message(payload)))?;

    // Propagate the first failure by worker index — deterministic regardless
    // of which worker failed first in wall-clock time.
    let mut worker_outs = Vec::with_capacity(outs.len());
    for o in outs {
        worker_outs.push(o?);
    }

    // Merge results: cells differing from the initial value win (SystemDS'
    // result-merge-with-compare); scalars take the last differing worker.
    for (idx, (rvar, init)) in initial.iter().enumerate() {
        let mut merged = init.clone();
        let mut lineage_roots: Vec<LinRef> = Vec::new();
        for w in &worker_outs {
            let (_, val, lin) = &w.results[idx];
            if let Some(l) = lin {
                lineage_roots.push(l.clone());
            }
            let Some(val) = val else { continue };
            merged = Some(match (&merged, init, val) {
                (Some(Value::Matrix(acc)), Some(Value::Matrix(init_m)), Value::Matrix(wm))
                    if acc.shape() == wm.shape() && init_m.shape() == wm.shape() =>
                {
                    let mut out = acc.as_ref().clone();
                    merge_noninitial(&mut out, init_m, wm);
                    Value::matrix(out)
                }
                _ => val.clone(),
            });
        }
        if let Some(m) = merged {
            ctx.set(rvar, m);
        }
        if !lineage_roots.is_empty() && ctx.tracing() {
            // Linearized merged lineage (paper §3.3: "worker results are
            // merged by taking their lineage roots").
            let item = LineageItem::op_with_data("rmerge", rvar.clone(), lineage_roots);
            if let Some(Value::Matrix(m)) = ctx.symtab.get(rvar) {
                item.set_shape(m.rows(), m.cols());
            }
            ctx.lineage.set(rvar, item);
        }
    }
    // The loop variable does not survive the parfor (body-local scope).
    ctx.symtab.remove(var);
    ctx.lineage.remove(var);
    for w in &mut worker_outs {
        ctx.stdout.append(&mut w.stdout);
    }
    Ok(())
}

/// Fault injection: panic at the start of a parfor iteration. The decision is
/// keyed by the iteration value, not a call counter, so it is independent of
/// how iterations interleave across workers.
fn maybe_inject_panic(ctx: &ExecutionContext, iteration: i64) {
    if let Some(f) = &ctx.config.faults {
        if f.should_fail_at(FaultSite::WorkerPanic, iteration.unsigned_abs()) {
            panic!("injected fault: parfor worker panic at iteration {iteration}");
        }
    }
}

/// Renders a panic payload (usually a `&str` or `String`) for
/// [`RuntimeError::WorkerPanic`].
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Copies every cell of `worker` that differs from `init` into `acc`.
fn merge_noninitial(acc: &mut DenseMatrix, init: &DenseMatrix, worker: &DenseMatrix) {
    let (a, i, w) = (acc.data_mut(), init.data(), worker.data());
    for k in 0..a.len() {
        if w[k] != i[k] || (w[k].is_nan() && !i[k].is_nan()) {
            a[k] = w[k];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_takes_non_initial_cells() {
        let init = DenseMatrix::zeros(2, 2);
        let mut acc = init.clone();
        let w1 = DenseMatrix::new(2, 2, vec![1.0, 0.0, 0.0, 0.0]).unwrap();
        let w2 = DenseMatrix::new(2, 2, vec![0.0, 0.0, 0.0, 2.0]).unwrap();
        merge_noninitial(&mut acc, &init, &w1);
        merge_noninitial(&mut acc, &init, &w2);
        assert_eq!(acc.data(), &[1.0, 0.0, 0.0, 2.0]);
    }

    #[test]
    fn default_degree_is_bounded() {
        let d = default_degree();
        assert!((1..=8).contains(&d));
    }

    #[test]
    fn panic_messages_extract_common_payloads() {
        let p = std::panic::catch_unwind(|| panic!("static str")).unwrap_err();
        assert_eq!(panic_message(p), "static str");
        let p = std::panic::catch_unwind(|| panic!("formatted {}", 7)).unwrap_err();
        assert_eq!(panic_message(p), "formatted 7");
        let p = std::panic::catch_unwind(|| std::panic::panic_any(42i32)).unwrap_err();
        assert_eq!(panic_message(p), "opaque panic payload");
    }
}
