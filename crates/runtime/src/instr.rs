//! Runtime instructions (paper Fig 2): opcode, ordered operands, and output
//! variable(s). Instructions read their inputs from the symbol table and bind
//! their outputs back — the interpreter traces lineage around them.

use crate::fused::FusedSpec;
use lima_matrix::ops::{AggFn, BinOp, TsmmSide, UnOp};
use lima_matrix::rand_gen::RandDist;
use lima_matrix::ScalarValue;
use std::sync::Arc;

/// An instruction operand: a live variable or an inline literal.
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    /// A symbol-table variable.
    Var(String),
    /// An inline literal.
    Lit(ScalarValue),
}

impl Operand {
    /// Variable operand.
    pub fn var(name: impl Into<String>) -> Self {
        Operand::Var(name.into())
    }

    /// Float literal.
    pub fn f64(v: f64) -> Self {
        Operand::Lit(ScalarValue::F64(v))
    }

    /// Integer literal.
    pub fn i64(v: i64) -> Self {
        Operand::Lit(ScalarValue::I64(v))
    }

    /// Boolean literal.
    pub fn bool(v: bool) -> Self {
        Operand::Lit(ScalarValue::Bool(v))
    }

    /// String literal.
    pub fn str(v: &str) -> Self {
        Operand::Lit(ScalarValue::Str(v.into()))
    }

    /// The variable name, if this is a variable operand.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            Operand::Var(v) => Some(v),
            Operand::Lit(_) => None,
        }
    }
}

/// Random-distribution selector for [`Op::Rand`] (parameters are operands).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RandDistKind {
    /// Uniform in `[p1, p2)`.
    Uniform,
    /// Normal with mean `p1`, std `p2`.
    Normal,
}

impl RandDistKind {
    /// Builds the matrix-crate distribution from the two parameters.
    pub fn dist(self, p1: f64, p2: f64) -> RandDist {
        match self {
            RandDistKind::Uniform => RandDist::Uniform { min: p1, max: p2 },
            RandDistKind::Normal => RandDist::Normal { mean: p1, std: p2 },
        }
    }

    /// Stable name used in lineage data strings.
    pub fn name(self) -> &'static str {
        match self {
            RandDistKind::Uniform => "uniform",
            RandDistKind::Normal => "normal",
        }
    }
}

/// Instruction operation codes. Operand conventions are documented per
/// variant; `[..]` lists the expected `inputs`.
#[derive(Debug, Clone)]
pub enum Op {
    /// Cell-wise binary op `[a, b]` (matrix/matrix with broadcasting,
    /// matrix/scalar, scalar/scalar).
    Binary(BinOp),
    /// Cell-wise unary op `[a]`.
    Unary(UnOp),
    /// Matrix multiply `[A, B]`.
    MatMult,
    /// Transpose-self multiply `[X]`.
    Tsmm(TsmmSide),
    /// Transpose `[X]`.
    Transpose,
    /// Column concatenation `[A, B]`.
    Cbind,
    /// Row concatenation `[A, B]`.
    Rbind,
    /// Slicing `[X, rl, ru, cl, cu]` with **1-based inclusive** scalar bounds
    /// (DML convention; 0 for `ru`/`cu` means "to the end").
    RightIndex,
    /// Sub-block assignment `[X, S, rl, cl]` (1-based offsets); produces a
    /// fresh matrix.
    LeftIndex,
    /// Column projection `[X, idx]` with a 1-based index column vector.
    SelectCols,
    /// Row projection `[X, idx]` with a 1-based index column vector.
    SelectRows,
    /// Constant fill `[value, rows, cols]` — DML `matrix(v, r, c)`.
    Fill,
    /// Random matrix `[rows, cols, p1, p2, sparsity, seed]`; a seed of `-1`
    /// requests a system-generated seed, captured in the lineage.
    Rand(RandDistKind),
    /// Sample without replacement `[range, size, seed]` (seed as in `Rand`).
    Sample,
    /// Sequence `[from, to, by]`.
    Seq,
    /// Read a registered dataset `[path]`.
    Read,
    /// Write a matrix and its lineage log `[X, path]`.
    Write,
    /// Full aggregate `[X]` producing a scalar.
    FullAgg(AggFn),
    /// Column aggregate `[X]` producing `1 × cols`.
    ColAgg(AggFn),
    /// Row aggregate `[X]` producing `rows × 1`.
    RowAgg(AggFn),
    /// Row-wise argmax `[X]` (1-based indices).
    RowIndexMax,
    /// Linear solve `[A, b]`.
    Solve,
    /// Diagonal `[X]` (vector→matrix or square→vector).
    Diag,
    /// Symmetric eigen decomposition `[C]`, outputs `[values, vectors]`.
    Eigen,
    /// Sort-order indices `[v, decreasing]`.
    Order,
    /// Row reversal `[X]`.
    Rev,
    /// Contingency table `[a, b]`.
    Table,
    /// Number of rows `[X]` (scalar output).
    Nrow,
    /// Number of columns `[X]` (scalar output).
    Ncol,
    /// Cast 1×1 matrix to scalar `[X]`.
    CastScalar,
    /// Cast scalar to 1×1 matrix `[s]`.
    CastMatrix,
    /// Reshape `[X, rows, cols]` (row-major order preserved).
    Reshape,
    /// List construction `[items...]`.
    ListNew,
    /// List element access `[list, idx]` (1-based).
    ListGet,
    /// Copy/alias assignment `[a]` — also used to materialize literals.
    Assign,
    /// Print a value `[a]` (side effect; never cached).
    Print,
    /// String concatenation `[a, b]`.
    Concat,
    /// Remove variables (bookkeeping; `inputs` name the variables).
    Rmvar,
    /// Rename variable `[old]` → output (bookkeeping).
    Mvvar,
    /// Returns the serialized lineage log of a variable as a string
    /// (the paper's `lineage(X)` built-in, §3.1). `[var]`, never cached.
    LineageOf,
    /// Call a user/builtin function: `inputs` are arguments, `outputs` bind
    /// the function's return values.
    FCall(String),
    /// Fused cell-wise operator chain (paper §3.3, operator fusion).
    Fused(Arc<FusedSpec>),
}

impl Op {
    /// The opcode string recorded in lineage items. Must stay in sync with
    /// `lima_core::opcodes` so partial-reuse probes match.
    pub fn opcode(&self) -> String {
        use lima_core::opcodes as oc;
        match self {
            Op::Binary(b) => b.opcode().to_string(),
            Op::Unary(u) => u.opcode().to_string(),
            Op::MatMult => oc::MATMULT.into(),
            Op::Tsmm(_) => oc::TSMM.into(),
            Op::Transpose => oc::TRANSPOSE.into(),
            Op::Cbind => oc::CBIND.into(),
            Op::Rbind => oc::RBIND.into(),
            Op::RightIndex => oc::RIGHT_INDEX.into(),
            Op::LeftIndex => oc::LEFT_INDEX.into(),
            Op::SelectCols => "selectCols".into(),
            Op::SelectRows => "selectRows".into(),
            Op::Fill => oc::MATRIX_FILL.into(),
            Op::Rand(_) => oc::RAND.into(),
            Op::Sample => oc::SAMPLE.into(),
            Op::Seq => oc::SEQ.into(),
            Op::Read => oc::READ.into(),
            Op::Write => "write".into(),
            Op::FullAgg(f) => oc::full_agg(f.name()),
            Op::ColAgg(f) => oc::col_agg(f.name()),
            Op::RowAgg(f) => oc::row_agg(f.name()),
            Op::RowIndexMax => oc::ROW_INDEX_MAX.into(),
            Op::Solve => oc::SOLVE.into(),
            Op::Diag => oc::DIAG.into(),
            Op::Eigen => oc::EIGEN.into(),
            Op::Order => oc::ORDER.into(),
            Op::Rev => oc::REV.into(),
            Op::Table => oc::TABLE.into(),
            Op::Nrow => oc::NROW.into(),
            Op::Ncol => oc::NCOL.into(),
            Op::CastScalar => oc::CAST_SCALAR.into(),
            Op::CastMatrix => oc::CAST_MATRIX.into(),
            Op::Reshape => oc::RESHAPE.into(),
            Op::ListNew => oc::LIST.into(),
            Op::ListGet => oc::LIST_GET.into(),
            Op::Assign => "assign".into(),
            Op::Print => "print".into(),
            Op::Concat => oc::CONCAT.into(),
            Op::Rmvar => "rmvar".into(),
            Op::Mvvar => "mvvar".into(),
            Op::LineageOf => "lineage".into(),
            Op::FCall(name) => format!("{}:{name}", oc::FCALL),
            Op::Fused(spec) => spec.opcode.clone(),
        }
    }

    /// True for operations with side effects that must never be skipped or
    /// memoized.
    pub fn has_side_effects(&self) -> bool {
        matches!(self, Op::Print | Op::Write)
    }

    /// True for non-deterministic operations when their seed operand requests
    /// a system-generated seed (checked by the compiler's determinism pass).
    pub fn is_random(&self) -> bool {
        matches!(self, Op::Rand(_) | Op::Sample)
    }
}

/// A runtime instruction.
#[derive(Debug, Clone)]
pub struct Instr {
    /// Operation code.
    pub op: Op,
    /// Ordered operands.
    pub inputs: Vec<Operand>,
    /// Output variable names (usually one; `Eigen` and `FCall` bind several).
    pub outputs: Vec<String>,
    /// Set by the compiler's *unmarking* rewrite (paper §4.4): this instance
    /// never interacts with the reuse cache even if its opcode qualifies.
    pub no_cache: bool,
    /// Byte span of the source construct this instruction was lowered from
    /// (`None` for synthesized instructions, e.g. rewrite plans).
    pub span: Option<lima_core::Span>,
}

impl Instr {
    /// Single-output instruction.
    pub fn new(op: Op, inputs: Vec<Operand>, output: impl Into<String>) -> Self {
        Instr {
            op,
            inputs,
            outputs: vec![output.into()],
            no_cache: false,
            span: None,
        }
    }

    /// Multi-output instruction.
    pub fn multi(op: Op, inputs: Vec<Operand>, outputs: Vec<String>) -> Self {
        Instr {
            op,
            inputs,
            outputs,
            no_cache: false,
            span: None,
        }
    }

    /// Output-less instruction (print, rmvar, write).
    pub fn effect(op: Op, inputs: Vec<Operand>) -> Self {
        Instr {
            op,
            inputs,
            outputs: Vec::new(),
            no_cache: false,
            span: None,
        }
    }

    /// Attaches a source span (builder style, used by the lowering).
    pub fn at(mut self, span: Option<lima_core::Span>) -> Self {
        self.span = span;
        self
    }

    /// Variables read by this instruction.
    pub fn reads(&self) -> impl Iterator<Item = &str> {
        self.inputs.iter().filter_map(Operand::as_var)
    }

    /// Variables written by this instruction.
    pub fn writes(&self) -> impl Iterator<Item = &str> {
        self.outputs.iter().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opcodes_match_core_constants() {
        assert_eq!(Op::MatMult.opcode(), lima_core::opcodes::MATMULT);
        assert_eq!(Op::Tsmm(TsmmSide::Left).opcode(), lima_core::opcodes::TSMM);
        assert_eq!(Op::ColAgg(AggFn::Sum).opcode(), "uacsum");
        assert_eq!(Op::RowAgg(AggFn::Max).opcode(), "uarmax");
        assert_eq!(Op::FullAgg(AggFn::Mean).opcode(), "uamean");
        assert_eq!(Op::Binary(BinOp::Add).opcode(), "+");
        assert_eq!(Op::FCall("lm".into()).opcode(), "fcall:lm");
    }

    #[test]
    fn side_effects_and_randomness_flags() {
        assert!(Op::Print.has_side_effects());
        assert!(Op::Write.has_side_effects());
        assert!(!Op::MatMult.has_side_effects());
        assert!(Op::Rand(RandDistKind::Uniform).is_random());
        assert!(Op::Sample.is_random());
        assert!(!Op::Seq.is_random());
    }

    #[test]
    fn reads_and_writes() {
        let i = Instr::new(
            Op::Binary(BinOp::Add),
            vec![Operand::var("a"), Operand::f64(1.0)],
            "b",
        );
        assert_eq!(i.reads().collect::<Vec<_>>(), vec!["a"]);
        assert_eq!(i.writes().collect::<Vec<_>>(), vec!["b"]);
        let e = Instr::effect(Op::Print, vec![Operand::var("b")]);
        assert!(e.writes().next().is_none());
    }

    #[test]
    fn rand_dist_kinds() {
        assert_eq!(
            RandDistKind::Uniform.dist(0.0, 1.0),
            RandDist::Uniform { min: 0.0, max: 1.0 }
        );
        assert_eq!(
            RandDistKind::Normal.dist(2.0, 3.0),
            RandDist::Normal {
                mean: 2.0,
                std: 3.0
            }
        );
        assert_eq!(RandDistKind::Uniform.name(), "uniform");
        assert_eq!(RandDistKind::Normal.name(), "normal");
    }

    #[test]
    fn operand_constructors() {
        assert_eq!(Operand::var("x").as_var(), Some("x"));
        assert_eq!(Operand::f64(1.0).as_var(), None);
        assert_eq!(
            Operand::str("s"),
            Operand::Lit(ScalarValue::Str("s".into()))
        );
        assert_eq!(Operand::bool(true), Operand::Lit(ScalarValue::Bool(true)));
        assert_eq!(Operand::i64(3), Operand::Lit(ScalarValue::I64(3)));
    }
}
