//! Session-side hook into the process-wide memory governor.
//!
//! The [`lima_core::ResourceGovernor`] accounts three byte categories: cache
//! entries and spill buffers (pushed by the cache itself) plus live session
//! variables, pushed from here. [`SessionUsage`] tracks one session's symbol
//! table footprint and reports the *delta* on every refresh, so concurrent
//! sessions compose additively; dropping it (session exit, including panic
//! unwind) returns the whole contribution.

use lima_core::ResourceGovernor;
use std::sync::Arc;

/// One session's live-variable contribution to the governor's accounting.
#[derive(Debug)]
pub struct SessionUsage {
    governor: Arc<ResourceGovernor>,
    current: usize,
}

impl SessionUsage {
    /// Zero-byte contribution against `governor`.
    pub fn new(governor: Arc<ResourceGovernor>) -> Self {
        SessionUsage {
            governor,
            current: 0,
        }
    }

    /// Reports the session's current live-variable footprint; only the delta
    /// since the last refresh is pushed to the governor.
    pub fn update(&mut self, bytes: usize) {
        if bytes == self.current {
            return;
        }
        let delta = bytes as i64 - self.current as i64;
        self.current = bytes;
        self.governor.adjust_session_bytes(delta);
    }

    /// Bytes currently accounted for this session.
    pub fn current(&self) -> usize {
        self.current
    }
}

impl Drop for SessionUsage {
    fn drop(&mut self) {
        if self.current > 0 {
            self.governor.adjust_session_bytes(-(self.current as i64));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lima_core::LimaStats;

    fn governor() -> Arc<ResourceGovernor> {
        ResourceGovernor::new(1_000_000, Arc::new(LimaStats::new()), None)
    }

    #[test]
    fn update_pushes_deltas_and_drop_returns_everything() {
        let g = governor();
        let mut u = SessionUsage::new(Arc::clone(&g));
        u.update(1000);
        assert_eq!(g.used_bytes(), 1000);
        u.update(400); // shrink
        assert_eq!(g.used_bytes(), 400);
        u.update(400); // no-op
        assert_eq!(g.used_bytes(), 400);
        drop(u);
        assert_eq!(g.used_bytes(), 0);
    }

    #[test]
    fn concurrent_sessions_compose_additively() {
        let g = governor();
        let mut a = SessionUsage::new(Arc::clone(&g));
        let mut b = SessionUsage::new(Arc::clone(&g));
        a.update(300);
        b.update(500);
        assert_eq!(g.used_bytes(), 800);
        drop(a);
        assert_eq!(g.used_bytes(), 500);
        drop(b);
        assert_eq!(g.used_bytes(), 0);
    }
}
