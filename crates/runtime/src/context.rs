//! Execution context: symbol table, lineage map, cache handle, data registry,
//! seed generation, and dedup state. One context per thread of execution
//! (parfor workers get their own, paper §3.3).

use crate::error::{Result, RuntimeError};
use crate::governor::SessionUsage;
use crate::session::SessionCtl;
use lima_core::interrupt::{CancelToken, Interrupt};
use lima_core::lineage::dedup::{DedupRegistry, PathTracer};
use lima_core::lineage::item::{LinRef, LineageItem};
use lima_core::{LimaConfig, LimaStats, LineageCache, LineageMap};
use lima_matrix::Value;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Registry of named datasets served to `read` instructions. The paper
/// assumes immutable input files (§3.4); registering a dataset under a path
/// models exactly that.
#[derive(Debug, Default)]
pub struct DataRegistry {
    inner: Mutex<HashMap<String, Value>>,
}

impl DataRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) a dataset.
    pub fn register(&self, path: impl Into<String>, value: Value) {
        self.inner.lock().insert(path.into(), value);
    }

    /// Fetches a dataset.
    pub fn get(&self, path: &str) -> Option<Value> {
        self.inner.lock().get(path).cloned()
    }
}

/// State while tracing a dedup-managed loop/function iteration.
#[derive(Debug)]
pub struct DedupTrace {
    /// Placeholder slots used by the body inputs (live-ins + index).
    pub base_inputs: u32,
    /// Next placeholder slot to hand to a seed capture.
    pub next_seed_slot: u32,
}

/// Per-thread execution context.
pub struct ExecutionContext {
    /// Live variables.
    pub symtab: HashMap<String, Value>,
    /// Lineage of live variables (thread- and function-local, paper §3.1).
    pub lineage: LineageMap,
    /// LIMA configuration.
    pub config: LimaConfig,
    /// Reuse cache (present when tracing is enabled; reuse flags inside the
    /// config decide whether it is probed).
    pub cache: Option<Arc<LineageCache>>,
    /// Statistics (shared with the cache when present).
    pub stats: Arc<LimaStats>,
    /// Dataset registry backing `read`.
    pub data: Arc<DataRegistry>,
    /// System seed source for `rand`/`sample` without explicit seeds.
    seed_counter: Arc<AtomicU64>,
    /// Dedup patch registries keyed by `fingerprint:block_id`.
    pub dedup_registries: Arc<Mutex<HashMap<String, Arc<DedupRegistry>>>>,
    /// Set while executing inside a dedup-managed body in *tracing* mode.
    pub dedup_trace: Option<DedupTrace>,
    /// Taken-path / seed tracer, set inside dedup-managed bodies.
    pub path_tracer: Option<PathTracer>,
    /// Suppresses per-instruction tracing (dedup lightweight mode).
    pub suppress_tracing: bool,
    /// Collected `print` output.
    pub stdout: Vec<String>,
    /// Script fingerprint (stable cache keys for block-level reuse).
    pub fingerprint: u64,
    /// Recursion depth guard for function calls.
    pub call_depth: usize,
    /// Cooperative interrupt state (cancellation token + deadline) when this
    /// context executes inside a session; checked at instruction/iteration
    /// boundaries and threaded into cache placeholder waits.
    pub session: Option<SessionCtl>,
    /// Live-variable byte accounting against the memory governor. Not shared
    /// with forked workers (their footprint is transient and merged back).
    pub usage: Option<SessionUsage>,
    /// Lineage roots traced since the last batched-hash flush. Hashed in one
    /// shared traversal at basic-block boundaries (or when the run reaches
    /// [`Self::HASH_BATCH_CAP`]) instead of one FNV round-trip per
    /// instruction; see `lima_core::lineage::item::hash_batch`.
    hash_pending: Vec<LinRef>,
    /// Incremental structural verifier asserting lineage DAG invariants
    /// after every block (debug builds only).
    #[cfg(debug_assertions)]
    pub verifier: lima_core::lineage::verify::Verifier,
}

impl ExecutionContext {
    /// Fresh context. A cache is created automatically when the configuration
    /// enables reuse.
    pub fn new(config: LimaConfig) -> Self {
        // The repair hook closes over this context's registry, so `read`
        // leaves in repaired lineage are served with the live datasets.
        let data = Arc::new(DataRegistry::new());
        let config = crate::repair::with_default_repair(config, &data);
        let cache = if config.tracing && config.reuse.any() {
            Some(LineageCache::new(config.clone()))
        } else {
            None
        };
        let mut ctx = Self::with_cache(config, cache);
        ctx.data = data;
        ctx
    }

    /// Context sharing an existing cache (parfor workers, multi-script reuse).
    pub fn with_cache(config: LimaConfig, cache: Option<Arc<LineageCache>>) -> Self {
        // Pin the requested kernel backend (no-op when the config leaves the
        // process default in place).
        config.apply_backend();
        // Share the cache's stats when present so hits/puts land in one place.
        let stats = match &cache {
            Some(c) => c.stats_arc(),
            None => Arc::new(LimaStats::new()),
        };
        ExecutionContext {
            symtab: HashMap::new(),
            lineage: LineageMap::new(),
            config,
            cache,
            stats,
            data: Arc::new(DataRegistry::new()),
            seed_counter: Arc::new(AtomicU64::new(0xC0FFEE)),
            dedup_registries: Arc::new(Mutex::new(HashMap::new())),
            dedup_trace: None,
            path_tracer: None,
            suppress_tracing: false,
            stdout: Vec::new(),
            fingerprint: 0,
            call_depth: 0,
            session: None,
            usage: None,
            hash_pending: Vec::new(),
            #[cfg(debug_assertions)]
            verifier: Default::default(),
        }
    }

    /// A worker context sharing cache, data, seeds, and dedup registries, but
    /// with its own symbol table / lineage map (paper §3.3: "we trace lineage
    /// in a worker-local manner, but individual lineage graphs share their
    /// common input lineage").
    pub fn fork_worker(&self) -> Self {
        ExecutionContext {
            symtab: self.symtab.clone(),
            lineage: clone_lineage_map(&self.lineage),
            config: self.config.clone(),
            cache: self.cache.clone(),
            stats: Arc::clone(&self.stats),
            data: Arc::clone(&self.data),
            seed_counter: Arc::clone(&self.seed_counter),
            dedup_registries: Arc::clone(&self.dedup_registries),
            dedup_trace: None,
            path_tracer: None,
            suppress_tracing: self.suppress_tracing,
            stdout: Vec::new(),
            fingerprint: self.fingerprint,
            call_depth: self.call_depth,
            session: self.session.clone(),
            usage: None,
            hash_pending: Vec::new(),
            #[cfg(debug_assertions)]
            verifier: Default::default(),
        }
    }

    /// A callee context for a function call: same shared infrastructure,
    /// fresh symbol table and lineage map.
    pub fn fork_function(&self) -> Self {
        let mut ctx = self.fork_worker();
        ctx.symtab.clear();
        ctx.lineage.clear();
        ctx.call_depth = self.call_depth + 1;
        ctx
    }

    /// True when per-instruction lineage tracing is active right now.
    pub fn tracing(&self) -> bool {
        self.config.tracing && !self.suppress_tracing
    }

    /// Flush threshold for the batched-hash queue: long straight-line blocks
    /// still hash in bounded runs.
    pub const HASH_BATCH_CAP: usize = 64;

    /// Queues a freshly traced lineage root for batched hashing. Hashing is
    /// memoized and order-independent, so deferring it to the block-boundary
    /// flush never changes a hash — it only amortizes the traversal.
    pub fn note_traced(&mut self, item: &LinRef) {
        self.hash_pending.push(Arc::clone(item));
        if self.hash_pending.len() >= Self::HASH_BATCH_CAP {
            self.flush_hash_batch();
        }
    }

    /// Hashes every queued lineage root in one shared traversal and drains
    /// the queue. Called at basic-block boundaries by the interpreter.
    pub fn flush_hash_batch(&mut self) {
        if self.hash_pending.is_empty() {
            return;
        }
        let hashed = lima_core::lineage::item::hash_batch(&self.hash_pending);
        self.hash_pending.clear();
        LimaStats::bump(&self.stats.hash_batches);
        LimaStats::add(&self.stats.hash_batch_items, hashed as u64);
    }

    /// Cooperative checkpoint: `Err` with the typed runtime error once the
    /// session is cancelled or past its deadline; free when no session is
    /// attached (the common single-script case).
    pub fn check_interrupt(&self) -> Result<()> {
        match &self.session {
            Some(s) => s.check().map_err(RuntimeError::from),
            None => Ok(()),
        }
    }

    /// The interrupt view for cache placeholder waits, when armed.
    pub fn interrupt(&self) -> Option<Interrupt> {
        self.session.as_ref().map(|s| s.interrupt())
    }

    /// Arms (or tightens) an execution deadline relative to now, creating a
    /// session control block with a fresh token when none exists (the
    /// `limac --timeout-ms` path).
    pub fn arm_deadline(&mut self, timeout: std::time::Duration) {
        let deadline = std::time::Instant::now() + timeout;
        match &mut self.session {
            Some(s) => s.set_deadline(deadline),
            None => self.session = Some(SessionCtl::new(CancelToken::new(), Some(deadline))),
        }
    }

    /// Re-reports this context's live-variable footprint to the governor.
    /// Called at block boundaries; a no-op without governed usage tracking.
    pub fn refresh_usage(&mut self) {
        if let Some(u) = &mut self.usage {
            let bytes: usize = self.symtab.values().map(Value::size_in_bytes).sum();
            u.update(bytes);
        }
    }

    /// Generates a system seed (captured in lineage, paper §3.1).
    pub fn next_system_seed(&self) -> i64 {
        self.seed_counter.fetch_add(1, Ordering::Relaxed) as i64
    }

    /// Resets the seed counter (reproducible benchmark runs).
    pub fn reset_seed_counter(&self, base: u64) {
        self.seed_counter.store(base, Ordering::Relaxed);
    }

    /// Reads a variable value.
    pub fn get(&self, var: &str) -> Result<&Value> {
        self.symtab
            .get(var)
            .ok_or_else(|| RuntimeError::UndefinedVariable(var.to_string()))
    }

    /// Binds a variable value.
    pub fn set(&mut self, var: impl Into<String>, value: Value) {
        self.symtab.insert(var.into(), value);
    }

    /// Lineage of a live variable, synthesizing a `read`-style leaf for
    /// externally bound inputs (e.g. matrices preloaded by a harness).
    pub fn lineage_of_var(&mut self, var: &str) -> LinRef {
        if let Some(item) = self.lineage.get(var) {
            return item.clone();
        }
        let leaf =
            LineageItem::op_with_data(lima_core::opcodes::READ, format!("var:{var}"), vec![]);
        if let Some(Value::Matrix(m)) = self.symtab.get(var) {
            leaf.set_shape(m.rows(), m.cols());
        }
        self.lineage.set(var, leaf.clone());
        leaf
    }

    /// Dedup registry for a block, created on first use.
    pub fn dedup_registry(&self, block_key: &str, num_branches: u32) -> Arc<DedupRegistry> {
        let mut map = self.dedup_registries.lock();
        map.entry(block_key.to_string())
            .or_insert_with(|| Arc::new(DedupRegistry::new(block_key, num_branches)))
            .clone()
    }
}

/// LineageMap has no Clone (literal cache identity does not matter); copy the
/// live bindings.
fn clone_lineage_map(src: &LineageMap) -> LineageMap {
    let mut dst = LineageMap::new();
    for (name, item) in src.bindings() {
        dst.set(name, item.clone());
    }
    dst
}

#[cfg(test)]
mod tests {
    use super::*;
    use lima_matrix::DenseMatrix;

    #[test]
    fn data_registry_round_trip() {
        let reg = DataRegistry::new();
        assert!(reg.get("x").is_none());
        reg.register("x", Value::f64(2.0));
        assert_eq!(reg.get("x").unwrap().as_f64().unwrap(), 2.0);
    }

    #[test]
    fn context_creates_cache_only_when_reuse_enabled() {
        assert!(ExecutionContext::new(LimaConfig::base()).cache.is_none());
        assert!(ExecutionContext::new(LimaConfig::tracing_only())
            .cache
            .is_none());
        assert!(ExecutionContext::new(LimaConfig::lima()).cache.is_some());
    }

    #[test]
    fn system_seeds_are_unique_and_resettable() {
        let ctx = ExecutionContext::new(LimaConfig::base());
        let a = ctx.next_system_seed();
        let b = ctx.next_system_seed();
        assert_ne!(a, b);
        ctx.reset_seed_counter(7);
        assert_eq!(ctx.next_system_seed(), 7);
    }

    #[test]
    fn lineage_of_external_input_synthesizes_leaf_with_shape() {
        let mut ctx = ExecutionContext::new(LimaConfig::lima());
        ctx.set("X", Value::matrix(DenseMatrix::zeros(3, 4)));
        let lin = ctx.lineage_of_var("X");
        assert_eq!(lin.opcode(), "read");
        assert_eq!(lin.shape(), Some((3, 4)));
        // Stable across calls.
        assert!(std::sync::Arc::ptr_eq(&ctx.lineage_of_var("X"), &lin));
    }

    #[test]
    fn fork_worker_shares_cache_and_seeds() {
        let mut ctx = ExecutionContext::new(LimaConfig::lima());
        ctx.set("X", Value::f64(1.0));
        ctx.lineage_of_var("X");
        let w = ctx.fork_worker();
        assert!(w.symtab.contains_key("X"));
        assert!(w.lineage.get("X").is_some());
        assert!(Arc::ptr_eq(
            w.cache.as_ref().unwrap(),
            ctx.cache.as_ref().unwrap()
        ));
        let _ = ctx.next_system_seed();
        let s1 = w.next_system_seed();
        let s2 = ctx.next_system_seed();
        assert_ne!(s1, s2);
    }

    #[test]
    fn fork_function_starts_clean() {
        let mut ctx = ExecutionContext::new(LimaConfig::lima());
        ctx.set("X", Value::f64(1.0));
        let f = ctx.fork_function();
        assert!(f.symtab.is_empty());
        assert_eq!(f.call_depth, 1);
    }

    #[test]
    fn dedup_registry_is_shared_per_key() {
        let ctx = ExecutionContext::new(LimaConfig::lima());
        let a = ctx.dedup_registry("0:loop1", 2);
        let b = ctx.dedup_registry("0:loop1", 2);
        assert!(Arc::ptr_eq(&a, &b));
        let c = ctx.dedup_registry("0:loop2", 2);
        assert!(!Arc::ptr_eq(&a, &c));
    }
}
