//! The interpreter: executes program blocks and instructions with LIMA's
//! lineage tracing, multi-level reuse, partial reuse, and deduplication woven
//! into the pre/post-processing of each instruction (paper §3.1, §4.1).

use crate::context::{DedupTrace, ExecutionContext};
use crate::error::{Result, RuntimeError};
use crate::instr::{Instr, Op, Operand};
use crate::kernels::{display, execute_kernel, resolve_bounds};
use crate::lva;
use crate::parfor;
use crate::program::{Block, ExprProg, Function, Program};
use lima_core::cache::rewrites::try_partial_reuse;
use lima_core::cache::Probe;
use lima_core::lineage::dedup::{DedupPatch, PathTracer};
use lima_core::lineage::item::{LinRef, LineageItem};
use lima_core::opcodes as oc;
use lima_core::{EventKind, LimaStats, Obs};
use lima_matrix::{ScalarValue, Value};
use std::sync::Arc;
use std::time::Instant;

/// Maximum function-call recursion depth. Kept modest: the interpreter
/// recurses natively per call level, and ML scripts are not deeply recursive.
const MAX_CALL_DEPTH: usize = 64;

/// Executes a compiled program in the given context.
pub fn execute_program(program: &Program, ctx: &mut ExecutionContext) -> Result<()> {
    ctx.fingerprint = program.fingerprint;
    LimaStats::add(&ctx.stats.ops_unmarked, program.analysis.ops_unmarked);
    LimaStats::add(
        &ctx.stats.funcs_reuse_ineligible,
        program.analysis.funcs_reuse_ineligible,
    );
    execute_blocks(&program.body, program, ctx)
}

/// Executes a sequence of blocks.
pub fn execute_blocks(
    blocks: &[Block],
    program: &Program,
    ctx: &mut ExecutionContext,
) -> Result<()> {
    for block in blocks {
        ctx.check_interrupt()?;
        execute_block(block, program, ctx)?;
        ctx.refresh_usage();
        #[cfg(debug_assertions)]
        debug_verify_lineage(ctx);
    }
    Ok(())
}

/// Observability handle for the current context: `Some` only when a hub is
/// attached *and* its gate is open, so detached configurations pay a single
/// `Option` check and enabled checks happen once per instruction.
#[inline]
fn obs_of(ctx: &ExecutionContext) -> Option<Arc<Obs>> {
    ctx.config.obs.clone().filter(|o| o.enabled())
}

/// Closes an instruction span opened at `t0`. `outcome` distinguishes how the
/// instruction resolved: 0 computed, 1 full reuse hit, 2 partial rewrite.
fn obs_instr_span(
    obs: &Option<Arc<Obs>>,
    t0: Option<u64>,
    op: &Op,
    item: Option<&LinRef>,
    outcome: u64,
) {
    if let (Some(o), Some(t0)) = (obs, t0) {
        let id = item.map_or(0, |i| i.id());
        o.record_span(EventKind::Instr, &op.opcode(), id, t0, outcome, 0);
    }
}

/// Probes the cache with the session interrupt threaded through, so a probe
/// blocked on a peer's placeholder honours cancellation/deadline instead of
/// waiting out `placeholder_timeout_ms`.
fn cache_acquire(
    cache: &std::sync::Arc<lima_core::LineageCache>,
    item: &LinRef,
    ctx: &ExecutionContext,
) -> Result<Option<Probe>> {
    let intr = ctx.interrupt();
    cache
        .acquire_interruptible(item, intr.as_ref())
        .map_err(RuntimeError::from)
}

/// Debug-mode structural verification of the live lineage DAG after every
/// block. Skipped while a dedup trace or path tracer is active: temporary
/// lineage maps legitimately hold bare placeholders mid-trace.
#[cfg(debug_assertions)]
fn debug_verify_lineage(ctx: &mut ExecutionContext) {
    if !ctx.tracing() || ctx.dedup_trace.is_some() || ctx.path_tracer.is_some() {
        return;
    }
    for (name, root) in ctx.lineage.bindings() {
        if let Err(e) = ctx.verifier.verify(root) {
            panic!("lineage verification failed for variable '{name}': {e}");
        }
    }
}

fn execute_block(block: &Block, program: &Program, ctx: &mut ExecutionContext) -> Result<()> {
    match block {
        Block::Basic { instrs, .. } => {
            for i in instrs {
                execute_instr(i, program, ctx)?;
            }
            // Batched lineage hashing: hash the whole run of items traced in
            // this block with one shared traversal (memoized + order-free, so
            // deferral never changes a hash).
            ctx.flush_hash_batch();
            Ok(())
        }
        Block::If {
            branch_id,
            pred,
            then_body,
            else_body,
            ..
        } => {
            let taken = eval_expr(pred, program, ctx)?
                .as_scalar()
                .map_err(|e| RuntimeError::TypeError(e.to_string()))?
                .as_bool()
                .map_err(|e| RuntimeError::TypeError(e.to_string()))?;
            if let (Some(id), Some(tracer)) = (branch_id, ctx.path_tracer.as_mut()) {
                tracer.record_branch(*id, taken);
            }
            if taken {
                execute_blocks(then_body, program, ctx)
            } else {
                execute_blocks(else_body, program, ctx)
            }
        }
        Block::For {
            id,
            var,
            from,
            to,
            by,
            body,
            dedup_ok,
            deterministic,
            dedup_outputs,
        } => {
            let from = eval_scalar_i64(from, program, ctx)?;
            let to = eval_scalar_i64(to, program, ctx)?;
            let by = eval_scalar_i64(by, program, ctx)?;
            if by == 0 {
                return Err(RuntimeError::TypeError("for step must be nonzero".into()));
            }
            let extra = format!("for:{from}:{to}:{by}");
            let reused = try_block_reuse(*id, &extra, body, program, ctx, |ctx| {
                run_for_iterations(
                    *id,
                    var,
                    from,
                    to,
                    by,
                    body,
                    *dedup_ok,
                    dedup_outputs,
                    program,
                    ctx,
                )
            })?;
            if !reused {
                run_for_iterations(
                    *id,
                    var,
                    from,
                    to,
                    by,
                    body,
                    *dedup_ok,
                    dedup_outputs,
                    program,
                    ctx,
                )?;
            }
            let _ = deterministic;
            Ok(())
        }
        Block::While {
            id,
            pred,
            body,
            dedup_ok,
            dedup_outputs,
            ..
        } => {
            let mut guard = 0usize;
            loop {
                let go = eval_expr(pred, program, ctx)?
                    .as_scalar()
                    .map_err(|e| RuntimeError::TypeError(e.to_string()))?
                    .as_bool()
                    .map_err(|e| RuntimeError::TypeError(e.to_string()))?;
                if !go {
                    break;
                }
                if *dedup_ok && ctx.config.dedup && ctx.tracing() {
                    run_dedup_iteration(
                        &format!("{}:while{}", ctx.fingerprint, id),
                        None,
                        body,
                        dedup_outputs,
                        program,
                        ctx,
                    )?;
                } else {
                    execute_blocks(body, program, ctx)?;
                }
                guard += 1;
                if guard > 100_000_000 {
                    return Err(RuntimeError::TypeError(
                        "while loop exceeded 1e8 iterations".into(),
                    ));
                }
            }
            Ok(())
        }
        Block::ParFor {
            var,
            from,
            to,
            by,
            body,
            results,
            degree,
            ..
        } => {
            let from = eval_scalar_i64(from, program, ctx)?;
            let to = eval_scalar_i64(to, program, ctx)?;
            let by = eval_scalar_i64(by, program, ctx)?;
            parfor::execute_parfor(var, from, to, by, body, results, *degree, program, ctx)
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run_for_iterations(
    id: u64,
    var: &str,
    from: i64,
    to: i64,
    by: i64,
    body: &[Block],
    dedup_ok: bool,
    dedup_outputs: &[String],
    program: &Program,
    ctx: &mut ExecutionContext,
) -> Result<()> {
    let dedup = dedup_ok && ctx.config.dedup && ctx.tracing() && ctx.dedup_trace.is_none();
    let mut i = from;
    while (by > 0 && i <= to) || (by < 0 && i >= to) {
        ctx.set(var, Value::i64(i));
        if dedup {
            run_dedup_iteration(
                &format!("{}:for{}", ctx.fingerprint, id),
                Some((var, i)),
                body,
                dedup_outputs,
                program,
                ctx,
            )?;
        } else {
            execute_blocks(body, program, ctx)?;
        }
        i += by;
    }
    Ok(())
}

/// Evaluates an expression program, returning the result value.
fn eval_expr(e: &ExprProg, program: &Program, ctx: &mut ExecutionContext) -> Result<Value> {
    for i in &e.instrs {
        execute_instr(i, program, ctx)?;
    }
    resolve_operand(&e.result, ctx)
}

fn eval_scalar_i64(e: &ExprProg, program: &Program, ctx: &mut ExecutionContext) -> Result<i64> {
    let v = eval_expr(e, program, ctx)?;
    match &v {
        Value::Scalar(s) => s
            .as_i64()
            .map_err(|e| RuntimeError::TypeError(e.to_string())),
        Value::Matrix(m) if m.shape() == (1, 1) && m.get(0, 0).fract() == 0.0 => {
            Ok(m.get(0, 0) as i64)
        }
        other => Err(RuntimeError::TypeError(format!(
            "expected integer bound, got {}",
            other.type_name()
        ))),
    }
}

fn resolve_operand(op: &Operand, ctx: &ExecutionContext) -> Result<Value> {
    match op {
        Operand::Var(v) => ctx.get(v).cloned(),
        Operand::Lit(s) => Ok(Value::Scalar(s.clone())),
    }
}

/// One iteration of a dedup-managed loop body (paper §3.2). See module docs
/// in `lima_core::lineage::dedup` for the protocol.
#[allow(clippy::too_many_arguments)]
fn run_dedup_iteration(
    block_key: &str,
    idx: Option<(&str, i64)>,
    body: &[Block],
    outputs: &[String],
    program: &Program,
    ctx: &mut ExecutionContext,
) -> Result<()> {
    let inputs = lva::live_in(body);
    // Inputs present in the symbol table, with their current (outer) lineage.
    let mut bound_inputs: Vec<(String, LinRef)> = Vec::new();
    for v in &inputs {
        if ctx.symtab.contains_key(v) && Some(v.as_str()) != idx.map(|(n, _)| n) {
            let lin = ctx.lineage_of_var(v);
            bound_inputs.push((v.clone(), lin));
        }
    }
    let num_branches = count_branches(body);
    let registry = ctx.dedup_registry(block_key, num_branches);

    ctx.path_tracer = Some(PathTracer::new());
    let complete = registry.is_complete();
    let base_inputs = bound_inputs.len() as u32 + u32::from(idx.is_some());

    let result = if complete {
        // Lightweight mode: only the taken path and seeds are recorded.
        ctx.suppress_tracing = true;
        let r = execute_blocks(body, program, ctx);
        ctx.suppress_tracing = false;
        r
    } else {
        // Tracing mode: swap in a temporary lineage map with placeholders.
        let mut temp = lima_core::LineageMap::new();
        for (slot, (var, _)) in bound_inputs.iter().enumerate() {
            temp.set(var, LineageItem::placeholder(slot as u32));
        }
        if let Some((ivar, _)) = idx {
            temp.set(ivar, LineageItem::placeholder(bound_inputs.len() as u32));
        }
        let saved = std::mem::replace(&mut ctx.lineage, temp);
        ctx.dedup_trace = Some(DedupTrace {
            base_inputs,
            next_seed_slot: base_inputs,
        });
        let r = execute_blocks(body, program, ctx);
        ctx.dedup_trace = None;
        let temp = std::mem::replace(&mut ctx.lineage, saved);
        if r.is_ok() {
            let tracer = ctx.path_tracer.as_ref().ok_or_else(|| {
                RuntimeError::TypeError("dedup path tracer missing after trace".into())
            })?;
            let bits = tracer.path_key();
            if registry.get(bits).is_none() {
                let roots: Vec<(String, LinRef)> = outputs
                    .iter()
                    .filter_map(|v| temp.get(v).map(|l| (v.clone(), l.clone())))
                    .collect();
                let num_inputs = base_inputs as usize + tracer.seeds().len();
                registry.insert(DedupPatch::new(block_key, bits, num_inputs, roots));
                LimaStats::bump(&ctx.stats.dedup_patches);
            }
        }
        r
    };
    result?;

    // Append one dedup item per written output (paper: "a single dedup
    // lineage item ... is added onto the global lineage DAG").
    let Some(tracer) = ctx.path_tracer.take() else {
        return Err(RuntimeError::TypeError(
            "dedup path tracer missing after iteration".into(),
        ));
    };
    let patch = registry.get(tracer.path_key()).ok_or_else(|| {
        RuntimeError::TypeError(format!(
            "dedup patch missing for path {} of {block_key} (branch count mismatch)",
            tracer.path_key()
        ))
    })?;
    let mut dedup_inputs: Vec<LinRef> = bound_inputs.iter().map(|(_, l)| l.clone()).collect();
    if let Some((_, i)) = idx {
        dedup_inputs.push(ctx.lineage.literal(&ScalarValue::I64(i).lineage_literal()));
    }
    for &seed in tracer.seeds() {
        dedup_inputs.push(
            ctx.lineage
                .literal(&ScalarValue::I64(seed).lineage_literal()),
        );
    }
    for (name, _) in patch.roots() {
        let item = LineageItem::dedup(patch.clone(), name, dedup_inputs.clone());
        if let Some(Value::Matrix(m)) = ctx.symtab.get(name) {
            item.set_shape(m.rows(), m.cols());
        }
        ctx.lineage.set(name, item);
        LimaStats::bump(&ctx.stats.dedup_items);
    }
    Ok(())
}

fn count_branches(blocks: &[Block]) -> u32 {
    let mut n = 0;
    for b in blocks {
        if let Block::If {
            then_body,
            else_body,
            ..
        } = b
        {
            n += 1 + count_branches(then_body) + count_branches(else_body);
        }
    }
    n
}

/// Attempts block-level (multi-level) reuse of a loop block. Returns true if
/// the block was reused; false if the caller must execute it (paper §4.1,
/// "Multi-level Reuse").
fn try_block_reuse(
    block_id: u64,
    extra: &str,
    body: &[Block],
    _program: &Program,
    ctx: &mut ExecutionContext,
    _exec: impl FnOnce(&mut ExecutionContext) -> Result<()>,
) -> Result<bool> {
    if !ctx.config.multilevel
        || !ctx.tracing()
        || ctx.dedup_trace.is_some()
        || ctx.path_tracer.is_some()
    {
        return Ok(false);
    }
    let Some(cache) = ctx.cache.clone() else {
        return Ok(false);
    };
    // Determinism via the shared classification analysis; the empty class
    // map is conservative about calls, which block-level reuse excludes
    // anyway (calls are covered by function-level reuse instead).
    let no_classes = std::collections::HashMap::new();
    // `rewrites_enabled` pauses multilevel caching at governor level L2+
    // (block bundles are the largest speculative entries the cache admits).
    if !cache.full_reuse()
        || !cache.rewrites_enabled()
        || crate::compiler::blocks_class(body, &no_classes)
            != lima_core::opcodes::OpClass::Deterministic
    {
        return Ok(false);
    }
    // Only last-level loop bodies qualify: blocks wrapping function calls or
    // nested loops would bundle large intermediate sets into single cache
    // entries (pollution); calls are covered by function-level reuse instead.
    if !crate::compiler::body_is_last_level(body) {
        return Ok(false);
    }
    let live_in = lva::live_in(body);
    let outputs = lva::writes(body);
    // All live-ins must be bound; scalar live-ins fold into the key by value.
    let mut lin_inputs = Vec::new();
    let mut scalar_key = String::new();
    for var in &live_in {
        match ctx.symtab.get(var) {
            Some(Value::Scalar(s)) => {
                scalar_key.push('|');
                scalar_key.push_str(var);
                scalar_key.push('=');
                scalar_key.push_str(&s.lineage_literal());
            }
            Some(_) => lin_inputs.push(ctx.lineage_of_var(var)),
            None => return Ok(false),
        }
    }
    let data = format!("{}:{block_id}:{extra}{scalar_key}", ctx.fingerprint);
    let item = LineageItem::op_with_data(oc::BCALL, data, lin_inputs);
    match cache_acquire(&cache, &item, ctx)? {
        Some(Probe::Hit(Value::List(bundle))) if bundle.len() == 2 => {
            let (names, values) = (&bundle[0], &bundle[1]);
            let (Value::List(names), Value::List(values)) = (names, values) else {
                return Ok(false);
            };
            if let Some(o) = obs_of(ctx) {
                o.record_instant(
                    EventKind::BlockReuse,
                    oc::BCALL,
                    item.id(),
                    block_id,
                    names.len() as u64,
                );
            }
            for (i, (name, value)) in names.iter().zip(values.iter()).enumerate() {
                let Value::Scalar(ScalarValue::Str(name)) = name else {
                    continue;
                };
                ctx.set(name.to_string(), value.clone());
                let out_lin =
                    LineageItem::op_with_data(oc::LIST_GET, i.to_string(), vec![item.clone()]);
                if let Value::Matrix(m) = value {
                    out_lin.set_shape(m.rows(), m.cols());
                }
                ctx.lineage.set(name.to_string(), out_lin);
            }
            Ok(true)
        }
        Some(Probe::Hit(_)) => Ok(false),
        Some(Probe::Reserved(r)) => {
            let t0 = Instant::now();
            let res = _exec(ctx);
            match res {
                Ok(()) => {
                    let mut names = Vec::new();
                    let mut values = Vec::new();
                    for var in &outputs {
                        if let Some(v) = ctx.symtab.get(var) {
                            names.push(Value::str(var));
                            values.push(v.clone());
                        }
                    }
                    let bundle = Value::list(vec![Value::list(names), Value::list(values)]);
                    r.fulfill(&bundle, t0.elapsed().as_nanos() as u64);
                    Ok(true)
                }
                Err(e) => {
                    r.abort();
                    Err(e)
                }
            }
        }
        None => Ok(false),
    }
}

/// Executes one instruction with LIMA pre/post-processing.
pub fn execute_instr(instr: &Instr, program: &Program, ctx: &mut ExecutionContext) -> Result<()> {
    ctx.check_interrupt()?;
    match &instr.op {
        Op::Rmvar => {
            for o in &instr.inputs {
                if let Some(v) = o.as_var() {
                    ctx.symtab.remove(v);
                    ctx.lineage.remove(v);
                }
            }
            return Ok(());
        }
        Op::Mvvar => {
            let from = instr.inputs[0]
                .as_var()
                .ok_or_else(|| RuntimeError::TypeError("mvvar needs a variable".into()))?
                .to_string();
            let to = instr.outputs[0].clone();
            if let Some(v) = ctx.symtab.remove(&from) {
                ctx.symtab.insert(to.clone(), v);
            }
            ctx.lineage.rename(&from, to);
            return Ok(());
        }
        Op::Print => {
            let v = resolve_operand(&instr.inputs[0], ctx)?;
            let line = display(&v);
            ctx.stdout.push(line);
            return Ok(());
        }
        Op::Write => {
            return execute_write(instr, ctx);
        }
        Op::LineageOf => {
            let var = instr.inputs[0]
                .as_var()
                .ok_or_else(|| RuntimeError::TypeError("lineage() requires a variable".into()))?;
            if !ctx.config.tracing {
                return Err(RuntimeError::TypeError(
                    "lineage() requires lineage tracing to be enabled".into(),
                ));
            }
            let var = var.to_string();
            let lin = ctx.lineage_of_var(&var);
            let log = lima_core::lineage::serialize::serialize_lineage(&lin);
            let out = instr.outputs[0].clone();
            ctx.set(out, Value::str(&log));
            return Ok(());
        }
        Op::FCall(name) => {
            return execute_fcall(name, instr, program, ctx);
        }
        _ => {}
    }

    let obs = obs_of(ctx);
    let obs_t0 = obs.as_ref().map(|o| o.now_ns());

    // 1. Resolve operand values; generate system seeds where requested.
    let mut resolved: Vec<Value> = Vec::with_capacity(instr.inputs.len());
    for o in &instr.inputs {
        resolved.push(resolve_operand(o, ctx)?);
    }
    let mut seed: Option<i64> = None;
    if instr.op.is_random() {
        let slot = resolved.len() - 1;
        let s = match &resolved[slot] {
            Value::Scalar(sv) => sv.as_i64().unwrap_or(-1),
            _ => -1,
        };
        let s = if s < 0 { ctx.next_system_seed() } else { s };
        resolved[slot] = Value::i64(s);
        seed = Some(s);
        // In lightweight dedup mode no lineage is traced, so the seed must be
        // recorded here; in tracing mode `seed_lineage` records it.
        if ctx.suppress_tracing {
            if let Some(tracer) = ctx.path_tracer.as_mut() {
                tracer.record_seed(s);
            }
        }
    }

    // 2. Trace lineage before execution (paper §3.1 footnote: tracing before
    //    execution facilitates reuse).
    let traced = if ctx.tracing() {
        Some(trace_instr(instr, &resolved, seed, ctx)?)
    } else {
        None
    };

    // Assign is pure lineage/value plumbing: bind and return.
    if matches!(instr.op, Op::Assign) {
        let value = resolved[0].clone();
        bind_outputs(instr, vec![value], traced.map(|t| t.0), ctx);
        return Ok(());
    }

    // 3. Probe the reuse cache (full, then partial).
    let mut reservation = None;
    if let (Some((item, rewrite_vals)), Some(cache)) = (&traced, ctx.cache.clone()) {
        let eligible = !instr.no_cache
            && ctx.dedup_trace.is_none()
            && cache.full_reuse()
            && !instr.op.is_random();
        if eligible {
            match cache_acquire(&cache, item, ctx)? {
                Some(Probe::Hit(value)) => {
                    let outputs = unbundle(value, instr.outputs.len());
                    obs_instr_span(&obs, obs_t0, &instr.op, Some(item), 1);
                    bind_outputs(instr, outputs, Some(item.clone()), ctx);
                    return Ok(());
                }
                Some(Probe::Reserved(r)) => {
                    let t0 = Instant::now();
                    if let Some(hit) = try_partial_reuse(&cache, item, rewrite_vals) {
                        // The compensation time is the best available proxy
                        // for this entry's recompute cost.
                        r.fulfill(&hit.value, t0.elapsed().as_nanos() as u64);
                        if let Some(o) = &obs {
                            o.record_instant(
                                EventKind::PartialRewrite,
                                &instr.op.opcode(),
                                item.id(),
                                0,
                                0,
                            );
                        }
                        obs_instr_span(&obs, obs_t0, &instr.op, Some(item), 2);
                        bind_outputs(instr, vec![hit.value], Some(item.clone()), ctx);
                        return Ok(());
                    }
                    let fulfiller_dies = ctx.config.faults.as_ref().is_some_and(|f| {
                        f.should_fail(lima_core::faults::FaultSite::FulfillerDeath)
                    });
                    if fulfiller_dies {
                        // Simulate a fulfiller dying without aborting: leak
                        // the reservation so the placeholder never resolves.
                        // Blocked probes recover via the placeholder wait
                        // timeout (takeover); this probe computes normally
                        // but stores nothing.
                        std::mem::forget(r);
                    } else {
                        reservation = Some(r);
                    }
                }
                None => {}
            }
        } else if cache.partial_reuse() && !instr.no_cache && ctx.dedup_trace.is_none() {
            // Partial-only configurations still rewrite without reserving.
            if let Some(hit) = try_partial_reuse(&cache, item, rewrite_vals) {
                if let Some(o) = &obs {
                    o.record_instant(
                        EventKind::PartialRewrite,
                        &instr.op.opcode(),
                        item.id(),
                        0,
                        0,
                    );
                }
                obs_instr_span(&obs, obs_t0, &instr.op, Some(item), 2);
                bind_outputs(instr, vec![hit.value], Some(item.clone()), ctx);
                return Ok(());
            }
        }
    }

    // 4. Execute the kernel.
    let t0 = Instant::now();
    let out = match execute_kernel(&instr.op, &resolved, ctx) {
        Ok(v) => v,
        Err(e) => {
            if let Some(r) = reservation {
                r.abort();
            }
            return Err(e);
        }
    };
    let elapsed = t0.elapsed().as_nanos() as u64;

    // 5. Register the output in the cache.
    if let Some(r) = reservation {
        let bundled = bundle(&out);
        r.fulfill(&bundled, elapsed);
    }

    obs_instr_span(&obs, obs_t0, &instr.op, traced.as_ref().map(|t| &t.0), 0);
    bind_outputs(instr, out, traced.map(|t| t.0), ctx);
    Ok(())
}

/// Bundles kernel outputs for caching: single output as-is, multi-output as a
/// list.
fn bundle(out: &[Value]) -> Value {
    if out.len() == 1 {
        out[0].clone()
    } else {
        Value::list(out.to_vec())
    }
}

/// Reverses [`bundle`] for a cache hit.
fn unbundle(v: Value, n: usize) -> Vec<Value> {
    if n <= 1 {
        return vec![v];
    }
    match v {
        Value::List(items) => items.as_ref().clone(),
        other => vec![other],
    }
}

fn bind_outputs(
    instr: &Instr,
    values: Vec<Value>,
    item: Option<LinRef>,
    ctx: &mut ExecutionContext,
) {
    let multi = instr.outputs.len() > 1;
    for (i, (name, value)) in instr.outputs.iter().zip(values).enumerate() {
        if let Some(base) = &item {
            let out_lin = if multi {
                LineageItem::op_with_data(oc::LIST_GET, i.to_string(), vec![base.clone()])
            } else {
                base.clone()
            };
            if let Value::Matrix(m) = &value {
                out_lin.set_shape(m.rows(), m.cols());
            }
            ctx.lineage.set(name, out_lin);
        }
        ctx.set(name, value);
    }
}

/// Builds the lineage item for an instruction, together with the input values
/// aligned to the item's inputs (consumed by partial-reuse rewrites).
#[allow(clippy::type_complexity)]
fn trace_instr(
    instr: &Instr,
    resolved: &[Value],
    seed: Option<i64>,
    ctx: &mut ExecutionContext,
) -> Result<(LinRef, Vec<Value>)> {
    LimaStats::bump(&ctx.stats.items_traced);
    let opcode = instr.op.opcode();
    // Helper: lineage for operand k (matrix/list by variable lineage; scalars
    // by value — making equal parameters match regardless of provenance).
    macro_rules! operand_lin {
        ($k:expr) => {{
            match &resolved[$k] {
                Value::Scalar(s) => ctx.lineage.literal(&s.lineage_literal()),
                _ => match &instr.inputs[$k] {
                    Operand::Var(v) => ctx.lineage_of_var(v),
                    Operand::Lit(s) => ctx.lineage.literal(&s.lineage_literal()),
                },
            }
        }};
    }
    let item: (LinRef, Vec<Value>) = match &instr.op {
        Op::RightIndex => {
            let x = operand_lin!(0);
            let shape = match &resolved[0] {
                Value::Matrix(m) => m.shape(),
                other => {
                    return Err(RuntimeError::TypeError(format!(
                        "rightIndex on {}",
                        other.type_name()
                    )))
                }
            };
            let b: Vec<i64> = (1..5)
                .map(|k| match &resolved[k] {
                    Value::Scalar(s) => s.as_i64().unwrap_or(-1),
                    _ => -1,
                })
                .collect();
            let (rl, ru, cl, cu) = resolve_bounds(shape, b[0], b[1], b[2], b[3])?;
            (
                LineageItem::op_with_data(opcode, format!("{rl} {ru} {cl} {cu}"), vec![x]),
                vec![resolved[0].clone()],
            )
        }
        Op::LeftIndex => {
            let x = operand_lin!(0);
            let s = operand_lin!(1);
            let rl = resolved[2].as_f64().unwrap_or(0.0) as i64;
            let cl = resolved[3].as_f64().unwrap_or(0.0) as i64;
            (
                LineageItem::op_with_data(opcode, format!("{} {}", rl - 1, cl - 1), vec![x, s]),
                vec![resolved[0].clone(), resolved[1].clone()],
            )
        }
        Op::Fill => {
            let v = resolved[0].as_f64().unwrap_or(f64::NAN);
            let rows = resolved[1].as_f64().unwrap_or(0.0) as i64;
            let cols = resolved[2].as_f64().unwrap_or(0.0) as i64;
            (
                LineageItem::op_with_data(opcode, format!("{v} {rows} {cols}"), vec![]),
                vec![],
            )
        }
        Op::Rand(kind) => {
            let rows = resolved[0].as_f64().unwrap_or(0.0) as i64;
            let cols = resolved[1].as_f64().unwrap_or(0.0) as i64;
            let p1 = resolved[2].as_f64().unwrap_or(0.0);
            let p2 = resolved[3].as_f64().unwrap_or(0.0);
            let sp = resolved[4].as_f64().unwrap_or(1.0);
            let seed_item = seed_lineage(seed.unwrap_or(-1), ctx);
            (
                LineageItem::op_with_data(
                    opcode,
                    format!("{rows} {cols} {} {p1} {p2} {sp}", kind.name()),
                    vec![seed_item],
                ),
                vec![],
            )
        }
        Op::Sample => {
            let range = resolved[0].as_f64().unwrap_or(0.0) as i64;
            let size = resolved[1].as_f64().unwrap_or(0.0) as i64;
            let seed_item = seed_lineage(seed.unwrap_or(-1), ctx);
            (
                LineageItem::op_with_data(opcode, format!("{range} {size}"), vec![seed_item]),
                vec![],
            )
        }
        Op::Seq => {
            let f = resolved[0].as_f64().unwrap_or(f64::NAN);
            let t = resolved[1].as_f64().unwrap_or(f64::NAN);
            let b = resolved[2].as_f64().unwrap_or(f64::NAN);
            (
                LineageItem::op_with_data(opcode, format!("{f} {t} {b}"), vec![]),
                vec![],
            )
        }
        Op::Read => {
            let path = match &resolved[0] {
                Value::Scalar(ScalarValue::Str(s)) => s.to_string(),
                _ => "?".into(),
            };
            (LineageItem::op_with_data(opcode, path, vec![]), vec![])
        }
        Op::Tsmm(side) => {
            let x = operand_lin!(0);
            let side = match side {
                lima_matrix::ops::TsmmSide::Left => "LEFT",
                lima_matrix::ops::TsmmSide::Right => "RIGHT",
            };
            (
                LineageItem::op_with_data(opcode, side, vec![x]),
                vec![resolved[0].clone()],
            )
        }
        Op::Order => {
            let v = operand_lin!(0);
            let dec = resolved[1]
                .as_scalar()
                .ok()
                .and_then(|s| s.as_bool().ok())
                .unwrap_or(false);
            (
                LineageItem::op_with_data(opcode, if dec { "desc" } else { "asc" }, vec![v]),
                vec![resolved[0].clone()],
            )
        }
        Op::Reshape => {
            let x = operand_lin!(0);
            let rows = resolved[1].as_f64().unwrap_or(0.0) as i64;
            let cols = resolved[2].as_f64().unwrap_or(0.0) as i64;
            (
                LineageItem::op_with_data(opcode, format!("{rows} {cols}"), vec![x]),
                vec![resolved[0].clone()],
            )
        }
        Op::ListGet => {
            let l = operand_lin!(0);
            let idx = resolved[1].as_f64().unwrap_or(0.0) as i64;
            (
                LineageItem::op_with_data(opcode, idx.to_string(), vec![l]),
                vec![resolved[0].clone()],
            )
        }
        Op::Fused(spec) => {
            let inputs: Vec<LinRef> = (0..instr.inputs.len()).map(|k| operand_lin!(k)).collect();
            (spec.expand_lineage(&inputs), resolved.to_vec())
        }
        _ => {
            let inputs: Vec<LinRef> = (0..instr.inputs.len()).map(|k| operand_lin!(k)).collect();
            (LineageItem::op(opcode, inputs), resolved.to_vec())
        }
    };
    ctx.note_traced(&item.0);
    Ok(item)
}

/// Lineage input carrying a `rand`/`sample` seed: a placeholder slot while a
/// dedup patch is being traced, a literal otherwise (paper §3.2, "Handling of
/// Non-Determinism").
fn seed_lineage(seed: i64, ctx: &mut ExecutionContext) -> LinRef {
    if let Some(dt) = ctx.dedup_trace.as_mut() {
        let slot = dt.next_seed_slot;
        dt.next_seed_slot += 1;
        if let Some(tracer) = ctx.path_tracer.as_mut() {
            tracer.record_seed(seed);
        }
        LineageItem::placeholder(slot)
    } else {
        ctx.lineage
            .literal(&ScalarValue::I64(seed).lineage_literal())
    }
}

fn execute_write(instr: &Instr, ctx: &mut ExecutionContext) -> Result<()> {
    let value = resolve_operand(&instr.inputs[0], ctx)?;
    let path = match resolve_operand(&instr.inputs[1], ctx)? {
        Value::Scalar(ScalarValue::Str(s)) => s.to_string(),
        other => {
            return Err(RuntimeError::TypeError(format!(
                "write path must be a string, got {}",
                other.type_name()
            )))
        }
    };
    match &value {
        Value::Matrix(m) => {
            lima_matrix::io::write_matrix_text(std::path::Path::new(&path), m)?;
        }
        other => std::fs::write(&path, display(other))?,
    }
    // For every write, also write the lineage log (paper §3.1).
    if ctx.tracing() {
        if let Some(var) = instr.inputs[0].as_var() {
            let lin = ctx.lineage_of_var(var);
            let log = lima_core::lineage::serialize::serialize_lineage(&lin);
            std::fs::write(format!("{path}.lineage"), log)?;
        }
    }
    Ok(())
}

fn execute_fcall(
    name: &str,
    instr: &Instr,
    program: &Program,
    ctx: &mut ExecutionContext,
) -> Result<()> {
    let func = program
        .functions
        .get(name)
        .ok_or_else(|| RuntimeError::UndefinedFunction(name.to_string()))?;
    if ctx.call_depth >= MAX_CALL_DEPTH {
        return Err(RuntimeError::TypeError(format!(
            "call depth exceeded at '{name}'"
        )));
    }
    if instr.inputs.len() != func.params.len() {
        return Err(RuntimeError::BadOperands {
            op: format!("fcall:{name}"),
            msg: format!(
                "expected {} arguments, got {}",
                func.params.len(),
                instr.inputs.len()
            ),
        });
    }
    let obs = obs_of(ctx);
    let obs_t0 = obs.as_ref().map(|o| o.now_ns());
    let args: Vec<Value> = instr
        .inputs
        .iter()
        .map(|o| resolve_operand(o, ctx))
        .collect::<Result<_>>()?;
    // Lineage of arguments (matrices by lineage, scalars by value).
    let arg_items: Option<Vec<LinRef>> = if ctx.tracing() {
        Some(
            instr
                .inputs
                .iter()
                .zip(&args)
                .map(|(o, v)| match v {
                    Value::Scalar(s) => ctx.lineage.literal(&s.lineage_literal()),
                    _ => match o {
                        Operand::Var(var) => ctx.lineage_of_var(var),
                        Operand::Lit(s) => ctx.lineage.literal(&s.lineage_literal()),
                    },
                })
                .collect(),
        )
    } else {
        None
    };

    // Multi-level (function) reuse: probe before executing (paper §4.1).
    let mut reservation = None;
    let mut fcall_item = None;
    if let (Some(items), Some(cache)) = (&arg_items, ctx.cache.clone()) {
        if ctx.config.multilevel
            && cache.full_reuse()
            && cache.rewrites_enabled()
            && func.deterministic
            && ctx.dedup_trace.is_none()
        {
            let item = LineageItem::op_with_data(
                format!("{}:{name}", oc::FCALL),
                name.to_string(),
                items.clone(),
            );
            match cache_acquire(&cache, &item, ctx)? {
                Some(Probe::Hit(bundle)) => {
                    let outputs = unbundle(bundle, instr.outputs.len());
                    if let (Some(o), Some(t0)) = (&obs, obs_t0) {
                        o.record_span(EventKind::FCall, name, item.id(), t0, 1, 0);
                    }
                    bind_outputs(instr, outputs, Some(item), ctx);
                    return Ok(());
                }
                Some(Probe::Reserved(r)) => {
                    reservation = Some(r);
                    fcall_item = Some(item);
                }
                None => {}
            }
        }
    }

    // Execute the function body in a fresh context.
    let t0 = Instant::now();
    let mut callee = ctx.fork_function();
    for (param, value) in func.params.iter().zip(args.iter()) {
        callee.set(param, value.clone());
    }
    if let Some(items) = &arg_items {
        for (param, item) in func.params.iter().zip(items.iter()) {
            callee.lineage.set(param, item.clone());
        }
    }
    let res = execute_function_body(func, program, &mut callee);
    ctx.stdout.append(&mut callee.stdout);
    if let Err(e) = res {
        if let Some(r) = reservation {
            r.abort();
        }
        return Err(e);
    }
    let elapsed = t0.elapsed().as_nanos() as u64;

    // Collect outputs.
    let mut out_values = Vec::with_capacity(func.outputs.len());
    let mut out_lineage = Vec::with_capacity(func.outputs.len());
    for out in &func.outputs {
        let v = callee
            .symtab
            .get(out)
            .cloned()
            .ok_or_else(|| RuntimeError::UndefinedVariable(format!("{name} output '{out}'")))?;
        out_lineage.push(callee.lineage.get(out).cloned());
        out_values.push(v);
    }

    if let (Some(r), Some(item)) = (reservation, fcall_item) {
        let bundled = bundle(&out_values);
        r.fulfill(&bundled, elapsed);
        if let (Some(o), Some(t0)) = (&obs, obs_t0) {
            o.record_span(EventKind::FCall, name, item.id(), t0, 0, 0);
        }
        bind_outputs(instr, out_values, Some(item), ctx);
        return Ok(());
    }
    if let (Some(o), Some(t0)) = (&obs, obs_t0) {
        o.record_span(EventKind::FCall, name, 0, t0, 0, 0);
    }

    // No function-level reuse: propagate precise op-level lineage.
    for ((target, value), lin) in instr.outputs.iter().zip(out_values).zip(out_lineage) {
        if let Some(l) = lin {
            if let Value::Matrix(m) = &value {
                l.set_shape(m.rows(), m.cols());
            }
            ctx.lineage.set(target, l);
        }
        ctx.set(target, value);
    }
    Ok(())
}

/// Executes a function body, driving function-level deduplication when the
/// function qualifies (paper §3.2, "Function Deduplication").
fn execute_function_body(
    func: &Function,
    program: &Program,
    callee: &mut ExecutionContext,
) -> Result<()> {
    if func.dedup_ok && callee.config.dedup && callee.tracing() && callee.dedup_trace.is_none() {
        run_dedup_iteration(
            &format!("{}:fn:{}", callee.fingerprint, func.name),
            None,
            &func.body,
            &func.dedup_outputs,
            program,
            callee,
        )
    } else {
        execute_blocks(&func.body, program, callee)
    }
}
