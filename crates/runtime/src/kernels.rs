//! Instruction kernels: pure mapping from resolved operand values to output
//! values, dispatching into `lima-matrix`. Control-flow, tracing, caching,
//! and side effects live in the interpreter.

use crate::context::ExecutionContext;
use crate::error::{Result, RuntimeError};
use crate::instr::Op;
use lima_matrix::ops::{self, BinOp};
use lima_matrix::{DenseMatrix, ScalarValue, Value};

fn bad(op: &Op, msg: impl Into<String>) -> RuntimeError {
    RuntimeError::BadOperands {
        op: op.opcode(),
        msg: msg.into(),
    }
}

fn need(inputs: &[Value], n: usize, op: &Op) -> Result<()> {
    if inputs.len() != n {
        return Err(bad(
            op,
            format!("expected {n} operands, got {}", inputs.len()),
        ));
    }
    Ok(())
}

fn mat<'a>(v: &'a Value, op: &Op) -> Result<&'a DenseMatrix> {
    match v {
        Value::Matrix(m) => Ok(m),
        other => Err(bad(
            op,
            format!("expected matrix, got {}", other.type_name()),
        )),
    }
}

fn num(v: &Value, op: &Op) -> Result<f64> {
    v.as_f64().map_err(|e| bad(op, e.to_string()))
}

fn int(v: &Value, op: &Op) -> Result<i64> {
    match v {
        Value::Scalar(s) => s.as_i64().map_err(|e| bad(op, e.to_string())),
        Value::Matrix(m) if m.shape() == (1, 1) => {
            let f = m.get(0, 0);
            if f.fract() == 0.0 {
                Ok(f as i64)
            } else {
                Err(bad(op, format!("{f} is not an integer")))
            }
        }
        other => Err(bad(
            op,
            format!("expected integer, got {}", other.type_name()),
        )),
    }
}

fn usize_arg(v: &Value, op: &Op) -> Result<usize> {
    let i = int(v, op)?;
    usize::try_from(i).map_err(|_| bad(op, format!("expected non-negative, got {i}")))
}

/// Converts a 1-based index (scalar position or column vector of positions,
/// as DML's `X[, s]` syntax covers both) into 0-based usize indices.
fn index_vector(v: &Value, op: &Op) -> Result<Vec<usize>> {
    let conv = |x: f64| -> Result<usize> {
        if x >= 1.0 && x.fract() == 0.0 {
            Ok(x as usize - 1)
        } else {
            Err(bad(op, format!("bad 1-based index {x}")))
        }
    };
    match v {
        Value::Matrix(m) => {
            if m.cols() != 1 {
                return Err(bad(op, "index vector must be a column vector"));
            }
            m.data().iter().map(|&x| conv(x)).collect()
        }
        Value::Scalar(s) => {
            let x = s.as_f64().map_err(|e| bad(op, e.to_string()))?;
            Ok(vec![conv(x)?])
        }
        other => Err(bad(
            op,
            format!("expected index, got {}", other.type_name()),
        )),
    }
}

/// Resolves DML-style 1-based inclusive bounds (0 = "to the end") into
/// 0-based inclusive bounds. Shared by the kernel and the lineage tracer so
/// the traced data string matches the executed slice.
pub fn resolve_bounds(
    shape: (usize, usize),
    rl: i64,
    ru: i64,
    cl: i64,
    cu: i64,
) -> Result<(usize, usize, usize, usize)> {
    let (rows, cols) = shape;
    let conv = |v: i64, max: usize, name: &str| -> Result<usize> {
        if v == 0 {
            Ok(max)
        } else if v >= 1 && (v as usize) <= max {
            Ok(v as usize)
        } else {
            Err(RuntimeError::BadOperands {
                op: "rightIndex".into(),
                msg: format!("{name} bound {v} out of 1..={max}"),
            })
        }
    };
    let rl = conv(rl.max(1), rows, "row")?;
    let ru = conv(ru, rows, "row")?;
    let cl = conv(cl.max(1), cols, "col")?;
    let cu = conv(cu, cols, "col")?;
    Ok((rl - 1, ru - 1, cl - 1, cu - 1))
}

/// Rows per chunk in session-interruptible kernels: a deadline or
/// cancellation lands within one chunk's worth of work even inside a single
/// large matrix multiply.
const KERNEL_CHUNK_ROWS: usize = 128;

/// Row-chunked matrix multiply with a cooperative interrupt checkpoint
/// between chunks. Bit-exact with `ops::matmult`: the row partition leaves
/// every output element's k-ascending accumulation order unchanged (the
/// parallel kernel splits rows the same way).
fn matmult_checkpointed(
    a: &DenseMatrix,
    b: &DenseMatrix,
    ctx: &ExecutionContext,
) -> Result<DenseMatrix> {
    if a.cols() != b.rows() {
        // Canonical dimension error from the uncut kernel.
        return Ok(ops::matmult(a, b)?);
    }
    let (m, n) = (a.rows(), b.cols());
    let mut data = Vec::with_capacity(m * n);
    let mut r0 = 0;
    while r0 < m {
        ctx.check_interrupt()?;
        let r1 = (r0 + KERNEL_CHUNK_ROWS).min(m);
        let chunk = ops::slice(a, r0, r1 - 1, 0, a.cols() - 1)?;
        let out = ops::matmult(&chunk, b)?;
        data.extend_from_slice(out.data());
        r0 = r1;
    }
    Ok(DenseMatrix::new(m, n, data)?)
}

/// Row-chunked `t(X) %*% X` with interrupt checkpoints: the Gram matrices of
/// row stripes sum to the full Gram matrix. The stripe-sum order differs
/// from the fused kernel's accumulation, so results agree to FP tolerance
/// rather than bit-exactly (the parallel tsmm kernel already reorders the
/// same way).
fn tsmm_left_checkpointed(x: &DenseMatrix, ctx: &ExecutionContext) -> Result<DenseMatrix> {
    let n = x.cols();
    let mut acc = DenseMatrix::zeros(n, n);
    let mut r0 = 0;
    while r0 < x.rows() {
        ctx.check_interrupt()?;
        let r1 = (r0 + KERNEL_CHUNK_ROWS).min(x.rows());
        let stripe = ops::slice(x, r0, r1 - 1, 0, n - 1)?;
        let partial = ops::tsmm(&stripe, ops::TsmmSide::Left)?;
        acc = ops::ew_matrix_matrix(BinOp::Add, &acc, &partial)?;
        r0 = r1;
    }
    Ok(acc)
}

/// Executes a pure instruction kernel. `Rand`/`Sample` expect their seed
/// operand already resolved to a concrete value by the interpreter.
///
/// With an observability hub attached and enabled, successful executions are
/// recorded as `Kernel` spans nested inside the interpreter's `Instr` span.
pub fn execute_kernel(op: &Op, inputs: &[Value], ctx: &ExecutionContext) -> Result<Vec<Value>> {
    let obs = ctx.config.obs.as_ref().filter(|o| o.enabled());
    let t0 = obs.map(|o| o.now_ns());
    let out = execute_kernel_inner(op, inputs, ctx)?;
    if let (Some(o), Some(t0)) = (obs, t0) {
        o.record_span(lima_core::EventKind::Kernel, &op.opcode(), 0, t0, 0, 0);
    }
    Ok(out)
}

fn execute_kernel_inner(op: &Op, inputs: &[Value], ctx: &ExecutionContext) -> Result<Vec<Value>> {
    let out = match op {
        Op::Binary(b) => {
            need(inputs, 2, op)?;
            vec![exec_binary(*b, &inputs[0], &inputs[1], op)?]
        }
        Op::Unary(u) => {
            need(inputs, 1, op)?;
            match &inputs[0] {
                Value::Matrix(m) => vec![Value::matrix(ops::ew_unary(*u, m))],
                s => vec![Value::f64(u.apply(num(s, op)?))],
            }
        }
        Op::MatMult => {
            need(inputs, 2, op)?;
            let a = mat(&inputs[0], op)?;
            let b = mat(&inputs[1], op)?;
            if ctx.session.is_some() && a.rows() > KERNEL_CHUNK_ROWS && a.cols() > 0 {
                vec![Value::matrix(matmult_checkpointed(a, b, ctx)?)]
            } else {
                vec![Value::matrix(ops::matmult(a, b)?)]
            }
        }
        Op::Tsmm(side) => {
            need(inputs, 1, op)?;
            let x = mat(&inputs[0], op)?;
            if ctx.session.is_some()
                && *side == ops::TsmmSide::Left
                && x.rows() > KERNEL_CHUNK_ROWS
                && x.cols() > 0
            {
                vec![Value::matrix(tsmm_left_checkpointed(x, ctx)?)]
            } else {
                vec![Value::matrix(ops::tsmm(x, *side)?)]
            }
        }
        Op::Transpose => {
            need(inputs, 1, op)?;
            vec![Value::matrix(ops::transpose(mat(&inputs[0], op)?))]
        }
        Op::Cbind => {
            need(inputs, 2, op)?;
            vec![Value::matrix(ops::cbind(
                mat(&inputs[0], op)?,
                mat(&inputs[1], op)?,
            )?)]
        }
        Op::Rbind => {
            need(inputs, 2, op)?;
            vec![Value::matrix(ops::rbind(
                mat(&inputs[0], op)?,
                mat(&inputs[1], op)?,
            )?)]
        }
        Op::RightIndex => {
            need(inputs, 5, op)?;
            let x = mat(&inputs[0], op)?;
            let (rl, ru, cl, cu) = resolve_bounds(
                x.shape(),
                int(&inputs[1], op)?,
                int(&inputs[2], op)?,
                int(&inputs[3], op)?,
                int(&inputs[4], op)?,
            )?;
            vec![Value::matrix(ops::slice(x, rl, ru, cl, cu)?)]
        }
        Op::LeftIndex => {
            need(inputs, 4, op)?;
            let x = mat(&inputs[0], op)?;
            let s = mat(&inputs[1], op)?;
            let rl = usize_arg(&inputs[2], op)?;
            let cl = usize_arg(&inputs[3], op)?;
            if rl == 0 || cl == 0 {
                return Err(bad(op, "leftIndex offsets are 1-based"));
            }
            vec![Value::matrix(ops::left_index(x, s, rl - 1, cl - 1)?)]
        }
        Op::SelectCols => {
            need(inputs, 2, op)?;
            let x = mat(&inputs[0], op)?;
            let idx = index_vector(&inputs[1], op)?;
            vec![Value::matrix(ops::select_cols(x, &idx)?)]
        }
        Op::SelectRows => {
            need(inputs, 2, op)?;
            let x = mat(&inputs[0], op)?;
            let idx = index_vector(&inputs[1], op)?;
            vec![Value::matrix(ops::select_rows(x, &idx)?)]
        }
        Op::Fill => {
            need(inputs, 3, op)?;
            let v = num(&inputs[0], op)?;
            let rows = usize_arg(&inputs[1], op)?;
            let cols = usize_arg(&inputs[2], op)?;
            vec![Value::matrix(DenseMatrix::filled(rows, cols, v))]
        }
        Op::Rand(kind) => {
            need(inputs, 6, op)?;
            let rows = usize_arg(&inputs[0], op)?;
            let cols = usize_arg(&inputs[1], op)?;
            let p1 = num(&inputs[2], op)?;
            let p2 = num(&inputs[3], op)?;
            let sparsity = num(&inputs[4], op)?;
            let seed = int(&inputs[5], op)?;
            vec![Value::matrix(lima_matrix::rand_gen::rand_matrix(
                rows,
                cols,
                kind.dist(p1, p2),
                sparsity,
                seed as u64,
            )?)]
        }
        Op::Sample => {
            need(inputs, 3, op)?;
            let range = usize_arg(&inputs[0], op)?;
            let size = usize_arg(&inputs[1], op)?;
            let seed = int(&inputs[2], op)?;
            vec![Value::matrix(
                lima_matrix::rand_gen::sample_without_replacement(range, size, seed as u64)?,
            )]
        }
        Op::Seq => {
            need(inputs, 3, op)?;
            vec![Value::matrix(ops::seq(
                num(&inputs[0], op)?,
                num(&inputs[1], op)?,
                num(&inputs[2], op)?,
            )?)]
        }
        Op::Read => {
            need(inputs, 1, op)?;
            let path = match &inputs[0] {
                Value::Scalar(ScalarValue::Str(s)) => s.to_string(),
                other => return Err(bad(op, format!("expected path, got {}", other.type_name()))),
            };
            match ctx.data.get(&path) {
                Some(v) => vec![v],
                // Registry miss: fall back to a matrix text/CSV file on disk
                // (the paper's immutable input files, §3.4).
                None => {
                    let p = std::path::Path::new(&path);
                    if p.is_file() {
                        vec![Value::matrix(
                            lima_matrix::io::read_matrix_text(p)
                                .map_err(|e| RuntimeError::Io(format!("{path}: {e}")))?,
                        )]
                    } else {
                        return Err(RuntimeError::UnknownDataset(path));
                    }
                }
            }
        }
        Op::FullAgg(f) => {
            need(inputs, 1, op)?;
            vec![Value::f64(ops::full_agg(mat(&inputs[0], op)?, *f))]
        }
        Op::ColAgg(f) => {
            need(inputs, 1, op)?;
            vec![Value::matrix(ops::col_agg(mat(&inputs[0], op)?, *f))]
        }
        Op::RowAgg(f) => {
            need(inputs, 1, op)?;
            vec![Value::matrix(ops::row_agg(mat(&inputs[0], op)?, *f))]
        }
        Op::RowIndexMax => {
            need(inputs, 1, op)?;
            vec![Value::matrix(ops::row_index_max(mat(&inputs[0], op)?)?)]
        }
        Op::Solve => {
            need(inputs, 2, op)?;
            vec![Value::matrix(ops::solve(
                mat(&inputs[0], op)?,
                mat(&inputs[1], op)?,
            )?)]
        }
        Op::Diag => {
            need(inputs, 1, op)?;
            vec![Value::matrix(ops::diag(mat(&inputs[0], op)?)?)]
        }
        Op::Eigen => {
            need(inputs, 1, op)?;
            let r = ops::eigen_symmetric(mat(&inputs[0], op)?)?;
            vec![Value::matrix(r.values), Value::matrix(r.vectors)]
        }
        Op::Order => {
            need(inputs, 2, op)?;
            let v = mat(&inputs[0], op)?;
            let dec = match &inputs[1] {
                Value::Scalar(s) => s.as_bool().map_err(|e| bad(op, e.to_string()))?,
                other => return Err(bad(op, format!("expected bool, got {}", other.type_name()))),
            };
            vec![Value::matrix(ops::order_index(v, dec)?)]
        }
        Op::Rev => {
            need(inputs, 1, op)?;
            vec![Value::matrix(ops::rev(mat(&inputs[0], op)?))]
        }
        Op::Table => {
            need(inputs, 2, op)?;
            vec![Value::matrix(ops::table2(
                mat(&inputs[0], op)?,
                mat(&inputs[1], op)?,
            )?)]
        }
        Op::Nrow => {
            need(inputs, 1, op)?;
            vec![Value::i64(mat(&inputs[0], op)?.rows() as i64)]
        }
        Op::Ncol => {
            need(inputs, 1, op)?;
            vec![Value::i64(mat(&inputs[0], op)?.cols() as i64)]
        }
        Op::CastScalar => {
            need(inputs, 1, op)?;
            let m = mat(&inputs[0], op)?;
            if m.shape() != (1, 1) {
                return Err(bad(
                    op,
                    format!("as.scalar on {}x{} matrix", m.rows(), m.cols()),
                ));
            }
            vec![Value::f64(m.get(0, 0))]
        }
        Op::CastMatrix => {
            need(inputs, 1, op)?;
            vec![Value::matrix(DenseMatrix::filled(
                1,
                1,
                num(&inputs[0], op)?,
            ))]
        }
        Op::Reshape => {
            need(inputs, 3, op)?;
            let x = mat(&inputs[0], op)?;
            let rows = usize_arg(&inputs[1], op)?;
            let cols = usize_arg(&inputs[2], op)?;
            if rows * cols != x.len() {
                return Err(bad(
                    op,
                    format!("cannot reshape {} cells to {rows}x{cols}", x.len()),
                ));
            }
            vec![Value::matrix(DenseMatrix::new(
                rows,
                cols,
                x.data().to_vec(),
            )?)]
        }
        Op::ListNew => {
            vec![Value::list(inputs.to_vec())]
        }
        Op::ListGet => {
            need(inputs, 2, op)?;
            let list = inputs[0].as_list().map_err(|e| bad(op, e.to_string()))?;
            let idx = usize_arg(&inputs[1], op)?;
            if idx == 0 || idx > list.len() {
                return Err(bad(
                    op,
                    format!("list index {idx} out of 1..={}", list.len()),
                ));
            }
            vec![list[idx - 1].clone()]
        }
        Op::Assign => {
            need(inputs, 1, op)?;
            vec![inputs[0].clone()]
        }
        Op::Concat => {
            need(inputs, 2, op)?;
            let s = format!("{}{}", display(&inputs[0]), display(&inputs[1]));
            vec![Value::str(&s)]
        }
        Op::Fused(spec) => {
            vec![Value::matrix(spec.execute(inputs)?)]
        }
        Op::Print | Op::Write | Op::Rmvar | Op::Mvvar | Op::FCall(_) | Op::LineageOf => {
            return Err(bad(op, "handled by the interpreter, not a kernel"));
        }
    };
    Ok(out)
}

/// Human-readable rendering used by `print`/`concat`.
pub fn display(v: &Value) -> String {
    match v {
        Value::Scalar(s) => s.to_string(),
        Value::Matrix(m) if m.shape() == (1, 1) => format!("{}", m.get(0, 0)),
        Value::Matrix(m) => {
            let mut out = String::new();
            for i in 0..m.rows().min(10) {
                let row: Vec<String> = m
                    .row(i)
                    .iter()
                    .take(10)
                    .map(|v| format!("{v:.4}"))
                    .collect();
                out.push_str(&row.join(" "));
                out.push('\n');
            }
            out
        }
        Value::List(items) => {
            let parts: Vec<String> = items.iter().map(display).collect();
            format!("({})", parts.join(", "))
        }
    }
}

fn exec_binary(b: BinOp, lhs: &Value, rhs: &Value, op: &Op) -> Result<Value> {
    // DML `+` concatenates when either side is a string.
    if b == BinOp::Add {
        let is_str = |v: &Value| matches!(v, Value::Scalar(ScalarValue::Str(_)));
        if is_str(lhs) || is_str(rhs) {
            return Ok(Value::str(&format!("{}{}", display(lhs), display(rhs))));
        }
    }
    Ok(match (lhs, rhs) {
        (Value::Matrix(a), Value::Matrix(c)) => Value::matrix(ops::ew_matrix_matrix(b, a, c)?),
        (Value::Matrix(a), s) => Value::matrix(ops::ew_matrix_scalar(b, a, num(s, op)?)),
        (s, Value::Matrix(c)) => Value::matrix(ops::ew_scalar_matrix(b, num(s, op)?, c)),
        (s, t) => Value::f64(b.apply(num(s, op)?, num(t, op)?)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::RandDistKind;
    use lima_core::LimaConfig;

    fn ctx() -> ExecutionContext {
        ExecutionContext::new(LimaConfig::base())
    }

    fn m(rows: usize, cols: usize, v: &[f64]) -> Value {
        Value::matrix(DenseMatrix::new(rows, cols, v.to_vec()).unwrap())
    }

    #[test]
    fn binary_dispatch_covers_all_type_pairs() {
        let c = ctx();
        let op = Op::Binary(BinOp::Add);
        let mm = execute_kernel(&op, &[m(1, 2, &[1.0, 2.0]), m(1, 2, &[3.0, 4.0])], &c).unwrap();
        assert_eq!(mm[0].as_matrix().unwrap().data(), &[4.0, 6.0]);
        let ms = execute_kernel(&op, &[m(1, 2, &[1.0, 2.0]), Value::f64(1.0)], &c).unwrap();
        assert_eq!(ms[0].as_matrix().unwrap().data(), &[2.0, 3.0]);
        let sm = execute_kernel(
            &Op::Binary(BinOp::Sub),
            &[Value::f64(1.0), m(1, 1, &[3.0])],
            &c,
        )
        .unwrap();
        assert_eq!(sm[0].as_matrix().unwrap().get(0, 0), -2.0);
        let ss = execute_kernel(&op, &[Value::f64(1.0), Value::f64(2.0)], &c).unwrap();
        assert_eq!(ss[0].as_f64().unwrap(), 3.0);
    }

    #[test]
    fn right_index_uses_one_based_inclusive_bounds() {
        let c = ctx();
        let x = m(3, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0]);
        let out = execute_kernel(
            &Op::RightIndex,
            &[
                x.clone(),
                Value::i64(2),
                Value::i64(3),
                Value::i64(1),
                Value::i64(2),
            ],
            &c,
        )
        .unwrap();
        assert_eq!(out[0].as_matrix().unwrap().data(), &[4.0, 5.0, 7.0, 8.0]);
        // 0 means "to the end".
        let out = execute_kernel(
            &Op::RightIndex,
            &[
                x,
                Value::i64(1),
                Value::i64(0),
                Value::i64(3),
                Value::i64(0),
            ],
            &c,
        )
        .unwrap();
        assert_eq!(out[0].as_matrix().unwrap().data(), &[3.0, 6.0, 9.0]);
    }

    #[test]
    fn left_index_is_one_based() {
        let c = ctx();
        let x = m(3, 3, &[0.0; 9]);
        let s = m(1, 2, &[7.0, 8.0]);
        let out =
            execute_kernel(&Op::LeftIndex, &[x, s, Value::i64(2), Value::i64(2)], &c).unwrap();
        let om = out[0].as_matrix().unwrap();
        assert_eq!(om.get(1, 1), 7.0);
        assert_eq!(om.get(1, 2), 8.0);
    }

    #[test]
    fn select_cols_uses_one_based_index_vector() {
        let c = ctx();
        let x = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let idx = m(2, 1, &[3.0, 1.0]);
        let out = execute_kernel(&Op::SelectCols, &[x, idx], &c).unwrap();
        assert_eq!(out[0].as_matrix().unwrap().data(), &[3.0, 1.0, 6.0, 4.0]);
    }

    #[test]
    fn rand_and_sample_use_the_resolved_seed() {
        let c = ctx();
        let args = |seed: i64| {
            vec![
                Value::i64(3),
                Value::i64(4),
                Value::f64(0.0),
                Value::f64(1.0),
                Value::f64(1.0),
                Value::i64(seed),
            ]
        };
        let a = execute_kernel(&Op::Rand(RandDistKind::Uniform), &args(7), &c).unwrap();
        let b = execute_kernel(&Op::Rand(RandDistKind::Uniform), &args(7), &c).unwrap();
        assert_eq!(a[0], b[0]);
        let s = execute_kernel(
            &Op::Sample,
            &[Value::i64(10), Value::i64(5), Value::i64(3)],
            &c,
        )
        .unwrap();
        assert_eq!(s[0].as_matrix().unwrap().rows(), 5);
    }

    #[test]
    fn read_resolves_registered_datasets() {
        let c = ctx();
        c.data
            .register("data/X.csv", m(2, 2, &[1.0, 2.0, 3.0, 4.0]));
        let out = execute_kernel(&Op::Read, &[Value::str("data/X.csv")], &c).unwrap();
        assert_eq!(out[0].as_matrix().unwrap().get(1, 1), 4.0);
        assert!(matches!(
            execute_kernel(&Op::Read, &[Value::str("missing")], &c),
            Err(RuntimeError::UnknownDataset(_))
        ));
    }

    #[test]
    fn eigen_returns_two_outputs() {
        let c = ctx();
        let x = m(2, 2, &[2.0, 1.0, 1.0, 2.0]);
        let out = execute_kernel(&Op::Eigen, &[x], &c).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].as_matrix().unwrap().shape(), (2, 1));
        assert_eq!(out[1].as_matrix().unwrap().shape(), (2, 2));
    }

    #[test]
    fn casts_and_dims() {
        let c = ctx();
        assert_eq!(
            execute_kernel(&Op::Nrow, &[m(3, 2, &[0.0; 6])], &c).unwrap()[0]
                .as_f64()
                .unwrap(),
            3.0
        );
        assert_eq!(
            execute_kernel(&Op::Ncol, &[m(3, 2, &[0.0; 6])], &c).unwrap()[0]
                .as_f64()
                .unwrap(),
            2.0
        );
        assert_eq!(
            execute_kernel(&Op::CastScalar, &[m(1, 1, &[5.0])], &c).unwrap()[0]
                .as_f64()
                .unwrap(),
            5.0
        );
        assert!(execute_kernel(&Op::CastScalar, &[m(2, 1, &[5.0, 6.0])], &c).is_err());
        let cm = execute_kernel(&Op::CastMatrix, &[Value::f64(2.0)], &c).unwrap();
        assert_eq!(cm[0].as_matrix().unwrap().shape(), (1, 1));
    }

    #[test]
    fn reshape_preserves_row_major_order() {
        let c = ctx();
        let x = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let out =
            execute_kernel(&Op::Reshape, &[x.clone(), Value::i64(3), Value::i64(2)], &c).unwrap();
        assert_eq!(
            out[0].as_matrix().unwrap().data(),
            &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]
        );
        assert!(execute_kernel(&Op::Reshape, &[x, Value::i64(4), Value::i64(2)], &c).is_err());
    }

    #[test]
    fn lists_and_concat() {
        let c = ctx();
        let l = execute_kernel(&Op::ListNew, &[Value::f64(1.0), Value::str("a")], &c).unwrap();
        let got = execute_kernel(&Op::ListGet, &[l[0].clone(), Value::i64(2)], &c).unwrap();
        assert_eq!(got[0], Value::str("a"));
        assert!(execute_kernel(&Op::ListGet, &[l[0].clone(), Value::i64(3)], &c).is_err());
        let s = execute_kernel(&Op::Concat, &[Value::str("x="), Value::f64(2.0)], &c).unwrap();
        assert_eq!(s[0], Value::str("x=2"));
    }

    #[test]
    fn interpreter_only_ops_are_rejected() {
        let c = ctx();
        assert!(execute_kernel(&Op::Print, &[Value::f64(1.0)], &c).is_err());
        assert!(execute_kernel(&Op::FCall("f".into()), &[], &c).is_err());
    }

    #[test]
    fn arity_is_validated() {
        let c = ctx();
        assert!(execute_kernel(&Op::MatMult, &[m(1, 1, &[1.0])], &c).is_err());
        assert!(execute_kernel(&Op::Solve, &[], &c).is_err());
    }
}
