//! Program representation (paper §2.2, "program compilation"): a hierarchy of
//! program blocks whose leaves are instruction sequences, plus a function
//! registry. Control flow and variable scoping are handled by the runtime
//! itself, not a host language.

use crate::instr::{Instr, Operand};
use std::collections::HashMap;

/// A tiny straight-line expression program: instructions plus the operand
/// holding the result. Used for `if`/`while` predicates and loop bounds,
/// which SystemDS compiles into their own DAGs.
#[derive(Debug, Clone)]
pub struct ExprProg {
    /// Instructions evaluated in order (temporaries live in the symbol table).
    pub instrs: Vec<Instr>,
    /// The operand that carries the result after execution.
    pub result: Operand,
}

impl ExprProg {
    /// A literal expression with no instructions.
    pub fn lit(op: Operand) -> Self {
        ExprProg {
            instrs: Vec::new(),
            result: op,
        }
    }

    /// A plain variable reference.
    pub fn var(name: impl Into<String>) -> Self {
        Self::lit(Operand::Var(name.into()))
    }

    /// Instructions followed by a result operand.
    pub fn new(instrs: Vec<Instr>, result: Operand) -> Self {
        ExprProg { instrs, result }
    }
}

/// A program block (paper Fig 1: operations, control-flow blocks, functions).
#[derive(Debug, Clone)]
pub enum Block {
    /// Straight-line instruction sequence.
    Basic {
        /// Stable block ID (assigned by the compiler pass).
        id: u64,
        instrs: Vec<Instr>,
    },
    /// Conditional.
    If {
        id: u64,
        /// Branch position inside a dedup-eligible body, assigned depth-first
        /// (paper §3.2 "Loop Deduplication Setup"); `None` outside dedup scope.
        branch_id: Option<u32>,
        pred: ExprProg,
        then_body: Vec<Block>,
        else_body: Vec<Block>,
    },
    /// Counted loop.
    For {
        id: u64,
        var: String,
        from: ExprProg,
        to: ExprProg,
        by: ExprProg,
        body: Vec<Block>,
        /// Set by the compiler when the body qualifies for lineage
        /// deduplication (last-level, ≤63 branches).
        dedup_ok: bool,
        /// True when the block is deterministic (multi-level reuse candidate).
        deterministic: bool,
        /// Live-out variables of the body (written and possibly read after
        /// the loop or carried into the next iteration); only these receive
        /// dedup items — dead temporaries are dropped from the trace.
        dedup_outputs: Vec<String>,
    },
    /// Condition-controlled loop.
    While {
        id: u64,
        pred: ExprProg,
        body: Vec<Block>,
        dedup_ok: bool,
        deterministic: bool,
        dedup_outputs: Vec<String>,
    },
    /// Task-parallel counted loop (paper §3.3): iterations execute on worker
    /// threads with worker-local lineage and a result merge.
    ParFor {
        id: u64,
        var: String,
        from: ExprProg,
        to: ExprProg,
        by: ExprProg,
        body: Vec<Block>,
        /// Result variables merged across workers (filled by the compiler:
        /// variables that exist before the loop and are updated inside).
        results: Vec<String>,
        /// Worker threads; `None` picks a default.
        degree: Option<usize>,
        /// Byte span of the `parfor` header in the original script (set by
        /// the lowering; `None` for hand-built programs).
        span: Option<lima_core::Span>,
    },
}

impl Block {
    /// Basic block constructor (ID assigned later by the compiler).
    pub fn basic(instrs: Vec<Instr>) -> Block {
        Block::Basic { id: 0, instrs }
    }

    /// If/else constructor.
    pub fn if_else(pred: ExprProg, then_body: Vec<Block>, else_body: Vec<Block>) -> Block {
        Block::If {
            id: 0,
            branch_id: None,
            pred,
            then_body,
            else_body,
        }
    }

    /// For-loop constructor.
    pub fn for_loop(
        var: impl Into<String>,
        from: ExprProg,
        to: ExprProg,
        by: ExprProg,
        body: Vec<Block>,
    ) -> Block {
        Block::For {
            id: 0,
            var: var.into(),
            from,
            to,
            by,
            body,
            dedup_ok: false,
            deterministic: false,
            dedup_outputs: Vec::new(),
        }
    }

    /// While-loop constructor.
    pub fn while_loop(pred: ExprProg, body: Vec<Block>) -> Block {
        Block::While {
            id: 0,
            pred,
            body,
            dedup_ok: false,
            deterministic: false,
            dedup_outputs: Vec::new(),
        }
    }

    /// ParFor constructor.
    pub fn parfor(
        var: impl Into<String>,
        from: ExprProg,
        to: ExprProg,
        by: ExprProg,
        body: Vec<Block>,
    ) -> Block {
        Block::ParFor {
            id: 0,
            var: var.into(),
            from,
            to,
            by,
            body,
            results: Vec::new(),
            degree: None,
            span: None,
        }
    }

    /// Attaches a source span to a `ParFor` header (no-op for other blocks).
    pub fn with_span(mut self, s: Option<lima_core::Span>) -> Block {
        if let Block::ParFor { span, .. } = &mut self {
            *span = s;
        }
        self
    }

    /// The block's stable ID.
    pub fn id(&self) -> u64 {
        match self {
            Block::Basic { id, .. }
            | Block::If { id, .. }
            | Block::For { id, .. }
            | Block::While { id, .. }
            | Block::ParFor { id, .. } => *id,
        }
    }
}

/// A script-level function (paper Example 1: `gridSearch`, `lm`, `lmDS`, ...).
#[derive(Debug, Clone)]
pub struct Function {
    pub name: String,
    /// Parameter names, bound positionally at call sites.
    pub params: Vec<String>,
    /// Output variable names returned to the caller.
    pub outputs: Vec<String>,
    pub body: Vec<Block>,
    /// Set by the compiler: no non-deterministic ops or calls, no side
    /// effects — the function qualifies for multi-level reuse (memoization).
    pub deterministic: bool,
    /// Set by the compiler: body qualifies for function-level lineage
    /// deduplication (no loops or nested calls, ≤63 branches).
    pub dedup_ok: bool,
    /// Live-out variables of the body for function dedup (outputs + carried).
    pub dedup_outputs: Vec<String>,
}

impl Function {
    /// New function; analysis flags are filled in by the compiler.
    pub fn new(
        name: impl Into<String>,
        params: Vec<String>,
        outputs: Vec<String>,
        body: Vec<Block>,
    ) -> Self {
        Function {
            name: name.into(),
            params,
            outputs,
            body,
            deterministic: false,
            dedup_ok: false,
            dedup_outputs: Vec::new(),
        }
    }
}

/// A complete program: top-level blocks plus the function registry.
#[derive(Debug, Clone, Default)]
pub struct Program {
    pub body: Vec<Block>,
    pub functions: HashMap<String, Function>,
    /// Script fingerprint making block IDs stable across compilations of the
    /// same source (used in block-level cache keys).
    pub fingerprint: u64,
    /// Static-analysis counters from the compiler passes, folded into
    /// `LimaStats` when the program executes.
    pub analysis: crate::compiler::CompileReport,
}

impl Program {
    /// Program from top-level blocks.
    pub fn new(body: Vec<Block>) -> Self {
        Program {
            body,
            functions: HashMap::new(),
            fingerprint: 0,
            analysis: crate::compiler::CompileReport::default(),
        }
    }

    /// Registers a function.
    pub fn add_function(&mut self, f: Function) {
        self.functions.insert(f.name.clone(), f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{Instr, Op};

    #[test]
    fn constructors_build_expected_shapes() {
        let b = Block::basic(vec![Instr::new(Op::Assign, vec![Operand::f64(1.0)], "x")]);
        assert_eq!(b.id(), 0);
        let f = Block::for_loop(
            "i",
            ExprProg::lit(Operand::i64(1)),
            ExprProg::lit(Operand::i64(3)),
            ExprProg::lit(Operand::i64(1)),
            vec![b],
        );
        match &f {
            Block::For { var, dedup_ok, .. } => {
                assert_eq!(var, "i");
                assert!(!dedup_ok);
            }
            _ => panic!(),
        }
        let w = Block::while_loop(ExprProg::var("c"), vec![]);
        assert!(matches!(w, Block::While { .. }));
        let p = Block::parfor(
            "i",
            ExprProg::lit(Operand::i64(1)),
            ExprProg::lit(Operand::i64(2)),
            ExprProg::lit(Operand::i64(1)),
            vec![],
        );
        assert!(matches!(p, Block::ParFor { .. }));
        let i = Block::if_else(ExprProg::var("c"), vec![], vec![]);
        assert!(matches!(
            i,
            Block::If {
                branch_id: None,
                ..
            }
        ));
    }

    #[test]
    fn program_registers_functions() {
        let mut p = Program::new(vec![]);
        p.add_function(Function::new(
            "lm",
            vec!["X".into()],
            vec!["B".into()],
            vec![],
        ));
        assert!(p.functions.contains_key("lm"));
        assert_eq!(p.functions["lm"].params, vec!["X"]);
        assert!(!p.functions["lm"].deterministic);
    }
}
