//! # lima-runtime
//!
//! A miniature ML-system runtime in the style of SystemDS (paper §2.2):
//! programs are hierarchies of program blocks whose leaves are sequences of
//! opcode instructions, executed by an interpreter over a symbol table of
//! live variables.
//!
//! LIMA integrates here exactly as in the paper: lineage is traced in
//! `preprocess` *before* each instruction executes, which is what enables
//! probing the reuse cache and skipping the computation entirely; loops and
//! functions drive lineage deduplication; `parfor` runs worker-local tracing
//! against the shared thread-safe cache; fused operators expand compile-time
//! lineage patches.

pub mod compiler;
pub mod context;
pub mod error;
pub mod fused;
pub mod governor;
pub mod instr;
pub mod interp;
pub mod kernels;
pub mod lva;
pub mod parfor;
pub mod program;
pub mod reconstruct;
pub mod repair;
pub mod session;

pub use context::{DataRegistry, ExecutionContext};
pub use error::{Result, RuntimeError};
pub use governor::SessionUsage;
pub use instr::{Instr, Op, Operand};
pub use interp::execute_program;
pub use program::{Block, ExprProg, Function, Program};
pub use repair::lineage_repairer;
pub use session::{SessionCtl, SessionHandle, SessionOptions, SessionOutcome, SessionPool};
