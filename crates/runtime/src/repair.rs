//! Lineage-driven repair (self-healing persistence): reconstructs the
//! producing program for a corrupt persisted entry from its serialized
//! lineage and recomputes the value in an isolated, cacheless context.
//!
//! The hook is installed automatically by [`ExecutionContext::new`] and
//! [`SessionPool::new`] when persistence is enabled and the configuration
//! does not already carry a custom hook, so every runtime-driven cache gets
//! repair-on-corruption without explicit wiring. Repairs are bounded by the
//! cache's `RetryPolicy`/`RetryBudget` (see `PersistOptions`), so a
//! pathological entry cannot monopolise a recovery or scrub pass.

use crate::context::{DataRegistry, ExecutionContext};
use crate::reconstruct::recompute;
use lima_core::cache::persist::RepairHook;
use lima_core::config::LimaConfig;
use lima_core::lineage::LinRef;
use lima_matrix::Value;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Builds the runtime's standard repair hook: recompute-from-lineage in a
/// fresh cacheless context. Panics inside kernels are contained and surfaced
/// as repair errors so a poisoned entry is quarantined instead of taking the
/// scrubber (or recovery) down with it.
///
/// Entries whose lineage is closed (literals, `rand` with captured seeds)
/// always repair; entries with `read` leaves additionally need the serving
/// [`DataRegistry`] — see [`registry_repairer`].
pub fn lineage_repairer() -> RepairHook {
    registry_repairer(Arc::new(DataRegistry::new()))
}

/// Like [`lineage_repairer`], but `read` leaves in the reconstructed program
/// are served from `data`. This is the hook contexts and session pools
/// install: they pass their own registry, so anything registered before a
/// scrub- or fetch-time repair is available to the recomputation.
pub fn registry_repairer(data: Arc<DataRegistry>) -> RepairHook {
    RepairHook::new(move |root: &LinRef| repair_once(root, &data))
}

fn repair_once(root: &LinRef, data: &Arc<DataRegistry>) -> Result<Value, String> {
    let root = root.clone();
    let data = Arc::clone(data);
    let out = catch_unwind(AssertUnwindSafe(move || {
        let mut ctx = ExecutionContext::with_cache(LimaConfig::base(), None);
        ctx.data = data;
        recompute(&root, &mut ctx).map_err(|e| e.to_string())
    }));
    match out {
        Ok(r) => r,
        Err(panic) => Err(panic_message(panic.as_ref())),
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        format!("repair panicked: {s}")
    } else if let Some(s) = panic.downcast_ref::<String>() {
        format!("repair panicked: {s}")
    } else {
        "repair panicked".to_string()
    }
}

/// Installs [`registry_repairer`] over `data` into a config when persistence
/// is enabled and no hook was set explicitly. Returns the (possibly updated)
/// config.
pub fn with_default_repair(config: LimaConfig, data: &Arc<DataRegistry>) -> LimaConfig {
    if config.persist_enabled && config.repair.is_none() {
        config.with_repair(registry_repairer(Arc::clone(data)))
    } else {
        config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lima_core::lineage::LineageItem;

    #[test]
    fn repairer_recomputes_scalar_expression() {
        let a = LineageItem::literal("f:4");
        let b = LineageItem::literal("f:2.5");
        let root = LineageItem::op("+", vec![a, b]);
        let hook = lineage_repairer();
        let got = hook.repair(&root).unwrap();
        assert_eq!(got.as_f64().unwrap(), 6.5);
    }

    #[test]
    fn repairer_reports_unreconstructible_lineage_as_error() {
        // A bare placeholder has no producing operation to replay.
        let ph = LineageItem::placeholder(7);
        let hook = lineage_repairer();
        assert!(hook.repair(&ph).is_err());
    }

    #[test]
    fn default_repair_installs_only_with_persistence() {
        let data = Arc::new(DataRegistry::new());
        let plain = with_default_repair(LimaConfig::lima(), &data);
        assert!(plain.repair.is_none());
        let dir = std::env::temp_dir().join(format!("lima-repair-{}", std::process::id()));
        let persisted = with_default_repair(LimaConfig::lima().with_persistence(&dir), &data);
        assert!(persisted.repair.is_some());
    }

    #[test]
    fn registry_repairer_serves_read_leaves_from_shared_registry() {
        let data = Arc::new(DataRegistry::new());
        let hook = registry_repairer(Arc::clone(&data));
        let root = LineageItem::op(
            "+",
            vec![
                LineageItem::op_with_data("read", "ds", vec![]),
                LineageItem::literal("f:1.5"),
            ],
        );
        // Before the dataset is registered the repair fails cleanly...
        assert!(hook.repair(&root).is_err());
        // ...and succeeds once the live registry can serve the leaf.
        data.register("ds", Value::f64(2.0));
        let got = hook.repair(&root).unwrap();
        assert_eq!(got.as_f64().unwrap(), 3.5);
    }
}
