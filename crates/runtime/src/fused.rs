//! Fused cell-wise operators (paper §3.3, "Operator Fusion").
//!
//! A fused operator evaluates a chain of element-wise operations in a single
//! pass without materializing intermediates. Fusion loses per-operator
//! semantics, so LIMA constructs the operator's *lineage patch* at compile
//! time (placeholder leaves for the fused inputs) and expands it into the
//! lineage DAG at runtime — the trace is indistinguishable from the unfused
//! execution, so reuse keeps working across fused/unfused plans.

use crate::error::{Result, RuntimeError};
use lima_core::lineage::dedup::DedupPatch;
use lima_core::lineage::item::{LinRef, LineageItem};
use lima_matrix::ops::BinOp;
use lima_matrix::{DenseMatrix, Value};
use std::sync::Arc;

/// Source of one side of a fused step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FusedArg {
    /// The running accumulator (result of the previous step; for the first
    /// step this is invalid — steps must start from inputs/constants).
    Acc,
    /// Fused input `k` (matrix, broadcast scalar, or scalar value).
    Input(usize),
    /// A compile-time constant.
    Const(f64),
}

/// One element-wise step of a fused chain: `acc = lhs ⊕ rhs`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FusedStep {
    pub op: BinOp,
    pub lhs: FusedArg,
    pub rhs: FusedArg,
}

/// A compiled fused cell-wise operator.
#[derive(Debug)]
pub struct FusedSpec {
    /// Opcode (`spoof<N>`), unique per fused plan.
    pub opcode: String,
    /// Number of fused inputs.
    pub num_inputs: usize,
    /// The step chain.
    pub steps: Vec<FusedStep>,
    /// Compile-time lineage patch (output name `"out"`), expanded at trace
    /// time.
    patch: Arc<DedupPatch>,
}

impl FusedSpec {
    /// Compiles a fused cell-wise chain. The first step must not reference
    /// `Acc`; later steps usually do.
    pub fn cellwise(name: &str, num_inputs: usize, steps: Vec<FusedStep>) -> Result<Arc<Self>> {
        if steps.is_empty() {
            return Err(RuntimeError::BadOperands {
                op: "fused".into(),
                msg: "empty step chain".into(),
            });
        }
        if steps[0].lhs == FusedArg::Acc || steps[0].rhs == FusedArg::Acc {
            return Err(RuntimeError::BadOperands {
                op: "fused".into(),
                msg: "first step cannot reference the accumulator".into(),
            });
        }
        // Build the lineage patch mirroring the step chain.
        let placeholders: Vec<LinRef> = (0..num_inputs as u32)
            .map(LineageItem::placeholder)
            .collect();
        let arg_item = |arg: &FusedArg, acc: &Option<LinRef>| -> Result<LinRef> {
            match arg {
                FusedArg::Acc => acc.clone().ok_or_else(|| RuntimeError::BadOperands {
                    op: "fused".into(),
                    msg: "accumulator used before defined".into(),
                }),
                FusedArg::Input(k) => {
                    placeholders
                        .get(*k)
                        .cloned()
                        .ok_or_else(|| RuntimeError::BadOperands {
                            op: "fused".into(),
                            msg: format!("input {k} out of range"),
                        })
                }
                FusedArg::Const(c) => Ok(LineageItem::literal(format!("f:{c}"))),
            }
        };
        let mut acc: Option<LinRef> = None;
        for step in &steps {
            let lhs = arg_item(&step.lhs, &acc)?;
            let rhs = arg_item(&step.rhs, &acc)?;
            acc = Some(LineageItem::op(step.op.opcode(), vec![lhs, rhs]));
        }
        let root = acc.ok_or_else(|| RuntimeError::BadOperands {
            op: "fused".into(),
            msg: "empty step chain".into(),
        })?;
        let patch = DedupPatch::new(
            format!("spoof:{name}"),
            0,
            num_inputs,
            vec![("out".into(), root)],
        );
        Ok(Arc::new(FusedSpec {
            opcode: format!("{}{name}", lima_core::opcodes::FUSED_PREFIX),
            num_inputs,
            steps,
            patch,
        }))
    }

    /// Expands the compile-time lineage patch over the actual input lineage
    /// (paper: "during runtime, we expand the lineage graph by these lineage
    /// patches").
    pub fn expand_lineage(&self, inputs: &[LinRef]) -> LinRef {
        self.patch.expand("out", inputs)
    }

    /// Executes the fused chain in one pass over the cells.
    pub fn execute(&self, inputs: &[Value]) -> Result<DenseMatrix> {
        if inputs.len() != self.num_inputs {
            return Err(RuntimeError::BadOperands {
                op: self.opcode.clone(),
                msg: format!("expected {} inputs, got {}", self.num_inputs, inputs.len()),
            });
        }
        // Resolve inputs: matrices must agree on shape; scalars broadcast.
        let mut shape: Option<(usize, usize)> = None;
        enum In<'a> {
            Mat(&'a DenseMatrix),
            Scalar(f64),
        }
        let mut resolved = Vec::with_capacity(inputs.len());
        for v in inputs {
            match v {
                Value::Matrix(m) if m.shape() == (1, 1) => resolved.push(In::Scalar(m.get(0, 0))),
                Value::Matrix(m) => {
                    match shape {
                        None => shape = Some(m.shape()),
                        Some(s) if s == m.shape() => {}
                        Some(s) => {
                            return Err(RuntimeError::BadOperands {
                                op: self.opcode.clone(),
                                msg: format!("shape mismatch {:?} vs {:?}", s, m.shape()),
                            })
                        }
                    }
                    resolved.push(In::Mat(m));
                }
                other => resolved.push(In::Scalar(other.as_f64().map_err(RuntimeError::Kernel)?)),
            }
        }
        let (rows, cols) = shape.ok_or_else(|| RuntimeError::BadOperands {
            op: self.opcode.clone(),
            msg: "fused chain needs at least one matrix input".into(),
        })?;
        let mut out = DenseMatrix::zeros(rows, cols);
        let data = out.data_mut();
        for (idx, cell) in data.iter_mut().enumerate() {
            let fetch = |arg: &FusedArg, acc: f64| -> f64 {
                match arg {
                    FusedArg::Acc => acc,
                    FusedArg::Const(c) => *c,
                    FusedArg::Input(k) => match &resolved[*k] {
                        In::Mat(m) => m.data()[idx],
                        In::Scalar(s) => *s,
                    },
                }
            };
            let mut acc = 0.0;
            for step in &self.steps {
                acc = step.op.apply(fetch(&step.lhs, acc), fetch(&step.rhs, acc));
            }
            *cell = acc;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lima_core::lineage::item::lineage_eq;

    /// The Fig-6 micro-benchmark kernel: `((X+X)*i - X) / (i+1)`.
    fn fig6_spec() -> Arc<FusedSpec> {
        FusedSpec::cellwise(
            "fig6",
            2, // X, i
            vec![
                FusedStep {
                    op: BinOp::Add,
                    lhs: FusedArg::Input(0),
                    rhs: FusedArg::Input(0),
                },
                FusedStep {
                    op: BinOp::Mul,
                    lhs: FusedArg::Acc,
                    rhs: FusedArg::Input(1),
                },
                FusedStep {
                    op: BinOp::Sub,
                    lhs: FusedArg::Acc,
                    rhs: FusedArg::Input(0),
                },
                FusedStep {
                    op: BinOp::Div,
                    lhs: FusedArg::Acc,
                    rhs: FusedArg::Const(1.0),
                },
            ],
        )
        .unwrap()
    }

    #[test]
    fn fused_chain_matches_unfused_computation() {
        let spec = fig6_spec();
        let x = DenseMatrix::from_fn(4, 3, |i, j| (i * 3 + j) as f64 - 5.0);
        let i = 3.0;
        let got = spec
            .execute(&[Value::matrix(x.clone()), Value::f64(i)])
            .unwrap();
        let expect = DenseMatrix::from_fn(4, 3, |r, c| {
            let v = x.get(r, c);
            ((v + v) * i - v) / 1.0
        });
        assert!(got.approx_eq(&expect, 1e-12));
    }

    #[test]
    fn lineage_expansion_matches_unfused_trace() {
        let spec = fig6_spec();
        let x_lin = LineageItem::op_with_data("read", "X", vec![]);
        let i_lin = LineageItem::literal("f:3");
        let fused = spec.expand_lineage(&[x_lin.clone(), i_lin.clone()]);
        // Hand-built unfused trace.
        let add = LineageItem::op("+", vec![x_lin.clone(), x_lin.clone()]);
        let mul = LineageItem::op("*", vec![add, i_lin]);
        let sub = LineageItem::op("-", vec![mul, x_lin]);
        let div = LineageItem::op("/", vec![sub, LineageItem::literal("f:1")]);
        assert!(lineage_eq(&fused, &div));
    }

    #[test]
    fn invalid_chains_are_rejected() {
        assert!(FusedSpec::cellwise("bad", 1, vec![]).is_err());
        assert!(FusedSpec::cellwise(
            "bad",
            1,
            vec![FusedStep {
                op: BinOp::Add,
                lhs: FusedArg::Acc,
                rhs: FusedArg::Input(0),
            }],
        )
        .is_err());
        assert!(FusedSpec::cellwise(
            "bad",
            1,
            vec![FusedStep {
                op: BinOp::Add,
                lhs: FusedArg::Input(0),
                rhs: FusedArg::Input(5),
            }],
        )
        .is_err());
    }

    #[test]
    fn execution_validates_inputs() {
        let spec = fig6_spec();
        let x = Value::matrix(DenseMatrix::zeros(2, 2));
        assert!(spec.execute(std::slice::from_ref(&x)).is_err()); // arity
        let y = Value::matrix(DenseMatrix::zeros(3, 3));
        assert!(spec.execute(&[x.clone(), y]).is_err()); // shape mismatch
        assert!(spec.execute(&[Value::f64(1.0), Value::f64(2.0)]).is_err()); // no matrix
        assert!(spec.execute(&[x, Value::str("s")]).is_err()); // non-numeric
    }

    #[test]
    fn scalar_matrix_inputs_broadcast() {
        let spec = fig6_spec();
        let x = DenseMatrix::filled(2, 2, 4.0);
        let i_mat = Value::matrix(DenseMatrix::filled(1, 1, 2.0));
        let got = spec.execute(&[Value::matrix(x), i_mat]).unwrap();
        // ((4+4)*2 - 4)/1 = 12
        assert!(got.approx_eq(&DenseMatrix::filled(2, 2, 12.0), 1e-12));
    }
}
