//! Compilation passes over programs (paper §2.2, §3.2 setup, §4.4):
//!
//! 1. **Block/branch ID assignment** — stable IDs for block-level cache keys
//!    and depth-first branch IDs for dedup path bitvectors.
//! 2. **Determinism analysis** — functions/blocks with no system-seeded
//!    randomness and no side effects qualify for multi-level reuse.
//! 3. **Dedup eligibility** — last-level loops/functions (no nested loops or
//!    calls) with ≤ 63 branches qualify for lineage deduplication.
//! 4. **Unmarking** (compiler assistance) — instructions producing
//!    loop-carried variables never interact with the cache.
//! 5. **Reuse-aware rewrites** (compiler assistance) — e.g. splitting
//!    `tsmm(cbind(X, d))` inside loops to avoid materializing the cbind
//!    (the `LIMA-CA` configuration of Fig 7(a)).

use crate::instr::{Instr, Op, Operand};
use crate::lva;
use crate::program::{Block, ExprProg, Program};
use lima_core::LimaConfig;
use lima_matrix::ops::TsmmSide;
use lima_matrix::ScalarValue;
use std::collections::{HashMap, HashSet};

/// Runs all compilation passes in place.
pub fn compile(program: &mut Program, config: &LimaConfig) {
    assign_ids(program);
    analyze_determinism(program);
    analyze_dedup(program);
    compute_dedup_outputs(program);
    if config.compiler_assist {
        unmark_loop_carried(program);
        if config.reuse.any() {
            rewrite_tsmm_cbind(program);
            rewrite_speculative_projection(program);
        }
    }
}

// ---------------------------------------------------------------- block IDs

fn assign_ids(program: &mut Program) {
    let mut next = 1u64;
    assign_ids_blocks(&mut program.body, &mut next);
    let mut names: Vec<String> = program.functions.keys().cloned().collect();
    names.sort();
    for name in names {
        let f = program.functions.get_mut(&name).expect("known function");
        assign_ids_blocks(&mut f.body, &mut next);
    }
}

fn assign_ids_blocks(blocks: &mut [Block], next: &mut u64) {
    for b in blocks {
        match b {
            Block::Basic { id, .. } => {
                *id = *next;
                *next += 1;
            }
            Block::If {
                id,
                then_body,
                else_body,
                ..
            } => {
                *id = *next;
                *next += 1;
                assign_ids_blocks(then_body, next);
                assign_ids_blocks(else_body, next);
            }
            Block::For { id, body, .. } | Block::While { id, body, .. } => {
                *id = *next;
                *next += 1;
                assign_ids_blocks(body, next);
            }
            Block::ParFor {
                id, body, results, ..
            } => {
                *id = *next;
                *next += 1;
                assign_ids_blocks(body, next);
                let _ = results;
            }
        }
    }
}

// ------------------------------------------------------------- determinism

/// True when the instruction is deterministic and side-effect free, given
/// the set of functions currently known deterministic.
fn instr_deterministic(i: &Instr, det_fns: &HashSet<String>) -> bool {
    if i.op.has_side_effects() {
        return false;
    }
    if let Op::FCall(name) = &i.op {
        return det_fns.contains(name);
    }
    if i.op.is_random() {
        // Deterministic only with an explicit non-negative seed (system
        // seeds make repeated executions differ).
        return match i.inputs.last() {
            Some(Operand::Lit(ScalarValue::I64(s))) => *s >= 0,
            Some(Operand::Lit(ScalarValue::F64(s))) => *s >= 0.0,
            _ => false,
        };
    }
    true
}

fn expr_deterministic(e: &ExprProg, det_fns: &HashSet<String>) -> bool {
    e.instrs.iter().all(|i| instr_deterministic(i, det_fns))
}

/// True when all instructions in `blocks` are deterministic.
pub fn blocks_deterministic(blocks: &[Block], det_fns: &HashSet<String>) -> bool {
    blocks.iter().all(|b| match b {
        Block::Basic { instrs, .. } => instrs.iter().all(|i| instr_deterministic(i, det_fns)),
        Block::If {
            pred,
            then_body,
            else_body,
            ..
        } => {
            expr_deterministic(pred, det_fns)
                && blocks_deterministic(then_body, det_fns)
                && blocks_deterministic(else_body, det_fns)
        }
        Block::For {
            from, to, by, body, ..
        }
        | Block::ParFor {
            from, to, by, body, ..
        } => {
            expr_deterministic(from, det_fns)
                && expr_deterministic(to, det_fns)
                && expr_deterministic(by, det_fns)
                && blocks_deterministic(body, det_fns)
        }
        Block::While { pred, body, .. } => {
            expr_deterministic(pred, det_fns) && blocks_deterministic(body, det_fns)
        }
    })
}

fn analyze_determinism(program: &mut Program) {
    // Fixpoint from "nothing is deterministic": monotone and safe under
    // recursion.
    let mut det: HashSet<String> = HashSet::new();
    loop {
        let mut changed = false;
        for (name, f) in &program.functions {
            if !det.contains(name) && blocks_deterministic(&f.body, &det) {
                det.insert(name.clone());
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    for (name, f) in program.functions.iter_mut() {
        f.deterministic = det.contains(name);
    }
    let det2 = det.clone();
    mark_block_determinism(&mut program.body, &det2);
    for f in program.functions.values_mut() {
        mark_block_determinism(&mut f.body, &det2);
    }
}

fn mark_block_determinism(blocks: &mut [Block], det_fns: &HashSet<String>) {
    for b in blocks {
        match b {
            Block::For {
                body,
                deterministic,
                ..
            } => {
                *deterministic = blocks_deterministic(body, det_fns);
                mark_block_determinism(body, det_fns);
            }
            Block::While {
                body,
                deterministic,
                ..
            } => {
                *deterministic = blocks_deterministic(body, det_fns);
                mark_block_determinism(body, det_fns);
            }
            Block::If {
                then_body,
                else_body,
                ..
            } => {
                mark_block_determinism(then_body, det_fns);
                mark_block_determinism(else_body, det_fns);
            }
            Block::ParFor { body, results, .. } => {
                // Also fill parfor result variables: variables written in the
                // body that exist before the loop — approximated as writes
                // that are also live-in (carried) or left-indexed results.
                *results = parfor_results(body);
                mark_block_determinism(body, det_fns);
            }
            Block::Basic { .. } => {}
        }
    }
}

/// Result variables of a parfor body: variables updated via left-indexing or
/// read-then-written (carried) — these must be merged across workers.
fn parfor_results(body: &[Block]) -> Vec<String> {
    let live_in = lva::live_in(body);
    let writes = lva::writes(body);
    writes.into_iter().filter(|w| live_in.contains(w)).collect()
}

// ------------------------------------------------------------------- dedup

fn analyze_dedup(program: &mut Program) {
    analyze_dedup_blocks(&mut program.body);
    for f in program.functions.values_mut() {
        analyze_dedup_blocks(&mut f.body);
        // Function dedup: last-level bodies (no loops, no calls) only.
        if body_is_last_level(&f.body) {
            let branches = assign_branch_ids(&mut f.body, 0);
            f.dedup_ok = branches <= 63;
            if !f.dedup_ok {
                clear_branch_ids(&mut f.body);
            }
        }
    }
}

fn analyze_dedup_blocks(blocks: &mut [Block]) {
    for b in blocks {
        match b {
            Block::For { body, dedup_ok, .. } | Block::While { body, dedup_ok, .. } => {
                if body_is_last_level(body) {
                    let branches = assign_branch_ids(body, 0);
                    *dedup_ok = branches <= 63;
                    if !*dedup_ok {
                        clear_branch_ids(body);
                    }
                } else {
                    analyze_dedup_blocks(body);
                }
            }
            Block::If {
                then_body,
                else_body,
                ..
            } => {
                analyze_dedup_blocks(then_body);
                analyze_dedup_blocks(else_body);
            }
            Block::ParFor { body, .. } => analyze_dedup_blocks(body),
            Block::Basic { .. } => {}
        }
    }
}

/// Last-level body: only basic blocks and conditionals, and no function
/// calls (paper: "functions that do not contain loops or other function
/// calls", and last-level loops).
fn body_is_last_level(blocks: &[Block]) -> bool {
    blocks.iter().all(|b| match b {
        Block::Basic { instrs, .. } => !instrs.iter().any(|i| matches!(i.op, Op::FCall(_))),
        Block::If {
            pred,
            then_body,
            else_body,
            ..
        } => {
            !pred.instrs.iter().any(|i| matches!(i.op, Op::FCall(_)))
                && body_is_last_level(then_body)
                && body_is_last_level(else_body)
        }
        _ => false,
    })
}

/// Assigns branch IDs depth-first (paper §3.2); returns the number of
/// branches.
fn assign_branch_ids(blocks: &mut [Block], mut next: u32) -> u32 {
    for b in blocks {
        if let Block::If {
            branch_id,
            then_body,
            else_body,
            ..
        } = b
        {
            *branch_id = Some(next);
            next += 1;
            next = assign_branch_ids(then_body, next);
            next = assign_branch_ids(else_body, next);
        }
    }
    next
}

fn clear_branch_ids(blocks: &mut [Block]) {
    for b in blocks {
        if let Block::If {
            branch_id,
            then_body,
            else_body,
            ..
        } = b
        {
            *branch_id = None;
            clear_branch_ids(then_body);
            clear_branch_ids(else_body);
        }
    }
}

/// Computes the live-out variable sets that receive dedup items (paper:
/// "we obtain the inputs and outputs of the loop body from live variable
/// analysis"). A written variable is live-out when it is carried into the
/// next iteration or possibly read after the loop; dead temporaries get no
/// dedup items and drop out of the patches entirely.
fn compute_dedup_outputs(program: &mut Program) {
    dedup_outputs_pass(&mut program.body, &std::collections::BTreeSet::new());
    for f in program.functions.values_mut() {
        let outs: std::collections::BTreeSet<String> = f.outputs.iter().cloned().collect();
        if f.dedup_ok {
            let li: std::collections::BTreeSet<String> =
                lva::live_in(&f.body).into_iter().collect();
            f.dedup_outputs = lva::writes(&f.body)
                .into_iter()
                .filter(|w| outs.contains(w) || li.contains(w))
                .collect();
        }
        dedup_outputs_pass(&mut f.body, &outs);
    }
}

fn dedup_outputs_pass(blocks: &mut [Block], after: &std::collections::BTreeSet<String>) {
    // suffix[i] = variables read by blocks[i..] plus `after`.
    let n = blocks.len();
    let mut suffix: Vec<std::collections::BTreeSet<String>> = vec![after.clone(); n + 1];
    for i in (0..n).rev() {
        let mut s = suffix[i + 1].clone();
        s.extend(lva::collect_reads(std::slice::from_ref(&blocks[i])));
        suffix[i] = s;
    }
    for (i, b) in blocks.iter_mut().enumerate() {
        match b {
            Block::For {
                body,
                dedup_ok,
                dedup_outputs,
                ..
            }
            | Block::While {
                body,
                dedup_ok,
                dedup_outputs,
                ..
            } => {
                if *dedup_ok {
                    let li: std::collections::BTreeSet<String> =
                        lva::live_in(body).into_iter().collect();
                    let live_after = &suffix[i + 1];
                    *dedup_outputs = lva::writes(body)
                        .into_iter()
                        .filter(|w| li.contains(w) || live_after.contains(w))
                        .collect();
                }
                // suffix[i] includes this loop's own body reads — the
                // conservative live-after for anything nested (a next
                // iteration may read it).
                let inner = suffix[i].clone();
                dedup_outputs_pass(body, &inner);
            }
            Block::If {
                then_body,
                else_body,
                ..
            } => {
                let inner = suffix[i].clone();
                dedup_outputs_pass(then_body, &inner);
                dedup_outputs_pass(else_body, &inner);
            }
            Block::ParFor { body, .. } => {
                let inner = suffix[i].clone();
                dedup_outputs_pass(body, &inner);
            }
            Block::Basic { .. } => {}
        }
    }
}

// --------------------------------------------------------------- unmarking

fn unmark_loop_carried(program: &mut Program) {
    unmark_blocks(&mut program.body);
    for f in program.functions.values_mut() {
        unmark_blocks(&mut f.body);
    }
}

fn unmark_blocks(blocks: &mut [Block]) {
    for b in blocks {
        match b {
            Block::For { body, .. } | Block::While { body, .. } | Block::ParFor { body, .. } => {
                let carried: HashSet<String> = {
                    let li = lva::live_in(body);
                    let ws = lva::writes(body);
                    li.into_iter().filter(|v| ws.contains(v)).collect()
                };
                unmark_tainted(body, &carried);
                unmark_blocks(body);
            }
            Block::If {
                then_body,
                else_body,
                ..
            } => {
                unmark_blocks(then_body);
                unmark_blocks(else_body);
            }
            Block::Basic { .. } => {}
        }
    }
}

/// Unmarks instructions (transitively) depending on loop-carried variables:
/// their lineage differs in every iteration, so caching them only pollutes
/// the cache (paper §4.4, "Unmarking Intermediates").
fn unmark_tainted(blocks: &mut [Block], carried: &HashSet<String>) {
    let mut tainted: HashSet<String> = carried.clone();
    // Two passes propagate taint through straight-line code and one level of
    // back-edges (the carried set itself covers the loop back-edge).
    for _ in 0..2 {
        taint_pass(blocks, &mut tainted);
    }
    apply_unmark(blocks, &tainted);
}

fn taint_pass(blocks: &[Block], tainted: &mut HashSet<String>) {
    for b in blocks {
        match b {
            Block::Basic { instrs, .. } => {
                for i in instrs {
                    if i.reads().any(|r| tainted.contains(r)) {
                        for w in i.writes() {
                            tainted.insert(w.to_string());
                        }
                    }
                }
            }
            Block::If {
                then_body,
                else_body,
                ..
            } => {
                taint_pass(then_body, tainted);
                taint_pass(else_body, tainted);
            }
            Block::For { body, .. } | Block::While { body, .. } | Block::ParFor { body, .. } => {
                taint_pass(body, tainted);
            }
        }
    }
}

fn apply_unmark(blocks: &mut [Block], tainted: &HashSet<String>) {
    for b in blocks {
        match b {
            Block::Basic { instrs, .. } => {
                for i in instrs {
                    if i.reads().any(|r| tainted.contains(r))
                        || i.writes().any(|w| tainted.contains(w))
                    {
                        i.no_cache = true;
                    }
                }
            }
            Block::If {
                then_body,
                else_body,
                ..
            } => {
                apply_unmark(then_body, tainted);
                apply_unmark(else_body, tainted);
            }
            Block::For { body, .. } | Block::While { body, .. } | Block::ParFor { body, .. } => {
                apply_unmark(body, tainted);
            }
        }
    }
}

// ------------------------------------------------------- reuse-aware rewrite

/// Rewrites `Z = cbind(X, d); W = tsmm(Z)` inside loop bodies (with
/// loop-invariant `X`, loop-local `Z`) into a compensation-style plan that
/// avoids materializing the cbind entirely — the `LIMA-CA` behaviour of
/// Fig 7(a). The split pieces (`tsmm(X)`, `t(X)`) become loop-invariant and
/// are served from the lineage cache after the first iteration.
fn rewrite_tsmm_cbind(program: &mut Program) {
    rewrite_blocks(&mut program.body);
    for f in program.functions.values_mut() {
        rewrite_blocks(&mut f.body);
    }
}

fn rewrite_blocks(blocks: &mut [Block]) {
    for b in blocks {
        match b {
            Block::For { body, .. } | Block::While { body, .. } | Block::ParFor { body, .. } => {
                let writes: HashSet<String> = lva::writes(body).into_iter().collect();
                rewrite_in_loop(body, &writes);
                rewrite_blocks(body);
            }
            Block::If {
                then_body,
                else_body,
                ..
            } => {
                rewrite_blocks(then_body);
                rewrite_blocks(else_body);
            }
            Block::Basic { .. } => {}
        }
    }
}

fn rewrite_in_loop(blocks: &mut [Block], loop_writes: &HashSet<String>) {
    for b in blocks {
        let Block::Basic { id, instrs } = b else {
            continue;
        };
        // Count reads of every variable in this basic block.
        let mut read_counts: HashMap<String, usize> = HashMap::new();
        for i in instrs.iter() {
            for r in i.reads() {
                *read_counts.entry(r.to_string()).or_default() += 1;
            }
        }
        let mut k = 0;
        while k + 1 < instrs.len() {
            let fire = {
                let (a, b) = (&instrs[k], &instrs[k + 1]);
                match (&a.op, &b.op) {
                    (Op::Cbind, Op::Tsmm(TsmmSide::Left)) => {
                        let z = &a.outputs[0];
                        let x = a.inputs[0].as_var();
                        b.inputs.first().and_then(Operand::as_var) == Some(z.as_str())
                            && read_counts.get(z).copied().unwrap_or(0) == 1
                            && x.is_some_and(|x| !loop_writes.contains(x))
                    }
                    _ => false,
                }
            };
            if fire {
                let cbind = instrs[k].clone();
                let tsmm = instrs[k + 1].clone();
                let x = cbind.inputs[0].clone();
                let d = cbind.inputs[1].clone();
                let w = tsmm.outputs[0].clone();
                let t = |s: &str| format!("__ca{id}_{s}");
                let plan = vec![
                    Instr::new(Op::Tsmm(TsmmSide::Left), vec![x.clone()], t("xx")),
                    Instr::new(Op::Transpose, vec![x.clone()], t("xt")),
                    Instr::new(Op::MatMult, vec![Operand::var(t("xt")), d.clone()], t("xd")),
                    Instr::new(Op::Tsmm(TsmmSide::Left), vec![d.clone()], t("dd")),
                    Instr::new(
                        Op::Cbind,
                        vec![Operand::var(t("xx")), Operand::var(t("xd"))],
                        t("top"),
                    ),
                    Instr::new(Op::Transpose, vec![Operand::var(t("xd"))], t("dxt")),
                    Instr::new(
                        Op::Cbind,
                        vec![Operand::var(t("dxt")), Operand::var(t("dd"))],
                        t("bot"),
                    ),
                    Instr::new(
                        Op::Rbind,
                        vec![Operand::var(t("top")), Operand::var(t("bot"))],
                        w,
                    ),
                ];
                instrs.splice(k..k + 2, plan);
                k += 8;
            } else {
                k += 1;
            }
        }
    }
}

// ------------------------------------------- speculative projection rewrite

/// Rewrites `T = Y[, 1:k]; W = X %*% T` into `F = X %*% Y; W = F[, 1:k]`
/// (paper §4.4, second example: "if an outer loop calls PCA for different K,
/// a dedicated rewrite speculatively computes A·evect for more efficient
/// partial reuse"). The full product `F` is loop-invariant across a K sweep,
/// so it is computed once and every projection becomes a cheap slice.
///
/// The rewrite fires only when the slice covers all rows starting at column 1
/// (a prefix projection) and the sliced matrix is not used elsewhere in the
/// block — mirroring the cost-based conservatism the paper describes.
fn rewrite_speculative_projection(program: &mut Program) {
    speculative_blocks(&mut program.body);
    for f in program.functions.values_mut() {
        speculative_blocks(&mut f.body);
    }
}

fn speculative_blocks(blocks: &mut [Block]) {
    for b in blocks {
        match b {
            Block::Basic { id, instrs } => rewrite_projection_in_block(*id, instrs),
            Block::If {
                then_body,
                else_body,
                ..
            } => {
                speculative_blocks(then_body);
                speculative_blocks(else_body);
            }
            Block::For { body, .. } | Block::While { body, .. } | Block::ParFor { body, .. } => {
                speculative_blocks(body);
            }
        }
    }
}

fn rewrite_projection_in_block(id: u64, instrs: &mut Vec<Instr>) {
    let mut read_counts: HashMap<String, usize> = HashMap::new();
    for i in instrs.iter() {
        for r in i.reads() {
            *read_counts.entry(r.to_string()).or_default() += 1;
        }
    }
    let mut k = 0;
    while k + 1 < instrs.len() {
        let fire = {
            let (a, b) = (&instrs[k], &instrs[k + 1]);
            match (&a.op, &b.op) {
                (Op::RightIndex, Op::MatMult) => {
                    // a: T = Y[1:0, 1:cu]  (full rows, column prefix)
                    let t = &a.outputs[0];
                    let full_rows = matches!(
                        (&a.inputs[1], &a.inputs[2]),
                        (
                            Operand::Lit(ScalarValue::I64(1)),
                            Operand::Lit(ScalarValue::I64(0))
                        )
                    );
                    let col_prefix = matches!(&a.inputs[3], Operand::Lit(ScalarValue::I64(1)));
                    full_rows
                        && col_prefix
                        && b.inputs.get(1).and_then(Operand::as_var) == Some(t.as_str())
                        && read_counts.get(t).copied().unwrap_or(0) == 1
                }
                _ => false,
            }
        };
        if fire {
            let slice_i = instrs[k].clone();
            let mm_i = instrs[k + 1].clone();
            let full = format!("__sp{id}_{k}");
            let plan = vec![
                Instr::new(
                    Op::MatMult,
                    vec![mm_i.inputs[0].clone(), slice_i.inputs[0].clone()],
                    full.clone(),
                ),
                Instr::new(
                    Op::RightIndex,
                    vec![
                        Operand::var(full),
                        Operand::i64(1),
                        Operand::i64(0),
                        slice_i.inputs[3].clone(),
                        slice_i.inputs[4].clone(),
                    ],
                    mm_i.outputs[0].clone(),
                ),
            ];
            instrs.splice(k..k + 2, plan);
            k += 2;
        } else {
            k += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::RandDistKind;
    use crate::program::Function;
    use lima_matrix::ops::BinOp;

    fn mm(a: &str, b: &str, out: &str) -> Instr {
        Instr::new(Op::MatMult, vec![Operand::var(a), Operand::var(b)], out)
    }

    fn rand_sys(out: &str) -> Instr {
        Instr::new(
            Op::Rand(RandDistKind::Uniform),
            vec![
                Operand::i64(2),
                Operand::i64(2),
                Operand::f64(0.0),
                Operand::f64(1.0),
                Operand::f64(1.0),
                Operand::i64(-1),
            ],
            out,
        )
    }

    #[test]
    fn ids_are_assigned_and_unique() {
        let mut p = Program::new(vec![
            Block::basic(vec![]),
            Block::if_else(ExprProg::var("c"), vec![Block::basic(vec![])], vec![]),
        ]);
        compile(&mut p, &LimaConfig::default());
        let id0 = p.body[0].id();
        let id1 = p.body[1].id();
        assert_ne!(id0, 0);
        assert_ne!(id0, id1);
    }

    #[test]
    fn determinism_analysis_flags_randomness_and_effects() {
        let mut p = Program::new(vec![]);
        p.add_function(Function::new(
            "pure",
            vec!["X".into()],
            vec!["Y".into()],
            vec![Block::basic(vec![mm("X", "X", "Y")])],
        ));
        p.add_function(Function::new(
            "rng",
            vec![],
            vec!["Y".into()],
            vec![Block::basic(vec![rand_sys("Y")])],
        ));
        p.add_function(Function::new(
            "caller",
            vec![],
            vec!["Y".into()],
            vec![Block::basic(vec![Instr::multi(
                Op::FCall("rng".into()),
                vec![],
                vec!["Y".into()],
            )])],
        ));
        p.add_function(Function::new(
            "printer",
            vec!["X".into()],
            vec!["X".into()],
            vec![Block::basic(vec![Instr::effect(
                Op::Print,
                vec![Operand::var("X")],
            )])],
        ));
        compile(&mut p, &LimaConfig::default());
        assert!(p.functions["pure"].deterministic);
        assert!(!p.functions["rng"].deterministic);
        assert!(!p.functions["caller"].deterministic);
        assert!(!p.functions["printer"].deterministic);
    }

    #[test]
    fn explicit_seed_rand_is_deterministic() {
        let mut p = Program::new(vec![]);
        let mut instr = rand_sys("Y");
        instr.inputs[5] = Operand::i64(42);
        p.add_function(Function::new(
            "seeded",
            vec![],
            vec!["Y".into()],
            vec![Block::basic(vec![instr])],
        ));
        compile(&mut p, &LimaConfig::default());
        assert!(p.functions["seeded"].deterministic);
    }

    #[test]
    fn dedup_eligibility_and_branch_ids() {
        let body = vec![
            Block::basic(vec![mm("G", "p", "t1")]),
            Block::if_else(
                ExprProg::var("c"),
                vec![Block::basic(vec![mm("t1", "p", "p")])],
                vec![Block::basic(vec![mm("p", "t1", "p")])],
            ),
        ];
        let mut p = Program::new(vec![Block::for_loop(
            "i",
            ExprProg::lit(Operand::i64(1)),
            ExprProg::lit(Operand::i64(3)),
            ExprProg::lit(Operand::i64(1)),
            body,
        )]);
        compile(&mut p, &LimaConfig::default());
        match &p.body[0] {
            Block::For { dedup_ok, body, .. } => {
                assert!(dedup_ok);
                match &body[1] {
                    Block::If { branch_id, .. } => assert_eq!(*branch_id, Some(0)),
                    _ => panic!(),
                }
            }
            _ => panic!(),
        }
    }

    #[test]
    fn nested_loops_are_not_last_level() {
        let inner = Block::for_loop(
            "j",
            ExprProg::lit(Operand::i64(1)),
            ExprProg::lit(Operand::i64(2)),
            ExprProg::lit(Operand::i64(1)),
            vec![Block::basic(vec![mm("X", "X", "X")])],
        );
        let mut p = Program::new(vec![Block::for_loop(
            "i",
            ExprProg::lit(Operand::i64(1)),
            ExprProg::lit(Operand::i64(2)),
            ExprProg::lit(Operand::i64(1)),
            vec![inner],
        )]);
        compile(&mut p, &LimaConfig::default());
        match &p.body[0] {
            Block::For { dedup_ok, body, .. } => {
                assert!(!dedup_ok);
                // The inner loop IS last-level.
                match &body[0] {
                    Block::For { dedup_ok, .. } => assert!(dedup_ok),
                    _ => panic!(),
                }
            }
            _ => panic!(),
        }
    }

    #[test]
    fn unmarking_taints_loop_carried_chains() {
        // X = (X + X) * 2 inside a loop: both instructions unmarked;
        // Y = A %*% A is invariant and stays cacheable.
        let body = vec![Block::basic(vec![
            Instr::new(
                Op::Binary(BinOp::Add),
                vec![Operand::var("X"), Operand::var("X")],
                "t",
            ),
            Instr::new(
                Op::Binary(BinOp::Mul),
                vec![Operand::var("t"), Operand::f64(2.0)],
                "X",
            ),
            mm("A", "A", "Y"),
        ])];
        let mut p = Program::new(vec![Block::for_loop(
            "i",
            ExprProg::lit(Operand::i64(1)),
            ExprProg::lit(Operand::i64(3)),
            ExprProg::lit(Operand::i64(1)),
            body,
        )]);
        compile(&mut p, &LimaConfig::default());
        match &p.body[0] {
            Block::For { body, .. } => match &body[0] {
                Block::Basic { instrs, .. } => {
                    assert!(instrs[0].no_cache);
                    assert!(instrs[1].no_cache);
                    assert!(!instrs[2].no_cache);
                }
                _ => panic!(),
            },
            _ => panic!(),
        }
    }

    #[test]
    fn tsmm_cbind_rewrite_fires_in_loops() {
        let body = vec![Block::basic(vec![
            Instr::new(Op::Cbind, vec![Operand::var("X"), Operand::var("d")], "Z"),
            Instr::new(Op::Tsmm(TsmmSide::Left), vec![Operand::var("Z")], "W"),
        ])];
        let mut p = Program::new(vec![Block::for_loop(
            "i",
            ExprProg::lit(Operand::i64(1)),
            ExprProg::lit(Operand::i64(3)),
            ExprProg::lit(Operand::i64(1)),
            body,
        )]);
        compile(&mut p, &LimaConfig::default());
        match &p.body[0] {
            Block::For { body, .. } => match &body[0] {
                Block::Basic { instrs, .. } => {
                    assert_eq!(instrs.len(), 8, "cbind+tsmm replaced by 8-instr plan");
                    assert!(matches!(instrs[0].op, Op::Tsmm(_)));
                    assert!(matches!(instrs.last().unwrap().op, Op::Rbind));
                    assert_eq!(instrs.last().unwrap().outputs[0], "W");
                }
                _ => panic!(),
            },
            _ => panic!(),
        }
    }

    #[test]
    fn speculative_projection_rewrite_fires() {
        // T = Y[, 1:k]; W = X %*% T  ->  F = X %*% Y; W = F[, 1:k]
        let mut p = Program::new(vec![Block::basic(vec![
            Instr::new(
                Op::RightIndex,
                vec![
                    Operand::var("Y"),
                    Operand::i64(1),
                    Operand::i64(0),
                    Operand::i64(1),
                    Operand::var("k"),
                ],
                "T",
            ),
            Instr::new(Op::MatMult, vec![Operand::var("X"), Operand::var("T")], "W"),
        ])]);
        compile(&mut p, &LimaConfig::default());
        match &p.body[0] {
            Block::Basic { instrs, .. } => {
                assert_eq!(instrs.len(), 2);
                assert!(matches!(instrs[0].op, Op::MatMult));
                assert!(matches!(instrs[1].op, Op::RightIndex));
                assert_eq!(instrs[1].outputs[0], "W");
            }
            _ => panic!(),
        }
        // Without compiler assistance nothing changes.
        let mut p2 = Program::new(vec![Block::basic(vec![
            Instr::new(
                Op::RightIndex,
                vec![
                    Operand::var("Y"),
                    Operand::i64(1),
                    Operand::i64(0),
                    Operand::i64(1),
                    Operand::var("k"),
                ],
                "T",
            ),
            Instr::new(Op::MatMult, vec![Operand::var("X"), Operand::var("T")], "W"),
        ])]);
        compile(&mut p2, &LimaConfig::base());
        match &p2.body[0] {
            Block::Basic { instrs, .. } => assert!(matches!(instrs[0].op, Op::RightIndex)),
            _ => panic!(),
        }
    }

    #[test]
    fn speculative_projection_skips_non_prefix_slices() {
        // Row-restricted slice: not a pure column-prefix projection.
        let mut p = Program::new(vec![Block::basic(vec![
            Instr::new(
                Op::RightIndex,
                vec![
                    Operand::var("Y"),
                    Operand::i64(2),
                    Operand::i64(5),
                    Operand::i64(1),
                    Operand::var("k"),
                ],
                "T",
            ),
            Instr::new(Op::MatMult, vec![Operand::var("X"), Operand::var("T")], "W"),
        ])]);
        compile(&mut p, &LimaConfig::default());
        match &p.body[0] {
            Block::Basic { instrs, .. } => assert!(matches!(instrs[0].op, Op::RightIndex)),
            _ => panic!(),
        }
    }

    #[test]
    fn tsmm_cbind_rewrite_skips_when_z_is_reused() {
        let body = vec![Block::basic(vec![
            Instr::new(Op::Cbind, vec![Operand::var("X"), Operand::var("d")], "Z"),
            Instr::new(Op::Tsmm(TsmmSide::Left), vec![Operand::var("Z")], "W"),
            mm("Z", "Z", "V"), // Z read again → rewrite must not fire
        ])];
        let mut p = Program::new(vec![Block::for_loop(
            "i",
            ExprProg::lit(Operand::i64(1)),
            ExprProg::lit(Operand::i64(3)),
            ExprProg::lit(Operand::i64(1)),
            body,
        )]);
        compile(&mut p, &LimaConfig::default());
        match &p.body[0] {
            Block::For { body, .. } => match &body[0] {
                Block::Basic { instrs, .. } => assert_eq!(instrs.len(), 3),
                _ => panic!(),
            },
            _ => panic!(),
        }
    }
}
