//! Compilation passes over programs (paper §2.2, §3.2 setup, §4.4):
//!
//! 1. **Block/branch ID assignment** — stable IDs for block-level cache keys
//!    and depth-first branch IDs for dedup path bitvectors.
//! 2. **Determinism analysis** — every instruction is classified on the
//!    `lima-analysis` [`OpClass`] lattice and classes propagate bottom-up
//!    through the block hierarchy and call graph; only `Deterministic`
//!    functions/blocks qualify for multi-level reuse.
//! 3. **Parfor dependence check** — writes to parfor result variables must
//!    be provably disjoint across iterations (affine index analysis on the
//!    loop variable); racy scripts fail compilation.
//! 4. **Dedup eligibility** — last-level loops/functions (no nested loops or
//!    calls) with ≤ 63 branches qualify for lineage deduplication.
//! 5. **Unmarking** (compiler assistance) — instructions producing
//!    loop-carried variables never interact with the cache.
//! 6. **Reuse-aware rewrites** (compiler assistance) — e.g. splitting
//!    `tsmm(cbind(X, d))` inside loops to avoid materializing the cbind
//!    (the `LIMA-CA` configuration of Fig 7(a)).

use crate::instr::{Instr, Op, Operand};
use crate::lva;
use crate::program::{Block, ExprProg, Program};
use lima_analysis::{
    check_parfor_writes, solve_call_graph, Affine, ClassSource, ParforViolation, ResultWrite,
};
use lima_core::opcodes::{classify_opcode, OpClass};
use lima_core::LimaConfig;
use lima_matrix::ops::{BinOp, TsmmSide};
use lima_matrix::ScalarValue;
use std::collections::{HashMap, HashSet};

/// A program rejected by static analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// A parfor body's writes to a result variable are not provably disjoint
    /// across iterations, so parallel execution could race.
    ParforDependence {
        /// Stable ID of the offending `ParFor` block.
        block_id: u64,
        /// Why disjointness could not be established.
        violation: ParforViolation,
        /// Byte span of the offending write (falling back to the parfor
        /// header) when the program was lowered from source; `None` for
        /// hand-built programs.
        span: Option<lima_core::Span>,
    },
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::ParforDependence {
                block_id,
                violation,
                ..
            } => write!(
                f,
                "parfor (block {block_id}) cannot run in parallel: {violation}"
            ),
        }
    }
}

impl std::error::Error for CompileError {}

/// Counters produced by the static-analysis passes; stored on the program
/// and folded into `LimaStats` when it executes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompileReport {
    /// Instructions newly unmarked (`no_cache`) by the loop-carried taint
    /// pass.
    pub ops_unmarked: u64,
    /// Functions whose class is not `Deterministic` and which are therefore
    /// ineligible for function-level reuse.
    pub funcs_reuse_ineligible: u64,
}

/// Runs all compilation passes in place. Fails when the parfor dependence
/// check cannot prove result-variable writes disjoint across iterations.
pub fn compile(program: &mut Program, config: &LimaConfig) -> Result<CompileReport, CompileError> {
    assign_ids(program);
    let funcs_reuse_ineligible = analyze_determinism(program);
    check_parfor_dependences(program)?;
    analyze_dedup(program);
    compute_dedup_outputs(program);
    let mut ops_unmarked = 0u64;
    if config.compiler_assist {
        unmark_loop_carried(program, &mut ops_unmarked);
        if config.reuse.any() {
            rewrite_tsmm_cbind(program);
            rewrite_speculative_projection(program);
        }
    }
    let report = CompileReport {
        ops_unmarked,
        funcs_reuse_ineligible,
    };
    program.analysis = report;
    Ok(report)
}

// ---------------------------------------------------------------- block IDs

fn assign_ids(program: &mut Program) {
    let mut next = 1u64;
    assign_ids_blocks(&mut program.body, &mut next);
    let mut names: Vec<String> = program.functions.keys().cloned().collect();
    names.sort();
    for name in names {
        if let Some(f) = program.functions.get_mut(&name) {
            assign_ids_blocks(&mut f.body, &mut next);
        }
    }
}

fn assign_ids_blocks(blocks: &mut [Block], next: &mut u64) {
    for b in blocks {
        match b {
            Block::Basic { id, .. } => {
                *id = *next;
                *next += 1;
            }
            Block::If {
                id,
                then_body,
                else_body,
                ..
            } => {
                *id = *next;
                *next += 1;
                assign_ids_blocks(then_body, next);
                assign_ids_blocks(else_body, next);
            }
            Block::For { id, body, .. } | Block::While { id, body, .. } => {
                *id = *next;
                *next += 1;
                assign_ids_blocks(body, next);
            }
            Block::ParFor {
                id, body, results, ..
            } => {
                *id = *next;
                *next += 1;
                assign_ids_blocks(body, next);
                let _ = results;
            }
        }
    }
}

// ------------------------------------------------------------- determinism

/// The determinism contribution of one instruction: calls defer to the
/// callee's class; everything else is looked up in the `lima-core` opcode
/// classification table, refined by the explicit-seed rule.
pub fn instr_class_source(i: &Instr) -> ClassSource {
    if let Op::FCall(name) = &i.op {
        return ClassSource::Call(name.clone());
    }
    let mut class = classify_opcode(&i.op.opcode());
    // Seeded randomness with an explicit non-negative literal seed is
    // reproducible across executions.
    if i.op.is_random() && has_explicit_seed(i) {
        class = OpClass::Deterministic;
    }
    ClassSource::Fixed(class)
}

fn has_explicit_seed(i: &Instr) -> bool {
    match i.inputs.last() {
        Some(Operand::Lit(ScalarValue::I64(s))) => *s >= 0,
        Some(Operand::Lit(ScalarValue::F64(s))) => *s >= 0.0,
        _ => false,
    }
}

fn collect_class_sources(blocks: &[Block], out: &mut Vec<ClassSource>) {
    let expr = |e: &ExprProg, out: &mut Vec<ClassSource>| {
        out.extend(e.instrs.iter().map(instr_class_source));
    };
    for b in blocks {
        match b {
            Block::Basic { instrs, .. } => out.extend(instrs.iter().map(instr_class_source)),
            Block::If {
                pred,
                then_body,
                else_body,
                ..
            } => {
                expr(pred, out);
                collect_class_sources(then_body, out);
                collect_class_sources(else_body, out);
            }
            Block::For {
                from, to, by, body, ..
            }
            | Block::ParFor {
                from, to, by, body, ..
            } => {
                expr(from, out);
                expr(to, out);
                expr(by, out);
                collect_class_sources(body, out);
            }
            Block::While { pred, body, .. } => {
                expr(pred, out);
                collect_class_sources(body, out);
            }
        }
    }
}

/// Join of the classes of all instructions in `blocks`, given per-function
/// classes (an empty map is conservative about calls).
pub fn blocks_class(blocks: &[Block], classes: &HashMap<String, OpClass>) -> OpClass {
    let mut sources = Vec::new();
    collect_class_sources(blocks, &mut sources);
    sources
        .iter()
        .fold(OpClass::Deterministic, |acc, s| acc.join(s.eval(classes)))
}

/// Solves per-function determinism classes over the call graph and marks
/// functions and loop blocks. Returns the number of functions ineligible for
/// function-level reuse.
fn analyze_determinism(program: &mut Program) -> u64 {
    let mut bodies: HashMap<String, Vec<ClassSource>> = HashMap::new();
    for (name, f) in &program.functions {
        let mut sources = Vec::new();
        collect_class_sources(&f.body, &mut sources);
        bodies.insert(name.clone(), sources);
    }
    let classes = solve_call_graph(&bodies);
    let recursive = functions_on_call_cycles(&bodies);
    let mut ineligible = 0u64;
    for (name, f) in program.functions.iter_mut() {
        let class = classes
            .get(name)
            .copied()
            .unwrap_or(OpClass::NonDeterministic);
        // Function-level reuse (memoization) requires full determinism:
        // `Seeded` system-seeded randomness differs per execution. Functions
        // on call-graph cycles are additionally excluded — a recursive call
        // with identical arguments would re-probe its own pending cache
        // reservation.
        f.deterministic = class == OpClass::Deterministic && !recursive.contains(name);
        if !f.deterministic {
            ineligible += 1;
        }
    }
    mark_block_determinism(&mut program.body, &classes);
    for f in program.functions.values_mut() {
        mark_block_determinism(&mut f.body, &classes);
    }
    ineligible
}

/// Functions that can (transitively) call themselves.
fn functions_on_call_cycles(bodies: &HashMap<String, Vec<ClassSource>>) -> HashSet<String> {
    let callees = |name: &str| -> Vec<&String> {
        bodies
            .get(name)
            .map(|sources| {
                sources
                    .iter()
                    .filter_map(|s| match s {
                        ClassSource::Call(callee) => Some(callee),
                        ClassSource::Fixed(_) => None,
                    })
                    .collect()
            })
            .unwrap_or_default()
    };
    let mut on_cycle = HashSet::new();
    for start in bodies.keys() {
        let mut stack: Vec<&String> = callees(start);
        let mut visited: HashSet<&String> = HashSet::new();
        while let Some(next) = stack.pop() {
            if next == start {
                on_cycle.insert(start.clone());
                break;
            }
            if visited.insert(next) {
                stack.extend(callees(next));
            }
        }
    }
    on_cycle
}

fn mark_block_determinism(blocks: &mut [Block], classes: &HashMap<String, OpClass>) {
    for b in blocks {
        match b {
            Block::For {
                body,
                deterministic,
                ..
            }
            | Block::While {
                body,
                deterministic,
                ..
            } => {
                *deterministic = blocks_class(body, classes) == OpClass::Deterministic;
                mark_block_determinism(body, classes);
            }
            Block::If {
                then_body,
                else_body,
                ..
            } => {
                mark_block_determinism(then_body, classes);
                mark_block_determinism(else_body, classes);
            }
            Block::ParFor { body, results, .. } => {
                // Also fill parfor result variables: variables written in the
                // body that exist before the loop — approximated as writes
                // that are also live-in (carried) or left-indexed results.
                *results = parfor_results(body);
                mark_block_determinism(body, classes);
            }
            Block::Basic { .. } => {}
        }
    }
}

/// Result variables of a parfor body: variables updated via left-indexing or
/// read-then-written (carried) — these must be merged across workers.
fn parfor_results(body: &[Block]) -> Vec<String> {
    let live_in = lva::live_in(body);
    let writes = lva::writes(body);
    writes.into_iter().filter(|w| live_in.contains(w)).collect()
}

// ------------------------------------------------------ parfor dependences

/// Rejects parfors whose result-variable writes cannot be proven disjoint
/// across iterations (paper §2: the merge by cell-difference assumes
/// iterations touch distinct cells). Runs after `analyze_determinism`, which
/// fills each parfor's `results` field.
fn check_parfor_dependences(program: &Program) -> Result<(), CompileError> {
    check_parfor_blocks(&program.body)?;
    for f in program.functions.values() {
        check_parfor_blocks(&f.body)?;
    }
    Ok(())
}

fn check_parfor_blocks(blocks: &[Block]) -> Result<(), CompileError> {
    for b in blocks {
        match b {
            Block::ParFor {
                id,
                var,
                from,
                to,
                by,
                body,
                results,
                span,
                ..
            } => {
                let result_set: HashSet<String> = results.iter().cloned().collect();
                let writes = lower_parfor_writes(var, body, &result_set);
                check_parfor_writes(&writes, trip_at_most_one(from, to, by)).map_err(
                    |violation| {
                        // Anchor on the offending write when a span is known;
                        // otherwise fall back to the parfor header.
                        let write_span = writes
                            .iter()
                            .filter(|w| w.var == violation.var())
                            .find_map(|w| w.span);
                        CompileError::ParforDependence {
                            block_id: *id,
                            violation,
                            span: write_span.or(*span),
                        }
                    },
                )?;
                check_parfor_blocks(body)?;
            }
            Block::If {
                then_body,
                else_body,
                ..
            } => {
                check_parfor_blocks(then_body)?;
                check_parfor_blocks(else_body)?;
            }
            Block::For { body, .. } | Block::While { body, .. } => check_parfor_blocks(body)?,
            Block::Basic { .. } => {}
        }
    }
    Ok(())
}

fn expr_lit_i64(e: &ExprProg) -> Option<i64> {
    if !e.instrs.is_empty() {
        return None;
    }
    match &e.result {
        Operand::Lit(ScalarValue::I64(v)) => Some(*v),
        Operand::Lit(ScalarValue::F64(v)) if v.fract() == 0.0 => Some(*v as i64),
        _ => None,
    }
}

/// True when the loop provably runs at most one iteration (a single
/// iteration cannot race with itself).
fn trip_at_most_one(from: &ExprProg, to: &ExprProg, by: &ExprProg) -> bool {
    let (Some(f), Some(t)) = (expr_lit_i64(from), expr_lit_i64(to)) else {
        return false;
    };
    if f == t {
        return true;
    }
    match expr_lit_i64(by) {
        Some(b) if b > 0 => match f.checked_add(b) {
            Some(n) => n > t,
            None => true,
        },
        Some(b) if b < 0 => match f.checked_add(b) {
            Some(n) => n < t,
            None => true,
        },
        _ => false,
    }
}

/// Known affine values of scalar temporaries; `None` marks a variable whose
/// value cannot be expressed affinely in the loop variable.
type AffEnv = HashMap<String, Option<Affine>>;

/// Lowers a parfor body's writes to its result variables into
/// [`ResultWrite`]s. Straight-line arithmetic over the loop variable is
/// folded through an affine environment (`t = 2*i - 1; B[t, 1] = ...`);
/// indexed writes are modeled by their anchor cell (`LeftIndex` places the
/// sub-block at `(rl, cl)`). Anything unanalyzable — conditional
/// assignments, nested loops, non-affine arithmetic — degrades
/// conservatively so the checker rejects rather than miss a race.
fn lower_parfor_writes(
    loop_var: &str,
    body: &[Block],
    results: &HashSet<String>,
) -> Vec<ResultWrite> {
    let body_writes: HashSet<String> = lva::writes(body).into_iter().collect();
    let mut env: AffEnv = HashMap::new();
    let mut out = Vec::new();
    walk_parfor_body(loop_var, body, results, &body_writes, &mut env, &mut out);
    out
}

fn operand_affine(
    op: &Operand,
    loop_var: &str,
    body_writes: &HashSet<String>,
    env: &AffEnv,
) -> Option<Affine> {
    match op {
        Operand::Lit(ScalarValue::I64(v)) => Some(Affine::konst(*v)),
        Operand::Lit(ScalarValue::F64(v)) if v.fract() == 0.0 => Some(Affine::konst(*v as i64)),
        Operand::Lit(_) => None,
        Operand::Var(v) => {
            // The environment wins over the loop variable: a body that
            // reassigns the loop variable shadows its affine meaning.
            if let Some(a) = env.get(v) {
                return a.clone();
            }
            if v == loop_var {
                return Some(Affine::loop_var());
            }
            if !body_writes.contains(v) {
                return Some(Affine::invariant(v.clone()));
            }
            None
        }
    }
}

fn walk_parfor_body(
    loop_var: &str,
    blocks: &[Block],
    results: &HashSet<String>,
    body_writes: &HashSet<String>,
    env: &mut AffEnv,
    out: &mut Vec<ResultWrite>,
) {
    for b in blocks {
        match b {
            Block::Basic { instrs, .. } => {
                for i in instrs {
                    visit_parfor_instr(loop_var, i, results, body_writes, env, out);
                }
            }
            Block::If {
                pred,
                then_body,
                else_body,
                ..
            } => {
                for i in &pred.instrs {
                    visit_parfor_instr(loop_var, i, results, body_writes, env, out);
                }
                let mut then_env = env.clone();
                walk_parfor_body(
                    loop_var,
                    then_body,
                    results,
                    body_writes,
                    &mut then_env,
                    out,
                );
                let mut else_env = env.clone();
                walk_parfor_body(
                    loop_var,
                    else_body,
                    results,
                    body_writes,
                    &mut else_env,
                    out,
                );
                // A variable assigned under a condition has no single affine
                // value afterwards.
                for w in lva::writes(then_body)
                    .into_iter()
                    .chain(lva::writes(else_body))
                {
                    env.insert(w, None);
                }
            }
            Block::For { .. } | Block::While { .. } | Block::ParFor { .. } => {
                // Writes under a nested loop repeat per *inner* iteration;
                // their indices cannot be reasoned about in the outer loop
                // variable. Treat every result variable touched inside as a
                // whole-variable write and poison everything it assigns
                // (including its own loop variable and bound temporaries).
                for w in lva::writes(std::slice::from_ref(b)) {
                    if results.contains(&w) {
                        out.push(ResultWrite::whole(w.clone()));
                    }
                    env.insert(w, None);
                }
            }
        }
    }
}

fn visit_parfor_instr(
    loop_var: &str,
    i: &Instr,
    results: &HashSet<String>,
    body_writes: &HashSet<String>,
    env: &mut AffEnv,
    out: &mut Vec<ResultWrite>,
) {
    // Record writes to result variables.
    if matches!(i.op, Op::LeftIndex) && i.outputs.len() == 1 && results.contains(&i.outputs[0]) {
        let row = operand_affine(&i.inputs[2], loop_var, body_writes, env);
        let col = operand_affine(&i.inputs[3], loop_var, body_writes, env);
        out.push(ResultWrite::indexed(i.outputs[0].clone(), row, col).with_span(i.span));
    } else {
        for w in i.writes() {
            if results.contains(w) {
                out.push(ResultWrite::whole(w.to_string()).with_span(i.span));
            }
        }
    }
    // Update the affine environment for scalar temporaries.
    if let [w] = i.outputs.as_slice() {
        let val = match &i.op {
            Op::Assign | Op::CastScalar | Op::CastMatrix => {
                operand_affine(&i.inputs[0], loop_var, body_writes, env)
            }
            Op::Binary(op @ (BinOp::Add | BinOp::Sub | BinOp::Mul)) => {
                let a = operand_affine(&i.inputs[0], loop_var, body_writes, env);
                let b = operand_affine(&i.inputs[1], loop_var, body_writes, env);
                match (a, b, op) {
                    (Some(a), Some(b), BinOp::Add) => a.add(&b),
                    (Some(a), Some(b), BinOp::Sub) => a.sub(&b),
                    (Some(a), Some(b), BinOp::Mul) => a.mul(&b),
                    _ => None,
                }
            }
            _ => None,
        };
        env.insert(w.clone(), val);
    } else {
        for w in i.writes() {
            env.insert(w.to_string(), None);
        }
    }
}

// ------------------------------------------------------------------- dedup

fn analyze_dedup(program: &mut Program) {
    analyze_dedup_blocks(&mut program.body);
    for f in program.functions.values_mut() {
        analyze_dedup_blocks(&mut f.body);
        // Function dedup: last-level bodies (no loops, no calls) only.
        if body_is_last_level(&f.body) {
            let branches = assign_branch_ids(&mut f.body, 0);
            f.dedup_ok = branches <= 63;
            if !f.dedup_ok {
                clear_branch_ids(&mut f.body);
            }
        }
    }
}

fn analyze_dedup_blocks(blocks: &mut [Block]) {
    for b in blocks {
        match b {
            Block::For { body, dedup_ok, .. } | Block::While { body, dedup_ok, .. } => {
                if body_is_last_level(body) {
                    let branches = assign_branch_ids(body, 0);
                    *dedup_ok = branches <= 63;
                    if !*dedup_ok {
                        clear_branch_ids(body);
                    }
                } else {
                    analyze_dedup_blocks(body);
                }
            }
            Block::If {
                then_body,
                else_body,
                ..
            } => {
                analyze_dedup_blocks(then_body);
                analyze_dedup_blocks(else_body);
            }
            Block::ParFor { body, .. } => analyze_dedup_blocks(body),
            Block::Basic { .. } => {}
        }
    }
}

/// Last-level body: only basic blocks and conditionals, and no function
/// calls (paper: "functions that do not contain loops or other function
/// calls", and last-level loops).
pub fn body_is_last_level(blocks: &[Block]) -> bool {
    blocks.iter().all(|b| match b {
        Block::Basic { instrs, .. } => !instrs.iter().any(|i| matches!(i.op, Op::FCall(_))),
        Block::If {
            pred,
            then_body,
            else_body,
            ..
        } => {
            !pred.instrs.iter().any(|i| matches!(i.op, Op::FCall(_)))
                && body_is_last_level(then_body)
                && body_is_last_level(else_body)
        }
        _ => false,
    })
}

/// Assigns branch IDs depth-first (paper §3.2); returns the number of
/// branches.
fn assign_branch_ids(blocks: &mut [Block], mut next: u32) -> u32 {
    for b in blocks {
        if let Block::If {
            branch_id,
            then_body,
            else_body,
            ..
        } = b
        {
            *branch_id = Some(next);
            next += 1;
            next = assign_branch_ids(then_body, next);
            next = assign_branch_ids(else_body, next);
        }
    }
    next
}

fn clear_branch_ids(blocks: &mut [Block]) {
    for b in blocks {
        if let Block::If {
            branch_id,
            then_body,
            else_body,
            ..
        } = b
        {
            *branch_id = None;
            clear_branch_ids(then_body);
            clear_branch_ids(else_body);
        }
    }
}

/// Computes the live-out variable sets that receive dedup items (paper:
/// "we obtain the inputs and outputs of the loop body from live variable
/// analysis"). A written variable is live-out when it is carried into the
/// next iteration or possibly read after the loop; dead temporaries get no
/// dedup items and drop out of the patches entirely.
fn compute_dedup_outputs(program: &mut Program) {
    dedup_outputs_pass(&mut program.body, &std::collections::BTreeSet::new());
    for f in program.functions.values_mut() {
        let outs: std::collections::BTreeSet<String> = f.outputs.iter().cloned().collect();
        if f.dedup_ok {
            let li: std::collections::BTreeSet<String> =
                lva::live_in(&f.body).into_iter().collect();
            f.dedup_outputs = lva::writes(&f.body)
                .into_iter()
                .filter(|w| outs.contains(w) || li.contains(w))
                .collect();
        }
        dedup_outputs_pass(&mut f.body, &outs);
    }
}

fn dedup_outputs_pass(blocks: &mut [Block], after: &std::collections::BTreeSet<String>) {
    // suffix[i] = variables read by blocks[i..] plus `after`.
    let n = blocks.len();
    let mut suffix: Vec<std::collections::BTreeSet<String>> = vec![after.clone(); n + 1];
    for i in (0..n).rev() {
        let mut s = suffix[i + 1].clone();
        s.extend(lva::collect_reads(std::slice::from_ref(&blocks[i])));
        suffix[i] = s;
    }
    for (i, b) in blocks.iter_mut().enumerate() {
        match b {
            Block::For {
                body,
                dedup_ok,
                dedup_outputs,
                ..
            }
            | Block::While {
                body,
                dedup_ok,
                dedup_outputs,
                ..
            } => {
                if *dedup_ok {
                    let li: std::collections::BTreeSet<String> =
                        lva::live_in(body).into_iter().collect();
                    let live_after = &suffix[i + 1];
                    *dedup_outputs = lva::writes(body)
                        .into_iter()
                        .filter(|w| li.contains(w) || live_after.contains(w))
                        .collect();
                }
                // suffix[i] includes this loop's own body reads — the
                // conservative live-after for anything nested (a next
                // iteration may read it).
                let inner = suffix[i].clone();
                dedup_outputs_pass(body, &inner);
            }
            Block::If {
                then_body,
                else_body,
                ..
            } => {
                let inner = suffix[i].clone();
                dedup_outputs_pass(then_body, &inner);
                dedup_outputs_pass(else_body, &inner);
            }
            Block::ParFor { body, .. } => {
                let inner = suffix[i].clone();
                dedup_outputs_pass(body, &inner);
            }
            Block::Basic { .. } => {}
        }
    }
}

// --------------------------------------------------------------- unmarking

fn unmark_loop_carried(program: &mut Program, unmarked: &mut u64) {
    unmark_blocks(&mut program.body, unmarked);
    for f in program.functions.values_mut() {
        unmark_blocks(&mut f.body, unmarked);
    }
}

fn unmark_blocks(blocks: &mut [Block], unmarked: &mut u64) {
    for b in blocks {
        match b {
            Block::For { body, .. } | Block::While { body, .. } | Block::ParFor { body, .. } => {
                let carried: HashSet<String> = {
                    let li = lva::live_in(body);
                    let ws = lva::writes(body);
                    li.into_iter().filter(|v| ws.contains(v)).collect()
                };
                unmark_tainted(body, &carried, unmarked);
                unmark_blocks(body, unmarked);
            }
            Block::If {
                then_body,
                else_body,
                ..
            } => {
                unmark_blocks(then_body, unmarked);
                unmark_blocks(else_body, unmarked);
            }
            Block::Basic { .. } => {}
        }
    }
}

/// Unmarks instructions (transitively) depending on loop-carried variables:
/// their lineage differs in every iteration, so caching them only pollutes
/// the cache (paper §4.4, "Unmarking Intermediates").
fn unmark_tainted(blocks: &mut [Block], carried: &HashSet<String>, unmarked: &mut u64) {
    let mut tainted: HashSet<String> = carried.clone();
    // Two passes propagate taint through straight-line code and one level of
    // back-edges (the carried set itself covers the loop back-edge).
    for _ in 0..2 {
        taint_pass(blocks, &mut tainted);
    }
    apply_unmark(blocks, &tainted, unmarked);
}

fn taint_pass(blocks: &[Block], tainted: &mut HashSet<String>) {
    for b in blocks {
        match b {
            Block::Basic { instrs, .. } => {
                for i in instrs {
                    if i.reads().any(|r| tainted.contains(r)) {
                        for w in i.writes() {
                            tainted.insert(w.to_string());
                        }
                    }
                }
            }
            Block::If {
                then_body,
                else_body,
                ..
            } => {
                taint_pass(then_body, tainted);
                taint_pass(else_body, tainted);
            }
            Block::For { body, .. } | Block::While { body, .. } | Block::ParFor { body, .. } => {
                taint_pass(body, tainted);
            }
        }
    }
}

fn apply_unmark(blocks: &mut [Block], tainted: &HashSet<String>, unmarked: &mut u64) {
    for b in blocks {
        match b {
            Block::Basic { instrs, .. } => {
                for i in instrs {
                    if !i.no_cache
                        && (i.reads().any(|r| tainted.contains(r))
                            || i.writes().any(|w| tainted.contains(w)))
                    {
                        i.no_cache = true;
                        *unmarked += 1;
                    }
                }
            }
            Block::If {
                then_body,
                else_body,
                ..
            } => {
                apply_unmark(then_body, tainted, unmarked);
                apply_unmark(else_body, tainted, unmarked);
            }
            Block::For { body, .. } | Block::While { body, .. } | Block::ParFor { body, .. } => {
                apply_unmark(body, tainted, unmarked);
            }
        }
    }
}

// ------------------------------------------------------- reuse-aware rewrite

/// Rewrites `Z = cbind(X, d); W = tsmm(Z)` inside loop bodies (with
/// loop-invariant `X`, loop-local `Z`) into a compensation-style plan that
/// avoids materializing the cbind entirely — the `LIMA-CA` behaviour of
/// Fig 7(a). The split pieces (`tsmm(X)`, `t(X)`) become loop-invariant and
/// are served from the lineage cache after the first iteration.
fn rewrite_tsmm_cbind(program: &mut Program) {
    rewrite_blocks(&mut program.body);
    for f in program.functions.values_mut() {
        rewrite_blocks(&mut f.body);
    }
}

fn rewrite_blocks(blocks: &mut [Block]) {
    for b in blocks {
        match b {
            Block::For { body, .. } | Block::While { body, .. } | Block::ParFor { body, .. } => {
                let writes: HashSet<String> = lva::writes(body).into_iter().collect();
                rewrite_in_loop(body, &writes);
                rewrite_blocks(body);
            }
            Block::If {
                then_body,
                else_body,
                ..
            } => {
                rewrite_blocks(then_body);
                rewrite_blocks(else_body);
            }
            Block::Basic { .. } => {}
        }
    }
}

fn rewrite_in_loop(blocks: &mut [Block], loop_writes: &HashSet<String>) {
    for b in blocks {
        let Block::Basic { id, instrs } = b else {
            continue;
        };
        // Count reads of every variable in this basic block.
        let mut read_counts: HashMap<String, usize> = HashMap::new();
        for i in instrs.iter() {
            for r in i.reads() {
                *read_counts.entry(r.to_string()).or_default() += 1;
            }
        }
        let mut k = 0;
        while k + 1 < instrs.len() {
            let fire = {
                let (a, b) = (&instrs[k], &instrs[k + 1]);
                match (&a.op, &b.op) {
                    (Op::Cbind, Op::Tsmm(TsmmSide::Left)) => {
                        let z = &a.outputs[0];
                        let x = a.inputs[0].as_var();
                        b.inputs.first().and_then(Operand::as_var) == Some(z.as_str())
                            && read_counts.get(z).copied().unwrap_or(0) == 1
                            && x.is_some_and(|x| !loop_writes.contains(x))
                    }
                    _ => false,
                }
            };
            if fire {
                let cbind = instrs[k].clone();
                let tsmm = instrs[k + 1].clone();
                let x = cbind.inputs[0].clone();
                let d = cbind.inputs[1].clone();
                let w = tsmm.outputs[0].clone();
                let t = |s: &str| format!("__ca{id}_{s}");
                let plan = vec![
                    Instr::new(Op::Tsmm(TsmmSide::Left), vec![x.clone()], t("xx")),
                    Instr::new(Op::Transpose, vec![x.clone()], t("xt")),
                    Instr::new(Op::MatMult, vec![Operand::var(t("xt")), d.clone()], t("xd")),
                    Instr::new(Op::Tsmm(TsmmSide::Left), vec![d.clone()], t("dd")),
                    Instr::new(
                        Op::Cbind,
                        vec![Operand::var(t("xx")), Operand::var(t("xd"))],
                        t("top"),
                    ),
                    Instr::new(Op::Transpose, vec![Operand::var(t("xd"))], t("dxt")),
                    Instr::new(
                        Op::Cbind,
                        vec![Operand::var(t("dxt")), Operand::var(t("dd"))],
                        t("bot"),
                    ),
                    Instr::new(
                        Op::Rbind,
                        vec![Operand::var(t("top")), Operand::var(t("bot"))],
                        w,
                    ),
                ];
                instrs.splice(k..k + 2, plan);
                k += 8;
            } else {
                k += 1;
            }
        }
    }
}

// ------------------------------------------- speculative projection rewrite

/// Rewrites `T = Y[, 1:k]; W = X %*% T` into `F = X %*% Y; W = F[, 1:k]`
/// (paper §4.4, second example: "if an outer loop calls PCA for different K,
/// a dedicated rewrite speculatively computes A·evect for more efficient
/// partial reuse"). The full product `F` is loop-invariant across a K sweep,
/// so it is computed once and every projection becomes a cheap slice.
///
/// The rewrite fires only when the slice covers all rows starting at column 1
/// (a prefix projection) and the sliced matrix is not used elsewhere in the
/// block — mirroring the cost-based conservatism the paper describes.
fn rewrite_speculative_projection(program: &mut Program) {
    speculative_blocks(&mut program.body);
    for f in program.functions.values_mut() {
        speculative_blocks(&mut f.body);
    }
}

fn speculative_blocks(blocks: &mut [Block]) {
    for b in blocks {
        match b {
            Block::Basic { id, instrs } => rewrite_projection_in_block(*id, instrs),
            Block::If {
                then_body,
                else_body,
                ..
            } => {
                speculative_blocks(then_body);
                speculative_blocks(else_body);
            }
            Block::For { body, .. } | Block::While { body, .. } | Block::ParFor { body, .. } => {
                speculative_blocks(body);
            }
        }
    }
}

fn rewrite_projection_in_block(id: u64, instrs: &mut Vec<Instr>) {
    let mut read_counts: HashMap<String, usize> = HashMap::new();
    for i in instrs.iter() {
        for r in i.reads() {
            *read_counts.entry(r.to_string()).or_default() += 1;
        }
    }
    let mut k = 0;
    while k + 1 < instrs.len() {
        let fire = {
            let (a, b) = (&instrs[k], &instrs[k + 1]);
            match (&a.op, &b.op) {
                (Op::RightIndex, Op::MatMult) => {
                    // a: T = Y[1:0, 1:cu]  (full rows, column prefix)
                    let t = &a.outputs[0];
                    let full_rows = matches!(
                        (&a.inputs[1], &a.inputs[2]),
                        (
                            Operand::Lit(ScalarValue::I64(1)),
                            Operand::Lit(ScalarValue::I64(0))
                        )
                    );
                    let col_prefix = matches!(&a.inputs[3], Operand::Lit(ScalarValue::I64(1)));
                    full_rows
                        && col_prefix
                        && b.inputs.get(1).and_then(Operand::as_var) == Some(t.as_str())
                        && read_counts.get(t).copied().unwrap_or(0) == 1
                }
                _ => false,
            }
        };
        if fire {
            let slice_i = instrs[k].clone();
            let mm_i = instrs[k + 1].clone();
            let full = format!("__sp{id}_{k}");
            let plan = vec![
                Instr::new(
                    Op::MatMult,
                    vec![mm_i.inputs[0].clone(), slice_i.inputs[0].clone()],
                    full.clone(),
                ),
                Instr::new(
                    Op::RightIndex,
                    vec![
                        Operand::var(full),
                        Operand::i64(1),
                        Operand::i64(0),
                        slice_i.inputs[3].clone(),
                        slice_i.inputs[4].clone(),
                    ],
                    mm_i.outputs[0].clone(),
                ),
            ];
            instrs.splice(k..k + 2, plan);
            k += 2;
        } else {
            k += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::RandDistKind;
    use crate::program::Function;
    use lima_matrix::ops::BinOp;

    fn mm(a: &str, b: &str, out: &str) -> Instr {
        Instr::new(Op::MatMult, vec![Operand::var(a), Operand::var(b)], out)
    }

    fn rand_sys(out: &str) -> Instr {
        Instr::new(
            Op::Rand(RandDistKind::Uniform),
            vec![
                Operand::i64(2),
                Operand::i64(2),
                Operand::f64(0.0),
                Operand::f64(1.0),
                Operand::f64(1.0),
                Operand::i64(-1),
            ],
            out,
        )
    }

    #[test]
    fn ids_are_assigned_and_unique() {
        let mut p = Program::new(vec![
            Block::basic(vec![]),
            Block::if_else(ExprProg::var("c"), vec![Block::basic(vec![])], vec![]),
        ]);
        compile(&mut p, &LimaConfig::default()).expect("compiles");
        let id0 = p.body[0].id();
        let id1 = p.body[1].id();
        assert_ne!(id0, 0);
        assert_ne!(id0, id1);
    }

    #[test]
    fn determinism_analysis_flags_randomness_and_effects() {
        let mut p = Program::new(vec![]);
        p.add_function(Function::new(
            "pure",
            vec!["X".into()],
            vec!["Y".into()],
            vec![Block::basic(vec![mm("X", "X", "Y")])],
        ));
        p.add_function(Function::new(
            "rng",
            vec![],
            vec!["Y".into()],
            vec![Block::basic(vec![rand_sys("Y")])],
        ));
        p.add_function(Function::new(
            "caller",
            vec![],
            vec!["Y".into()],
            vec![Block::basic(vec![Instr::multi(
                Op::FCall("rng".into()),
                vec![],
                vec!["Y".into()],
            )])],
        ));
        p.add_function(Function::new(
            "printer",
            vec!["X".into()],
            vec!["X".into()],
            vec![Block::basic(vec![Instr::effect(
                Op::Print,
                vec![Operand::var("X")],
            )])],
        ));
        compile(&mut p, &LimaConfig::default()).expect("compiles");
        assert!(p.functions["pure"].deterministic);
        assert!(!p.functions["rng"].deterministic);
        assert!(!p.functions["caller"].deterministic);
        assert!(!p.functions["printer"].deterministic);
    }

    #[test]
    fn explicit_seed_rand_is_deterministic() {
        let mut p = Program::new(vec![]);
        let mut instr = rand_sys("Y");
        instr.inputs[5] = Operand::i64(42);
        p.add_function(Function::new(
            "seeded",
            vec![],
            vec!["Y".into()],
            vec![Block::basic(vec![instr])],
        ));
        compile(&mut p, &LimaConfig::default()).expect("compiles");
        assert!(p.functions["seeded"].deterministic);
    }

    #[test]
    fn dedup_eligibility_and_branch_ids() {
        let body = vec![
            Block::basic(vec![mm("G", "p", "t1")]),
            Block::if_else(
                ExprProg::var("c"),
                vec![Block::basic(vec![mm("t1", "p", "p")])],
                vec![Block::basic(vec![mm("p", "t1", "p")])],
            ),
        ];
        let mut p = Program::new(vec![Block::for_loop(
            "i",
            ExprProg::lit(Operand::i64(1)),
            ExprProg::lit(Operand::i64(3)),
            ExprProg::lit(Operand::i64(1)),
            body,
        )]);
        compile(&mut p, &LimaConfig::default()).expect("compiles");
        match &p.body[0] {
            Block::For { dedup_ok, body, .. } => {
                assert!(dedup_ok);
                match &body[1] {
                    Block::If { branch_id, .. } => assert_eq!(*branch_id, Some(0)),
                    _ => panic!(),
                }
            }
            _ => panic!(),
        }
    }

    #[test]
    fn nested_loops_are_not_last_level() {
        let inner = Block::for_loop(
            "j",
            ExprProg::lit(Operand::i64(1)),
            ExprProg::lit(Operand::i64(2)),
            ExprProg::lit(Operand::i64(1)),
            vec![Block::basic(vec![mm("X", "X", "X")])],
        );
        let mut p = Program::new(vec![Block::for_loop(
            "i",
            ExprProg::lit(Operand::i64(1)),
            ExprProg::lit(Operand::i64(2)),
            ExprProg::lit(Operand::i64(1)),
            vec![inner],
        )]);
        compile(&mut p, &LimaConfig::default()).expect("compiles");
        match &p.body[0] {
            Block::For { dedup_ok, body, .. } => {
                assert!(!dedup_ok);
                // The inner loop IS last-level.
                match &body[0] {
                    Block::For { dedup_ok, .. } => assert!(dedup_ok),
                    _ => panic!(),
                }
            }
            _ => panic!(),
        }
    }

    #[test]
    fn unmarking_taints_loop_carried_chains() {
        // X = (X + X) * 2 inside a loop: both instructions unmarked;
        // Y = A %*% A is invariant and stays cacheable.
        let body = vec![Block::basic(vec![
            Instr::new(
                Op::Binary(BinOp::Add),
                vec![Operand::var("X"), Operand::var("X")],
                "t",
            ),
            Instr::new(
                Op::Binary(BinOp::Mul),
                vec![Operand::var("t"), Operand::f64(2.0)],
                "X",
            ),
            mm("A", "A", "Y"),
        ])];
        let mut p = Program::new(vec![Block::for_loop(
            "i",
            ExprProg::lit(Operand::i64(1)),
            ExprProg::lit(Operand::i64(3)),
            ExprProg::lit(Operand::i64(1)),
            body,
        )]);
        compile(&mut p, &LimaConfig::default()).expect("compiles");
        match &p.body[0] {
            Block::For { body, .. } => match &body[0] {
                Block::Basic { instrs, .. } => {
                    assert!(instrs[0].no_cache);
                    assert!(instrs[1].no_cache);
                    assert!(!instrs[2].no_cache);
                }
                _ => panic!(),
            },
            _ => panic!(),
        }
    }

    #[test]
    fn tsmm_cbind_rewrite_fires_in_loops() {
        let body = vec![Block::basic(vec![
            Instr::new(Op::Cbind, vec![Operand::var("X"), Operand::var("d")], "Z"),
            Instr::new(Op::Tsmm(TsmmSide::Left), vec![Operand::var("Z")], "W"),
        ])];
        let mut p = Program::new(vec![Block::for_loop(
            "i",
            ExprProg::lit(Operand::i64(1)),
            ExprProg::lit(Operand::i64(3)),
            ExprProg::lit(Operand::i64(1)),
            body,
        )]);
        compile(&mut p, &LimaConfig::default()).expect("compiles");
        match &p.body[0] {
            Block::For { body, .. } => match &body[0] {
                Block::Basic { instrs, .. } => {
                    assert_eq!(instrs.len(), 8, "cbind+tsmm replaced by 8-instr plan");
                    assert!(matches!(instrs[0].op, Op::Tsmm(_)));
                    assert!(matches!(instrs.last().unwrap().op, Op::Rbind));
                    assert_eq!(instrs.last().unwrap().outputs[0], "W");
                }
                _ => panic!(),
            },
            _ => panic!(),
        }
    }

    #[test]
    fn speculative_projection_rewrite_fires() {
        // T = Y[, 1:k]; W = X %*% T  ->  F = X %*% Y; W = F[, 1:k]
        let mut p = Program::new(vec![Block::basic(vec![
            Instr::new(
                Op::RightIndex,
                vec![
                    Operand::var("Y"),
                    Operand::i64(1),
                    Operand::i64(0),
                    Operand::i64(1),
                    Operand::var("k"),
                ],
                "T",
            ),
            Instr::new(Op::MatMult, vec![Operand::var("X"), Operand::var("T")], "W"),
        ])]);
        compile(&mut p, &LimaConfig::default()).expect("compiles");
        match &p.body[0] {
            Block::Basic { instrs, .. } => {
                assert_eq!(instrs.len(), 2);
                assert!(matches!(instrs[0].op, Op::MatMult));
                assert!(matches!(instrs[1].op, Op::RightIndex));
                assert_eq!(instrs[1].outputs[0], "W");
            }
            _ => panic!(),
        }
        // Without compiler assistance nothing changes.
        let mut p2 = Program::new(vec![Block::basic(vec![
            Instr::new(
                Op::RightIndex,
                vec![
                    Operand::var("Y"),
                    Operand::i64(1),
                    Operand::i64(0),
                    Operand::i64(1),
                    Operand::var("k"),
                ],
                "T",
            ),
            Instr::new(Op::MatMult, vec![Operand::var("X"), Operand::var("T")], "W"),
        ])]);
        compile(&mut p2, &LimaConfig::base()).expect("compiles");
        match &p2.body[0] {
            Block::Basic { instrs, .. } => assert!(matches!(instrs[0].op, Op::RightIndex)),
            _ => panic!(),
        }
    }

    #[test]
    fn speculative_projection_skips_non_prefix_slices() {
        // Row-restricted slice: not a pure column-prefix projection.
        let mut p = Program::new(vec![Block::basic(vec![
            Instr::new(
                Op::RightIndex,
                vec![
                    Operand::var("Y"),
                    Operand::i64(2),
                    Operand::i64(5),
                    Operand::i64(1),
                    Operand::var("k"),
                ],
                "T",
            ),
            Instr::new(Op::MatMult, vec![Operand::var("X"), Operand::var("T")], "W"),
        ])]);
        compile(&mut p, &LimaConfig::default()).expect("compiles");
        match &p.body[0] {
            Block::Basic { instrs, .. } => assert!(matches!(instrs[0].op, Op::RightIndex)),
            _ => panic!(),
        }
    }

    #[test]
    fn tsmm_cbind_rewrite_skips_when_z_is_reused() {
        let body = vec![Block::basic(vec![
            Instr::new(Op::Cbind, vec![Operand::var("X"), Operand::var("d")], "Z"),
            Instr::new(Op::Tsmm(TsmmSide::Left), vec![Operand::var("Z")], "W"),
            mm("Z", "Z", "V"), // Z read again → rewrite must not fire
        ])];
        let mut p = Program::new(vec![Block::for_loop(
            "i",
            ExprProg::lit(Operand::i64(1)),
            ExprProg::lit(Operand::i64(3)),
            ExprProg::lit(Operand::i64(1)),
            body,
        )]);
        compile(&mut p, &LimaConfig::default()).expect("compiles");
        match &p.body[0] {
            Block::For { body, .. } => match &body[0] {
                Block::Basic { instrs, .. } => assert_eq!(instrs.len(), 3),
                _ => panic!(),
            },
            _ => panic!(),
        }
    }

    // ------------------------------------------------- parfor dependences

    fn left_index(target: &str, value: &str, row: Operand, col: Operand) -> Instr {
        Instr::new(
            Op::LeftIndex,
            vec![Operand::var(target), Operand::var(value), row, col],
            target,
        )
    }

    fn parfor_over(var: &str, from: i64, to: i64, body: Vec<Block>) -> Program {
        Program::new(vec![Block::parfor(
            var,
            ExprProg::lit(Operand::i64(from)),
            ExprProg::lit(Operand::i64(to)),
            ExprProg::lit(Operand::i64(1)),
            body,
        )])
    }

    #[test]
    fn racy_parfor_fails_compilation() {
        // R[1, 1] = x in every iteration: loop-invariant index.
        let body = vec![Block::basic(vec![left_index(
            "R",
            "x",
            Operand::i64(1),
            Operand::i64(1),
        )])];
        let mut p = parfor_over("i", 1, 4, body);
        let err = compile(&mut p, &LimaConfig::default()).unwrap_err();
        let CompileError::ParforDependence {
            block_id,
            violation,
            ..
        } = &err;
        assert_ne!(*block_id, 0);
        assert_eq!(
            violation,
            &ParforViolation::LoopInvariantIndex { var: "R".into() }
        );
        assert!(err.to_string().contains("cannot run in parallel"));
    }

    #[test]
    fn disjoint_parfor_writes_compile() {
        let body = vec![Block::basic(vec![left_index(
            "R",
            "x",
            Operand::var("i"),
            Operand::i64(1),
        )])];
        let mut p = parfor_over("i", 1, 4, body);
        compile(&mut p, &LimaConfig::default()).expect("disjoint writes accepted");
    }

    #[test]
    fn whole_variable_parfor_write_rejected() {
        // acc = acc + i: reassigned as a whole each iteration.
        let body = vec![Block::basic(vec![Instr::new(
            Op::Binary(BinOp::Add),
            vec![Operand::var("acc"), Operand::var("i")],
            "acc",
        )])];
        let mut p = parfor_over("i", 1, 4, body);
        let CompileError::ParforDependence { violation, .. } =
            compile(&mut p, &LimaConfig::default()).unwrap_err();
        assert_eq!(
            violation,
            ParforViolation::WholeVarWrite { var: "acc".into() }
        );
    }

    #[test]
    fn affine_temp_chain_accepted() {
        // t = 2*i; t = t - 1; B[t, 1] = x — folded through the affine env.
        let body = vec![Block::basic(vec![
            Instr::new(
                Op::Binary(BinOp::Mul),
                vec![Operand::i64(2), Operand::var("i")],
                "t",
            ),
            Instr::new(
                Op::Binary(BinOp::Sub),
                vec![Operand::var("t"), Operand::i64(1)],
                "t",
            ),
            left_index("B", "x", Operand::var("t"), Operand::i64(1)),
        ])];
        let mut p = parfor_over("i", 1, 4, body);
        compile(&mut p, &LimaConfig::default()).expect("affine chain accepted");
    }

    #[test]
    fn conditionally_assigned_index_rejected() {
        // if (c) { t = i } else { t = 1 }; R[t, 1] = x — t has no single
        // affine value after the conditional.
        let body = vec![
            Block::if_else(
                ExprProg::var("c"),
                vec![Block::basic(vec![Instr::new(
                    Op::Assign,
                    vec![Operand::var("i")],
                    "t",
                )])],
                vec![Block::basic(vec![Instr::new(
                    Op::Assign,
                    vec![Operand::i64(1)],
                    "t",
                )])],
            ),
            Block::basic(vec![left_index(
                "R",
                "x",
                Operand::var("t"),
                Operand::i64(1),
            )]),
        ];
        let mut p = parfor_over("i", 1, 4, body);
        let CompileError::ParforDependence { violation, .. } =
            compile(&mut p, &LimaConfig::default()).unwrap_err();
        assert_eq!(
            violation,
            ParforViolation::NonAffineIndex { var: "R".into() }
        );
    }

    #[test]
    fn nested_loop_result_write_rejected() {
        // parfor i { for j { R[j, 1] = x } } — unanalyzable in i.
        let inner = Block::for_loop(
            "j",
            ExprProg::lit(Operand::i64(1)),
            ExprProg::lit(Operand::i64(2)),
            ExprProg::lit(Operand::i64(1)),
            vec![Block::basic(vec![left_index(
                "R",
                "x",
                Operand::var("j"),
                Operand::i64(1),
            )])],
        );
        let mut p = parfor_over("i", 1, 4, vec![inner]);
        let CompileError::ParforDependence { violation, .. } =
            compile(&mut p, &LimaConfig::default()).unwrap_err();
        assert_eq!(
            violation,
            ParforViolation::WholeVarWrite { var: "R".into() }
        );
    }

    #[test]
    fn single_trip_parfor_skips_dependence_check() {
        let body = vec![Block::basic(vec![left_index(
            "R",
            "x",
            Operand::i64(1),
            Operand::i64(1),
        )])];
        let mut p = parfor_over("i", 1, 1, body);
        compile(&mut p, &LimaConfig::default()).expect("single-trip parfor accepted");
    }

    #[test]
    fn compile_report_counts_unmarking_and_ineligible_functions() {
        let body = vec![Block::basic(vec![
            Instr::new(
                Op::Binary(BinOp::Add),
                vec![Operand::var("X"), Operand::var("X")],
                "t",
            ),
            Instr::new(
                Op::Binary(BinOp::Mul),
                vec![Operand::var("t"), Operand::f64(2.0)],
                "X",
            ),
        ])];
        let mut p = Program::new(vec![Block::for_loop(
            "i",
            ExprProg::lit(Operand::i64(1)),
            ExprProg::lit(Operand::i64(3)),
            ExprProg::lit(Operand::i64(1)),
            body,
        )]);
        p.add_function(Function::new(
            "rng",
            vec![],
            vec!["Y".into()],
            vec![Block::basic(vec![rand_sys("Y")])],
        ));
        p.add_function(Function::new(
            "pure",
            vec!["X".into()],
            vec!["Y".into()],
            vec![Block::basic(vec![mm("X", "X", "Y")])],
        ));
        let report = compile(&mut p, &LimaConfig::default()).expect("compiles");
        assert_eq!(report.ops_unmarked, 2);
        assert_eq!(report.funcs_reuse_ineligible, 1);
        assert_eq!(p.analysis, report);
    }
}
