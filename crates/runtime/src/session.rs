//! Resource-governed concurrent sessions over one shared reuse cache.
//!
//! A [`SessionPool`] executes compiled programs concurrently against a single
//! [`LineageCache`], so lineage-keyed entries computed by one session are
//! reused by its peers (the paper's process-wide cache sharing across script
//! invocations, §4.4 — made explicit and failure-safe here).
//!
//! Every session carries a [`CancelToken`] plus an optional deadline. Both
//! are checked *cooperatively*: at instruction boundaries, at parfor
//! iteration boundaries, between row chunks of long kernels, and while
//! blocked on another session's placeholder entry (the wait is sliced so a
//! cancelled waiter recovers in milliseconds instead of burning
//! `placeholder_timeout_ms`). A cancelled or expired session surfaces as a
//! typed [`RuntimeError::Cancelled`] / [`RuntimeError::DeadlineExceeded`] and
//! unwinds through the interpreter's normal error paths, which abort any
//! in-flight placeholder reservations — peer sessions blocked on them wake
//! immediately and take over the computation.
//!
//! When the pool's configuration enables the
//! [`lima_core::ResourceGovernor`] (`governor_budget_bytes > 0`), each
//! session additionally reports its live-variable footprint, and session
//! admission is refused with a typed [`RuntimeError::ResourceExhausted`] at
//! pressure level L4.

use crate::context::{DataRegistry, ExecutionContext};
use crate::error::{Result, RuntimeError};
use crate::governor::SessionUsage;
use crate::interp::execute_program;
use crate::program::Program;
use lima_core::interrupt::{CancelToken, Interrupt, InterruptKind};
use lima_core::{EventKind, LimaConfig, LimaStats, LineageCache, ResourceGovernor};
use lima_matrix::Value;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Cooperative interrupt state carried by an executing session's context.
/// Cloned into parfor worker contexts so workers observe the same token and
/// deadline as the session that spawned them.
#[derive(Debug, Clone)]
pub struct SessionCtl {
    token: Arc<CancelToken>,
    deadline: Option<Instant>,
}

impl SessionCtl {
    /// Control block from a token and an optional absolute deadline.
    pub fn new(token: Arc<CancelToken>, deadline: Option<Instant>) -> Self {
        SessionCtl { token, deadline }
    }

    /// The session's cancellation token.
    pub fn token(&self) -> &Arc<CancelToken> {
        &self.token
    }

    /// Installs (or replaces) the absolute deadline.
    pub fn set_deadline(&mut self, deadline: Instant) {
        self.deadline = Some(deadline);
    }

    /// The interrupt view handed to cache waits.
    pub fn interrupt(&self) -> Interrupt {
        Interrupt {
            token: Some(Arc::clone(&self.token)),
            deadline: self.deadline,
        }
    }

    /// Cooperative checkpoint: `Err` once cancelled or past the deadline.
    pub fn check(&self) -> std::result::Result<(), InterruptKind> {
        self.interrupt().check()
    }
}

/// Per-session options for [`SessionPool::spawn`].
#[derive(Default)]
pub struct SessionOptions {
    /// Relative deadline; the session fails with
    /// [`RuntimeError::DeadlineExceeded`] at its next checkpoint past it.
    pub timeout: Option<Duration>,
    /// External cancellation token; one is created when absent. Cancelling it
    /// fails the session with [`RuntimeError::Cancelled`].
    pub token: Option<Arc<CancelToken>>,
    /// Variables bound (and datasets registered) before execution.
    pub inputs: Vec<(String, Value)>,
    /// System-seed base for reproducible `rand`/`sample`.
    pub seed: Option<u64>,
}

impl SessionOptions {
    /// Empty options: no deadline, fresh token, no inputs.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets a relative deadline.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Attaches an external cancellation token.
    pub fn with_token(mut self, token: Arc<CancelToken>) -> Self {
        self.token = Some(token);
        self
    }

    /// Binds an input variable (also registered as a `read` dataset).
    pub fn with_input(mut self, name: impl Into<String>, value: Value) -> Self {
        self.inputs.push((name.into(), value));
        self
    }

    /// Fixes the system-seed base.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }
}

/// Result of a completed session.
#[derive(Debug)]
pub struct SessionOutcome {
    /// Pool-unique session id.
    pub id: u64,
    /// Final symbol table.
    pub values: HashMap<String, Value>,
    /// Collected `print` output.
    pub stdout: Vec<String>,
    /// Wall-clock execution time.
    pub elapsed: Duration,
}

impl SessionOutcome {
    /// Convenience accessor for a result variable.
    pub fn value(&self, var: &str) -> &Value {
        &self.values[var]
    }
}

/// Handle to an in-flight session.
#[derive(Debug)]
pub struct SessionHandle {
    id: u64,
    token: Arc<CancelToken>,
    join: std::thread::JoinHandle<Result<SessionOutcome>>,
}

impl SessionHandle {
    /// Pool-unique session id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The session's cancellation token.
    pub fn token(&self) -> &Arc<CancelToken> {
        &self.token
    }

    /// Requests cooperative cancellation; the session fails with
    /// [`RuntimeError::Cancelled`] at its next checkpoint.
    pub fn cancel(&self) {
        self.token.cancel();
    }

    /// Waits for the session. A panicked session thread surfaces as
    /// [`RuntimeError::WorkerPanic`], never a pool-wide abort.
    pub fn join(self) -> Result<SessionOutcome> {
        match self.join.join() {
            Ok(r) => r,
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "opaque panic payload".to_string());
                Err(RuntimeError::WorkerPanic(msg))
            }
        }
    }
}

/// Executes compiled programs as concurrent sessions over one shared cache,
/// data registry, and statistics block. See the module docs.
pub struct SessionPool {
    config: LimaConfig,
    cache: Option<Arc<LineageCache>>,
    data: Arc<DataRegistry>,
    stats: Arc<LimaStats>,
    next_id: AtomicU64,
}

impl SessionPool {
    /// A pool over `config`. The shared cache is created exactly when a
    /// solo [`ExecutionContext::new`] would create one (tracing + reuse).
    /// Persistent caches get the lineage-driven repair hook installed
    /// automatically unless the config already carries one.
    pub fn new(config: LimaConfig) -> Self {
        // Repairs recompute against the pool's shared registry, so datasets
        // registered by any session serve `read` leaves during repair.
        let data = Arc::new(DataRegistry::new());
        let config = crate::repair::with_default_repair(config, &data);
        let cache = if config.tracing && config.reuse.any() {
            Some(LineageCache::new(config.clone()))
        } else {
            None
        };
        let stats = match &cache {
            Some(c) => c.stats_arc(),
            None => Arc::new(LimaStats::new()),
        };
        SessionPool {
            config,
            cache,
            data,
            stats,
            next_id: AtomicU64::new(1),
        }
    }

    /// The shared reuse cache (None when the configuration disables reuse).
    pub fn cache(&self) -> Option<Arc<LineageCache>> {
        self.cache.clone()
    }

    /// The shared memory-pressure governor, when configured.
    pub fn governor(&self) -> Option<Arc<ResourceGovernor>> {
        self.cache.as_ref().and_then(|c| c.governor())
    }

    /// Shared statistics (same instance the cache reports into).
    pub fn stats(&self) -> Arc<LimaStats> {
        Arc::clone(&self.stats)
    }

    /// Shared dataset registry backing `read` across all sessions.
    pub fn data(&self) -> Arc<DataRegistry> {
        Arc::clone(&self.data)
    }

    /// Admits and starts a session on its own thread. Fails immediately with
    /// [`RuntimeError::ResourceExhausted`] when the governor sits at L4.
    pub fn spawn(&self, program: Arc<Program>, opts: SessionOptions) -> Result<SessionHandle> {
        if let Some(g) = self.governor() {
            if !g.sessions_enabled() {
                LimaStats::bump(&self.stats.sessions_rejected);
                return Err(RuntimeError::ResourceExhausted(format!(
                    "session admission rejected at pressure level {}",
                    g.level().as_str()
                )));
            }
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let token = opts.token.unwrap_or_default();
        let deadline = opts.timeout.map(|t| Instant::now() + t);
        LimaStats::bump(&self.stats.sessions_started);

        let config = self.config.clone();
        let cache = self.cache.clone();
        let data = Arc::clone(&self.data);
        let stats = Arc::clone(&self.stats);
        let tok = Arc::clone(&token);
        let inputs = opts.inputs;
        let seed = opts.seed;
        let join = std::thread::Builder::new()
            .name(format!("lima-session-{id}"))
            .spawn(move || {
                run_session(
                    id, &program, inputs, seed, config, cache, data, &stats, tok, deadline,
                )
            })
            .map_err(|e| RuntimeError::Io(e.to_string()))?;
        Ok(SessionHandle { id, token, join })
    }

    /// Convenience: spawn one session and wait for it.
    pub fn run(&self, program: Arc<Program>, opts: SessionOptions) -> Result<SessionOutcome> {
        self.spawn(program, opts)?.join()
    }
}

#[allow(clippy::too_many_arguments)]
fn run_session(
    id: u64,
    program: &Program,
    inputs: Vec<(String, Value)>,
    seed: Option<u64>,
    config: LimaConfig,
    cache: Option<Arc<LineageCache>>,
    data: Arc<DataRegistry>,
    stats: &Arc<LimaStats>,
    token: Arc<CancelToken>,
    deadline: Option<Instant>,
) -> Result<SessionOutcome> {
    let t0 = Instant::now();
    let mut ctx = ExecutionContext::with_cache(config, cache);
    ctx.data = data;
    ctx.stats = Arc::clone(stats);
    ctx.session = Some(SessionCtl::new(token, deadline));
    ctx.usage = ctx
        .cache
        .as_ref()
        .and_then(|c| c.governor())
        .map(SessionUsage::new);
    if let Some(s) = seed {
        ctx.reset_seed_counter(s);
    }
    for (name, value) in inputs {
        ctx.data.register(name.clone(), value.clone());
        ctx.set(name, value);
    }
    let obs = ctx.config.obs.clone().filter(|o| o.enabled());
    let obs_t0 = obs.as_ref().map(|o| {
        o.record_instant(EventKind::SessionStart, "session", 0, id, 0);
        o.now_ns()
    });
    let result = execute_program(program, &mut ctx);
    match &result {
        Ok(()) => LimaStats::bump(&stats.sessions_completed),
        Err(RuntimeError::Cancelled) => LimaStats::bump(&stats.sessions_cancelled),
        Err(RuntimeError::DeadlineExceeded) => LimaStats::bump(&stats.sessions_deadline_exceeded),
        Err(_) => {}
    }
    if let (Some(o), Some(t0)) = (&obs, obs_t0) {
        let outcome = match &result {
            Ok(()) => "completed",
            Err(RuntimeError::Cancelled) => "cancelled",
            Err(RuntimeError::DeadlineExceeded) => "deadline",
            Err(_) => "failed",
        };
        o.record_span(EventKind::SessionEnd, outcome, 0, t0, id, 0);
    }
    result?;
    Ok(SessionOutcome {
        id,
        values: std::mem::take(&mut ctx.symtab),
        stdout: std::mem::take(&mut ctx.stdout),
        elapsed: t0.elapsed(),
    })
}

// Pool behaviour is exercised in `crates/runtime/tests/sessions.rs`: unit
// tests here cannot compile scripts because the `lima-lang` dev-dependency
// cycle links a second copy of this crate whose `Program` type does not
// unify with `crate::Program`.
