//! Re-computation from lineage (paper §3.1, Fig 3 "reconstruct"): generates a
//! straight-line runtime program from a lineage DAG that — given the same
//! inputs — computes exactly the same intermediate. Deduplicated sub-DAGs are
//! resolved through their patches before code generation.

use crate::context::ExecutionContext;
use crate::error::{Result, RuntimeError};
use crate::instr::{Instr, Op, Operand, RandDistKind};
use crate::interp::execute_instr;
use crate::program::Program;
use lima_core::lineage::item::{LinRef, LineageKind};
use lima_core::opcodes as oc;
use lima_matrix::ops::{AggFn, BinOp, TsmmSide, UnOp};
use lima_matrix::{ScalarValue, Value};
use std::collections::HashMap;

/// A program reconstructed from lineage: instructions plus the variable
/// holding the final result.
#[derive(Debug)]
pub struct ReconstructedProgram {
    pub instrs: Vec<Instr>,
    pub result_var: String,
}

/// Generates a runtime program from a lineage DAG. In contrast to the
/// original program it contains no control flow — only the operations that
/// computed the output.
pub fn reconstruct(root: &LinRef) -> Result<ReconstructedProgram> {
    // Resolve dedup items up front (paper: patches compile into functions;
    // expansion is the semantically equivalent straight-line form).
    let root = expand_dedup(root);
    let order = root.topo_order();
    let mut instrs = Vec::with_capacity(order.len());
    let var_of = |id: u64| format!("t{id}");
    let mut emitted: HashMap<u64, String> = HashMap::new();
    for item in &order {
        let out = var_of(item.id());
        let instr = build_instr(item, &emitted, &out)?;
        if let Some(i) = instr {
            instrs.push(i);
        }
        emitted.insert(item.id(), out);
    }
    Ok(ReconstructedProgram {
        instrs,
        result_var: var_of(root.id()),
    })
}

/// Executes a reconstructed program against a context (whose data registry
/// must serve the original `read` paths and external inputs) and returns the
/// recomputed value.
pub fn recompute(root: &LinRef, ctx: &mut ExecutionContext) -> Result<Value> {
    let prog = reconstruct(root)?;
    let empty = Program::default();
    for i in &prog.instrs {
        execute_instr(i, &empty, ctx)?;
    }
    ctx.get(&prog.result_var).cloned()
}

/// Fully expands dedup items into plain sub-DAGs.
fn expand_dedup(root: &LinRef) -> LinRef {
    // `resolve` only expands the top item; rebuild bottom-up so nested dedup
    // inputs are expanded too.
    let order = root.topo_order();
    let mut rebuilt: HashMap<u64, LinRef> = HashMap::new();
    for item in order {
        let resolved = item.resolve();
        let resolved = if resolved.id() != item.id() {
            // The expansion may itself reference unexpanded inputs; expand
            // recursively (patch bodies contain no dedup items, so inputs
            // were already rebuilt).
            expand_with(&resolved, &rebuilt)
        } else {
            expand_with(&item, &rebuilt)
        };
        rebuilt.insert(item.id(), resolved);
    }
    rebuilt[&root.id()].clone()
}

fn expand_with(item: &LinRef, rebuilt: &HashMap<u64, LinRef>) -> LinRef {
    use lima_core::lineage::item::LineageItem;
    let order = item.topo_order();
    let mut local: HashMap<u64, LinRef> = HashMap::new();
    for node in order {
        if let Some(r) = rebuilt.get(&node.id()) {
            local.insert(node.id(), r.clone());
            continue;
        }
        let new = if node.inputs().is_empty() {
            node.clone()
        } else {
            let ins: Vec<LinRef> = node
                .inputs()
                .iter()
                .map(|i| local.get(&i.id()).cloned().unwrap_or_else(|| i.clone()))
                .collect();
            let changed = ins.iter().zip(node.inputs()).any(|(a, b)| a.id() != b.id());
            if changed {
                match node.data() {
                    Some(d) => LineageItem::op_with_data(node.opcode(), d, ins),
                    None => LineageItem::op(node.opcode(), ins),
                }
            } else {
                node.clone()
            }
        };
        local.insert(node.id(), new);
    }
    local[&item.id()].clone()
}

fn parse_nums(data: &str, op: &str) -> Result<Vec<f64>> {
    data.split(' ')
        .filter(|s| !s.is_empty())
        .map(|s| {
            s.parse::<f64>()
                .map_err(|_| RuntimeError::Reconstruct(format!("{op}: bad data '{data}'")))
        })
        .collect()
}

/// Builds the instruction recomputing a single lineage item. Returns `None`
/// for items that need no instruction.
fn build_instr(item: &LinRef, emitted: &HashMap<u64, String>, out: &str) -> Result<Option<Instr>> {
    let opcode = item.opcode();
    let in_var = |k: usize| -> Result<Operand> {
        let input = item
            .inputs()
            .get(k)
            .ok_or_else(|| RuntimeError::Reconstruct(format!("{opcode}: missing input {k}")))?;
        Ok(Operand::var(emitted.get(&input.id()).ok_or_else(|| {
            RuntimeError::Reconstruct(format!("{opcode}: input {k} not emitted"))
        })?))
    };
    let all_vars = || -> Result<Vec<Operand>> { (0..item.inputs().len()).map(in_var).collect() };
    // Seed inputs are literal items; decode to a literal operand.
    let seed_operand = |k: usize| -> Result<Operand> {
        let input = item
            .inputs()
            .get(k)
            .ok_or_else(|| RuntimeError::Reconstruct(format!("{opcode}: missing seed input")))?;
        match input.kind() {
            LineageKind::Literal => {
                let sv = ScalarValue::from_lineage_literal(input.data().unwrap_or(""))
                    .ok_or_else(|| RuntimeError::Reconstruct("bad seed literal".into()))?;
                Ok(Operand::Lit(sv))
            }
            _ => in_var(k),
        }
    };

    let instr = match item.kind() {
        LineageKind::Literal => {
            let sv =
                ScalarValue::from_lineage_literal(item.data().unwrap_or("")).ok_or_else(|| {
                    RuntimeError::Reconstruct(format!("bad literal '{:?}'", item.data()))
                })?;
            Instr::new(Op::Assign, vec![Operand::Lit(sv)], out)
        }
        LineageKind::Placeholder(slot) => {
            return Err(RuntimeError::Reconstruct(format!(
                "unresolved placeholder slot {slot}"
            )))
        }
        LineageKind::Dedup(_) => {
            return Err(RuntimeError::Reconstruct(
                "dedup item survived expansion".into(),
            ))
        }
        LineageKind::Op => {
            let data = item.data().unwrap_or("");
            match opcode {
                oc::READ => Instr::new(Op::Read, vec![Operand::str(data)], out),
                oc::MATRIX_FILL => {
                    let n = parse_nums(data, opcode)?;
                    if n.len() != 3 {
                        return Err(RuntimeError::Reconstruct("fill expects 3 params".into()));
                    }
                    Instr::new(
                        Op::Fill,
                        vec![
                            Operand::f64(n[0]),
                            Operand::i64(n[1] as i64),
                            Operand::i64(n[2] as i64),
                        ],
                        out,
                    )
                }
                oc::RAND => {
                    // data: "rows cols dist p1 p2 sparsity"
                    let parts: Vec<&str> = data.split(' ').collect();
                    if parts.len() != 6 {
                        return Err(RuntimeError::Reconstruct("rand expects 6 params".into()));
                    }
                    let kind = match parts[2] {
                        "uniform" => RandDistKind::Uniform,
                        "normal" => RandDistKind::Normal,
                        other => {
                            return Err(RuntimeError::Reconstruct(format!(
                                "unknown distribution '{other}'"
                            )))
                        }
                    };
                    let p = |s: &str| {
                        s.parse::<f64>().map_err(|_| {
                            RuntimeError::Reconstruct(format!("rand: bad param '{s}'"))
                        })
                    };
                    Instr::new(
                        Op::Rand(kind),
                        vec![
                            Operand::i64(p(parts[0])? as i64),
                            Operand::i64(p(parts[1])? as i64),
                            Operand::f64(p(parts[3])?),
                            Operand::f64(p(parts[4])?),
                            Operand::f64(p(parts[5])?),
                            seed_operand(0)?,
                        ],
                        out,
                    )
                }
                oc::SAMPLE => {
                    let n = parse_nums(data, opcode)?;
                    if n.len() != 2 {
                        return Err(RuntimeError::Reconstruct("sample expects 2 params".into()));
                    }
                    Instr::new(
                        Op::Sample,
                        vec![
                            Operand::i64(n[0] as i64),
                            Operand::i64(n[1] as i64),
                            seed_operand(0)?,
                        ],
                        out,
                    )
                }
                oc::SEQ => {
                    let n = parse_nums(data, opcode)?;
                    if n.len() != 3 {
                        return Err(RuntimeError::Reconstruct("seq expects 3 params".into()));
                    }
                    Instr::new(
                        Op::Seq,
                        vec![Operand::f64(n[0]), Operand::f64(n[1]), Operand::f64(n[2])],
                        out,
                    )
                }
                oc::RIGHT_INDEX => {
                    let n = parse_nums(data, opcode)?;
                    if n.len() != 4 {
                        return Err(RuntimeError::Reconstruct(
                            "rightIndex expects 4 bounds".into(),
                        ));
                    }
                    // Stored bounds are 0-based inclusive; operands are 1-based.
                    Instr::new(
                        Op::RightIndex,
                        vec![
                            in_var(0)?,
                            Operand::i64(n[0] as i64 + 1),
                            Operand::i64(n[1] as i64 + 1),
                            Operand::i64(n[2] as i64 + 1),
                            Operand::i64(n[3] as i64 + 1),
                        ],
                        out,
                    )
                }
                oc::LEFT_INDEX => {
                    let n = parse_nums(data, opcode)?;
                    if n.len() != 2 {
                        return Err(RuntimeError::Reconstruct(
                            "leftIndex expects 2 offsets".into(),
                        ));
                    }
                    Instr::new(
                        Op::LeftIndex,
                        vec![
                            in_var(0)?,
                            in_var(1)?,
                            Operand::i64(n[0] as i64 + 1),
                            Operand::i64(n[1] as i64 + 1),
                        ],
                        out,
                    )
                }
                oc::TSMM => {
                    let side = if data == "RIGHT" {
                        TsmmSide::Right
                    } else {
                        TsmmSide::Left
                    };
                    Instr::new(Op::Tsmm(side), vec![in_var(0)?], out)
                }
                oc::ORDER => Instr::new(
                    Op::Order,
                    vec![in_var(0)?, Operand::bool(data == "desc")],
                    out,
                ),
                oc::RESHAPE => {
                    let n = parse_nums(data, opcode)?;
                    Instr::new(
                        Op::Reshape,
                        vec![
                            in_var(0)?,
                            Operand::i64(n[0] as i64),
                            Operand::i64(n[1] as i64),
                        ],
                        out,
                    )
                }
                oc::LIST_GET => {
                    let idx: i64 = data
                        .parse()
                        .map_err(|_| RuntimeError::Reconstruct("bad list index".into()))?;
                    // Lineage stores 0-based output indices; runtime ListGet
                    // is 1-based.
                    Instr::new(Op::ListGet, vec![in_var(0)?, Operand::i64(idx + 1)], out)
                }
                oc::MATMULT => Instr::new(Op::MatMult, all_vars()?, out),
                oc::TRANSPOSE => Instr::new(Op::Transpose, all_vars()?, out),
                oc::CBIND => Instr::new(Op::Cbind, all_vars()?, out),
                oc::RBIND => Instr::new(Op::Rbind, all_vars()?, out),
                oc::SOLVE => Instr::new(Op::Solve, all_vars()?, out),
                oc::DIAG => Instr::new(Op::Diag, all_vars()?, out),
                oc::EIGEN => Instr::multi(
                    Op::Eigen,
                    all_vars()?,
                    vec![format!("{out}"), format!("{out}_vec")],
                ),
                oc::REV => Instr::new(Op::Rev, all_vars()?, out),
                oc::TABLE => Instr::new(Op::Table, all_vars()?, out),
                oc::ROW_INDEX_MAX => Instr::new(Op::RowIndexMax, all_vars()?, out),
                oc::NROW => Instr::new(Op::Nrow, all_vars()?, out),
                oc::NCOL => Instr::new(Op::Ncol, all_vars()?, out),
                oc::CAST_SCALAR => Instr::new(Op::CastScalar, all_vars()?, out),
                oc::CAST_MATRIX => Instr::new(Op::CastMatrix, all_vars()?, out),
                oc::LIST => Instr::new(Op::ListNew, all_vars()?, out),
                oc::SELECT_COLS => Instr::new(Op::SelectCols, all_vars()?, out),
                oc::SELECT_ROWS => Instr::new(Op::SelectRows, all_vars()?, out),
                oc::CONCAT => Instr::new(Op::Concat, all_vars()?, out),
                other => {
                    if let Some(b) = BinOp::from_opcode(other) {
                        Instr::new(Op::Binary(b), all_vars()?, out)
                    } else if let Some(u) = UnOp::from_opcode(other) {
                        Instr::new(Op::Unary(u), all_vars()?, out)
                    } else if let Some(f) = other
                        .strip_prefix(oc::COL_AGG_PREFIX)
                        .and_then(AggFn::from_name)
                    {
                        Instr::new(Op::ColAgg(f), all_vars()?, out)
                    } else if let Some(f) = other
                        .strip_prefix(oc::ROW_AGG_PREFIX)
                        .and_then(AggFn::from_name)
                    {
                        Instr::new(Op::RowAgg(f), all_vars()?, out)
                    } else if let Some(f) = other
                        .strip_prefix(oc::FULL_AGG_PREFIX)
                        .and_then(AggFn::from_name)
                    {
                        Instr::new(Op::FullAgg(f), all_vars()?, out)
                    } else {
                        return Err(RuntimeError::Reconstruct(format!(
                            "unsupported opcode '{other}' (multi-level items cannot be \
                             reconstructed; re-trace with multi-level reuse disabled)"
                        )));
                    }
                }
            }
        }
    };
    Ok(Some(instr))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lima_core::lineage::dedup::DedupPatch;
    use lima_core::lineage::item::LineageItem;
    use lima_core::LimaConfig;
    use lima_matrix::DenseMatrix;

    fn ctx_with(path: &str, m: DenseMatrix) -> ExecutionContext {
        let ctx = ExecutionContext::new(LimaConfig::base());
        ctx.data.register(path, Value::matrix(m));
        ctx
    }

    #[test]
    fn reconstructs_simple_expression() {
        // lineage of (X + X) * X
        let x = LineageItem::op_with_data(oc::READ, "X.csv", vec![]);
        let s = LineageItem::op("+", vec![x.clone(), x.clone()]);
        let root = LineageItem::op("*", vec![s, x]);
        let m = DenseMatrix::from_fn(3, 2, |i, j| (i + j) as f64 + 1.0);
        let mut ctx = ctx_with("X.csv", m.clone());
        let got = recompute(&root, &mut ctx).unwrap();
        let expect = DenseMatrix::from_fn(3, 2, |i, j| {
            let v = m.get(i, j);
            (v + v) * v
        });
        assert!(got.as_matrix().unwrap().approx_eq(&expect, 1e-12));
    }

    #[test]
    fn reconstructs_rand_with_captured_seed() {
        let seed = LineageItem::literal("i:42");
        let root = LineageItem::op_with_data(oc::RAND, "3 4 uniform 0 1 1", vec![seed]);
        let mut ctx = ExecutionContext::new(LimaConfig::base());
        let got = recompute(&root, &mut ctx).unwrap();
        let expect = lima_matrix::rand_gen::rand_matrix(
            3,
            4,
            lima_matrix::rand_gen::RandDist::Uniform { min: 0.0, max: 1.0 },
            1.0,
            42,
        )
        .unwrap();
        assert!(got.as_matrix().unwrap().approx_eq(&expect, 0.0));
    }

    #[test]
    fn reconstructs_slicing_with_stored_bounds() {
        let x = LineageItem::op_with_data(oc::READ, "X", vec![]);
        let root = LineageItem::op_with_data(oc::RIGHT_INDEX, "1 2 0 1", vec![x]);
        let m = DenseMatrix::from_fn(4, 3, |i, j| (i * 3 + j) as f64);
        let mut ctx = ctx_with("X", m.clone());
        let got = recompute(&root, &mut ctx).unwrap();
        let expect = lima_matrix::ops::slice(&m, 1, 2, 0, 1).unwrap();
        assert!(got.as_matrix().unwrap().approx_eq(&expect, 0.0));
    }

    #[test]
    fn reconstructs_through_dedup_items() {
        // PageRank-like: p = G %*% p + p, three deduplicated iterations.
        let p0 = LineageItem::placeholder(0);
        let p1 = LineageItem::placeholder(1);
        let body = LineageItem::op(
            "+",
            vec![LineageItem::op(oc::MATMULT, vec![p0, p1.clone()]), p1],
        );
        let patch = DedupPatch::new("loop:pr", 0, 2, vec![("p".into(), body)]);
        let g = LineageItem::op_with_data(oc::READ, "G", vec![]);
        let mut p = LineageItem::op_with_data(oc::READ, "p0", vec![]);
        for _ in 0..3 {
            p = LineageItem::dedup(patch.clone(), "p", vec![g.clone(), p]);
        }
        let gm = DenseMatrix::from_fn(3, 3, |i, j| ((i + j) % 2) as f64 * 0.5);
        let pm = DenseMatrix::filled(3, 1, 1.0);
        let mut ctx = ExecutionContext::new(LimaConfig::base());
        ctx.data.register("G", Value::matrix(gm.clone()));
        ctx.data.register("p0", Value::matrix(pm.clone()));
        let got = recompute(&p, &mut ctx).unwrap();
        // Reference: three plain iterations.
        let mut r = pm;
        for _ in 0..3 {
            let gp = lima_matrix::ops::matmult(&gm, &r).unwrap();
            r = lima_matrix::ops::ew_matrix_matrix(BinOp::Add, &gp, &r).unwrap();
        }
        assert!(got.as_matrix().unwrap().approx_eq(&r, 1e-12));
    }

    #[test]
    fn unsupported_items_are_rejected() {
        let ph = LineageItem::placeholder(0);
        assert!(reconstruct(&ph).is_err());
        let fcall = LineageItem::op_with_data("fcall:lm", "lm", vec![]);
        assert!(reconstruct(&fcall).is_err());
    }

    #[test]
    fn literals_reconstruct_to_assignments() {
        let a = LineageItem::literal("f:2.5");
        let b = LineageItem::literal("f:4");
        let root = LineageItem::op("*", vec![a, b]);
        let mut ctx = ExecutionContext::new(LimaConfig::base());
        let got = recompute(&root, &mut ctx).unwrap();
        assert_eq!(got.as_f64().unwrap(), 10.0);
    }
}
