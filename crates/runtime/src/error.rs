//! Runtime error type.

use lima_matrix::MatrixError;
use std::fmt;

/// Result alias for runtime operations.
pub type Result<T> = std::result::Result<T, RuntimeError>;

/// Errors raised while executing a LIMA program.
#[derive(Debug, Clone)]
pub enum RuntimeError {
    /// A matrix kernel failed (shape mismatch, singular system, ...).
    Kernel(MatrixError),
    /// A variable was read before being defined.
    UndefinedVariable(String),
    /// A function call could not be resolved.
    UndefinedFunction(String),
    /// Wrong number / type of operands for an instruction.
    BadOperands { op: String, msg: String },
    /// A `read` referenced a dataset that was never registered.
    UnknownDataset(String),
    /// Type error at script level (e.g. matrix used as predicate).
    TypeError(String),
    /// Reconstruction from lineage hit an unsupported item.
    Reconstruct(String),
    /// I/O failure (write instruction, lineage log).
    Io(String),
    /// A parfor worker panicked; the panic was isolated to the worker and
    /// surfaced here with its payload message instead of aborting the process.
    WorkerPanic(String),
    /// The session's deadline passed; execution stopped at a cooperative
    /// checkpoint (instruction boundary, parfor iteration, kernel row chunk,
    /// or cache placeholder wait).
    DeadlineExceeded,
    /// The session's `CancelToken` was cancelled.
    Cancelled,
    /// The resource governor rejected an admission (degradation ladder L4).
    ResourceExhausted(String),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Kernel(e) => write!(f, "kernel error: {e}"),
            RuntimeError::UndefinedVariable(v) => write!(f, "undefined variable '{v}'"),
            RuntimeError::UndefinedFunction(v) => write!(f, "undefined function '{v}'"),
            RuntimeError::BadOperands { op, msg } => write!(f, "bad operands for {op}: {msg}"),
            RuntimeError::UnknownDataset(p) => write!(f, "unknown dataset '{p}'"),
            RuntimeError::TypeError(m) => write!(f, "type error: {m}"),
            RuntimeError::Reconstruct(m) => write!(f, "reconstruct: {m}"),
            RuntimeError::Io(m) => write!(f, "i/o error: {m}"),
            RuntimeError::WorkerPanic(m) => write!(f, "parfor worker panicked: {m}"),
            RuntimeError::DeadlineExceeded => write!(f, "deadline exceeded"),
            RuntimeError::Cancelled => write!(f, "session cancelled"),
            RuntimeError::ResourceExhausted(m) => write!(f, "resource exhausted: {m}"),
        }
    }
}

impl From<lima_core::InterruptKind> for RuntimeError {
    fn from(kind: lima_core::InterruptKind) -> Self {
        match kind {
            lima_core::InterruptKind::Cancelled => RuntimeError::Cancelled,
            lima_core::InterruptKind::DeadlineExceeded => RuntimeError::DeadlineExceeded,
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<MatrixError> for RuntimeError {
    fn from(e: MatrixError) -> Self {
        match e {
            // A panicking kernel worker is an execution fault, not a shape
            // error: route it to the same typed path as parfor worker panics
            // so sessions fail the script instead of aborting the process.
            MatrixError::WorkerPanic(msg) => RuntimeError::WorkerPanic(msg),
            other => RuntimeError::Kernel(other),
        }
    }
}

impl From<std::io::Error> for RuntimeError {
    fn from(e: std::io::Error) -> Self {
        RuntimeError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e: RuntimeError = MatrixError::Singular("solve").into();
        assert!(e.to_string().contains("solve"));
        assert!(RuntimeError::UndefinedVariable("x".into())
            .to_string()
            .contains("'x'"));
        assert!(RuntimeError::UnknownDataset("d".into())
            .to_string()
            .contains("'d'"));
        assert!(RuntimeError::WorkerPanic("boom".into())
            .to_string()
            .contains("boom"));
        assert!(RuntimeError::DeadlineExceeded
            .to_string()
            .contains("deadline"));
        assert!(RuntimeError::Cancelled.to_string().contains("cancelled"));
        assert!(RuntimeError::ResourceExhausted("L4".into())
            .to_string()
            .contains("L4"));
    }

    #[test]
    fn interrupt_kinds_map_to_typed_errors() {
        use lima_core::InterruptKind;
        assert!(matches!(
            RuntimeError::from(InterruptKind::Cancelled),
            RuntimeError::Cancelled
        ));
        assert!(matches!(
            RuntimeError::from(InterruptKind::DeadlineExceeded),
            RuntimeError::DeadlineExceeded
        ));
    }
}
