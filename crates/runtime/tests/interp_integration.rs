//! Integration tests for the interpreter: tracing, reuse, dedup, parfor,
//! multi-level reuse, and reconstruction over hand-built programs.

use lima_core::lineage::serialize::{deserialize_lineage, serialize_lineage};
use lima_core::{LimaConfig, LimaStats, ReuseMode};
use lima_matrix::ops::{BinOp, TsmmSide};
use lima_matrix::{DenseMatrix, Value};
use lima_runtime::compiler::compile;
use lima_runtime::reconstruct::recompute;
use lima_runtime::{
    execute_program, Block, ExecutionContext, ExprProg, Function, Instr, Op, Operand, Program,
};

fn mk_matrix(rows: usize, cols: usize, salt: u64) -> DenseMatrix {
    DenseMatrix::from_fn(rows, cols, |i, j| {
        (((i as u64 * 31 + j as u64 * 17 + salt) % 19) as f64) / 19.0 - 0.5
    })
}

fn run(program: &mut Program, config: LimaConfig, data: &[(&str, Value)]) -> ExecutionContext {
    compile(program, &config).expect("program compiles");
    let mut ctx = ExecutionContext::new(config);
    for (k, v) in data {
        ctx.data.register(*k, v.clone());
    }
    execute_program(program, &mut ctx).expect("program runs");
    ctx
}

fn read(path: &str, out: &str) -> Instr {
    Instr::new(Op::Read, vec![Operand::str(path)], out)
}

fn mm(a: &str, b: &str, out: &str) -> Instr {
    Instr::new(Op::MatMult, vec![Operand::var(a), Operand::var(b)], out)
}

#[test]
fn straight_line_program_computes_and_traces() {
    // Z = (X %*% Y) ; s = sum(Z)
    let mut p = Program::new(vec![Block::basic(vec![
        read("X", "X"),
        read("Y", "Y"),
        mm("X", "Y", "Z"),
        Instr::new(
            Op::FullAgg(lima_matrix::ops::AggFn::Sum),
            vec![Operand::var("Z")],
            "s",
        ),
    ])]);
    let x = mk_matrix(6, 4, 1);
    let y = mk_matrix(4, 3, 2);
    let ctx = run(
        &mut p,
        LimaConfig::lima(),
        &[
            ("X", Value::matrix(x.clone())),
            ("Y", Value::matrix(y.clone())),
        ],
    );
    let expect = lima_matrix::ops::matmult(&x, &y).unwrap();
    assert!(ctx.symtab["Z"]
        .as_matrix()
        .unwrap()
        .approx_eq(&expect, 1e-12));
    let s = ctx.symtab["s"].as_f64().unwrap();
    assert!((s - lima_matrix::ops::full_agg(&expect, lima_matrix::ops::AggFn::Sum)).abs() < 1e-9);
    // Lineage exists for Z and records the matmult.
    let z_lin = ctx.lineage.get("Z").unwrap();
    assert_eq!(z_lin.opcode(), "ba+*");
    assert_eq!(z_lin.shape(), Some((6, 3)));
}

#[test]
fn repeated_operations_hit_the_cache() {
    // Two identical matmults; the second must be a full-reuse hit.
    let mut p = Program::new(vec![Block::basic(vec![
        read("X", "X"),
        read("Y", "Y"),
        mm("X", "Y", "Z1"),
        mm("X", "Y", "Z2"),
    ])]);
    let ctx = run(
        &mut p,
        LimaConfig::lima(),
        &[
            ("X", Value::matrix(mk_matrix(5, 4, 1))),
            ("Y", Value::matrix(mk_matrix(4, 2, 2))),
        ],
    );
    assert_eq!(LimaStats::get(&ctx.stats.full_hits), 1);
    assert_eq!(ctx.symtab["Z1"], ctx.symtab["Z2"]);
}

#[test]
fn results_identical_with_and_without_reuse() {
    // A small pipeline with branches and a loop; the global invariant:
    // reuse on == reuse off.
    let build = || {
        let body = vec![Block::basic(vec![
            Instr::new(Op::Tsmm(TsmmSide::Left), vec![Operand::var("X")], "G"),
            Instr::new(
                Op::Binary(BinOp::Mul),
                vec![Operand::var("G"), Operand::var("i")],
                "Gi",
            ),
            Instr::new(
                Op::Binary(BinOp::Add),
                vec![Operand::var("acc"), Operand::var("Gi")],
                "acc",
            ),
        ])];
        Program::new(vec![
            Block::basic(vec![
                read("X", "X"),
                Instr::new(
                    Op::Fill,
                    vec![Operand::f64(0.0), Operand::i64(4), Operand::i64(4)],
                    "acc",
                ),
            ]),
            Block::for_loop(
                "i",
                ExprProg::lit(Operand::i64(1)),
                ExprProg::lit(Operand::i64(5)),
                ExprProg::lit(Operand::i64(1)),
                body,
            ),
        ])
    };
    let x = Value::matrix(mk_matrix(10, 4, 3));
    let base = run(&mut build(), LimaConfig::base(), &[("X", x.clone())]);
    let lima = run(&mut build(), LimaConfig::lima(), &[("X", x)]);
    assert!(base.symtab["acc"].approx_eq(&lima.symtab["acc"], 1e-12));
    // The tsmm is loop-invariant: reused in 4 of 5 iterations.
    assert!(LimaStats::get(&lima.stats.full_hits) >= 4);
}

#[test]
fn partial_reuse_fires_for_tsmm_cbind() {
    // ts = tsmm(X); Z = cbind(X, d); W = tsmm(Z) — W assembled partially.
    let mut config = LimaConfig::lima();
    config.compiler_assist = false; // keep the cbind (exercise the runtime rewrite)
    let mut p = Program::new(vec![Block::basic(vec![
        read("X", "X"),
        read("d", "d"),
        Instr::new(Op::Tsmm(TsmmSide::Left), vec![Operand::var("X")], "ts"),
        Instr::new(Op::Cbind, vec![Operand::var("X"), Operand::var("d")], "Z"),
        Instr::new(Op::Tsmm(TsmmSide::Left), vec![Operand::var("Z")], "W"),
    ])]);
    let x = mk_matrix(20, 5, 1);
    let d = mk_matrix(20, 1, 2);
    let ctx = run(
        &mut p,
        config,
        &[
            ("X", Value::matrix(x.clone())),
            ("d", Value::matrix(d.clone())),
        ],
    );
    assert_eq!(LimaStats::get(&ctx.stats.partial_hits), 1);
    let z = lima_matrix::ops::cbind(&x, &d).unwrap();
    let expect = lima_matrix::ops::tsmm(&z, TsmmSide::Left).unwrap();
    assert!(ctx.symtab["W"].as_matrix().unwrap().rel_eq(&expect, 1e-12));
}

#[test]
fn dedup_compresses_loop_lineage() {
    // PageRank-style loop, deduplicated.
    let body = vec![Block::basic(vec![
        mm("G", "p", "t1"),
        Instr::new(
            Op::Binary(BinOp::Mul),
            vec![Operand::var("t1"), Operand::f64(0.85)],
            "t2",
        ),
        Instr::new(
            Op::Binary(BinOp::Add),
            vec![Operand::var("t2"), Operand::var("p")],
            "p",
        ),
    ])];
    let build = |dedup: bool| {
        let p = Program::new(vec![
            Block::basic(vec![read("G", "G"), read("p0", "p")]),
            Block::for_loop(
                "i",
                ExprProg::lit(Operand::i64(1)),
                ExprProg::lit(Operand::i64(10)),
                ExprProg::lit(Operand::i64(1)),
                body.clone(),
            ),
        ]);
        let mut config = if dedup {
            LimaConfig::tracing_dedup()
        } else {
            LimaConfig::tracing_only()
        };
        config.compiler_assist = false;
        (p, config)
    };
    let g = Value::matrix(mk_matrix(6, 6, 1));
    let p0 = Value::matrix(mk_matrix(6, 1, 2));
    let (mut prog_d, cfg_d) = build(true);
    let ctx_d = run(&mut prog_d, cfg_d, &[("G", g.clone()), ("p0", p0.clone())]);
    let (mut prog_p, cfg_p) = build(false);
    let ctx_p = run(&mut prog_p, cfg_p, &[("G", g), ("p0", p0)]);
    // Same values.
    assert!(ctx_d.symtab["p"].approx_eq(&ctx_p.symtab["p"], 1e-12));
    // Deduplicated and plain lineage compare equal...
    let ld = ctx_d.lineage.get("p").unwrap();
    let lp = ctx_p.lineage.get("p").unwrap();
    assert!(lima_core::lineage::item::lineage_eq(ld, lp));
    // ...but the deduplicated DAG is much smaller.
    assert!(
        ld.dag_size() < lp.dag_size(),
        "{} vs {}",
        ld.dag_size(),
        lp.dag_size()
    );
    assert_eq!(LimaStats::get(&ctx_d.stats.dedup_patches), 1);
    assert!(LimaStats::get(&ctx_d.stats.dedup_items) >= 10);
    // Dedup traces serialize compactly and round-trip.
    let log = serialize_lineage(ld);
    let back = deserialize_lineage(&log).unwrap();
    assert!(lima_core::lineage::item::lineage_eq(&back, lp));
}

#[test]
fn dedup_with_branches_traces_each_path_once() {
    // Loop with a branch on i: two control paths, two patches.
    let body = vec![
        Block::basic(vec![Instr::new(
            Op::Binary(BinOp::Le),
            vec![Operand::var("i"), Operand::i64(3)],
            "c",
        )]),
        Block::if_else(
            ExprProg::var("c"),
            vec![Block::basic(vec![Instr::new(
                Op::Binary(BinOp::Add),
                vec![Operand::var("x"), Operand::f64(1.0)],
                "x",
            )])],
            vec![Block::basic(vec![Instr::new(
                Op::Binary(BinOp::Mul),
                vec![Operand::var("x"), Operand::f64(2.0)],
                "x",
            )])],
        ),
    ];
    let mut p = Program::new(vec![
        Block::basic(vec![read("x0", "x")]),
        Block::for_loop(
            "i",
            ExprProg::lit(Operand::i64(1)),
            ExprProg::lit(Operand::i64(6)),
            ExprProg::lit(Operand::i64(1)),
            body,
        ),
    ]);
    let mut cfg = LimaConfig::tracing_dedup();
    cfg.compiler_assist = false;
    let x0 = Value::matrix(DenseMatrix::filled(2, 2, 1.0));
    let ctx = run(&mut p, cfg, &[("x0", x0)]);
    // (1+1+1+1)*2*2*2 = wait: 3 adds then 3 muls: ((1+3) * 8) = 32
    let expect = DenseMatrix::filled(2, 2, 32.0);
    assert!(ctx.symtab["x"]
        .as_matrix()
        .unwrap()
        .approx_eq(&expect, 1e-12));
    assert_eq!(LimaStats::get(&ctx.stats.dedup_patches), 2);
}

#[test]
fn dedup_captures_seeds_of_nondeterministic_ops() {
    // Loop body draws a random matrix each iteration; the seed becomes a
    // dedup input, so lineage reconstruction reproduces the values.
    let body = vec![Block::basic(vec![
        Instr::new(
            Op::Rand(lima_runtime::instr::RandDistKind::Uniform),
            vec![
                Operand::i64(3),
                Operand::i64(3),
                Operand::f64(0.0),
                Operand::f64(1.0),
                Operand::f64(1.0),
                Operand::i64(-1),
            ],
            "R",
        ),
        Instr::new(
            Op::Binary(BinOp::Add),
            vec![Operand::var("acc"), Operand::var("R")],
            "acc",
        ),
    ])];
    let mut p = Program::new(vec![
        Block::basic(vec![Instr::new(
            Op::Fill,
            vec![Operand::f64(0.0), Operand::i64(3), Operand::i64(3)],
            "acc",
        )]),
        Block::for_loop(
            "i",
            ExprProg::lit(Operand::i64(1)),
            ExprProg::lit(Operand::i64(4)),
            ExprProg::lit(Operand::i64(1)),
            body,
        ),
    ]);
    let mut cfg = LimaConfig::tracing_dedup();
    cfg.compiler_assist = false;
    let ctx = run(&mut p, cfg, &[]);
    let lin = ctx.lineage.get("acc").unwrap().clone();
    // Recompute from lineage and compare.
    let mut rctx = ExecutionContext::new(LimaConfig::base());
    let recomputed = recompute(&lin, &mut rctx).expect("recompute");
    assert!(recomputed.approx_eq(&ctx.symtab["acc"], 1e-12));
}

#[test]
fn parfor_matches_serial_for() {
    // parfor writing row slices into a result matrix.
    let body = vec![Block::basic(vec![
        Instr::new(
            Op::RightIndex,
            vec![
                Operand::var("X"),
                Operand::var("i"),
                Operand::var("i"),
                Operand::i64(1),
                Operand::i64(0),
            ],
            "row",
        ),
        Instr::new(
            Op::Binary(BinOp::Mul),
            vec![Operand::var("row"), Operand::f64(2.0)],
            "row2",
        ),
        Instr::new(
            Op::LeftIndex,
            vec![
                Operand::var("B"),
                Operand::var("row2"),
                Operand::var("i"),
                Operand::i64(1),
            ],
            "B",
        ),
    ])];
    let build = |parallel: bool| {
        let loop_block = if parallel {
            Block::parfor(
                "i",
                ExprProg::lit(Operand::i64(1)),
                ExprProg::lit(Operand::i64(16)),
                ExprProg::lit(Operand::i64(1)),
                body.clone(),
            )
        } else {
            Block::for_loop(
                "i",
                ExprProg::lit(Operand::i64(1)),
                ExprProg::lit(Operand::i64(16)),
                ExprProg::lit(Operand::i64(1)),
                body.clone(),
            )
        };
        Program::new(vec![
            Block::basic(vec![
                read("X", "X"),
                Instr::new(
                    Op::Fill,
                    vec![Operand::f64(0.0), Operand::i64(16), Operand::i64(3)],
                    "B",
                ),
            ]),
            loop_block,
        ])
    };
    let x = Value::matrix(mk_matrix(16, 3, 7));
    let serial = run(&mut build(false), LimaConfig::lima(), &[("X", x.clone())]);
    let parallel = run(&mut build(true), LimaConfig::lima(), &[("X", x)]);
    assert!(serial.symtab["B"].approx_eq(&parallel.symtab["B"], 1e-12));
    // Parfor merges lineage.
    assert!(parallel.lineage.get("B").is_some());
}

#[test]
fn function_calls_and_multilevel_reuse() {
    // f(X) = tsmm(X); called twice with the same input → second call reused
    // at function level.
    let mut p = Program::new(vec![Block::basic(vec![
        read("X", "X"),
        Instr::multi(
            Op::FCall("gram".into()),
            vec![Operand::var("X")],
            vec!["G1".into()],
        ),
        Instr::multi(
            Op::FCall("gram".into()),
            vec![Operand::var("X")],
            vec!["G2".into()],
        ),
    ])]);
    p.add_function(Function::new(
        "gram",
        vec!["A".into()],
        vec!["G".into()],
        vec![Block::basic(vec![Instr::new(
            Op::Tsmm(TsmmSide::Left),
            vec![Operand::var("A")],
            "G",
        )])],
    ));
    let x = mk_matrix(12, 4, 5);
    let ctx = run(
        &mut p,
        LimaConfig::lima(),
        &[("X", Value::matrix(x.clone()))],
    );
    assert_eq!(ctx.symtab["G1"], ctx.symtab["G2"]);
    assert_eq!(LimaStats::get(&ctx.stats.multilevel_hits), 1);
    let expect = lima_matrix::ops::tsmm(&x, TsmmSide::Left).unwrap();
    assert!(ctx.symtab["G1"].as_matrix().unwrap().rel_eq(&expect, 1e-12));
}

#[test]
fn nondeterministic_functions_are_not_memoized() {
    let mut p = Program::new(vec![Block::basic(vec![
        Instr::multi(Op::FCall("draw".into()), vec![], vec!["R1".into()]),
        Instr::multi(Op::FCall("draw".into()), vec![], vec!["R2".into()]),
    ])]);
    p.add_function(Function::new(
        "draw",
        vec![],
        vec!["R".into()],
        vec![Block::basic(vec![Instr::new(
            Op::Rand(lima_runtime::instr::RandDistKind::Uniform),
            vec![
                Operand::i64(4),
                Operand::i64(4),
                Operand::f64(0.0),
                Operand::f64(1.0),
                Operand::f64(1.0),
                Operand::i64(-1),
            ],
            "R",
        )])],
    ));
    let ctx = run(&mut p, LimaConfig::lima(), &[]);
    assert_ne!(ctx.symtab["R1"], ctx.symtab["R2"]);
    assert_eq!(LimaStats::get(&ctx.stats.multilevel_hits), 0);
}

#[test]
fn while_loop_and_predicates() {
    // s = 1; while (s < 100) s = s * 2  → 128
    let mut p = Program::new(vec![
        Block::basic(vec![Instr::new(Op::Assign, vec![Operand::f64(1.0)], "s")]),
        Block::while_loop(
            ExprProg::new(
                vec![Instr::new(
                    Op::Binary(BinOp::Lt),
                    vec![Operand::var("s"), Operand::f64(100.0)],
                    "__c",
                )],
                Operand::var("__c"),
            ),
            vec![Block::basic(vec![Instr::new(
                Op::Binary(BinOp::Mul),
                vec![Operand::var("s"), Operand::f64(2.0)],
                "s",
            )])],
        ),
    ]);
    let ctx = run(&mut p, LimaConfig::lima(), &[]);
    assert_eq!(ctx.symtab["s"].as_f64().unwrap(), 128.0);
}

#[test]
fn write_emits_lineage_log() {
    let dir = std::env::temp_dir().join(format!("lima-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("out.csv");
    let mut p = Program::new(vec![Block::basic(vec![
        read("X", "X"),
        Instr::new(
            Op::Binary(BinOp::Add),
            vec![Operand::var("X"), Operand::var("X")],
            "Y",
        ),
        Instr::effect(
            Op::Write,
            vec![Operand::var("Y"), Operand::str(path.to_str().unwrap())],
        ),
    ])]);
    let x = mk_matrix(3, 3, 9);
    let _ctx = run(&mut p, LimaConfig::lima(), &[("X", Value::matrix(x))]);
    assert!(path.exists());
    let lineage_path = format!("{}.lineage", path.display());
    let log = std::fs::read_to_string(&lineage_path).unwrap();
    let back = deserialize_lineage(&log).unwrap();
    assert_eq!(back.opcode(), "+");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn eigen_multi_output_binding() {
    let mut p = Program::new(vec![Block::basic(vec![
        read("C", "C"),
        Instr::multi(
            Op::Eigen,
            vec![Operand::var("C")],
            vec!["evals".into(), "evects".into()],
        ),
    ])]);
    let c = DenseMatrix::new(2, 2, vec![2.0, 1.0, 1.0, 2.0]).unwrap();
    let ctx = run(&mut p, LimaConfig::lima(), &[("C", Value::matrix(c))]);
    assert_eq!(ctx.symtab["evals"].as_matrix().unwrap().shape(), (2, 1));
    assert_eq!(ctx.symtab["evects"].as_matrix().unwrap().shape(), (2, 2));
    // Distinct lineage per output.
    let l1 = ctx.lineage.get("evals").unwrap();
    let l2 = ctx.lineage.get("evects").unwrap();
    assert!(!lima_core::lineage::item::lineage_eq(l1, l2));
}

#[test]
fn reconstruction_reproduces_traced_intermediate() {
    let mut p = Program::new(vec![Block::basic(vec![
        read("X", "X"),
        Instr::new(Op::Tsmm(TsmmSide::Left), vec![Operand::var("X")], "G"),
        Instr::new(
            Op::Binary(BinOp::Mul),
            vec![Operand::var("G"), Operand::f64(0.5)],
            "H",
        ),
    ])]);
    let x = mk_matrix(8, 3, 11);
    let ctx = run(
        &mut p,
        LimaConfig::lima(),
        &[("X", Value::matrix(x.clone()))],
    );
    let lin = ctx.lineage.get("H").unwrap().clone();
    let mut rctx = ExecutionContext::new(LimaConfig::base());
    rctx.data.register("X", Value::matrix(x));
    let recomputed = recompute(&lin, &mut rctx).unwrap();
    assert!(recomputed.approx_eq(&ctx.symtab["H"], 1e-12));
}

#[test]
fn partial_only_mode_rewrites_without_full_reuse() {
    let mut config = LimaConfig::lima();
    config.reuse = ReuseMode::Partial;
    config.compiler_assist = false;
    let mut p = Program::new(vec![Block::basic(vec![
        read("X", "X"),
        read("d", "d"),
        Instr::new(Op::Tsmm(TsmmSide::Left), vec![Operand::var("X")], "ts"),
        Instr::new(Op::Cbind, vec![Operand::var("X"), Operand::var("d")], "Z"),
        Instr::new(Op::Tsmm(TsmmSide::Left), vec![Operand::var("Z")], "W"),
    ])]);
    let x = mk_matrix(20, 5, 1);
    let d = mk_matrix(20, 1, 2);
    let ctx = run(
        &mut p,
        config,
        &[
            ("X", Value::matrix(x.clone())),
            ("d", Value::matrix(d.clone())),
        ],
    );
    // Partial mode still caches values for rewrite lookups via put-on-compute?
    // No: partial-only relies on previously cached values. Without full
    // reuse, nothing was cached, so the rewrite cannot fire and results are
    // still correct.
    let z = lima_matrix::ops::cbind(&x, &d).unwrap();
    let expect = lima_matrix::ops::tsmm(&z, TsmmSide::Left).unwrap();
    assert!(ctx.symtab["W"].as_matrix().unwrap().rel_eq(&expect, 1e-12));
}

#[test]
fn print_collects_output() {
    let mut p = Program::new(vec![Block::basic(vec![
        Instr::new(Op::Assign, vec![Operand::f64(3.5)], "x"),
        Instr::new(
            Op::Concat,
            vec![Operand::str("x is "), Operand::var("x")],
            "msg",
        ),
        Instr::effect(Op::Print, vec![Operand::var("msg")]),
    ])]);
    let ctx = run(&mut p, LimaConfig::lima(), &[]);
    assert_eq!(ctx.stdout, vec!["x is 3.5"]);
}

#[test]
fn block_level_reuse_memoizes_last_level_loops() {
    // A deterministic last-level loop executed twice with identical live-in
    // lineage: the second execution is served as a block-level (bcall) hit.
    let body = vec![Block::basic(vec![
        Instr::new(Op::Tsmm(TsmmSide::Left), vec![Operand::var("X")], "G"),
        Instr::new(
            Op::Binary(BinOp::Mul),
            vec![Operand::var("G"), Operand::var("i")],
            "Gi",
        ),
        Instr::new(
            Op::Binary(BinOp::Add),
            vec![Operand::var("acc"), Operand::var("Gi")],
            "acc",
        ),
    ])];
    // The same inner block re-executes across outer iterations with
    // identical live-in lineage — that is what block-level reuse keys on.
    let inner = Block::for_loop(
        "i",
        ExprProg::lit(Operand::i64(1)),
        ExprProg::lit(Operand::i64(4)),
        ExprProg::lit(Operand::i64(1)),
        body.clone(),
    );
    let outer_body = vec![
        Block::basic(vec![Instr::new(
            Op::Fill,
            vec![Operand::f64(0.0), Operand::i64(4), Operand::i64(4)],
            "acc",
        )]),
        inner,
    ];
    let mut p = Program::new(vec![
        Block::basic(vec![read("X", "X")]),
        Block::for_loop(
            "r",
            ExprProg::lit(Operand::i64(1)),
            ExprProg::lit(Operand::i64(3)),
            ExprProg::lit(Operand::i64(1)),
            outer_body,
        ),
    ]);
    let mut config = LimaConfig::lima();
    config.compiler_assist = false; // keep the loop body cacheable as-is
    let ctx = run(&mut p, config, &[("X", Value::matrix(mk_matrix(10, 4, 3)))]);
    assert!(
        LimaStats::get(&ctx.stats.multilevel_hits) >= 1,
        "expected a block-level hit: {}",
        ctx.stats.report()
    );
}
