//! Error-path and failure-injection tests: the runtime must fail cleanly
//! (no poisoned cache placeholders, no partial bindings) and reuse must stay
//! correct under injected faults.

use lima_core::{LimaConfig, LimaStats};
use lima_matrix::ops::{BinOp, TsmmSide};
use lima_matrix::{DenseMatrix, Value};
use lima_runtime::compiler::compile;
use lima_runtime::{
    execute_program, Block, ExecutionContext, ExprProg, Function, Instr, Op, Operand, Program,
    RuntimeError,
};

fn run(
    mut p: Program,
    config: LimaConfig,
    data: &[(&str, Value)],
) -> Result<ExecutionContext, RuntimeError> {
    compile(&mut p, &config).expect("program compiles");
    let mut ctx = ExecutionContext::new(config);
    for (k, v) in data {
        ctx.data.register(*k, v.clone());
    }
    execute_program(&p, &mut ctx).map(|()| ctx)
}

#[test]
fn undefined_variable_is_reported() {
    let p = Program::new(vec![Block::basic(vec![Instr::new(
        Op::Binary(BinOp::Add),
        vec![Operand::var("missing"), Operand::f64(1.0)],
        "x",
    )])]);
    match run(p, LimaConfig::lima(), &[]) {
        Err(RuntimeError::UndefinedVariable(v)) => assert_eq!(v, "missing"),
        Err(other) => panic!("expected undefined variable, got {other:?}"),
        Ok(_) => panic!("expected undefined variable, got success"),
    }
}

#[test]
fn undefined_function_is_reported() {
    let p = Program::new(vec![Block::basic(vec![Instr::multi(
        Op::FCall("ghost".into()),
        vec![],
        vec!["y".into()],
    )])]);
    assert!(matches!(
        run(p, LimaConfig::lima(), &[]),
        Err(RuntimeError::UndefinedFunction(_))
    ));
}

#[test]
fn fcall_arity_mismatch_is_reported() {
    let mut p = Program::new(vec![Block::basic(vec![Instr::multi(
        Op::FCall("f".into()),
        vec![Operand::f64(1.0), Operand::f64(2.0)],
        vec!["y".into()],
    )])]);
    p.add_function(Function::new(
        "f",
        vec!["a".into()],
        vec!["a".into()],
        vec![],
    ));
    assert!(matches!(
        run(p, LimaConfig::lima(), &[]),
        Err(RuntimeError::BadOperands { .. })
    ));
}

#[test]
fn failed_kernel_aborts_reservation_cleanly() {
    // A singular solve fails after a reservation was taken; re-running the
    // same trace must not deadlock on an orphaned placeholder.
    let a = DenseMatrix::new(2, 2, vec![1.0, 2.0, 2.0, 4.0]).unwrap();
    let b = DenseMatrix::new(2, 1, vec![1.0, 2.0]).unwrap();
    let build = || {
        Program::new(vec![Block::basic(vec![
            Instr::new(Op::Read, vec![Operand::str("A")], "A"),
            Instr::new(Op::Read, vec![Operand::str("b")], "b"),
            Instr::new(Op::Solve, vec![Operand::var("A"), Operand::var("b")], "x"),
        ])])
    };
    let config = LimaConfig::lima();
    let mut p = build();
    compile(&mut p, &config).expect("program compiles");
    let mut ctx = ExecutionContext::new(config.clone());
    ctx.data.register("A", Value::matrix(a.clone()));
    ctx.data.register("b", Value::matrix(b.clone()));
    assert!(matches!(
        execute_program(&p, &mut ctx),
        Err(RuntimeError::Kernel(_))
    ));
    // Same cache, same trace: must not hang, must fail the same way.
    let cache = ctx.cache.clone();
    let mut ctx2 = ExecutionContext::with_cache(config, cache);
    ctx2.data.register("A", Value::matrix(a));
    ctx2.data.register("b", Value::matrix(b));
    assert!(matches!(
        execute_program(&p, &mut ctx2),
        Err(RuntimeError::Kernel(_))
    ));
}

#[test]
fn error_inside_loop_body_propagates() {
    // Shape error appears on the third iteration via a growing rbind chain
    // fed into a solve.
    let body = vec![Block::basic(vec![
        Instr::new(
            Op::RightIndex,
            vec![
                Operand::var("X"),
                Operand::var("i"),
                Operand::var("i"),
                Operand::i64(1),
                Operand::i64(0),
            ],
            "row",
        ),
        Instr::new(
            Op::Solve,
            vec![Operand::var("row"), Operand::var("row")],
            "bad",
        ),
    ])];
    let p = Program::new(vec![
        Block::basic(vec![Instr::new(Op::Read, vec![Operand::str("X")], "X")]),
        Block::for_loop(
            "i",
            ExprProg::lit(Operand::i64(1)),
            ExprProg::lit(Operand::i64(3)),
            ExprProg::lit(Operand::i64(1)),
            body,
        ),
    ]);
    let x = Value::matrix(DenseMatrix::filled(3, 4, 1.0));
    assert!(run(p, LimaConfig::lima(), &[("X", x)]).is_err());
}

#[test]
fn reuse_with_spilling_disabled_still_correct_under_tiny_budget() {
    let mut config = LimaConfig::lima();
    config.budget_bytes = 4_096;
    config.spill = false;
    let p = lima_algos::pipelines::pcalm(200, 10, &[2, 3], 3);
    let base = lima_algos::run_script(&p.script, &LimaConfig::base(), &p.input_refs()).unwrap();
    let lima = lima_algos::run_script(&p.script, &config, &p.input_refs()).unwrap();
    assert!(base.value("best").approx_eq(lima.value("best"), 1e-9));
}

#[test]
fn spilled_entries_survive_and_restore_through_pipelines() {
    // Force spilling with an expensive entry and verify correctness of a
    // pipeline that re-probes it later.
    let mut config = LimaConfig::lima();
    config.budget_bytes = 512 * 1024;
    config.eviction_watermark = 0.95;
    let p = lima_algos::pipelines::eviction_phases(128, 6, 4, 8, 4);
    let base = lima_algos::run_script(&p.script, &LimaConfig::base(), &p.input_refs()).unwrap();
    let lima = lima_algos::run_script(&p.script, &config, &p.input_refs()).unwrap();
    for out in ["s1", "s2", "s3"] {
        assert!(
            base.value(out).approx_eq(lima.value(out), 1e-9),
            "{out} diverged"
        );
    }
}

#[test]
fn recursion_depth_is_bounded() {
    let mut p = Program::new(vec![Block::basic(vec![Instr::multi(
        Op::FCall("rec".into()),
        vec![Operand::f64(1.0)],
        vec!["y".into()],
    )])]);
    p.add_function(Function::new(
        "rec",
        vec!["a".into()],
        vec!["y".into()],
        vec![Block::basic(vec![Instr::multi(
            Op::FCall("rec".into()),
            vec![Operand::var("a")],
            vec!["y".into()],
        )])],
    ));
    assert!(matches!(
        run(p, LimaConfig::lima(), &[]),
        Err(RuntimeError::TypeError(_))
    ));
}

#[test]
fn nested_function_calls_compose_with_reuse() {
    // outer calls inner twice; inner is deterministic — reuse at both levels.
    let mut p = Program::new(vec![Block::basic(vec![
        Instr::new(Op::Read, vec![Operand::str("X")], "X"),
        Instr::multi(
            Op::FCall("outer".into()),
            vec![Operand::var("X")],
            vec!["r1".into()],
        ),
        Instr::multi(
            Op::FCall("outer".into()),
            vec![Operand::var("X")],
            vec!["r2".into()],
        ),
    ])]);
    p.add_function(Function::new(
        "inner",
        vec!["A".into()],
        vec!["G".into()],
        vec![Block::basic(vec![Instr::new(
            Op::Tsmm(TsmmSide::Left),
            vec![Operand::var("A")],
            "G",
        )])],
    ));
    p.add_function(Function::new(
        "outer",
        vec!["A".into()],
        vec!["S".into()],
        vec![Block::basic(vec![
            Instr::multi(
                Op::FCall("inner".into()),
                vec![Operand::var("A")],
                vec!["G1".into()],
            ),
            Instr::multi(
                Op::FCall("inner".into()),
                vec![Operand::var("A")],
                vec!["G2".into()],
            ),
            Instr::new(
                Op::Binary(BinOp::Add),
                vec![Operand::var("G1"), Operand::var("G2")],
                "S",
            ),
        ])],
    ));
    let x = Value::matrix(DenseMatrix::from_fn(20, 5, |i, j| (i + j) as f64 * 0.1));
    let ctx = run(p, LimaConfig::lima(), &[("X", x)]).unwrap();
    assert_eq!(ctx.symtab["r1"], ctx.symtab["r2"]);
    // inner reused within outer, outer reused across calls.
    assert!(LimaStats::get(&ctx.stats.multilevel_hits) >= 2);
}

#[test]
fn zero_iteration_loops_are_sound() {
    let p = Program::new(vec![
        Block::basic(vec![Instr::new(Op::Assign, vec![Operand::f64(7.0)], "x")]),
        Block::for_loop(
            "i",
            ExprProg::lit(Operand::i64(5)),
            ExprProg::lit(Operand::i64(1)),
            ExprProg::lit(Operand::i64(1)),
            vec![Block::basic(vec![Instr::new(
                Op::Assign,
                vec![Operand::f64(0.0)],
                "x",
            )])],
        ),
    ]);
    let ctx = run(p, LimaConfig::lima(), &[]).unwrap();
    assert_eq!(ctx.symtab["x"].as_f64().unwrap(), 7.0);
}

#[test]
fn for_step_of_zero_is_rejected() {
    let p = Program::new(vec![Block::for_loop(
        "i",
        ExprProg::lit(Operand::i64(1)),
        ExprProg::lit(Operand::i64(3)),
        ExprProg::lit(Operand::i64(0)),
        vec![],
    )]);
    assert!(run(p, LimaConfig::lima(), &[]).is_err());
}

#[test]
fn negative_step_loops_run_backwards() {
    let body = vec![Block::basic(vec![Instr::new(
        Op::Binary(BinOp::Add),
        vec![Operand::var("s"), Operand::var("i")],
        "s",
    )])];
    let p = Program::new(vec![
        Block::basic(vec![Instr::new(Op::Assign, vec![Operand::f64(0.0)], "s")]),
        Block::for_loop(
            "i",
            ExprProg::lit(Operand::i64(5)),
            ExprProg::lit(Operand::i64(1)),
            ExprProg::lit(Operand::i64(-2)),
            body,
        ),
    ]);
    let ctx = run(p, LimaConfig::lima(), &[]).unwrap();
    assert_eq!(ctx.symtab["s"].as_f64().unwrap(), 9.0); // 5 + 3 + 1
}

#[test]
fn parfor_error_in_worker_propagates() {
    let body = vec![Block::basic(vec![Instr::new(
        Op::Binary(BinOp::Add),
        vec![Operand::var("nope"), Operand::var("i")],
        "x",
    )])];
    let p = Program::new(vec![Block::parfor(
        "i",
        ExprProg::lit(Operand::i64(1)),
        ExprProg::lit(Operand::i64(8)),
        ExprProg::lit(Operand::i64(1)),
        body,
    )]);
    assert!(matches!(
        run(p, LimaConfig::lima(), &[]),
        Err(RuntimeError::UndefinedVariable(_))
    ));
}

#[test]
fn rmvar_and_mvvar_bookkeeping() {
    let p = Program::new(vec![Block::basic(vec![
        Instr::new(Op::Assign, vec![Operand::f64(1.0)], "tmp1"),
        Instr::new(Op::Mvvar, vec![Operand::var("tmp1")], "beta"),
        Instr::new(Op::Assign, vec![Operand::f64(2.0)], "tmp2"),
        Instr::effect(Op::Rmvar, vec![Operand::var("tmp2")]),
    ])]);
    let ctx = run(p, LimaConfig::lima(), &[]).unwrap();
    assert!(ctx.symtab.contains_key("beta"));
    assert!(!ctx.symtab.contains_key("tmp1"));
    assert!(!ctx.symtab.contains_key("tmp2"));
}
