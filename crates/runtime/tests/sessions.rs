//! SessionPool integration tests: pool-wide reuse, typed cancellation and
//! deadline errors, and governor-gated admission. These live as integration
//! tests (not unit tests in `session.rs`) because `lima-lang` is a
//! dev-dependency of `lima-runtime` and its `Program` type only unifies with
//! the library build, not the unit-test build.

use lima_core::{CancelToken, LimaConfig, LimaStats, ReuseMode};
use lima_matrix::{DenseMatrix, Value};
use lima_runtime::{Program, RuntimeError, SessionOptions, SessionPool};
use std::sync::Arc;
use std::time::Duration;

fn compile(src: &str, config: &LimaConfig) -> Arc<Program> {
    Arc::new(lima_lang::compile_script(src, config).expect("compile"))
}

fn x(rows: usize, cols: usize) -> Value {
    Value::matrix(DenseMatrix::from_fn(rows, cols, |i, j| {
        (i * cols + j) as f64 * 0.01
    }))
}

#[test]
fn sessions_share_reuse_across_the_pool() {
    let config = LimaConfig::lima();
    let pool = SessionPool::new(config.clone());
    let p = compile("G = t(X) %*% X; s = sum(G);", &config);
    let r1 = pool
        .run(
            Arc::clone(&p),
            SessionOptions::new().with_input("X", x(40, 8)),
        )
        .unwrap();
    let r2 = pool
        .run(p, SessionOptions::new().with_input("X", x(40, 8)))
        .unwrap();
    assert_eq!(
        r1.value("s").as_f64().unwrap(),
        r2.value("s").as_f64().unwrap()
    );
    let stats = pool.stats();
    assert!(LimaStats::get(&stats.full_hits) >= 1, "peer reuse expected");
    assert_eq!(LimaStats::get(&stats.sessions_started), 2);
    assert_eq!(LimaStats::get(&stats.sessions_completed), 2);
}

#[test]
fn pre_cancelled_session_fails_typed_without_poisoning_peers() {
    let config = LimaConfig::lima();
    let pool = SessionPool::new(config.clone());
    let p = compile("G = t(X) %*% X; s = sum(G);", &config);
    let token = CancelToken::new();
    token.cancel();
    let err = pool
        .run(
            Arc::clone(&p),
            SessionOptions::new()
                .with_token(token)
                .with_input("X", x(40, 8)),
        )
        .unwrap_err();
    assert!(matches!(err, RuntimeError::Cancelled), "got {err}");
    assert_eq!(LimaStats::get(&pool.stats().sessions_cancelled), 1);
    // The shared cache stays fully usable for peers.
    let ok = pool
        .run(p, SessionOptions::new().with_input("X", x(40, 8)))
        .unwrap();
    assert!(ok.value("s").as_f64().unwrap() > 0.0);
}

#[test]
fn expired_deadline_fails_typed() {
    let config = LimaConfig::lima();
    let pool = SessionPool::new(config.clone());
    // Enough instructions that at least one deadline checkpoint runs after
    // the (already expired) zero timeout.
    let p = compile(
        "acc = 0; for (i in 1:50) { acc = acc + i; } s = acc;",
        &config,
    );
    let err = pool
        .run(p, SessionOptions::new().with_timeout(Duration::ZERO))
        .unwrap_err();
    assert!(matches!(err, RuntimeError::DeadlineExceeded), "got {err}");
    assert_eq!(LimaStats::get(&pool.stats().sessions_deadline_exceeded), 1);
}

#[test]
fn governor_at_l4_rejects_admission_with_typed_error() {
    let config = LimaConfig {
        reuse: ReuseMode::Hybrid,
        ..LimaConfig::lima()
    }
    .with_governor(1000);
    let pool = SessionPool::new(config.clone());
    let g = pool.governor().expect("governor configured");
    g.adjust_session_bytes(2000); // pressure 2.0 → L4
    let p = compile("s = 1;", &config);
    let err = pool.spawn(p, SessionOptions::new()).unwrap_err();
    match err {
        RuntimeError::ResourceExhausted(msg) => assert!(msg.contains("L4"), "msg: {msg}"),
        other => panic!("expected ResourceExhausted, got {other}"),
    }
    assert_eq!(LimaStats::get(&pool.stats().sessions_rejected), 1);
    // Pressure drains → admissions resume.
    g.adjust_session_bytes(-2000);
    let p = compile("s = 1;", &config);
    assert!(pool.run(p, SessionOptions::new()).is_ok());
}

#[test]
fn no_reuse_pool_still_runs_sessions() {
    let config = LimaConfig::base();
    let pool = SessionPool::new(config.clone());
    assert!(pool.cache().is_none());
    let p = compile("s = sum(X);", &config);
    let r = pool
        .run(p, SessionOptions::new().with_input("X", x(3, 3)))
        .unwrap();
    assert!(r.value("s").as_f64().unwrap() > 0.0);
    assert_eq!(LimaStats::get(&pool.stats().sessions_completed), 1);
}

#[test]
fn cancelling_a_running_session_recovers_quickly() {
    let config = LimaConfig::lima();
    let pool = SessionPool::new(config.clone());
    // A long loop of cheap work: plenty of instruction-boundary checkpoints.
    let p = compile(
        "acc = 0; for (i in 1:2000000) { acc = acc + i; } s = acc;",
        &config,
    );
    let h = pool.spawn(p, SessionOptions::new()).unwrap();
    std::thread::sleep(Duration::from_millis(20));
    h.cancel();
    let err = h.join().unwrap_err();
    assert!(matches!(err, RuntimeError::Cancelled), "got {err}");
    assert_eq!(LimaStats::get(&pool.stats().sessions_cancelled), 1);
}
