//! End-to-end service tests: wire round-trips, cross-tenant reuse, typed
//! interrupt errors, malformed-frame isolation, quotas, shedding, metrics.

use lima_client::proto::{write_frame, ErrorCode, MAX_FRAME_BYTES};
use lima_client::{ClientOptions, LimadClient, SubmitOptions};
use lima_core::lineage::serialize_lineage;
use lima_core::resilience::RetryPolicy;
use lima_core::{LimaConfig, LimaStats, PressureLevel};
use lima_lang::compile_script;
use lima_matrix::Value;
use lima_runtime::{execute_program, ExecutionContext};
use limad::{LimadConfig, Server};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn start(cfg: LimadConfig) -> Server {
    Server::start(cfg).expect("server starts on loopback")
}

fn client(server: &Server, tenant: &str) -> LimadClient {
    LimadClient::new(&server.addr().to_string(), tenant, ClientOptions::default())
}

/// `sum(t(X) %*% X)` for X = 100x5 filled with 3: each of the 25 entries of
/// the gram matrix is 100·9 = 900, so s = 22500.
const GRAM_SCRIPT: &str = "X = matrix(3, 100, 5);\nG = t(X) %*% X;\ns = sum(G);\n";
const GRAM_SUM: f64 = 22_500.0;

fn outputs(names: &[&str]) -> SubmitOptions {
    SubmitOptions {
        outputs: names.iter().map(|s| s.to_string()).collect(),
        ..SubmitOptions::default()
    }
}

#[test]
fn submit_returns_baseline_equal_values() {
    let server = start(LimadConfig::default());
    let mut c = client(&server, "alice");
    let done = c.submit(GRAM_SCRIPT, &outputs(&["s", "G"])).unwrap();
    assert_eq!(done.value("s"), Some(&Value::f64(GRAM_SUM)));
    let g = done.value("G").unwrap().as_matrix().unwrap();
    assert_eq!((g.rows(), g.cols()), (5, 5));
    assert!(g.data().iter().all(|&v| v == 900.0));
}

#[test]
fn lineage_probe_and_fetch_hit_after_submit() {
    let server = start(LimadConfig::default());
    let mut c = client(&server, "alice");
    c.submit(GRAM_SCRIPT, &outputs(&["s"])).unwrap();

    // Recover the lineage trace of G by tracing the same script locally —
    // identical script ⇒ identical lineage hash ⇒ same shard and cache key.
    let config = LimaConfig::lima();
    let program = compile_script(GRAM_SCRIPT, &config).unwrap();
    let mut ctx = ExecutionContext::new(config);
    execute_program(&program, &mut ctx).unwrap();
    let lineage = serialize_lineage(ctx.lineage.get("G").unwrap());

    assert!(c.probe(&lineage).unwrap(), "gram matrix should be cached");
    let fetched = c.fetch(&lineage).unwrap().expect("fetch follows probe");
    let g = fetched.as_matrix().unwrap();
    assert!(g.data().iter().all(|&v| v == 900.0));

    // A tenant that never submitted sees the same shard (lineage routing is
    // tenant-blind): cross-tenant reuse by construction.
    let mut other = client(&server, "bob");
    assert!(other.probe(&lineage).unwrap());

    // An unrelated lineage trace misses without error.
    let mut ctx2 = ExecutionContext::new(LimaConfig::lima());
    let p2 = compile_script("Y = matrix(4, 7, 7);\nh = sum(Y %*% Y);\n", &ctx2.config).unwrap();
    execute_program(&p2, &mut ctx2).unwrap();
    let missing = serialize_lineage(ctx2.lineage.get("Y").unwrap());
    assert!(!c.probe(&missing).unwrap());
}

#[test]
fn identical_scripts_reuse_across_tenants() {
    let server = start(LimadConfig::default());
    let mut alice = client(&server, "alice");
    let mut bob = client(&server, "bob");
    let a = alice.submit(GRAM_SCRIPT, &outputs(&["s"])).unwrap();
    let b = bob.submit(GRAM_SCRIPT, &outputs(&["s"])).unwrap();
    assert_eq!(a.value("s"), b.value("s"));

    let hits: u64 = server.shards().iter().map(|s| s.stats().total_hits()).sum();
    assert!(hits >= 1, "second tenant's run should hit the shared cache");
}

/// A script that runs long enough to interrupt but checks its deadline and
/// token cooperatively at every instruction boundary.
fn slow_script() -> String {
    // `(X + i)` varies the matmul per iteration, so the cache cannot turn
    // this loop into 2000 instant hits.
    "X = matrix(2, 80, 80);\nacc = 0;\nfor (i in 1:2000) {\n  Y = (X + i) %*% X;\n  acc = acc + sum(Y) + i;\n}\ns = acc;\n".to_string()
}

#[test]
fn deadlines_propagate_and_return_typed_errors() {
    let server = start(LimadConfig::default());
    let mut c = client(&server, "alice");
    let t0 = Instant::now();
    let err = c
        .submit(
            &slow_script(),
            &SubmitOptions {
                outputs: vec!["s".into()],
                deadline: Some(Duration::from_millis(300)),
                ..SubmitOptions::default()
            },
        )
        .unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::DeadlineExceeded), "got {err}");
    assert_eq!(err.exit_code(), 4);
    assert!(
        t0.elapsed() < Duration::from_secs(10),
        "deadline failure must be prompt, took {:?}",
        t0.elapsed()
    );
}

#[test]
fn cancel_interrupts_a_running_session() {
    let server = start(LimadConfig::default());
    let addr = server.addr().to_string();
    // Session ids are assigned from 1; the only submit in this server gets 1.
    let submitter = std::thread::spawn(move || {
        let mut c = LimadClient::new(&addr, "alice", ClientOptions::default());
        c.submit(&slow_script(), &outputs(&["s"]))
    });
    std::thread::sleep(Duration::from_millis(300));
    let mut killer = client(&server, "ops");
    assert!(killer.cancel(1).unwrap(), "session 1 should be running");
    let err = submitter.join().unwrap().unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::Cancelled), "got {err}");
    assert_eq!(err.exit_code(), 5);
    // Cancelling a finished/unknown session reports found=false, no error.
    assert!(!killer.cancel(1).unwrap());
    assert!(!killer.cancel(999).unwrap());
}

#[test]
fn malformed_frames_isolate_to_their_connection() {
    let server = start(LimadConfig {
        max_frame_bytes: 4096,
        ..LimadConfig::default()
    });

    // Garbage bytes: the server answers nothing useful to this socket but
    // must keep serving fresh connections.
    let mut garbage = TcpStream::connect(server.addr()).unwrap();
    garbage.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
    let mut sink = Vec::new();
    let _ = garbage.set_read_timeout(Some(Duration::from_secs(2)));
    let _ = garbage.read_to_end(&mut sink); // server closes after typed error

    // Oversized frame: length says 8 KiB against a 4 KiB cap.
    let mut oversized = TcpStream::connect(server.addr()).unwrap();
    write_frame(&mut oversized, 6, 1, &vec![0u8; 8192]).unwrap();
    let mut sink = Vec::new();
    let _ = oversized.set_read_timeout(Some(Duration::from_secs(2)));
    let _ = oversized.read_to_end(&mut sink);

    // Torn frame: half a header, then hangup.
    let mut torn = TcpStream::connect(server.addr()).unwrap();
    torn.write_all(&[0x4C, 0x4D, 0x44]).unwrap();
    drop(torn);

    // The shards never saw any of it, and the server still serves.
    let mut c = client(&server, "alice");
    c.ping().unwrap();
    let done = c.submit(GRAM_SCRIPT, &outputs(&["s"])).unwrap();
    assert_eq!(done.value("s"), Some(&Value::f64(GRAM_SUM)));
    assert!(
        LimaStats::get(&server.server_stats().srv_malformed) >= 2,
        "garbage and oversized frames must be counted"
    );
}

#[test]
fn tenant_quotas_bound_concurrent_submits() {
    let server = start(LimadConfig {
        tenant_max_sessions: 1,
        ..LimadConfig::default()
    });
    let addr = server.addr().to_string();
    let hog = std::thread::spawn({
        let addr = addr.clone();
        move || {
            let mut c = LimadClient::new(&addr, "alice", ClientOptions::default());
            c.submit(
                &slow_script(),
                &SubmitOptions {
                    outputs: vec!["s".into()],
                    deadline: Some(Duration::from_millis(1500)),
                    ..SubmitOptions::default()
                },
            )
        }
    });
    std::thread::sleep(Duration::from_millis(300));

    // Same tenant, second concurrent submit: quota reject with its own code
    // (distinct from Overloaded — this is the tenant's fault, not load).
    let mut alice2 = client(&server, "alice");
    let err = alice2.submit(GRAM_SCRIPT, &outputs(&["s"])).unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::ResourceExhausted), "got {err}");
    assert_eq!(err.exit_code(), 6);

    // A different tenant is not affected.
    let mut bob = client(&server, "bob");
    assert!(bob.submit(GRAM_SCRIPT, &outputs(&["s"])).is_ok());

    let _ = hog.join().unwrap(); // deadline ends the hog either way
    assert!(LimaStats::get(&server.server_stats().srv_quota_rejects) >= 1);

    // Quota slot released: alice can submit again.
    let done = alice2.submit(GRAM_SCRIPT, &outputs(&["s"])).unwrap();
    assert_eq!(done.value("s"), Some(&Value::f64(GRAM_SUM)));
}

#[test]
fn overload_sheds_with_retry_after_and_recovers() {
    let server = start(LimadConfig {
        template: LimaConfig::lima().with_governor(1024 * 1024),
        retry_after_ms: 25,
        ..LimadConfig::default()
    });
    // Push every shard's governor to L4.
    for shard in server.shards().iter() {
        let g = shard.governor().expect("governor configured");
        g.adjust_session_bytes(2 * 1024 * 1024);
        assert_eq!(g.level(), PressureLevel::RejectSessions);
    }

    // A non-retrying client sees the typed Overloaded error immediately.
    let mut blunt = LimadClient::new(
        &server.addr().to_string(),
        "alice",
        ClientOptions {
            retry: RetryPolicy::new(0, 1, 7),
            ..ClientOptions::default()
        },
    );
    let err = blunt.submit(GRAM_SCRIPT, &outputs(&["s"])).unwrap_err();
    match err.code() {
        Some(ErrorCode::Overloaded) => {}
        other => panic!("expected Overloaded, got {other:?}: {err}"),
    }
    assert_eq!(err.exit_code(), 7);
    assert!(LimaStats::get(&server.server_stats().srv_sheds) >= 1);

    // A retrying client rides out the pressure spike: release the governors
    // shortly after the first attempt and the retry succeeds.
    let releaser = std::thread::spawn({
        let shards: Vec<_> = server
            .shards()
            .iter()
            .filter_map(|s| s.governor())
            .collect();
        move || {
            std::thread::sleep(Duration::from_millis(150));
            for g in &shards {
                g.adjust_session_bytes(-(2 * 1024 * 1024));
            }
        }
    });
    let mut patient = LimadClient::new(
        &server.addr().to_string(),
        "alice",
        ClientOptions {
            retry: RetryPolicy::new(6, 100, 7),
            ..ClientOptions::default()
        },
    );
    let done = patient.submit(GRAM_SCRIPT, &outputs(&["s"])).unwrap();
    assert_eq!(done.value("s"), Some(&Value::f64(GRAM_SUM)));
    releaser.join().unwrap();

    // The walk back down is observable.
    let recovers: u64 = server
        .shards()
        .iter()
        .map(|s| LimaStats::get(&s.stats().governor_recovers))
        .sum();
    assert!(recovers >= 1, "governor recovery must be counted");
}

#[test]
fn metrics_served_over_wire_and_http() {
    let server = start(LimadConfig::default());
    let mut c = client(&server, "alice");
    c.submit(GRAM_SCRIPT, &outputs(&["s"])).unwrap();

    let text = c.metrics().unwrap();
    assert!(text.contains("lima_srv_requests"), "wire metrics:\n{text}");
    assert!(text.contains("limad_shard_state{shard=\"0\"}"));
    assert!(text.contains("lima_sessions_completed"));

    // The same text over plain HTTP/1.0.
    let mut http = TcpStream::connect(server.metrics_addr()).unwrap();
    http.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").unwrap();
    let mut body = String::new();
    http.read_to_string(&mut body).unwrap();
    assert!(body.starts_with("HTTP/1.0 200 OK"), "got: {body}");
    assert!(body.contains("lima_srv_requests"));
    assert!(body.contains("limad_shard_state"));

    // Unknown paths 404 without disturbing the server.
    let mut http = TcpStream::connect(server.metrics_addr()).unwrap();
    http.write_all(b"GET /nope HTTP/1.0\r\n\r\n").unwrap();
    let mut body = String::new();
    http.read_to_string(&mut body).unwrap();
    assert!(body.starts_with("HTTP/1.0 404"));
    c.ping().unwrap();
}

#[test]
fn compile_and_runtime_failures_are_typed_not_fatal() {
    let server = start(LimadConfig::default());
    let mut c = client(&server, "alice");

    let err = c
        .submit("this is not DML at all ((", &outputs(&["s"]))
        .unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::Compile), "got {err}");

    let err = c
        .submit("s = sum(undefined_var);", &outputs(&["s"]))
        .unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::Runtime), "got {err}");

    let err = c
        .submit("s = 1;", &outputs(&["not_an_output"]))
        .unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::Runtime), "got {err}");

    // The connection and the server both survive all three.
    let done = c.submit(GRAM_SCRIPT, &outputs(&["s"])).unwrap();
    assert_eq!(done.value("s"), Some(&Value::f64(GRAM_SUM)));
}

#[test]
fn compile_errors_carry_structured_diagnostics_over_the_wire() {
    let server = start(LimadConfig::default());
    let mut c = client(&server, "alice");

    // Every parfor iteration writes R[1, 1]: a loop-invariant index race.
    let script = "R = matrix(0, 1, 1);\nparfor (i in 1:4) {\n  R[1, 1] = as.matrix(i);\n}\n";
    let err = c.submit(script, &outputs(&["R"])).unwrap_err();
    let lima_client::ClientError::Service(service) = err else {
        panic!("expected a typed service error, got {err:?}");
    };
    assert_eq!(service.code, ErrorCode::Compile);
    assert_eq!(
        service.diagnostics.len(),
        1,
        "got {:?}",
        service.diagnostics
    );
    let diag = &service.diagnostics[0];
    assert_eq!(diag.code, "L0100");
    assert_eq!(diag.severity, lima_core::Severity::Error);
    let span = diag
        .primary
        .expect("parfor dependence diagnostic has a span");
    assert!(span.in_bounds(script.len()), "span {span:?} out of bounds");
    assert_eq!(
        &script[span.start as usize..span.end as usize],
        "R[1, 1] = as.matrix(i)"
    );
    assert!(diag.help.is_some(), "diagnostic should carry help text");
}

#[test]
fn unparseable_lineage_is_bad_request() {
    let server = start(LimadConfig::default());
    let mut c = client(&server, "alice");
    let err = c.probe("this is not a lineage log").unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::BadRequest), "got {err}");
    // BadRequest closes the connection; the client reconnects transparently
    // for the next idempotent call.
    c.ping().unwrap();
}

#[test]
fn frame_cap_default_is_sane() {
    // Guards against someone shrinking the shared cap under the sizes the
    // tests and harness rely on.
    let cfg = LimadConfig::default();
    assert_eq!(cfg.max_frame_bytes, MAX_FRAME_BYTES);
    assert!(cfg.max_frame_bytes >= 1024 * 1024);
}

/// Flips one bit in every committed value file under `root`; returns the
/// number of files corrupted.
fn flip_values(root: &std::path::Path) -> usize {
    let mut flipped = 0;
    for shard in std::fs::read_dir(root).unwrap().flatten() {
        let values = shard.path().join("values");
        let Ok(entries) = std::fs::read_dir(&values) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some("val") {
                continue;
            }
            let mut raw = std::fs::read(&path).unwrap();
            let mid = raw.len() / 2;
            raw[mid] ^= 0x20;
            std::fs::write(&path, &raw).unwrap();
            flipped += 1;
        }
    }
    flipped
}

fn persist_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("limad-scrub-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn scrub_wire_op_heals_at_rest_corruption() {
    let dir = persist_dir("wire");
    // Multi-level reuse off so every persisted lineage is primitive and
    // therefore repairable; background scrubbing off so the wire op's
    // counters are deterministic.
    let mut template = LimaConfig::lima();
    template.multilevel = false;
    let server = start(LimadConfig {
        persist_root: Some(dir.clone()),
        scrub_interval_ms: 0,
        template,
        ..LimadConfig::default()
    });
    let mut c = client(&server, "alice");
    let done = c.submit(GRAM_SCRIPT, &outputs(&["s"])).unwrap();
    assert_eq!(done.value("s").unwrap().as_f64().unwrap(), GRAM_SUM);

    let flipped = flip_values(&dir);
    assert!(flipped >= 1, "submit persisted nothing");

    let reports = c.scrub().unwrap();
    assert_eq!(reports.len(), server.shards().len());
    assert!(reports.iter().all(|r| r.completed));
    let corrupt: u64 = reports.iter().map(|r| r.corrupt).sum();
    let repaired: u64 = reports.iter().map(|r| r.repaired).sum();
    let quarantined: u64 = reports.iter().map(|r| r.quarantined).sum();
    assert_eq!(corrupt, flipped as u64, "{reports:?}");
    assert_eq!(repaired, flipped as u64, "healed, not dropped: {reports:?}");
    assert_eq!(quarantined, 0, "{reports:?}");

    // The healed cache still serves the baseline value, and the repair is
    // visible in the exposition.
    let done = c.submit(GRAM_SCRIPT, &outputs(&["s"])).unwrap();
    assert_eq!(done.value("s").unwrap().as_f64().unwrap(), GRAM_SUM);
    let text = c.metrics().unwrap();
    assert!(text.contains("limad_scrub_repairs"), "metrics:\n{text}");
    let repairs: u64 = server
        .shards()
        .iter()
        .map(|s| LimaStats::get(&s.stats().persist_repairs))
        .sum();
    assert_eq!(repairs, flipped as u64);

    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn scrub_wire_op_is_a_noop_for_memory_only_servers() {
    let server = start(LimadConfig::default());
    let mut c = client(&server, "alice");
    c.submit(GRAM_SCRIPT, &outputs(&["s"])).unwrap();
    let reports = c.scrub().unwrap();
    assert_eq!(reports.len(), server.shards().len());
    assert_eq!(reports.iter().map(|r| r.entries).sum::<u64>(), 0);
    assert_eq!(reports.iter().map(|r| r.corrupt).sum::<u64>(), 0);
}

#[test]
fn background_scrubber_makes_progress_and_exports_gauges() {
    let dir = persist_dir("bg");
    let server = start(LimadConfig {
        persist_root: Some(dir.clone()),
        scrub_interval_ms: 10,
        scrub_chunk_bytes: 0, // unbounded: each tick is a full pass
        ..LimadConfig::default()
    });
    let mut c = client(&server, "alice");
    c.submit(GRAM_SCRIPT, &outputs(&["s"])).unwrap();

    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let passes: u64 = server
            .shards()
            .iter()
            .map(|s| LimaStats::get(&s.stats().scrub_passes))
            .sum();
        if passes >= 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "background scrubber completed no pass in 10s"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    let text = c.metrics().unwrap();
    assert!(text.contains("limad_scrub_passes"), "metrics:\n{text}");
    assert!(text.contains("limad_scrub_bytes"), "metrics:\n{text}");

    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}
