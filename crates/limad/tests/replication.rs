//! Replication integration tests: write forwarding, anti-entropy repair,
//! hostile `K_REPL_*` input isolation, and hot-path non-blocking guarantees.

use lima_client::proto::{
    fnv1a, read_frame, write_frame, ErrorCode, ReplRecord, Request, Response, MAX_FRAME_BYTES,
};
use lima_client::{ClientOptions, LimadClient, SubmitOptions};
use lima_core::lineage::serialize_lineage;
use lima_core::{LimaConfig, LimaStats, PressureLevel};
use lima_lang::compile_script;
use lima_matrix::Value;
use lima_runtime::{execute_program, ExecutionContext};
use limad::{LimadConfig, ReplOptions, ReplicaGroup, Server};
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

const GRAM_SCRIPT: &str = "X = matrix(3, 100, 5);\nG = t(X) %*% X;\ns = sum(G);\n";
const GRAM_SUM: f64 = 22_500.0;

fn outputs(names: &[&str]) -> SubmitOptions {
    SubmitOptions {
        outputs: names.iter().map(|s| s.to_string()).collect(),
        ..SubmitOptions::default()
    }
}

fn client(server: &Server, tenant: &str) -> LimadClient {
    LimadClient::new(&server.addr().to_string(), tenant, ClientOptions::default())
}

/// Serialized lineage of variable `var` after running `script` locally —
/// identical script ⇒ identical lineage hash ⇒ same cache key server-side.
fn lineage_of(script: &str, var: &str) -> String {
    let config = LimaConfig::lima();
    let program = compile_script(script, &config).unwrap();
    let mut ctx = ExecutionContext::new(config);
    execute_program(&program, &mut ctx).unwrap();
    serialize_lineage(ctx.lineage.get(var).unwrap())
}

fn base_config() -> LimadConfig {
    LimadConfig {
        shards: 2,
        scrub_interval_ms: 0,
        repl: Some(ReplOptions::default()),
        ..LimadConfig::default()
    }
}

fn wait_until(timeout: Duration, mut done: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if done() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    done()
}

#[test]
fn submits_replicate_to_follower() {
    let group = ReplicaGroup::start(&base_config(), 2).unwrap();
    let mut a = client(group.get(0).unwrap(), "alice");
    let done = a.submit(GRAM_SCRIPT, &outputs(&["s"])).unwrap();
    assert_eq!(done.value("s"), Some(&Value::f64(GRAM_SUM)));

    // The follower serves the value from its own cache — by lineage fetch,
    // without ever seeing the script.
    let lineage = lineage_of(GRAM_SCRIPT, "G");
    let mut b = client(group.get(1).unwrap(), "bob");
    let replicated = wait_until(Duration::from_secs(10), || {
        b.fetch(&lineage).ok().flatten().is_some()
    });
    assert!(replicated, "write replication never reached the follower");
    let g = b.fetch(&lineage).unwrap().unwrap();
    assert!(g.as_matrix().unwrap().data().iter().all(|&v| v == 900.0));
    group.shutdown();
}

#[test]
fn anti_entropy_heals_entries_the_sender_dropped() {
    let group = ReplicaGroup::start(&base_config(), 2).unwrap();
    let leader = group.get(0).unwrap();
    let repl = leader.replicator().expect("replication configured");
    let repl_b = group.get(1).unwrap().replicator().unwrap();

    // Partition: pause both members' outbound machinery. Member 0's sender
    // drops everything submitted; member 1's AE cannot pull. The entry can
    // only cross after the partition lifts.
    repl.pause(true);
    repl_b.pause(true);
    let mut a = client(leader, "alice");
    a.submit(GRAM_SCRIPT, &outputs(&["s"])).unwrap();
    // Let the sender drain (and drop) the paused queue.
    assert!(wait_until(Duration::from_secs(5), || {
        repl.queue_depth() == 0
    }));
    assert!(
        LimaStats::get(&leader.server_stats().repl_send_failures) > 0,
        "paused sender should count its drops as send failures"
    );

    let lineage = lineage_of(GRAM_SCRIPT, "G");
    let mut b = client(group.get(1).unwrap(), "bob");
    assert!(
        b.fetch(&lineage).unwrap().is_none(),
        "paused replication must not have forwarded the entry"
    );

    // Lift the partition: member 1's AE loop digests against member 0,
    // notices the missing bucket, and pulls the entry across.
    repl.pause(false);
    repl_b.pause(false);
    let healed = wait_until(Duration::from_secs(15), || {
        b.fetch(&lineage).ok().flatten().is_some()
    });
    assert!(healed, "anti-entropy never converged the follower");
    assert!(LimaStats::get(&group.get(1).unwrap().server_stats().ae_pulled) > 0);

    // Both members now hold identical replicable keyspaces.
    assert!(wait_until(Duration::from_secs(10), || {
        let ka = group.get(0).unwrap().keyspace_hashes();
        let kb = group.get(1).unwrap().keyspace_hashes();
        !ka.is_empty() && ka == kb
    }));
    group.shutdown();
}

/// Hand-frames one raw request and reads the response.
fn raw_call(stream: &mut TcpStream, kind: u8, id: u64, payload: &[u8]) -> Option<Response> {
    write_frame(stream, kind, id, payload).ok()?;
    let (rkind, _, rpayload) = read_frame(stream, MAX_FRAME_BYTES).ok()?;
    Response::decode(rkind, &rpayload)
}

#[test]
fn malformed_repl_frames_isolate_to_their_connection() {
    let server = Server::start(base_config()).unwrap();
    let addr = server.addr();

    // A structurally hostile ReplDigest payload: buckets=0 is outside the
    // protocol's accepted range, so decode fails and the server answers
    // BadRequest. K_REPL_DIGEST is kind 9 on the wire.
    let mut stream = TcpStream::connect(addr).unwrap();
    let resp = raw_call(&mut stream, 9, 7, &0u32.to_be_bytes()).unwrap();
    let Response::Error(e) = resp else {
        panic!("hostile digest request was not rejected: {resp:?}");
    };
    assert_eq!(e.code, ErrorCode::BadRequest);

    // A torn frame: advertised length larger than the bytes sent, then EOF.
    // The server treats it as torn and closes without a response.
    let mut torn = TcpStream::connect(addr).unwrap();
    let mut frame = Vec::new();
    frame.extend_from_slice(&u32::from_be_bytes(*b"LMD1").to_be_bytes());
    frame.push(8); // K_REPL_PUT
    frame.extend_from_slice(&1u64.to_be_bytes());
    frame.extend_from_slice(&1024u32.to_be_bytes()); // promises 1 KiB
    frame.extend_from_slice(&[0u8; 16]); // delivers 16 bytes, then EOF
    torn.write_all(&frame).unwrap();
    drop(torn);

    // An oversized frame: advertised length beyond the server's cap earns
    // an immediate BadRequest.
    let mut oversized = TcpStream::connect(addr).unwrap();
    let mut frame = Vec::new();
    frame.extend_from_slice(&u32::from_be_bytes(*b"LMD1").to_be_bytes());
    frame.push(8);
    frame.extend_from_slice(&2u64.to_be_bytes());
    frame.extend_from_slice(&u32::MAX.to_be_bytes());
    oversized.write_all(&frame).unwrap();
    let (rkind, _, rpayload) = read_frame(&mut oversized, MAX_FRAME_BYTES).unwrap();
    let Some(Response::Error(e)) = Response::decode(rkind, &rpayload) else {
        panic!("oversized frame was not answered with a typed error");
    };
    assert_eq!(e.code, ErrorCode::BadRequest);

    // None of that hurt the server: a fresh connection still works.
    let mut c = client(&server, "alice");
    c.ping().unwrap();
    assert!(LimaStats::get(&server.server_stats().srv_malformed) >= 2);
    server.shutdown();
}

#[test]
fn garbage_lineage_records_are_rejected_not_fatal() {
    let server = Server::start(base_config()).unwrap();

    // A well-formed frame whose record carries unparseable lineage: the
    // record is rejected, the connection stays usable.
    let rec = ReplRecord::new("this is not a lineage log".into(), Value::f64(1.0), 0);
    let (kind, payload) = Request::ReplPut { records: vec![rec] }.encode();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    let resp = raw_call(&mut stream, kind, 3, &payload).unwrap();
    let Response::ReplAck { applied, rejected } = resp else {
        panic!("expected ReplAck, got {resp:?}");
    };
    assert_eq!(applied, 0);
    assert_eq!(rejected, 1);
    assert!(LimaStats::get(&server.server_stats().repl_rejected) >= 1);

    // Same connection keeps serving.
    let resp = raw_call(&mut stream, kind, 4, &payload).unwrap();
    assert!(matches!(resp, Response::ReplAck { .. }));
    server.shutdown();
}

#[test]
fn corrupt_value_bytes_trigger_lineage_repair() {
    let server = Server::start(base_config()).unwrap();

    // Build a legitimate record for a computable lineage, then corrupt the
    // value bytes while leaving the lineage intact. The member must detect
    // the checksum mismatch and recompute the value from lineage.
    let lineage = lineage_of(GRAM_SCRIPT, "G");
    let mut rec = ReplRecord::new(
        lineage.clone(),
        Value::matrix(lima_matrix::DenseMatrix::from_fn(5, 5, |_, _| 900.0)),
        42,
    );
    // Damage the payload: claim a different matrix than the checksum covers.
    rec.value = Value::matrix(lima_matrix::DenseMatrix::from_fn(5, 5, |_, _| 9.0));
    assert!(!rec.verify_bytes());

    let (kind, payload) = Request::ReplPut { records: vec![rec] }.encode();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    let resp = raw_call(&mut stream, kind, 5, &payload).unwrap();
    let Response::ReplAck { applied, rejected } = resp else {
        panic!("expected ReplAck, got {resp:?}");
    };
    assert_eq!((applied, rejected), (1, 0));
    assert!(LimaStats::get(&server.server_stats().repl_repaired) >= 1);

    // The repaired value is the lineage's true value (all 900s), not the
    // poisoned bytes (all 9s).
    let mut c = client(&server, "alice");
    let v = c.fetch(&lineage).unwrap().expect("repaired entry resident");
    assert!(v.as_matrix().unwrap().data().iter().all(|&x| x == 900.0));
    server.shutdown();
}

/// A fake peer that accepts connections and reads forever without ever
/// responding — the worst-case slow follower.
fn black_hole_peer() -> (String, TcpListener) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    (addr, listener)
}

#[test]
fn replication_never_blocks_the_submit_hot_path() {
    // Tiny queue + a peer that swallows frames without acking: the sender
    // thread wedges inside its io-timeout while the queue overflows. Submits
    // must stay fast and the overflow must be counted, not waited out.
    let mut cfg = base_config();
    cfg.repl = Some(ReplOptions {
        queue_cap: 2,
        io_timeout_ms: 5_000,
        ..ReplOptions::default()
    });
    let server = Server::start(cfg).unwrap();
    let (peer_addr, listener) = black_hole_peer();
    std::thread::spawn(move || {
        let mut conns = Vec::new();
        while let Ok((stream, _)) = listener.accept() {
            conns.push(stream); // hold open, never answer
        }
    });
    server.connect_peers(vec![peer_addr]);

    let mut c = client(&server, "alice");
    let started = Instant::now();
    for i in 0..24 {
        let script = format!("v{i} = sum(matrix({i}, 8, 8));\n");
        c.submit(&script, &SubmitOptions::default()).unwrap();
    }
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_secs(4),
        "submits stalled behind a wedged replication peer: {elapsed:?}"
    );
    assert!(
        LimaStats::get(&server.server_stats().repl_queue_drops) > 0,
        "overflow should drop and count, never block"
    );
    server.shutdown();
}

#[test]
fn governor_pressure_sheds_replication_before_submits() {
    let template = LimaConfig::lima().with_governor(1024 * 1024);
    let mut cfg = base_config();
    cfg.template = template;
    let server = Server::start(cfg).unwrap();

    // Push shard 0's governor to L4: its watcher must drop instead of
    // queueing. Shard-0-routed submits are shed (typed overloaded), but the
    // replication queue must not grow for entries the governor refused.
    let g0 = server.shards().get(0).unwrap().governor().unwrap();
    g0.adjust_session_bytes(2 * 1024 * 1024);
    assert_eq!(g0.level(), PressureLevel::RejectSessions);

    // Find a script routed to the pressured shard.
    let script = (0..)
        .map(|salt| format!("p{salt} = sum(matrix(2, 4, 4));\n"))
        .find(|s| fnv1a(s.as_bytes()).is_multiple_of(2))
        .unwrap();
    let mut c = client(&server, "alice");
    let err = c.submit(&script, &SubmitOptions::default()).unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::Overloaded));

    // A shard-1 submit still replicates normally (enqueued, not dropped).
    let script1 = (0..)
        .map(|salt| format!("q{salt} = sum(matrix(2, 4, 4));\n"))
        .find(|s| (fnv1a(s.as_bytes()) % 2) == 1)
        .unwrap();
    c.submit(&script1, &SubmitOptions::default()).unwrap();
    assert!(LimaStats::get(&server.server_stats().repl_enqueued) > 0);
    server.shutdown();
}
