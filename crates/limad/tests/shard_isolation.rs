//! Shard-level fault isolation.
//!
//! One shard under memory pressure (governor at L3/L4) must shed its own
//! traffic while its siblings keep serving at L0; pressure release must be
//! observable via `governor_recovers`. A shard whose WAL directory is
//! unusable degrades to memory-only and keeps serving while its peers'
//! persistence is untouched.

use lima_client::proto::ErrorCode;
use lima_client::{ClientOptions, LimadClient, SubmitOptions};
use lima_core::{LimaConfig, LimaStats, PressureLevel};
use limad::{LimadConfig, Server, ShardState};

fn outputs(names: &[&str]) -> SubmitOptions {
    SubmitOptions {
        outputs: names.iter().map(|s| s.to_string()).collect(),
        ..SubmitOptions::default()
    }
}

/// Finds a self-contained script that the server's ring routes to `shard`.
/// Routing is a pure function of the script text, so probing a local copy of
/// the ring with candidate scripts is exact.
fn script_for_shard(server: &Server, shard: usize) -> String {
    for salt in 0..10_000u64 {
        let script = format!(
            "X = matrix(2, 30, {});\ns = sum(X) + {salt};\n",
            3 + salt % 5
        );
        if server.shards().route_script(&script).index() == shard {
            return script;
        }
    }
    unreachable!("10k salted scripts never hashed onto shard {shard}");
}

#[test]
fn pressured_shard_sheds_while_siblings_serve() {
    let server = Server::start(LimadConfig {
        shards: 3,
        template: LimaConfig::lima().with_governor(1024 * 1024),
        ..LimadConfig::default()
    })
    .unwrap();
    let scripts: Vec<String> = (0..3).map(|i| script_for_shard(&server, i)).collect();

    // Drown shard 0: straight past the L4 watermark.
    let g0 = server.shards().get(0).unwrap().governor().unwrap();
    g0.adjust_session_bytes(2 * 1024 * 1024);
    assert_eq!(g0.level(), PressureLevel::RejectSessions);

    // Concurrent traffic to all three shards: shard 0 sheds every submit
    // with a typed Overloaded, shards 1 and 2 serve everything.
    let addr = server.addr().to_string();
    let workers: Vec<_> = (0..3)
        .flat_map(|shard| (0..4).map(move |worker| (shard, worker)))
        .map(|(shard, worker)| {
            let addr = addr.clone();
            let script = scripts[shard].clone();
            std::thread::spawn(move || {
                let mut c = LimadClient::new(
                    &addr,
                    &format!("tenant-{worker}"),
                    ClientOptions {
                        retry: lima_core::resilience::RetryPolicy::new(0, 1, 7),
                        ..ClientOptions::default()
                    },
                );
                (shard, c.submit(&script, &outputs(&["s"])))
            })
        })
        .collect();
    for worker in workers {
        let (shard, result) = worker.join().unwrap();
        if shard == 0 {
            let err = result.expect_err("shard 0 must shed");
            assert_eq!(err.code(), Some(ErrorCode::Overloaded), "got {err}");
        } else {
            assert!(result.is_ok(), "sibling shard {shard} failed: {result:?}");
        }
    }

    // The siblings never left L0: pressure did not bleed across shards.
    for i in [1, 2] {
        let g = server.shards().get(i).unwrap().governor().unwrap();
        assert_eq!(
            g.level(),
            PressureLevel::Normal,
            "shard {i} dragged off L0 by shard 0's pressure"
        );
        assert_eq!(
            LimaStats::get(&server.shards().get(i).unwrap().stats().governor_degrades),
            0,
            "shard {i} counted degradations it should never have seen"
        );
    }

    // Release the pressure: recovery is observable and shard 0 serves again.
    g0.adjust_session_bytes(-(2 * 1024 * 1024));
    assert_eq!(g0.level(), PressureLevel::Normal);
    let shard0_stats = server.shards().get(0).unwrap().stats();
    assert!(
        LimaStats::get(&shard0_stats.governor_recovers) >= 1,
        "recovery must bump governor_recovers"
    );
    let mut c = LimadClient::new(&addr, "tenant-0", ClientOptions::default());
    assert!(c.submit(&scripts[0], &outputs(&["s"])).is_ok());
}

#[test]
fn wal_unusable_shard_degrades_to_memory_and_keeps_serving() {
    let dir = std::env::temp_dir().join(format!("limad-degraded-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    // Shard 0's persistence directory is pre-created as a *file*: WAL
    // recovery cannot even open it.
    std::fs::write(dir.join("shard-0"), b"not a directory").unwrap();

    let server = Server::start(LimadConfig {
        shards: 2,
        persist_root: Some(dir.clone()),
        ..LimadConfig::default()
    })
    .unwrap();
    assert_eq!(
        server.shards().get(0).unwrap().state(),
        ShardState::Degraded,
        "shard 0 lost its WAL and must say so"
    );
    assert_eq!(
        server.shards().get(1).unwrap().state(),
        ShardState::Cold,
        "shard 1's persistence must be untouched"
    );

    // Both shards serve — the degraded one from memory.
    let addr = server.addr().to_string();
    let mut c = LimadClient::new(&addr, "alice", ClientOptions::default());
    for shard in 0..2 {
        let script = script_for_shard(&server, shard);
        let done = c.submit(&script, &outputs(&["s"])).unwrap();
        assert!(done.value("s").is_some(), "shard {shard} returned no value");
    }

    // The state is visible in the metrics gauges.
    let text = server.metrics_text();
    assert!(text.contains("limad_shard_state{shard=\"0\"} 2"), "{text}");
    assert!(text.contains("limad_shard_state{shard=\"1\"} 0"), "{text}");

    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn warm_restart_recovers_persisted_entries() {
    let dir = std::env::temp_dir().join(format!("limad-warm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let script = "X = matrix(3, 60, 6);\nG = t(X) %*% X;\ns = sum(G);\n";
    let cfg = || LimadConfig {
        shards: 2,
        persist_root: Some(dir.clone()),
        ..LimadConfig::default()
    };

    // First life: run a script whose gram matrix gets persisted.
    let first = Server::start(cfg()).unwrap();
    let addr = first.addr().to_string();
    let mut c = LimadClient::new(&addr, "alice", ClientOptions::default());
    let expect = c.submit(script, &outputs(&["s"])).unwrap();
    let writes: u64 = first
        .shards()
        .iter()
        .map(|s| LimaStats::get(&s.stats().persist_writes))
        .sum();
    assert!(writes >= 1, "the gram matrix should have been persisted");
    first.shutdown();

    // Second life over the same directory: at least one shard starts warm,
    // and re-running the script reuses recovered entries.
    let second = Server::start(cfg()).unwrap();
    let warm = second
        .shards()
        .iter()
        .filter(|s| s.state() == ShardState::Warm)
        .count();
    assert!(warm >= 1, "no shard recovered anything from its WAL");
    let addr = second.addr().to_string();
    let mut c = LimadClient::new(&addr, "bob", ClientOptions::default());
    let again = c.submit(script, &outputs(&["s"])).unwrap();
    assert_eq!(again.value("s"), expect.value("s"));
    let persist_hits: u64 = second
        .shards()
        .iter()
        .map(|s| LimaStats::get(&s.stats().persist_hits))
        .sum();
    assert!(
        persist_hits >= 1,
        "warm restart must serve at least one hit from recovered entries"
    );

    drop(second);
    let _ = std::fs::remove_dir_all(&dir);
}
