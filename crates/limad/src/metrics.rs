//! Metrics aggregation and the `GET /metrics` HTTP endpoint.
//!
//! Every shard owns an independent [`LimaStats`] block and the server keeps
//! its own for the `srv_*` counters. The exporter sums them index-aligned
//! (the `define_stats!` macro guarantees one shared declaration order) into
//! one fresh block, renders the standard Prometheus text exposition, and
//! appends a `limad_shard_state{shard="i"}` gauge per shard so dashboards
//! can see a degraded shard at a glance.
//!
//! The endpoint is a deliberately tiny hand-rolled HTTP/1.0 responder: one
//! request line, one response, close. No external dependency, no keep-alive.

use crate::server::Inner;
use lima_core::LimaStats;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

/// The aggregated Prometheus text for the whole server.
pub(crate) fn metrics_text(inner: &Inner) -> String {
    let agg = LimaStats::new();
    let mut blocks: Vec<Arc<LimaStats>> = inner.shards.iter().map(|s| s.stats()).collect();
    // Count the server's own block too (srv_* counters live there).
    let sums: Vec<u64> = {
        let mut sums = vec![0u64; agg.counters().len()];
        let server_counters = inner.stats.counters();
        for (i, (_, c)) in server_counters.iter().enumerate() {
            sums[i] += LimaStats::get(c);
        }
        for block in blocks.drain(..) {
            for (i, (_, c)) in block.counters().iter().enumerate() {
                sums[i] += LimaStats::get(c);
            }
        }
        sums
    };
    for ((_, counter), sum) in agg.counters().into_iter().zip(&sums) {
        counter.store(*sum, Ordering::Relaxed);
    }

    let mut out = agg.prometheus();
    out.push_str(
        "# HELP limad_shard_state Shard persistence posture (0=cold, 1=warm, 2=degraded).\n\
         # TYPE limad_shard_state gauge\n",
    );
    for shard in inner.shards.iter() {
        out.push_str(&format!(
            "limad_shard_state{{shard=\"{}\"}} {}\n",
            shard.index(),
            shard.state().as_gauge()
        ));
    }
    out.push_str(
        "# HELP limad_scrub Per-shard integrity-scrubber progress and self-healing outcomes.\n\
         # TYPE limad_scrub gauge\n",
    );
    for shard in inner.shards.iter() {
        let stats = shard.stats();
        let i = shard.index();
        for (name, counter) in [
            ("bytes", &stats.scrub_bytes),
            ("entries", &stats.scrub_entries),
            ("corruptions", &stats.scrub_corruptions),
            ("quarantined", &stats.scrub_quarantined),
            ("passes", &stats.scrub_passes),
            ("pauses", &stats.scrub_pauses),
            ("repairs", &stats.persist_repairs),
            ("repair_failures", &stats.persist_repair_failures),
        ] {
            out.push_str(&format!(
                "limad_scrub_{name}{{shard=\"{i}\"}} {}\n",
                LimaStats::get(counter)
            ));
        }
    }
    if let Some(repl) = inner.repl.as_ref() {
        out.push_str(
            "# HELP limad_replica_state Peer member health (1=reachable, 0=breaker open).\n\
             # TYPE limad_replica_state gauge\n",
        );
        // Peers are wired in ascending member order with self skipped, so
        // the list index maps back to the peer's group-wide member index.
        let me = repl.options().member;
        for (i, (_, healthy)) in repl.peer_states().iter().enumerate() {
            let peer_member = if i < me { i } else { i + 1 };
            out.push_str(&format!(
                "limad_replica_state{{member=\"{peer_member}\"}} {}\n",
                u8::from(*healthy)
            ));
        }
        out.push_str(&format!(
            "# HELP limad_repl_queue_depth Entries waiting in the replication queue.\n\
             # TYPE limad_repl_queue_depth gauge\n\
             limad_repl_queue_depth {}\n",
            repl.queue_depth()
        ));
    }
    out
}

/// Accept loop for the metrics listener (runs on its own thread until the
/// server's shutdown flag flips).
pub(crate) fn serve_metrics(listener: &TcpListener, inner: &Arc<Inner>) {
    const POLL: Duration = Duration::from_millis(25);
    while !inner.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => answer_http(stream, inner),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(_) => std::thread::sleep(POLL),
        }
    }
}

/// One-shot HTTP exchange: parse the request line, answer, close.
fn answer_http(mut stream: TcpStream, inner: &Inner) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    let mut buf = [0u8; 1024];
    let n = match stream.read(&mut buf) {
        Ok(n) if n > 0 => n,
        _ => return,
    };
    let request = String::from_utf8_lossy(&buf[..n]);
    let target = request
        .lines()
        .next()
        .and_then(|line| line.split_whitespace().nth(1))
        .unwrap_or("");
    let (status, body) = if target == "/metrics" {
        ("200 OK", metrics_text(inner))
    } else {
        ("404 Not Found", "only /metrics lives here\n".to_string())
    };
    let response = format!(
        "HTTP/1.0 {status}\r\nContent-Type: text/plain; version=0.0.4\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(response.as_bytes());
}
