//! Lineage-hash-partitioned cache shards.
//!
//! Each [`CacheShard`] owns a complete, independent LIMA stack: its own
//! [`SessionPool`], [`LineageCache`], [`ResourceGovernor`], statistics block,
//! and (when persistence is enabled) its own WAL directory
//! `<persist_root>/shard-<i>`. Nothing is shared between shards except the
//! fault injector threaded through the configuration template — so a shard
//! that trips its persist breaker, fails WAL recovery, or degrades under
//! memory pressure cannot drag a sibling with it.
//!
//! Routing is deterministic: submits hash the script *text* (so identical
//! scripts from different tenants land on the same shard and cross-tenant
//! lineage reuse works), probes and fetches hash the lineage trace itself.

use lima_client::proto::fnv1a;
use lima_core::lineage::LinRef;
use lima_core::{LimaConfig, LimaStats, LineageCache, ResourceGovernor};
use lima_runtime::SessionPool;
use std::path::Path;
use std::sync::Arc;

/// Persistence posture of one shard, derived from its cache after startup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardState {
    /// Persistence is on and at least one entry was recovered from a prior
    /// process (`persist_recovered > 0`).
    Warm,
    /// Serving normally with nothing recovered (fresh start or persistence
    /// disabled by configuration).
    Cold,
    /// Persistence was requested but is not active — the WAL directory was
    /// unusable at startup or the persist breaker latched after repeated
    /// failures. The shard keeps serving from memory.
    Degraded,
}

impl ShardState {
    /// Numeric encoding used by the `limad_shard_state` metrics gauge.
    pub fn as_gauge(self) -> u8 {
        match self {
            ShardState::Cold => 0,
            ShardState::Warm => 1,
            ShardState::Degraded => 2,
        }
    }

    /// Stable lowercase name.
    pub fn as_str(self) -> &'static str {
        match self {
            ShardState::Warm => "warm",
            ShardState::Cold => "cold",
            ShardState::Degraded => "degraded",
        }
    }
}

/// One shard: an isolated session pool plus its configuration.
pub struct CacheShard {
    index: usize,
    config: LimaConfig,
    pool: SessionPool,
}

impl CacheShard {
    /// Builds shard `index` from the template. When `persist_root` is given
    /// and the template enables persistence, the shard persists under its own
    /// `shard-<index>` subdirectory; an unusable directory degrades the shard
    /// to memory-only (observable via [`CacheShard::state`]), never an error.
    pub fn new(index: usize, template: &LimaConfig, persist_root: Option<&Path>) -> Self {
        let mut config = template.clone();
        if let Some(root) = persist_root {
            config.persist_enabled = true;
            config.persist_dir = Some(root.join(format!("shard-{index}")));
        }
        let pool = SessionPool::new(config.clone());
        CacheShard {
            index,
            config,
            pool,
        }
    }

    /// The shard's position in the ring.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The configuration this shard runs with.
    pub fn config(&self) -> &LimaConfig {
        &self.config
    }

    /// The shard's session pool.
    pub fn pool(&self) -> &SessionPool {
        &self.pool
    }

    /// The shard's reuse cache (None only if the template disables reuse).
    pub fn cache(&self) -> Option<Arc<LineageCache>> {
        self.pool.cache()
    }

    /// The shard's memory-pressure governor, when configured.
    pub fn governor(&self) -> Option<Arc<ResourceGovernor>> {
        self.pool.governor()
    }

    /// The shard's statistics block.
    pub fn stats(&self) -> Arc<LimaStats> {
        self.pool.stats()
    }

    /// Current persistence posture; see [`ShardState`].
    pub fn state(&self) -> ShardState {
        let Some(cache) = self.cache() else {
            return ShardState::Cold;
        };
        if !self.config.persist_enabled || self.config.persist_dir.is_none() {
            return ShardState::Cold;
        }
        if !cache.persist_active() {
            return ShardState::Degraded;
        }
        if LimaStats::get(&self.stats().persist_recovered) > 0 {
            ShardState::Warm
        } else {
            ShardState::Cold
        }
    }
}

impl std::fmt::Debug for CacheShard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CacheShard")
            .field("index", &self.index)
            .field("state", &self.state())
            .finish()
    }
}

/// The fixed ring of shards plus the routing functions.
#[derive(Debug)]
pub struct ShardSet {
    shards: Vec<Arc<CacheShard>>,
}

impl ShardSet {
    /// Builds `n` shards (at least one) from the template.
    pub fn new(n: usize, template: &LimaConfig, persist_root: Option<&Path>) -> Self {
        let n = n.max(1);
        ShardSet {
            shards: (0..n)
                .map(|i| Arc::new(CacheShard::new(i, template, persist_root)))
                .collect(),
        }
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// True when the ring is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// All shards, ring order.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<CacheShard>> {
        self.shards.iter()
    }

    /// Shard `i`, if it exists.
    pub fn get(&self, i: usize) -> Option<&Arc<CacheShard>> {
        self.shards.get(i)
    }

    /// Routes a submit by script text, so identical scripts share a shard
    /// (and therefore a cache) regardless of tenant.
    pub fn route_script(&self, script: &str) -> &Arc<CacheShard> {
        let i = (fnv1a(script.as_bytes()) % self.shards.len() as u64) as usize;
        &self.shards[i]
    }

    /// Routes a probe/fetch by the lineage trace's own hash.
    pub fn route_lineage(&self, root: &LinRef) -> &Arc<CacheShard> {
        let i = (root.hash_value() % self.shards.len() as u64) as usize;
        &self.shards[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_deterministic_and_in_range() {
        let set = ShardSet::new(4, &LimaConfig::lima(), None);
        let a = set
            .route_script("X = rand(rows=2, cols=2, seed=1);")
            .index();
        let b = set
            .route_script("X = rand(rows=2, cols=2, seed=1);")
            .index();
        assert_eq!(a, b);
        assert!(a < 4);
        // Different scripts spread over shards eventually.
        let spread: std::collections::HashSet<usize> = (0..64)
            .map(|i| set.route_script(&format!("s = {i};")).index())
            .collect();
        assert!(spread.len() > 1, "64 scripts all routed to one shard");
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let set = ShardSet::new(0, &LimaConfig::lima(), None);
        assert_eq!(set.len(), 1);
        assert!(!set.is_empty());
    }

    #[test]
    fn memory_only_shards_report_cold() {
        let set = ShardSet::new(2, &LimaConfig::lima(), None);
        for shard in set.iter() {
            assert_eq!(shard.state(), ShardState::Cold);
        }
    }

    #[test]
    fn state_gauges_are_distinct() {
        assert_eq!(ShardState::Cold.as_gauge(), 0);
        assert_eq!(ShardState::Warm.as_gauge(), 1);
        assert_eq!(ShardState::Degraded.as_gauge(), 2);
        assert_ne!(ShardState::Warm.as_str(), ShardState::Degraded.as_str());
    }
}
