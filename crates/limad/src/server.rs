//! The `limad` TCP server: thread-per-connection frame loop, request
//! dispatch, tenant quotas, and overload shedding.
//!
//! Failure semantics, in one place:
//!
//! * **Malformed frames** (bad magic, checksum mismatch, oversized payload,
//!   undecodable payloads) earn a typed `BadRequest` response and close
//!   *that connection only* — the shard behind it is untouched.
//! * **Overload** is shed before execution: a submit routed to a shard whose
//!   governor sits at L3 (`NoAdmission`) or above is answered with a typed
//!   `Overloaded` error carrying a retry-after hint. A session admission
//!   rejected by the pool at L4 maps to the same code. The server never
//!   hangs or aborts under pressure.
//! * **Tenant quotas** bound concurrent in-flight submits per tenant;
//!   excess earns `ResourceExhausted` (a client bug or abuse, distinct from
//!   `Overloaded` which is the server's own state).
//! * **Deadlines** propagate from the wire into the session's cooperative
//!   deadline; an expired session returns `DeadlineExceeded`, a cancelled
//!   one `Cancelled`.
//! * **Chaos hooks**: the configured fault injector's `ConnDrop` site tears
//!   the connection instead of writing a response; `SlowShard` (keyed by
//!   shard index) stalls one shard's dispatch so tail-latency and
//!   sibling-isolation assertions have a deterministic target.

use crate::metrics::{metrics_text, serve_metrics};
use crate::shard::{CacheShard, ShardSet};
use lima_client::proto::{
    read_frame, write_frame, ErrorCode, Request, Response, ServiceError, ShardScrub,
    MAX_FRAME_BYTES,
};
use lima_core::faults::{FaultSite, SLOW_SHARD_DELAY_MS};
use lima_core::interrupt::CancelToken;
use lima_core::{LimaConfig, LimaStats, PressureLevel};
use lima_lang::compile_script;
use lima_runtime::{RuntimeError, SessionOptions};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How often blocked accept/read loops re-check the shutdown flag.
const POLL: Duration = Duration::from_millis(25);

/// Read timeout applied while receiving the body of a frame whose first byte
/// has arrived; a peer stalling longer mid-frame is treated as torn.
const FRAME_TIMEOUT: Duration = Duration::from_secs(10);

/// Server configuration.
#[derive(Debug, Clone)]
pub struct LimadConfig {
    /// Wire-protocol listen address (`"127.0.0.1:0"` picks a free port).
    pub listen: String,
    /// Metrics (HTTP `GET /metrics`) listen address.
    pub metrics_listen: String,
    /// Number of cache shards.
    pub shards: usize,
    /// Per-shard LIMA configuration template (faults ride along here).
    pub template: LimaConfig,
    /// Root directory for per-shard persistence (`shard-<i>` subdirs);
    /// `None` runs memory-only.
    pub persist_root: Option<PathBuf>,
    /// Concurrent in-flight submits allowed per tenant; 0 = unlimited.
    pub tenant_max_sessions: usize,
    /// Deadline applied to submits that carry `deadline_ms == 0`.
    pub default_deadline_ms: u64,
    /// Retry-after hint attached to `Overloaded` responses.
    pub retry_after_ms: u64,
    /// Largest request frame accepted before the typed `BadRequest` cutoff.
    pub max_frame_bytes: usize,
    /// Delay between background integrity-scrub chunks per shard; 0 disables
    /// the background scrubber (admin `Scrub` requests still work).
    pub scrub_interval_ms: u64,
    /// Byte budget handed to each background scrub chunk.
    pub scrub_chunk_bytes: u64,
}

impl Default for LimadConfig {
    fn default() -> Self {
        LimadConfig {
            listen: "127.0.0.1:0".into(),
            metrics_listen: "127.0.0.1:0".into(),
            shards: 4,
            template: LimaConfig::lima(),
            persist_root: None,
            tenant_max_sessions: 8,
            default_deadline_ms: 30_000,
            retry_after_ms: 50,
            max_frame_bytes: MAX_FRAME_BYTES,
            scrub_interval_ms: 500,
            scrub_chunk_bytes: 4 * 1024 * 1024,
        }
    }
}

/// State shared by every connection thread.
pub(crate) struct Inner {
    pub(crate) cfg: LimadConfig,
    pub(crate) shards: ShardSet,
    /// Server-level counters (`srv_*`); shard counters live in each shard.
    pub(crate) stats: LimaStats,
    /// In-flight submit count per tenant.
    tenants: Mutex<HashMap<String, usize>>,
    /// Cancel tokens of running sessions, by server-assigned id.
    sessions: Mutex<HashMap<u64, Arc<CancelToken>>>,
    next_session: AtomicU64,
    pub(crate) shutdown: AtomicBool,
}

/// Decrements a tenant's in-flight count on drop, so every submit exit path
/// (success, typed error, panic unwind) releases its quota slot.
struct QuotaSlot<'a> {
    inner: &'a Inner,
    tenant: String,
}

impl Drop for QuotaSlot<'_> {
    fn drop(&mut self) {
        let mut tenants = self.inner.tenants.lock();
        if let Some(count) = tenants.get_mut(&self.tenant) {
            *count = count.saturating_sub(1);
            if *count == 0 {
                tenants.remove(&self.tenant);
            }
        }
    }
}

/// Removes a session's cancel token from the registry on drop.
struct SessionSlot<'a> {
    inner: &'a Inner,
    id: u64,
}

impl Drop for SessionSlot<'_> {
    fn drop(&mut self) {
        self.inner.sessions.lock().remove(&self.id);
    }
}

fn err(code: ErrorCode, msg: impl Into<String>) -> Response {
    Response::Error(ServiceError::new(code, 0, msg))
}

/// A compile failure with its source-anchored diagnostics attached, so the
/// client can render caret snippets against the script it submitted.
fn compile_err(e: &lima_lang::CompileError) -> Response {
    Response::Error(ServiceError {
        code: ErrorCode::Compile,
        retry_after_ms: 0,
        msg: e.to_string(),
        diagnostics: e.diagnostics(),
    })
}

impl Inner {
    fn overloaded(&self, msg: impl Into<String>) -> Response {
        Response::Error(ServiceError::new(
            ErrorCode::Overloaded,
            self.cfg.retry_after_ms,
            msg,
        ))
    }

    /// Injected per-shard stall (chaos `SlowShard` site, keyed by index).
    fn maybe_stall(&self, shard: &CacheShard) {
        if let Some(faults) = &self.cfg.template.faults {
            if faults.should_fail_at(FaultSite::SlowShard, shard.index() as u64) {
                std::thread::sleep(Duration::from_millis(SLOW_SHARD_DELAY_MS));
            }
        }
    }

    fn dispatch(&self, req: Request) -> Response {
        match req {
            Request::Submit {
                tenant,
                script,
                seed,
                outputs,
                deadline_ms,
            } => self.submit(&tenant, &script, seed, &outputs, deadline_ms),
            Request::Probe { lineage, .. } => {
                match lima_core::lineage::deserialize_lineage(&lineage) {
                    Ok(root) => Response::Probed {
                        hit: self.lookup(&root).is_some(),
                    },
                    Err(e) => err(ErrorCode::BadRequest, format!("unparseable lineage: {e}")),
                }
            }
            Request::Fetch { lineage, .. } => {
                match lima_core::lineage::deserialize_lineage(&lineage) {
                    Ok(root) => Response::Fetched(self.lookup(&root)),
                    Err(e) => err(ErrorCode::BadRequest, format!("unparseable lineage: {e}")),
                }
            }
            Request::Cancel { session } => {
                let found = match self.sessions.lock().get(&session) {
                    Some(token) => {
                        token.cancel();
                        true
                    }
                    None => false,
                };
                Response::Cancelled { found }
            }
            Request::Metrics => Response::MetricsText(metrics_text(self)),
            Request::Ping => Response::Pong,
            Request::Scrub => Response::Scrubbed(self.scrub_all()),
        }
    }

    /// One synchronous, full integrity pass over every shard (admin `Scrub`
    /// wire op). Each shard's pass drives `scrub_step` until the cursor
    /// wraps; a shard paused by its governor (or without an active store)
    /// reports `completed: false` rather than blocking the connection.
    fn scrub_all(&self) -> Vec<ShardScrub> {
        self.shards
            .iter()
            .map(|shard| scrub_shard_pass(shard, self.cfg.scrub_chunk_bytes))
            .collect()
    }

    /// Cache lookup for one lineage trace. Submits route by *script* hash,
    /// so an entry lives on whichever shard ran the creating script; the
    /// lineage-routed shard is checked first (the stable address for
    /// entries fetched repeatedly), then the peers.
    fn lookup(&self, root: &lima_core::lineage::LinRef) -> Option<lima_matrix::Value> {
        let preferred = self.shards.route_lineage(root);
        self.maybe_stall(preferred);
        if let Some(v) = preferred.cache().and_then(|c| c.peek(root)) {
            return Some(v);
        }
        self.shards
            .iter()
            .filter(|s| s.index() != preferred.index())
            .find_map(|s| s.cache().and_then(|c| c.peek(root)))
    }

    fn submit(
        &self,
        tenant: &str,
        script: &str,
        seed: Option<u64>,
        outputs: &[String],
        deadline_ms: u64,
    ) -> Response {
        // Tenant quota first: cheap, and abuse must not reach a shard.
        let _slot = {
            let max = self.cfg.tenant_max_sessions;
            let mut tenants = self.tenants.lock();
            let count = tenants.entry(tenant.to_string()).or_insert(0);
            if max > 0 && *count >= max {
                drop(tenants);
                LimaStats::bump(&self.stats.srv_quota_rejects);
                return err(
                    ErrorCode::ResourceExhausted,
                    format!("tenant '{tenant}' at its quota of {max} concurrent sessions"),
                );
            }
            *count += 1;
            drop(tenants);
            QuotaSlot {
                inner: self,
                tenant: tenant.to_string(),
            }
        };

        let shard = self.shards.route_script(script);
        self.maybe_stall(shard);

        // Shed before compiling: at L3 the shard's cache admits nothing new,
        // so running more sessions only deepens the pressure.
        if let Some(g) = shard.governor() {
            if g.level() >= PressureLevel::NoAdmission {
                LimaStats::bump(&self.stats.srv_sheds);
                return self.overloaded(format!(
                    "shard {} shedding at {}",
                    shard.index(),
                    g.level().as_str()
                ));
            }
        }

        let program = match compile_script(script, shard.config()) {
            Ok(p) => Arc::new(p),
            Err(e) => return compile_err(&e),
        };

        let id = self.next_session.fetch_add(1, Ordering::Relaxed);
        let token = Arc::new(CancelToken::default());
        self.sessions.lock().insert(id, Arc::clone(&token));
        let _session_slot = SessionSlot { inner: self, id };

        let deadline = if deadline_ms > 0 {
            deadline_ms
        } else {
            self.cfg.default_deadline_ms
        };
        let mut opts = SessionOptions::new()
            .with_token(token)
            .with_timeout(Duration::from_millis(deadline));
        opts.seed = seed;

        let outcome = match shard.pool().spawn(program, opts) {
            Ok(handle) => handle.join(),
            Err(e) => return self.map_runtime_error(e),
        };
        match outcome {
            Ok(outcome) => {
                let mut values = Vec::with_capacity(outputs.len());
                for name in outputs {
                    match outcome.values.get(name) {
                        Some(v) => values.push((name.clone(), v.clone())),
                        None => {
                            return err(
                                ErrorCode::Runtime,
                                format!("requested output '{name}' was not produced"),
                            )
                        }
                    }
                }
                Response::Submitted {
                    session: id,
                    values,
                    stdout: outcome.stdout,
                }
            }
            Err(e) => self.map_runtime_error(e),
        }
    }

    /// Maps the runtime's typed errors to wire codes. Governor rejections
    /// become `Overloaded` (server state, retryable); everything else keeps
    /// its own identity.
    fn map_runtime_error(&self, e: RuntimeError) -> Response {
        match e {
            RuntimeError::DeadlineExceeded => err(ErrorCode::DeadlineExceeded, e.to_string()),
            RuntimeError::Cancelled => err(ErrorCode::Cancelled, e.to_string()),
            RuntimeError::ResourceExhausted(msg) => {
                LimaStats::bump(&self.stats.srv_sheds);
                self.overloaded(msg)
            }
            other => err(ErrorCode::Runtime, other.to_string()),
        }
    }
}

/// Cap on chunks per synchronous scrub pass, so a store that keeps growing
/// mid-pass cannot wedge an admin connection.
const MAX_SCRUB_CHUNKS: u32 = 100_000;

/// Drives one shard's scrub cursor through a complete wrap. Returns early
/// (with `completed: false`) when the governor pauses scrubbing or the
/// shard has no active persistent store.
fn scrub_shard_pass(shard: &CacheShard, chunk_bytes: u64) -> ShardScrub {
    let mut report = ShardScrub {
        shard: shard.index() as u32,
        ..ShardScrub::default()
    };
    let Some(cache) = shard.cache() else {
        return report;
    };
    for _ in 0..MAX_SCRUB_CHUNKS {
        match cache.scrub_step(chunk_bytes) {
            Some(out) => {
                report.bytes += out.bytes;
                report.entries += out.entries;
                report.corrupt += out.corrupt;
                report.repaired += out.repaired;
                report.repair_failures += out.repair_failures;
                report.quarantined += out.quarantined;
                if out.wrapped {
                    report.completed = true;
                    break;
                }
            }
            None => break,
        }
    }
    report
}

/// A running `limad` server. Dropping it (or calling
/// [`Server::shutdown`]) stops the accept loops, cancels in-flight
/// sessions, and joins the listener threads; connection threads drain on
/// their next poll tick.
pub struct Server {
    inner: Arc<Inner>,
    addr: SocketAddr,
    metrics_addr: SocketAddr,
    accept: Option<std::thread::JoinHandle<()>>,
    metrics: Option<std::thread::JoinHandle<()>>,
    scrubbers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds both listeners and starts serving.
    pub fn start(cfg: LimadConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.listen)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let metrics_listener = TcpListener::bind(&cfg.metrics_listen)?;
        metrics_listener.set_nonblocking(true)?;
        let metrics_addr = metrics_listener.local_addr()?;

        let shards = ShardSet::new(cfg.shards, &cfg.template, cfg.persist_root.as_deref());
        let inner = Arc::new(Inner {
            cfg,
            shards,
            stats: LimaStats::new(),
            tenants: Mutex::new(HashMap::new()),
            sessions: Mutex::new(HashMap::new()),
            next_session: AtomicU64::new(1),
            shutdown: AtomicBool::new(false),
        });

        let accept_inner = Arc::clone(&inner);
        let accept = std::thread::Builder::new()
            .name("limad-accept".into())
            .spawn(move || accept_loop(&listener, &accept_inner))?;
        let metrics_inner = Arc::clone(&inner);
        let metrics = std::thread::Builder::new()
            .name("limad-metrics".into())
            .spawn(move || serve_metrics(&metrics_listener, &metrics_inner))?;

        // One background scrubber per shard: each re-verifies its own store
        // at the configured cadence, pausing automatically under governor
        // pressure (scrub_step refuses I/O at L2+).
        let mut scrubbers = Vec::new();
        if inner.cfg.scrub_interval_ms > 0 && inner.cfg.persist_root.is_some() {
            for i in 0..inner.shards.len() {
                let scrub_inner = Arc::clone(&inner);
                scrubbers.push(
                    std::thread::Builder::new()
                        .name(format!("limad-scrub-{i}"))
                        .spawn(move || scrub_loop(&scrub_inner, i))?,
                );
            }
        }

        Ok(Server {
            inner,
            addr,
            metrics_addr,
            accept: Some(accept),
            metrics: Some(metrics),
            scrubbers,
        })
    }

    /// The bound wire-protocol address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound metrics (HTTP) address.
    pub fn metrics_addr(&self) -> SocketAddr {
        self.metrics_addr
    }

    /// The shard ring (test observability).
    pub fn shards(&self) -> &ShardSet {
        &self.inner.shards
    }

    /// Server-level `srv_*` counters (test observability).
    pub fn server_stats(&self) -> &LimaStats {
        &self.inner.stats
    }

    /// The aggregated metrics text also served at `GET /metrics`.
    pub fn metrics_text(&self) -> String {
        metrics_text(&self.inner)
    }

    /// Stops accepting, cancels in-flight sessions, joins listener threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        for token in self.inner.sessions.lock().values() {
            token.cancel();
        }
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        if let Some(t) = self.metrics.take() {
            let _ = t.join();
        }
        for t in self.scrubbers.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Background scrubber for shard `index`: one byte-budgeted chunk per
/// interval, shutdown-responsive between chunks.
fn scrub_loop(inner: &Arc<Inner>, index: usize) {
    let interval = Duration::from_millis(inner.cfg.scrub_interval_ms);
    while !inner.shutdown.load(Ordering::SeqCst) {
        let mut waited = Duration::ZERO;
        while waited < interval && !inner.shutdown.load(Ordering::SeqCst) {
            std::thread::sleep(POLL);
            waited += POLL;
        }
        if inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
        if let Some(cache) = inner.shards.get(index).and_then(|s| s.cache()) {
            let _ = cache.scrub_step(inner.cfg.scrub_chunk_bytes);
        }
    }
}

fn accept_loop(listener: &TcpListener, inner: &Arc<Inner>) {
    while !inner.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let conn_inner = Arc::clone(inner);
                let spawned = std::thread::Builder::new()
                    .name("limad-conn".into())
                    .spawn(move || handle_connection(stream, &conn_inner));
                // Thread exhaustion sheds the connection, not the server.
                drop(spawned);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(_) => std::thread::sleep(POLL),
        }
    }
}

/// One connection's frame loop. Returns (closing the connection) on EOF,
/// torn frames, malformed input, injected connection drops, and shutdown.
fn handle_connection(stream: TcpStream, inner: &Arc<Inner>) {
    let _ = stream.set_nodelay(true);
    let mut stream = stream;
    while !inner.shutdown.load(Ordering::SeqCst) {
        // Poll for the first byte so shutdown stays responsive, then switch
        // to the frame timeout for the remainder of the frame.
        if stream.set_read_timeout(Some(POLL)).is_err() {
            return;
        }
        let mut first = [0u8; 1];
        match Read::read(&mut stream, &mut first) {
            Ok(0) => return, // clean EOF at a frame boundary
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) =>
            {
                continue;
            }
            Err(_) => return,
        }
        if stream.set_read_timeout(Some(FRAME_TIMEOUT)).is_err() {
            return;
        }
        let frame = {
            let mut chained = (&first[..]).chain(&stream);
            read_frame(&mut chained, inner.cfg.max_frame_bytes)
        };
        let (kind, id, payload) = match frame {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                // Malformed frame: answer with a typed error, then isolate
                // by closing this connection. Framing is unrecoverable.
                LimaStats::bump(&inner.stats.srv_malformed);
                let resp = err(ErrorCode::BadRequest, e.to_string());
                let (rkind, rpayload) = resp.encode();
                let _ = write_frame(&mut stream, rkind, 0, &rpayload);
                return;
            }
            Err(_) => return, // torn mid-frame or timed out
        };

        LimaStats::bump(&inner.stats.srv_requests);
        let resp = match Request::decode(kind, &payload) {
            Some(req) => inner.dispatch(req),
            None => {
                LimaStats::bump(&inner.stats.srv_malformed);
                err(
                    ErrorCode::BadRequest,
                    format!("undecodable request kind {kind:#x}"),
                )
            }
        };
        let close_after = matches!(
            &resp,
            Response::Error(e) if e.code == ErrorCode::BadRequest
        );

        // Chaos hook: tear the connection instead of responding.
        if let Some(faults) = &inner.cfg.template.faults {
            if faults.should_fail(FaultSite::ConnDrop) {
                LimaStats::bump(&inner.stats.srv_conn_drops);
                return;
            }
        }

        let (rkind, rpayload) = resp.encode();
        if write_frame(&mut stream, rkind, id, &rpayload).is_err() || close_after {
            return;
        }
    }
}
