//! The `limad` TCP server: thread-per-connection frame loop, request
//! dispatch, tenant quotas, and overload shedding.
//!
//! Failure semantics, in one place:
//!
//! * **Malformed frames** (bad magic, checksum mismatch, oversized payload,
//!   undecodable payloads) earn a typed `BadRequest` response and close
//!   *that connection only* — the shard behind it is untouched.
//! * **Overload** is shed before execution: a submit routed to a shard whose
//!   governor sits at L3 (`NoAdmission`) or above is answered with a typed
//!   `Overloaded` error carrying a retry-after hint. A session admission
//!   rejected by the pool at L4 maps to the same code. The server never
//!   hangs or aborts under pressure.
//! * **Tenant quotas** bound concurrent in-flight submits per tenant;
//!   excess earns `ResourceExhausted` (a client bug or abuse, distinct from
//!   `Overloaded` which is the server's own state).
//! * **Deadlines** propagate from the wire into the session's cooperative
//!   deadline; an expired session returns `DeadlineExceeded`, a cancelled
//!   one `Cancelled`.
//! * **Chaos hooks**: the configured fault injector's `ConnDrop` site tears
//!   the connection instead of writing a response; `SlowShard` (keyed by
//!   shard index) stalls one shard's dispatch so tail-latency and
//!   sibling-isolation assertions have a deterministic target.

use crate::metrics::{metrics_text, serve_metrics};
use crate::repl::{ReplOptions, Replicator};
use crate::shard::{CacheShard, ShardSet};
use lima_client::proto::{
    read_frame, write_frame, ErrorCode, Request, Response, ServiceError, ShardScrub,
    MAX_FRAME_BYTES,
};
use lima_core::faults::{FaultSite, SLOW_SHARD_DELAY_MS};
use lima_core::interrupt::CancelToken;
use lima_core::{LimaConfig, LimaStats, PressureLevel};
use lima_lang::compile_script;
use lima_runtime::{RuntimeError, SessionOptions};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How often blocked accept/read loops re-check the shutdown flag.
const POLL: Duration = Duration::from_millis(25);

/// Read timeout applied while receiving the body of a frame whose first byte
/// has arrived; a peer stalling longer mid-frame is treated as torn.
const FRAME_TIMEOUT: Duration = Duration::from_secs(10);

/// Server configuration.
#[derive(Debug, Clone)]
pub struct LimadConfig {
    /// Wire-protocol listen address (`"127.0.0.1:0"` picks a free port).
    pub listen: String,
    /// Metrics (HTTP `GET /metrics`) listen address.
    pub metrics_listen: String,
    /// Number of cache shards.
    pub shards: usize,
    /// Per-shard LIMA configuration template (faults ride along here).
    pub template: LimaConfig,
    /// Root directory for per-shard persistence (`shard-<i>` subdirs);
    /// `None` runs memory-only.
    pub persist_root: Option<PathBuf>,
    /// Concurrent in-flight submits allowed per tenant; 0 = unlimited.
    pub tenant_max_sessions: usize,
    /// Deadline applied to submits that carry `deadline_ms == 0`.
    pub default_deadline_ms: u64,
    /// Retry-after hint attached to `Overloaded` responses.
    pub retry_after_ms: u64,
    /// Largest request frame accepted before the typed `BadRequest` cutoff.
    pub max_frame_bytes: usize,
    /// Delay between background integrity-scrub chunks per shard; 0 disables
    /// the background scrubber (admin `Scrub` requests still work).
    pub scrub_interval_ms: u64,
    /// Byte budget handed to each background scrub chunk.
    pub scrub_chunk_bytes: u64,
    /// Replication tuning; `None` runs the member standalone (replication
    /// wire ops still answer, so a standalone member can seed a new group).
    pub repl: Option<ReplOptions>,
}

impl Default for LimadConfig {
    fn default() -> Self {
        LimadConfig {
            listen: "127.0.0.1:0".into(),
            metrics_listen: "127.0.0.1:0".into(),
            shards: 4,
            template: LimaConfig::lima(),
            persist_root: None,
            tenant_max_sessions: 8,
            default_deadline_ms: 30_000,
            retry_after_ms: 50,
            max_frame_bytes: MAX_FRAME_BYTES,
            scrub_interval_ms: 500,
            scrub_chunk_bytes: 4 * 1024 * 1024,
            repl: None,
        }
    }
}

/// State shared by every connection thread.
pub(crate) struct Inner {
    pub(crate) cfg: LimadConfig,
    pub(crate) shards: ShardSet,
    /// Server-level counters (`srv_*`, `repl_*`, `ae_*`); shard counters
    /// live in each shard. Shared with the replicator's background threads.
    pub(crate) stats: Arc<LimaStats>,
    /// Replication state when this member runs in a replica group.
    pub(crate) repl: Option<Arc<Replicator>>,
    /// In-flight submit count per tenant.
    tenants: Mutex<HashMap<String, usize>>,
    /// Cancel tokens of running sessions, by server-assigned id.
    sessions: Mutex<HashMap<u64, Arc<CancelToken>>>,
    next_session: AtomicU64,
    pub(crate) shutdown: AtomicBool,
}

/// Decrements a tenant's in-flight count on drop, so every submit exit path
/// (success, typed error, panic unwind) releases its quota slot.
struct QuotaSlot<'a> {
    inner: &'a Inner,
    tenant: String,
}

impl Drop for QuotaSlot<'_> {
    fn drop(&mut self) {
        let mut tenants = self.inner.tenants.lock();
        if let Some(count) = tenants.get_mut(&self.tenant) {
            *count = count.saturating_sub(1);
            if *count == 0 {
                tenants.remove(&self.tenant);
            }
        }
    }
}

/// Removes a session's cancel token from the registry on drop.
struct SessionSlot<'a> {
    inner: &'a Inner,
    id: u64,
}

impl Drop for SessionSlot<'_> {
    fn drop(&mut self) {
        self.inner.sessions.lock().remove(&self.id);
    }
}

fn err(code: ErrorCode, msg: impl Into<String>) -> Response {
    Response::Error(ServiceError::new(code, 0, msg))
}

/// A compile failure with its source-anchored diagnostics attached, so the
/// client can render caret snippets against the script it submitted.
fn compile_err(e: &lima_lang::CompileError) -> Response {
    Response::Error(ServiceError {
        code: ErrorCode::Compile,
        retry_after_ms: 0,
        msg: e.to_string(),
        diagnostics: e.diagnostics(),
    })
}

impl Inner {
    fn overloaded(&self, msg: impl Into<String>) -> Response {
        Response::Error(ServiceError::new(
            ErrorCode::Overloaded,
            self.cfg.retry_after_ms,
            msg,
        ))
    }

    /// Injected per-shard stall (chaos `SlowShard` site, keyed by index).
    fn maybe_stall(&self, shard: &CacheShard) {
        if let Some(faults) = &self.cfg.template.faults {
            if faults.should_fail_at(FaultSite::SlowShard, shard.index() as u64) {
                std::thread::sleep(Duration::from_millis(SLOW_SHARD_DELAY_MS));
            }
        }
    }

    fn dispatch(&self, req: Request) -> Response {
        match req {
            Request::Submit {
                tenant,
                script,
                seed,
                outputs,
                deadline_ms,
            } => self.submit(&tenant, &script, seed, &outputs, deadline_ms),
            Request::Probe { lineage, .. } => {
                match lima_core::lineage::deserialize_lineage(&lineage) {
                    Ok(root) => Response::Probed {
                        hit: self.lookup(&root).is_some(),
                    },
                    Err(e) => err(ErrorCode::BadRequest, format!("unparseable lineage: {e}")),
                }
            }
            Request::Fetch { lineage, .. } => {
                match lima_core::lineage::deserialize_lineage(&lineage) {
                    Ok(root) => Response::Fetched(self.lookup(&root)),
                    Err(e) => err(ErrorCode::BadRequest, format!("unparseable lineage: {e}")),
                }
            }
            Request::Cancel { session } => {
                let found = match self.sessions.lock().get(&session) {
                    Some(token) => {
                        token.cancel();
                        true
                    }
                    None => false,
                };
                Response::Cancelled { found }
            }
            Request::Metrics => Response::MetricsText(metrics_text(self)),
            Request::Ping => Response::Pong,
            Request::Scrub => Response::Scrubbed(self.scrub_all()),
            // Replication ops are served whether or not this member runs a
            // replicator of its own: a standalone member can always be read
            // from (digest/pull) or written to (put) by a peer.
            Request::ReplPut { records } => {
                let mut applied = 0u32;
                let mut rejected = 0u32;
                for rec in &records {
                    if crate::repl::apply_record(self, rec, false) {
                        applied += 1;
                    } else {
                        rejected += 1;
                    }
                }
                Response::ReplAck { applied, rejected }
            }
            Request::ReplDigest { buckets } => {
                Response::ReplDigests(crate::repl::local_digests(&self.shards, buckets))
            }
            Request::ReplPull { bucket, buckets } => {
                Response::ReplEntries(crate::repl::export_entries(&self.shards, bucket, buckets))
            }
        }
    }

    /// One synchronous, full integrity pass over every shard (admin `Scrub`
    /// wire op). Each shard's pass drives `scrub_step` until the cursor
    /// wraps; a shard paused by its governor (or without an active store)
    /// reports `completed: false` rather than blocking the connection.
    fn scrub_all(&self) -> Vec<ShardScrub> {
        self.shards
            .iter()
            .map(|shard| scrub_shard_pass(shard, self.cfg.scrub_chunk_bytes))
            .collect()
    }

    /// Cache lookup for one lineage trace. Submits route by *script* hash,
    /// so an entry lives on whichever shard ran the creating script; the
    /// lineage-routed shard is checked first (the stable address for
    /// entries fetched repeatedly), then the peers.
    fn lookup(&self, root: &lima_core::lineage::LinRef) -> Option<lima_matrix::Value> {
        let preferred = self.shards.route_lineage(root);
        self.maybe_stall(preferred);
        if let Some(v) = preferred.cache().and_then(|c| c.peek(root)) {
            return Some(v);
        }
        self.shards
            .iter()
            .filter(|s| s.index() != preferred.index())
            .find_map(|s| s.cache().and_then(|c| c.peek(root)))
    }

    fn submit(
        &self,
        tenant: &str,
        script: &str,
        seed: Option<u64>,
        outputs: &[String],
        deadline_ms: u64,
    ) -> Response {
        // Tenant quota first: cheap, and abuse must not reach a shard.
        let _slot = {
            let max = self.cfg.tenant_max_sessions;
            let mut tenants = self.tenants.lock();
            let count = tenants.entry(tenant.to_string()).or_insert(0);
            if max > 0 && *count >= max {
                drop(tenants);
                LimaStats::bump(&self.stats.srv_quota_rejects);
                return err(
                    ErrorCode::ResourceExhausted,
                    format!("tenant '{tenant}' at its quota of {max} concurrent sessions"),
                );
            }
            *count += 1;
            drop(tenants);
            QuotaSlot {
                inner: self,
                tenant: tenant.to_string(),
            }
        };

        let shard = self.shards.route_script(script);
        self.maybe_stall(shard);

        // Shed before compiling: at L3 the shard's cache admits nothing new,
        // so running more sessions only deepens the pressure.
        if let Some(g) = shard.governor() {
            if g.level() >= PressureLevel::NoAdmission {
                LimaStats::bump(&self.stats.srv_sheds);
                return self.overloaded(format!(
                    "shard {} shedding at {}",
                    shard.index(),
                    g.level().as_str()
                ));
            }
        }

        let program = match compile_script(script, shard.config()) {
            Ok(p) => Arc::new(p),
            Err(e) => return compile_err(&e),
        };

        let id = self.next_session.fetch_add(1, Ordering::Relaxed);
        let token = Arc::new(CancelToken::default());
        self.sessions.lock().insert(id, Arc::clone(&token));
        let _session_slot = SessionSlot { inner: self, id };

        let deadline = if deadline_ms > 0 {
            deadline_ms
        } else {
            self.cfg.default_deadline_ms
        };
        let mut opts = SessionOptions::new()
            .with_token(token)
            .with_timeout(Duration::from_millis(deadline));
        opts.seed = seed;

        let outcome = match shard.pool().spawn(program, opts) {
            Ok(handle) => handle.join(),
            Err(e) => return self.map_runtime_error(e),
        };
        match outcome {
            Ok(outcome) => {
                let mut values = Vec::with_capacity(outputs.len());
                for name in outputs {
                    match outcome.values.get(name) {
                        Some(v) => values.push((name.clone(), v.clone())),
                        None => {
                            return err(
                                ErrorCode::Runtime,
                                format!("requested output '{name}' was not produced"),
                            )
                        }
                    }
                }
                Response::Submitted {
                    session: id,
                    values,
                    stdout: outcome.stdout,
                }
            }
            Err(e) => self.map_runtime_error(e),
        }
    }

    /// Maps the runtime's typed errors to wire codes. Governor rejections
    /// become `Overloaded` (server state, retryable); everything else keeps
    /// its own identity.
    fn map_runtime_error(&self, e: RuntimeError) -> Response {
        match e {
            RuntimeError::DeadlineExceeded => err(ErrorCode::DeadlineExceeded, e.to_string()),
            RuntimeError::Cancelled => err(ErrorCode::Cancelled, e.to_string()),
            RuntimeError::ResourceExhausted(msg) => {
                LimaStats::bump(&self.stats.srv_sheds);
                self.overloaded(msg)
            }
            other => err(ErrorCode::Runtime, other.to_string()),
        }
    }
}

/// Cap on chunks per synchronous scrub pass, so a store that keeps growing
/// mid-pass cannot wedge an admin connection.
const MAX_SCRUB_CHUNKS: u32 = 100_000;

/// Drives one shard's scrub cursor through a complete wrap. Returns early
/// (with `completed: false`) when the governor pauses scrubbing or the
/// shard has no active persistent store.
fn scrub_shard_pass(shard: &CacheShard, chunk_bytes: u64) -> ShardScrub {
    let mut report = ShardScrub {
        shard: shard.index() as u32,
        ..ShardScrub::default()
    };
    let Some(cache) = shard.cache() else {
        return report;
    };
    for _ in 0..MAX_SCRUB_CHUNKS {
        match cache.scrub_step(chunk_bytes) {
            Some(out) => {
                report.bytes += out.bytes;
                report.entries += out.entries;
                report.corrupt += out.corrupt;
                report.repaired += out.repaired;
                report.repair_failures += out.repair_failures;
                report.quarantined += out.quarantined;
                if out.wrapped {
                    report.completed = true;
                    break;
                }
            }
            None => break,
        }
    }
    report
}

/// A running `limad` server. Dropping it (or calling
/// [`Server::shutdown`]) stops the accept loops, cancels in-flight
/// sessions, and joins the listener threads; connection threads drain on
/// their next poll tick.
pub struct Server {
    inner: Arc<Inner>,
    addr: SocketAddr,
    metrics_addr: SocketAddr,
    accept: Option<std::thread::JoinHandle<()>>,
    metrics: Option<std::thread::JoinHandle<()>>,
    scrubbers: Vec<std::thread::JoinHandle<()>>,
    repl_threads: Vec<std::thread::JoinHandle<()>>,
}

/// Binds a TCP listener with `SO_REUSEADDR`, so a replica member restarted
/// after a kill can rebind its advertised port immediately even while
/// connections from its previous life still sit in TIME_WAIT. The std
/// binder does not set the option, and the workspace vendors no socket
/// crate, so the option is set through libc directly (std already links
/// it); non-Linux targets fall back to the plain binder.
#[cfg(target_os = "linux")]
fn bind_listener(addr: &str) -> std::io::Result<TcpListener> {
    use std::net::ToSocketAddrs;
    use std::os::fd::FromRawFd;

    let resolved = addr.to_socket_addrs()?.next();
    let Some(SocketAddr::V4(v4)) = resolved else {
        return TcpListener::bind(addr);
    };

    extern "C" {
        fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        fn setsockopt(fd: i32, level: i32, name: i32, value: *const i32, len: u32) -> i32;
        fn bind(fd: i32, addr: *const SockaddrIn, len: u32) -> i32;
        fn listen(fd: i32, backlog: i32) -> i32;
        fn close(fd: i32) -> i32;
    }
    const AF_INET: i32 = 2;
    const SOCK_STREAM: i32 = 1;
    const SOCK_CLOEXEC: i32 = 0x8_0000;
    const SOL_SOCKET: i32 = 1;
    const SO_REUSEADDR: i32 = 2;
    /// `struct sockaddr_in`; port and addr in network byte order.
    #[repr(C)]
    struct SockaddrIn {
        family: u16,
        port: u16,
        addr: u32,
        zero: [u8; 8],
    }

    unsafe {
        let fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
        if fd < 0 {
            return Err(std::io::Error::last_os_error());
        }
        let fail = |fd: i32| {
            let e = std::io::Error::last_os_error();
            close(fd);
            Err(e)
        };
        let one: i32 = 1;
        if setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, 4) != 0 {
            return fail(fd);
        }
        let sa = SockaddrIn {
            family: AF_INET as u16,
            port: v4.port().to_be(),
            addr: u32::from(*v4.ip()).to_be(),
            zero: [0; 8],
        };
        if bind(fd, &sa, std::mem::size_of::<SockaddrIn>() as u32) != 0 {
            return fail(fd);
        }
        if listen(fd, 128) != 0 {
            return fail(fd);
        }
        Ok(TcpListener::from_raw_fd(fd))
    }
}

#[cfg(not(target_os = "linux"))]
fn bind_listener(addr: &str) -> std::io::Result<TcpListener> {
    TcpListener::bind(addr)
}

impl Server {
    /// Binds both listeners and starts serving.
    pub fn start(cfg: LimadConfig) -> std::io::Result<Server> {
        let listener = bind_listener(&cfg.listen)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let metrics_listener = bind_listener(&cfg.metrics_listen)?;
        metrics_listener.set_nonblocking(true)?;
        let metrics_addr = metrics_listener.local_addr()?;

        let shards = ShardSet::new(cfg.shards, &cfg.template, cfg.persist_root.as_deref());
        let stats = Arc::new(LimaStats::new());
        let repl = cfg
            .repl
            .clone()
            .map(|opts| Arc::new(Replicator::new(opts, Arc::clone(&stats))));
        let inner = Arc::new(Inner {
            cfg,
            shards,
            stats,
            repl,
            tenants: Mutex::new(HashMap::new()),
            sessions: Mutex::new(HashMap::new()),
            next_session: AtomicU64::new(1),
            shutdown: AtomicBool::new(false),
        });

        // Replication: hang a put-watcher on every shard's cache so each
        // committed entry is queued for forwarding. The watcher drops (and
        // counts) under governor pressure instead of queueing — replication
        // must never add pressure to a shard that is already shedding.
        if let Some(repl) = inner.repl.as_ref() {
            for shard in inner.shards.iter() {
                let Some(cache) = shard.cache() else { continue };
                let repl = Arc::clone(repl);
                let governor = shard.governor();
                cache.set_put_watcher(Some(Arc::new(move |root, value, compute_ns| {
                    if matches!(value, lima_matrix::Value::List(_)) {
                        return; // not wire-transportable
                    }
                    if let Some(g) = &governor {
                        if g.level() >= PressureLevel::NoRewrites {
                            LimaStats::bump(&repl.stats.repl_queue_drops);
                            return;
                        }
                    }
                    repl.enqueue(root.clone(), value.clone(), compute_ns);
                })));
            }
        }

        let accept_inner = Arc::clone(&inner);
        let accept = std::thread::Builder::new()
            .name("limad-accept".into())
            .spawn(move || accept_loop(&listener, &accept_inner))?;
        let metrics_inner = Arc::clone(&inner);
        let metrics = std::thread::Builder::new()
            .name("limad-metrics".into())
            .spawn(move || serve_metrics(&metrics_listener, &metrics_inner))?;

        // One background scrubber per shard: each re-verifies its own store
        // at the configured cadence, pausing automatically under governor
        // pressure (scrub_step refuses I/O at L2+).
        let mut scrubbers = Vec::new();
        if inner.cfg.scrub_interval_ms > 0 && inner.cfg.persist_root.is_some() {
            for i in 0..inner.shards.len() {
                let scrub_inner = Arc::clone(&inner);
                scrubbers.push(
                    std::thread::Builder::new()
                        .name(format!("limad-scrub-{i}"))
                        .spawn(move || scrub_loop(&scrub_inner, i))?,
                );
            }
        }

        // Replication background threads: the batch sender always runs (it
        // also drains queue entries accumulated while peers are away); the
        // anti-entropy loop runs only with a non-zero interval.
        let mut repl_threads = Vec::new();
        if let Some(repl) = inner.repl.as_ref() {
            let sender_inner = Arc::clone(&inner);
            repl_threads.push(
                std::thread::Builder::new()
                    .name("limad-repl-send".into())
                    .spawn(move || crate::repl::sender_loop(&sender_inner))?,
            );
            if repl.options().ae_interval_ms > 0 {
                let ae_inner = Arc::clone(&inner);
                repl_threads.push(
                    std::thread::Builder::new()
                        .name("limad-repl-ae".into())
                        .spawn(move || crate::repl::ae_loop(&ae_inner))?,
                );
            }
        }

        Ok(Server {
            inner,
            addr,
            metrics_addr,
            accept: Some(accept),
            metrics: Some(metrics),
            scrubbers,
            repl_threads,
        })
    }

    /// The bound wire-protocol address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound metrics (HTTP) address.
    pub fn metrics_addr(&self) -> SocketAddr {
        self.metrics_addr
    }

    /// The shard ring (test observability).
    pub fn shards(&self) -> &ShardSet {
        &self.inner.shards
    }

    /// Server-level `srv_*` counters (test observability).
    pub fn server_stats(&self) -> &LimaStats {
        &self.inner.stats
    }

    /// The aggregated metrics text also served at `GET /metrics`.
    pub fn metrics_text(&self) -> String {
        metrics_text(&self.inner)
    }

    /// This member's replicator, when replication is configured.
    pub fn replicator(&self) -> Option<Arc<Replicator>> {
        self.inner.repl.clone()
    }

    /// Points this member's replicator at its peers (no-op standalone).
    pub fn connect_peers(&self, addrs: Vec<String>) {
        if let Some(repl) = self.inner.repl.as_ref() {
            repl.set_peers(addrs);
        }
    }

    /// Sorted, deduplicated hashes of every replicable resident entry across
    /// all shards (the same lineage can be resident in several shards when
    /// overlapping scripts route to different shards) — two members
    /// converged iff their keyspace hashes are equal.
    pub fn keyspace_hashes(&self) -> Vec<u64> {
        let mut hashes: Vec<u64> = self
            .inner
            .shards
            .iter()
            .filter_map(|s| s.cache())
            .flat_map(|c| c.replica_hashes())
            .collect();
        hashes.sort_unstable();
        hashes.dedup();
        hashes
    }

    /// Stops accepting, cancels in-flight sessions, joins listener threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        for token in self.inner.sessions.lock().values() {
            token.cancel();
        }
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        if let Some(t) = self.metrics.take() {
            let _ = t.join();
        }
        for t in self.scrubbers.drain(..) {
            let _ = t.join();
        }
        for t in self.repl_threads.drain(..) {
            let _ = t.join();
        }
        // Watchers hold the replicator (stats + queue only — no cycle back
        // to Inner), but clearing them makes teardown order obvious.
        for shard in self.inner.shards.iter() {
            if let Some(cache) = shard.cache() {
                cache.set_put_watcher(None);
            }
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Background scrubber for shard `index`: one byte-budgeted chunk per
/// interval, shutdown-responsive between chunks.
fn scrub_loop(inner: &Arc<Inner>, index: usize) {
    let interval = Duration::from_millis(inner.cfg.scrub_interval_ms);
    while !inner.shutdown.load(Ordering::SeqCst) {
        let mut waited = Duration::ZERO;
        while waited < interval && !inner.shutdown.load(Ordering::SeqCst) {
            std::thread::sleep(POLL);
            waited += POLL;
        }
        if inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
        if let Some(cache) = inner.shards.get(index).and_then(|s| s.cache()) {
            let _ = cache.scrub_step(inner.cfg.scrub_chunk_bytes);
        }
    }
}

fn accept_loop(listener: &TcpListener, inner: &Arc<Inner>) {
    while !inner.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let conn_inner = Arc::clone(inner);
                let spawned = std::thread::Builder::new()
                    .name("limad-conn".into())
                    .spawn(move || handle_connection(stream, &conn_inner));
                // Thread exhaustion sheds the connection, not the server.
                drop(spawned);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(_) => std::thread::sleep(POLL),
        }
    }
}

/// One connection's frame loop. Returns (closing the connection) on EOF,
/// torn frames, malformed input, injected connection drops, and shutdown.
fn handle_connection(stream: TcpStream, inner: &Arc<Inner>) {
    let _ = stream.set_nodelay(true);
    let mut stream = stream;
    while !inner.shutdown.load(Ordering::SeqCst) {
        // Poll for the first byte so shutdown stays responsive, then switch
        // to the frame timeout for the remainder of the frame.
        if stream.set_read_timeout(Some(POLL)).is_err() {
            return;
        }
        let mut first = [0u8; 1];
        match Read::read(&mut stream, &mut first) {
            Ok(0) => return, // clean EOF at a frame boundary
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) =>
            {
                continue;
            }
            Err(_) => return,
        }
        if stream.set_read_timeout(Some(FRAME_TIMEOUT)).is_err() {
            return;
        }
        let frame = {
            let mut chained = (&first[..]).chain(&stream);
            read_frame(&mut chained, inner.cfg.max_frame_bytes)
        };
        let (kind, id, payload) = match frame {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                // Malformed frame: answer with a typed error, then isolate
                // by closing this connection. Framing is unrecoverable.
                LimaStats::bump(&inner.stats.srv_malformed);
                let resp = err(ErrorCode::BadRequest, e.to_string());
                let (rkind, rpayload) = resp.encode();
                let _ = write_frame(&mut stream, rkind, 0, &rpayload);
                return;
            }
            Err(_) => return, // torn mid-frame or timed out
        };

        // Shutdown may have flipped while we were blocked reading the frame;
        // drop the connection instead of serving one last request on a
        // half-torn-down server (the client's failover handles the close).
        if inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
        LimaStats::bump(&inner.stats.srv_requests);
        let resp = match Request::decode(kind, &payload) {
            Some(req) => inner.dispatch(req),
            None => {
                LimaStats::bump(&inner.stats.srv_malformed);
                err(
                    ErrorCode::BadRequest,
                    format!("undecodable request kind {kind:#x}"),
                )
            }
        };
        let close_after = matches!(
            &resp,
            Response::Error(e) if e.code == ErrorCode::BadRequest
        );

        // Chaos hook: tear the connection instead of responding.
        if let Some(faults) = &inner.cfg.template.faults {
            if faults.should_fail(FaultSite::ConnDrop) {
                LimaStats::bump(&inner.stats.srv_conn_drops);
                return;
            }
        }

        let (rkind, rpayload) = resp.encode();
        if write_frame(&mut stream, rkind, id, &rpayload).is_err() || close_after {
            return;
        }
    }
}
