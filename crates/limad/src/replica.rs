//! In-process replica groups: R independently killable `limad` members.
//!
//! A [`ReplicaGroup`] runs R full [`Server`] instances in one process, each
//! with its own shard set, WAL root (`member-<i>` subdirectory), listen
//! ports, and replicator, wired to each other as peers. Chaos harnesses and
//! tests use it to kill, restart, and partition members deterministically;
//! `limad --replicas R` uses it to serve a whole group from one process.
//!
//! A killed member's ports are remembered so [`ReplicaGroup::restart`] can
//! rebind the *same* addresses (clients keep their replica lists); the
//! rebind retries briefly because the dying listener's accept thread may
//! still hold the socket for a poll tick.

use crate::server::{LimadConfig, Server};
use std::time::Duration;

/// How many times a restart retries binding the member's old address.
const REBIND_ATTEMPTS: u32 = 40;

/// Delay between rebind attempts.
const REBIND_DELAY: Duration = Duration::from_millis(50);

/// R `limad` members forming one replica group.
pub struct ReplicaGroup {
    /// `None` marks a killed member awaiting restart.
    members: Vec<Option<Server>>,
    /// Each member's config with its *bound* addresses substituted in, so a
    /// restart reclaims the same ports.
    cfgs: Vec<LimadConfig>,
}

/// Offsets an explicit port by `i`; port 0 (ephemeral) stays 0.
fn derive_addr(base: &str, i: usize) -> String {
    match base.rsplit_once(':') {
        Some((host, port)) => match port.parse::<u16>() {
            Ok(0) | Err(_) => base.to_string(),
            Ok(p) => format!("{host}:{}", p as usize + i),
        },
        None => base.to_string(),
    }
}

impl ReplicaGroup {
    /// Starts `replicas` members derived from `base` and wires them as
    /// peers. Member `i` gets `base.listen`/`base.metrics_listen` offset by
    /// `i` (ephemeral ports stay ephemeral), a `member-<i>` persistence
    /// subdirectory, and `base.repl` (defaulted when `None`) with its
    /// member index filled in.
    pub fn start(base: &LimadConfig, replicas: usize) -> std::io::Result<ReplicaGroup> {
        Self::start_with(base, replicas, |_, _| {})
    }

    /// [`ReplicaGroup::start`] with a per-member configuration hook, letting
    /// chaos harnesses give one member a distinct fault template.
    pub fn start_with(
        base: &LimadConfig,
        replicas: usize,
        mut customize: impl FnMut(usize, &mut LimadConfig),
    ) -> std::io::Result<ReplicaGroup> {
        let replicas = replicas.max(1);
        let mut members = Vec::with_capacity(replicas);
        let mut cfgs = Vec::with_capacity(replicas);
        for i in 0..replicas {
            let mut cfg = base.clone();
            cfg.listen = derive_addr(&base.listen, i);
            cfg.metrics_listen = derive_addr(&base.metrics_listen, i);
            cfg.persist_root = base
                .persist_root
                .as_ref()
                .map(|root| root.join(format!("member-{i}")));
            let mut repl = base.repl.clone().unwrap_or_default();
            repl.member = i;
            cfg.repl = Some(repl);
            customize(i, &mut cfg);
            let server = Server::start(cfg.clone())?;
            // Record the *bound* addresses (ephemeral ports resolved) so
            // restarts and peer wiring use stable endpoints.
            cfg.listen = server.addr().to_string();
            cfg.metrics_listen = server.metrics_addr().to_string();
            members.push(Some(server));
            cfgs.push(cfg);
        }
        let group = ReplicaGroup { members, cfgs };
        group.wire_peers();
        Ok(group)
    }

    /// Points every live member's replicator at all of its siblings' bound
    /// addresses (dead members stay listed: the sender's breaker handles
    /// their absence, and they heal via AE once restarted).
    pub fn wire_peers(&self) {
        for (i, member) in self.members.iter().enumerate() {
            let Some(server) = member else { continue };
            let peers: Vec<String> = self
                .cfgs
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, cfg)| cfg.listen.clone())
                .collect();
            server.connect_peers(peers);
        }
    }

    /// Number of members (live or killed).
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True only for an empty group (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Live member `i`, if it exists and is not killed.
    pub fn get(&self, i: usize) -> Option<&Server> {
        self.members.get(i).and_then(Option::as_ref)
    }

    /// Every member's bound wire address, index-aligned.
    pub fn addrs(&self) -> Vec<String> {
        self.cfgs.iter().map(|c| c.listen.clone()).collect()
    }

    /// Kills member `i`: full server shutdown (cancels sessions, joins
    /// threads, releases ports). No-op if already dead.
    pub fn kill(&mut self, i: usize) {
        if let Some(slot) = self.members.get_mut(i) {
            if let Some(server) = slot.take() {
                server.shutdown();
            }
        }
    }

    /// Restarts a killed member on its original addresses and re-wires
    /// peers. Retries the bind briefly — the killed member's accept loop
    /// releases the port within one poll tick.
    pub fn restart(&mut self, i: usize) -> std::io::Result<()> {
        let Some(slot) = self.members.get_mut(i) else {
            return Err(std::io::Error::other(format!("no member {i}")));
        };
        if slot.is_some() {
            return Ok(());
        }
        let cfg = self.cfgs[i].clone();
        let mut last_err = None;
        for _ in 0..REBIND_ATTEMPTS {
            match Server::start(cfg.clone()) {
                Ok(server) => {
                    *slot = Some(server);
                    self.wire_peers();
                    return Ok(());
                }
                Err(e) if e.kind() == std::io::ErrorKind::AddrInUse => {
                    last_err = Some(e);
                    std::thread::sleep(REBIND_DELAY);
                }
                Err(e) => return Err(e),
            }
        }
        Err(last_err.unwrap_or_else(|| std::io::Error::other("rebind retries exhausted")))
    }

    /// Shuts every live member down.
    pub fn shutdown(mut self) {
        for slot in self.members.iter_mut() {
            if let Some(server) = slot.take() {
                server.shutdown();
            }
        }
    }
}

impl std::fmt::Debug for ReplicaGroup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let live: Vec<usize> = self
            .members
            .iter()
            .enumerate()
            .filter_map(|(i, m)| m.as_ref().map(|_| i))
            .collect();
        f.debug_struct("ReplicaGroup")
            .field("members", &self.members.len())
            .field("live", &live)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_addr_offsets_explicit_ports_only() {
        assert_eq!(derive_addr("127.0.0.1:7461", 2), "127.0.0.1:7463");
        assert_eq!(derive_addr("127.0.0.1:0", 2), "127.0.0.1:0");
        assert_eq!(derive_addr("nonsense", 1), "nonsense");
    }

    #[test]
    fn group_starts_kills_and_restarts_members() {
        let base = LimadConfig {
            shards: 2,
            scrub_interval_ms: 0,
            ..LimadConfig::default()
        };
        let mut group = ReplicaGroup::start(&base, 2).unwrap();
        assert_eq!(group.len(), 2);
        let addrs = group.addrs();
        assert_eq!(addrs.len(), 2);
        assert_ne!(addrs[0], addrs[1]);
        assert!(group.get(0).is_some());
        group.kill(0);
        assert!(group.get(0).is_none());
        assert!(group.get(1).is_some());
        group.restart(0).unwrap();
        let server = group.get(0).expect("restarted member is live");
        assert_eq!(server.addr().to_string(), addrs[0]);
        group.shutdown();
    }
}
