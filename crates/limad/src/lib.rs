//! `limad`: a fault-tolerant, multi-tenant lineage-cache service.
//!
//! `limad` promotes the process-local [`lima_runtime::SessionPool`] +
//! [`lima_core::ResourceGovernor`] stack into a long-running server of `N`
//! lineage-hash-partitioned cache shards:
//!
//! * [`shard`] — each [`shard::CacheShard`] is a fully isolated LIMA stack
//!   (own cache, governor, stats, persistence directory). Submits route by
//!   script hash so identical scripts share lineage across tenants; probes
//!   and fetches route by the lineage trace's own hash.
//! * [`server`] — [`server::Server`] speaks the length-framed, checksummed
//!   wire protocol from [`lima_client::proto`] with thread-per-connection
//!   dispatch, per-tenant quotas, governor-driven overload shedding, and
//!   deadline propagation into session execution. Malformed input isolates
//!   to one connection; a shard that lost its WAL degrades to memory and
//!   keeps serving while its siblings stay untouched.
//! * [`metrics`] — one aggregated Prometheus exposition across all shards,
//!   served as HTTP `GET /metrics` plus per-shard state gauges.
//!
//! The deterministic chaos hooks (`ConnDrop`, `SlowShard`,
//! crash-mid-WAL-append) ride in through the shared
//! [`lima_core::FaultInjector`] carried by the configuration template; the
//! chaos harness in `crates/bench` drives them against hundreds of
//! concurrent zipf-skewed sessions.

pub mod metrics;
pub mod repl;
pub mod replica;
pub mod server;
pub mod shard;

pub use repl::{ReplOptions, Replicator};
pub use replica::ReplicaGroup;
pub use server::{LimadConfig, Server};
pub use shard::{CacheShard, ShardSet, ShardState};
