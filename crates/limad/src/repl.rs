//! Asynchronous write replication and lineage-verified anti-entropy repair.
//!
//! Each `limad` member can be wired to a set of *peers* (the other members
//! of its replica group). Two mechanisms keep the members' caches close:
//!
//! * **Write replication** — a put-watcher on every shard's cache enqueues
//!   committed `(lineage, value)` pairs onto a bounded queue; a background
//!   sender batches them into `ReplPut` frames and forwards them to every
//!   peer. The queue *drops and counts* when full or when the shard's
//!   governor is shedding — replication is strictly best-effort and must
//!   never block or slow the submit hot path.
//! * **Anti-entropy** — a background loop periodically exchanges per-bucket
//!   digests (`ReplDigest`) of the resident keyspace with each peer and
//!   pulls (`ReplPull`) the buckets that differ, healing whatever the
//!   best-effort sender dropped (including everything missed while a member
//!   was down).
//!
//! Convergence is safe without any consensus because entries are
//! content-addressed by their deterministic lineage hash: two members can
//! only ever disagree about *presence*, never about the value bound to a
//! lineage. Applying a replicated record is therefore idempotent, and
//! "last write wins" degenerates to "any write wins".
//!
//! Incoming records are never trusted blindly: the lineage must parse, its
//! DAG must verify, and the value bytes must match the record's checksum.
//! A record whose bytes are damaged but whose lineage is intact is *repaired
//! locally* — the value is recomputed from the lineage via the same
//! [`lima_runtime::repair`] hook the persistence scrubber uses. The lineage
//! log is the authoritative replica; the shipped bytes are an optimization.

use crate::server::Inner;
use crate::shard::ShardSet;
use lima_client::proto::{read_frame, write_frame, BucketDigest, ReplRecord, Request, Response};
use lima_core::faults::mix;
use lima_core::lineage::{deserialize_lineage, serialize_lineage, verify_dag, LinRef};
use lima_core::resilience::{Attempt, CircuitBreaker};
use lima_core::LimaStats;
use lima_matrix::Value;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Ceiling on entries returned by one `ReplPull` response across all shards.
const PULL_MAX_ENTRIES: usize = 512;

/// Ceiling on approximate value bytes in one `ReplPull` response.
const PULL_MAX_BYTES: usize = 4 * 1024 * 1024;

/// How long the sender waits on an empty queue before re-checking shutdown.
const SENDER_IDLE: Duration = Duration::from_millis(50);

/// Replication tuning for one member.
#[derive(Debug, Clone)]
pub struct ReplOptions {
    /// This member's index within its replica group (labels metrics/logs).
    pub member: usize,
    /// Bounded replication queue length; overflow drops (and counts).
    pub queue_cap: usize,
    /// Max records batched into one `ReplPut` frame.
    pub batch: usize,
    /// Anti-entropy round interval; 0 disables the AE loop (tests drive
    /// convergence through the wire ops directly).
    pub ae_interval_ms: u64,
    /// Digest buckets exchanged per AE round (1..=`MAX_REPL_BUCKETS`).
    pub buckets: u32,
    /// TCP connect timeout towards peers.
    pub connect_timeout_ms: u64,
    /// Read/write timeout for peer round-trips.
    pub io_timeout_ms: u64,
    /// Consecutive failures before a peer's breaker opens (0 disables).
    pub breaker_failures: u32,
    /// Cooldown before an open peer breaker grants a half-open probe.
    pub breaker_cooldown_ms: u64,
}

impl Default for ReplOptions {
    fn default() -> Self {
        ReplOptions {
            member: 0,
            queue_cap: 4096,
            batch: 64,
            ae_interval_ms: 250,
            buckets: 64,
            connect_timeout_ms: 500,
            io_timeout_ms: 2000,
            breaker_failures: 3,
            breaker_cooldown_ms: 500,
        }
    }
}

/// One committed cache entry waiting to be forwarded.
struct QueuedRecord {
    root: LinRef,
    value: Value,
    compute_ns: u64,
}

/// A peer member: address, health breaker, and one cached connection.
struct Peer {
    addr: String,
    breaker: CircuitBreaker,
    conn: Mutex<Option<TcpStream>>,
}

/// Passive replication state shared by the watchers, the sender thread, the
/// AE thread, and the dispatch path. Owns no threads itself (the server
/// spawns and joins them) and holds no reference back to the server, so
/// there is no `Arc` cycle through the shard caches' put-watchers.
pub struct Replicator {
    opts: ReplOptions,
    /// The server's stats block (repl_*/ae_* counters live there).
    pub(crate) stats: Arc<LimaStats>,
    queue: Mutex<VecDeque<QueuedRecord>>,
    queued: Condvar,
    peers: Mutex<Vec<Arc<Peer>>>,
    /// Chaos hook: a paused replicator drops outbound batches and skips AE
    /// rounds, simulating a network partition without touching sockets.
    paused: AtomicBool,
}

impl Replicator {
    pub(crate) fn new(opts: ReplOptions, stats: Arc<LimaStats>) -> Replicator {
        Replicator {
            opts,
            stats,
            queue: Mutex::new(VecDeque::new()),
            queued: Condvar::new(),
            peers: Mutex::new(Vec::new()),
            paused: AtomicBool::new(false),
        }
    }

    /// The configured tuning.
    pub fn options(&self) -> &ReplOptions {
        &self.opts
    }

    /// Replaces the peer list (fresh breakers, fresh connections).
    pub fn set_peers(&self, addrs: Vec<String>) {
        let peers = addrs
            .into_iter()
            .map(|addr| {
                Arc::new(Peer {
                    addr,
                    breaker: CircuitBreaker::new(
                        self.opts.breaker_failures,
                        self.opts.breaker_cooldown_ms,
                    ),
                    conn: Mutex::new(None),
                })
            })
            .collect();
        *self.peers.lock() = peers;
    }

    /// `(addr, healthy)` per peer; healthy = breaker not open.
    pub fn peer_states(&self) -> Vec<(String, bool)> {
        self.peers
            .lock()
            .iter()
            .map(|p| (p.addr.clone(), !p.breaker.is_open()))
            .collect()
    }

    /// Entries currently waiting in the replication queue.
    pub fn queue_depth(&self) -> usize {
        self.queue.lock().len()
    }

    /// Pauses (true) or resumes (false) outbound replication and AE.
    pub fn pause(&self, paused: bool) {
        self.paused.store(paused, Ordering::SeqCst);
    }

    /// True while outbound replication is paused.
    pub fn paused(&self) -> bool {
        self.paused.load(Ordering::SeqCst)
    }

    /// Enqueues one committed entry for forwarding. Never blocks: a full
    /// queue drops the record and counts the drop.
    pub(crate) fn enqueue(&self, root: LinRef, value: Value, compute_ns: u64) {
        let mut queue = self.queue.lock();
        if queue.len() >= self.opts.queue_cap {
            drop(queue);
            LimaStats::bump(&self.stats.repl_queue_drops);
            return;
        }
        queue.push_back(QueuedRecord {
            root,
            value,
            compute_ns,
        });
        drop(queue);
        LimaStats::bump(&self.stats.repl_enqueued);
        self.queued.notify_one();
    }

    /// Pops up to `batch` queued records, waiting up to `idle` when empty.
    fn take_batch(&self, idle: Duration) -> Vec<QueuedRecord> {
        let mut queue = self.queue.lock();
        if queue.is_empty() {
            let _ = self.queued.wait_for(&mut queue, idle);
        }
        let n = queue.len().min(self.opts.batch);
        queue.drain(..n).collect()
    }

    fn peers_snapshot(&self) -> Vec<Arc<Peer>> {
        self.peers.lock().clone()
    }
}

impl std::fmt::Debug for Replicator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Replicator")
            .field("member", &self.opts.member)
            .field("queue_depth", &self.queue_depth())
            .field("paused", &self.paused())
            .finish()
    }
}

/// One framed request/response round-trip to a peer over its cached
/// connection; any failure tears the cached connection down so the next
/// call reconnects.
fn peer_call(peer: &Peer, req: &Request, opts: &ReplOptions) -> std::io::Result<Response> {
    let mut slot = peer.conn.lock();
    if slot.is_none() {
        let addr = peer
            .addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::other(format!("unresolvable peer {}", peer.addr)))?;
        let stream = TcpStream::connect_timeout(
            &addr,
            Duration::from_millis(opts.connect_timeout_ms.max(1)),
        )?;
        stream.set_nodelay(true)?;
        *slot = Some(stream);
    }
    let result = (|| {
        let stream = slot.as_mut().expect("connection just ensured");
        let timeout = Duration::from_millis(opts.io_timeout_ms.max(1));
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        let (kind, payload) = req.encode();
        write_frame(stream, kind, 1, &payload)?;
        let (rkind, _, rpayload) = read_frame(stream, lima_client::proto::MAX_FRAME_BYTES)?;
        Response::decode(rkind, &rpayload)
            .ok_or_else(|| std::io::Error::other("undecodable peer response"))
    })();
    if result.is_err() {
        *slot = None;
    }
    result
}

/// Per-bucket digests of the member's resident keyspace: every shard's
/// replicable entry hashes, scrambled through [`mix`] and folded into
/// `buckets` (count, xor) pairs. The same lineage can be resident in
/// several shards (submits route by script, so overlapping scripts cache
/// shared sub-lineages independently); digests are over the deduplicated
/// *set* of hashes, since that is what the member can vouch for. Two
/// members hold the same resident keyspace iff their digest vectors match.
pub(crate) fn local_digests(shards: &ShardSet, buckets: u32) -> Vec<BucketDigest> {
    let buckets = buckets.max(1) as u64;
    let mut out = vec![BucketDigest::default(); buckets as usize];
    let mut seen = std::collections::HashSet::new();
    for shard in shards.iter() {
        if let Some(cache) = shard.cache() {
            for h in cache.replica_hashes() {
                if !seen.insert(h) {
                    continue;
                }
                let m = mix(h);
                let b = (m % buckets) as usize;
                out[b].count += 1;
                out[b].xor ^= m;
            }
        }
    }
    out
}

/// Serializes every resident entry of one digest bucket, capped by entry
/// count and approximate bytes so one pull cannot balloon into an
/// arbitrarily large frame.
pub(crate) fn export_entries(shards: &ShardSet, bucket: u32, buckets: u32) -> Vec<ReplRecord> {
    let mut out = Vec::new();
    let mut budget_entries = PULL_MAX_ENTRIES;
    let mut budget_bytes = PULL_MAX_BYTES;
    let mut seen = std::collections::HashSet::new();
    for shard in shards.iter() {
        if budget_entries == 0 || budget_bytes == 0 {
            break;
        }
        let Some(cache) = shard.cache() else { continue };
        for (root, value, compute_ns) in cache.export_bucket(
            bucket as u64,
            buckets.max(1) as u64,
            budget_entries,
            budget_bytes,
        ) {
            // A lineage resident in several shards exports once.
            if !seen.insert(root.hash_value()) {
                continue;
            }
            let approx = match &value {
                Value::Matrix(m) => m.rows() * m.cols() * 8,
                _ => 64,
            };
            budget_entries = budget_entries.saturating_sub(1);
            budget_bytes = budget_bytes.saturating_sub(approx);
            out.push(ReplRecord::new(serialize_lineage(&root), value, compute_ns));
        }
    }
    out
}

/// Validates and applies one replicated record. Returns true when the entry
/// is present locally afterwards (freshly applied, repaired, or already
/// held), false when the record was rejected.
///
/// Trust boundary: the lineage must deserialize, its DAG must verify, and
/// the value must be wire-transportable. Damaged value bytes fall back to
/// recomputing from the (verified) lineage.
pub(crate) fn apply_record(inner: &Inner, rec: &ReplRecord, via_ae: bool) -> bool {
    let stats = &inner.stats;
    let Ok(root) = deserialize_lineage(&rec.lineage) else {
        LimaStats::bump(&stats.repl_rejected);
        return false;
    };
    if verify_dag(&root).is_err() {
        LimaStats::bump(&stats.repl_rejected);
        return false;
    }
    let shard = inner.shards.route_lineage(&root);
    let Some(cache) = shard.cache() else {
        LimaStats::bump(&stats.repl_rejected);
        return false;
    };
    if cache.contains(&root) {
        // Idempotent duplicate: already resident, nothing to do.
        return true;
    }
    if matches!(rec.value, Value::List(_)) {
        LimaStats::bump(&stats.repl_rejected);
        return false;
    }
    let value = if rec.verify_bytes() {
        rec.value.clone()
    } else {
        // The lineage checked out but the bytes did not: recompute locally.
        // The lineage log is the replica of record; shipped bytes are only
        // a shortcut.
        match lima_runtime::repair::registry_repairer(shard.pool().data()).repair(&root) {
            Ok(v) => {
                LimaStats::bump(&stats.repl_repaired);
                v
            }
            Err(_) => {
                LimaStats::bump(&stats.repl_rejected);
                return false;
            }
        }
    };
    cache.put_replicated(&root, &value, rec.compute_ns);
    LimaStats::bump(&stats.repl_applied);
    if via_ae {
        LimaStats::bump(&stats.ae_pulled);
    }
    true
}

/// Background sender: drains the queue in batches and forwards each batch
/// to every reachable peer. Runs until the server's shutdown flag flips.
pub(crate) fn sender_loop(inner: &Arc<Inner>) {
    let Some(repl) = inner.repl.as_ref() else {
        return;
    };
    while !inner.shutdown.load(Ordering::SeqCst) {
        let batch = repl.take_batch(SENDER_IDLE);
        if batch.is_empty() {
            continue;
        }
        if repl.paused() {
            // Partition chaos: the records are lost to the sender; AE will
            // heal the gap after the partition lifts.
            LimaStats::add(&repl.stats.repl_send_failures, batch.len() as u64);
            continue;
        }
        let records: Vec<ReplRecord> = batch
            .iter()
            .filter(|q| !matches!(q.value, Value::List(_)))
            .map(|q| ReplRecord::new(serialize_lineage(&q.root), q.value.clone(), q.compute_ns))
            .collect();
        if records.is_empty() {
            continue;
        }
        let req = Request::ReplPut {
            records: records.clone(),
        };
        for peer in repl.peers_snapshot() {
            if peer.breaker.allow() == Attempt::Rejected {
                LimaStats::add(&repl.stats.repl_send_failures, records.len() as u64);
                continue;
            }
            match peer_call(&peer, &req, &repl.opts) {
                Ok(Response::ReplAck { .. }) => {
                    peer.breaker.record_success();
                    LimaStats::add(&repl.stats.repl_sent, records.len() as u64);
                }
                _ => {
                    peer.breaker.record_failure();
                    LimaStats::add(&repl.stats.repl_send_failures, records.len() as u64);
                }
            }
        }
    }
}

/// Background anti-entropy loop: digest exchange plus bucket pulls against
/// every reachable peer, at the configured cadence.
pub(crate) fn ae_loop(inner: &Arc<Inner>) {
    let Some(repl) = inner.repl.as_ref() else {
        return;
    };
    let interval = Duration::from_millis(repl.opts.ae_interval_ms.max(1));
    let tick = Duration::from_millis(25);
    while !inner.shutdown.load(Ordering::SeqCst) {
        let mut waited = Duration::ZERO;
        while waited < interval && !inner.shutdown.load(Ordering::SeqCst) {
            std::thread::sleep(tick);
            waited += tick;
        }
        if inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
        if repl.paused() {
            continue;
        }
        for peer in repl.peers_snapshot() {
            if peer.breaker.allow() == Attempt::Rejected {
                continue;
            }
            if ae_round(inner, repl, &peer) {
                peer.breaker.record_success();
                LimaStats::bump(&repl.stats.ae_rounds);
            } else {
                peer.breaker.record_failure();
            }
        }
    }
}

/// One digest exchange + pull pass against one peer. Returns false on any
/// transport or protocol failure (the caller feeds the peer's breaker).
fn ae_round(inner: &Arc<Inner>, repl: &Replicator, peer: &Peer) -> bool {
    let buckets = repl.opts.buckets.max(1);
    let local = local_digests(&inner.shards, buckets);
    let remote = match peer_call(peer, &Request::ReplDigest { buckets }, &repl.opts) {
        Ok(Response::ReplDigests(d)) if d.len() == buckets as usize => d,
        _ => return false,
    };
    for b in 0..buckets as usize {
        if local[b] == remote[b] || remote[b].count == 0 {
            // Identical bucket, or the peer has nothing here: any surplus
            // *we* hold flows to the peer through its own AE loop.
            continue;
        }
        let req = Request::ReplPull {
            bucket: b as u32,
            buckets,
        };
        let entries = match peer_call(peer, &req, &repl.opts) {
            Ok(Response::ReplEntries(entries)) => entries,
            _ => return false,
        };
        for rec in &entries {
            apply_record(inner, rec, true);
        }
    }
    true
}
