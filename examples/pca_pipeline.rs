//! Multi-level reuse on the PCA pipeline (paper Fig 5 / Example 5): a K
//! sweep over `pca` probes whole function calls first, then blocks, then
//! individual operations — the covariance, eigen decomposition, and the
//! projection are computed once and reused across K.
//!
//! ```text
//! cargo run --release --example pca_pipeline
//! ```

use lima::prelude::*;
use std::time::Instant;

fn main() {
    let pipeline = pipelines::pcalm(30_000, 40, &[5, 10, 15, 20, 25], 11);

    for (label, config) in [
        ("Base", LimaConfig::base()),
        (
            "LIMA-FR (ops only)",
            LimaConfig {
                multilevel: false,
                ..LimaConfig::lima()
            },
        ),
        ("LIMA (multi-level)", LimaConfig::lima()),
    ] {
        let t0 = Instant::now();
        let result =
            run_script(&pipeline.script, &config, &pipeline.input_refs()).expect("pipeline runs");
        let elapsed = t0.elapsed();
        let best = result.value("best").as_f64().unwrap();
        print!("{label:22} {elapsed:>10.3?}   best adj-R2 = {best:.4}");
        if config.tracing {
            print!(
                "   (hits: {} op, {} fn/block, {} partial)",
                LimaStats::get(&result.ctx.stats.full_hits),
                LimaStats::get(&result.ctx.stats.multilevel_hits),
                LimaStats::get(&result.ctx.stats.partial_hits),
            );
        }
        println!();
    }
}
