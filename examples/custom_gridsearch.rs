//! Composing the generic `gridSearch` / `crossValidate` generators: a grid
//! search over a *cross-validated* trainer — the hierarchical composition of
//! building blocks whose redundancy the paper's Fig 1 illustrates — run with
//! and without LIMA.
//!
//! ```text
//! cargo run --release --example custom_gridsearch
//! ```

use lima::prelude::*;
use lima_algos::generators::{cross_validate_script, grid_search_script};
use lima_algos::scripts::with_builtins;
use std::time::Instant;

fn main() {
    // Inner building block: 8-fold leave-one-out CV over closed-form lm.
    let cv_fn = format!(
        "cvlm = function(X, y, reg) return (cvloss) {{\n{}\n}}",
        cross_validate_script(
            "lmDS(Xtr, ytr, 0, reg)",
            "sum((lmPredict(Xts, model, 0) - yts)^2)",
            8,
            false,
        )
    );
    // Outer building block: grid search over the regularization constant.
    let driver = grid_search_script("cvlm(X, y, p1)", "model", 1, false);
    let script = with_builtins(&format!("{cv_fn}\n{driver}"));

    let (x, y) = datasets::synthetic_regression(24_000, 40, 7);
    let grid = DenseMatrix::from_fn(10, 1, |i, _| 10f64.powf(-5.0 + 0.5 * i as f64));
    let inputs = [
        ("X", Value::matrix(x)),
        ("y", Value::matrix(y)),
        ("HP", Value::matrix(grid)),
    ];

    for (label, config) in [("Base", LimaConfig::base()), ("LIMA", LimaConfig::lima())] {
        let t0 = Instant::now();
        let r = run_script(&script, &config, &inputs).expect("pipeline runs");
        println!(
            "{label:5} {:>10.3?}   best cv-loss {:.4} at grid row {}",
            t0.elapsed(),
            r.value("best").as_f64().unwrap(),
            r.value("bestIdx").as_f64().unwrap(),
        );
        if config.tracing {
            println!("{}", r.ctx.stats.report());
        }
    }
}
