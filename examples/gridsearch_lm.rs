//! The paper's running example (Example 1): grid-search hyper-parameter
//! tuning of linear regression over random feature subsets, run once without
//! and once with LIMA — demonstrating the fine-grained redundancy of
//! Example 2 (irrelevant `tol` for `lmDS`, reusable `XᵀX`/`Xᵀy`, repeated
//! `cbind(X, 1)` for the intercept).
//!
//! ```text
//! cargo run --release --example gridsearch_lm
//! LIMA_TRACE_OUT=trace.json cargo run --release --example gridsearch_lm
//! ```
//!
//! With `LIMA_TRACE_OUT` set, the LIMA run records lineage-aware obs events
//! and writes a Chrome `trace_event` JSON file — load it in chrome://tracing
//! or https://ui.perfetto.dev, or validate it with the `trace_check` binary.

use lima::prelude::*;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let n = 50_000;
    let d = 50;
    let (x, y) = datasets::synthetic_regression(n, d, 42);
    // reg x icpt x tol grid — tol is irrelevant for the closed-form lmDS
    // path, so 3 of every 3 tol values train "five times more models than
    // necessary" (Example 2); LIMA collapses them.
    let grid = pipelines::hyperparameter_grid(4, 2, 3);
    let pipeline = pipelines::hlm_with(x, y, 3, 15, &grid, false);
    let trace_out = std::env::var("LIMA_TRACE_OUT").ok();

    for (label, mut config) in [
        ("Base (no lineage)", LimaConfig::base()),
        ("LIMA (hybrid reuse)", LimaConfig::lima()),
    ] {
        // Trace only the LIMA run: the baseline has no lineage to attribute.
        let obs = match (&trace_out, config.tracing) {
            (Some(_), true) => {
                let o = Arc::new(Obs::new());
                config = config.with_obs(Arc::clone(&o));
                Some(o)
            }
            _ => None,
        };
        let t0 = Instant::now();
        let result =
            run_script(&pipeline.script, &config, &pipeline.input_refs()).expect("pipeline runs");
        let elapsed = t0.elapsed();
        println!(
            "{label:24} {elapsed:>10.3?}   best loss = {:.6}",
            result.value("best").as_f64().unwrap()
        );
        if config.tracing {
            println!("{}", result.ctx.stats.report());
        }
        if let (Some(o), Some(path)) = (&obs, &trace_out) {
            std::fs::write(path, o.chrome_trace()).expect("trace file writes");
            println!("trace written to {path} ({} events dropped)", o.dropped());
        }
    }
}
