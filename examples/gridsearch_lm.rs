//! The paper's running example (Example 1): grid-search hyper-parameter
//! tuning of linear regression over random feature subsets, run once without
//! and once with LIMA — demonstrating the fine-grained redundancy of
//! Example 2 (irrelevant `tol` for `lmDS`, reusable `XᵀX`/`Xᵀy`, repeated
//! `cbind(X, 1)` for the intercept).
//!
//! ```text
//! cargo run --release --example gridsearch_lm
//! ```

use lima::prelude::*;
use std::time::Instant;

fn main() {
    let n = 50_000;
    let d = 50;
    let (x, y) = datasets::synthetic_regression(n, d, 42);
    // reg x icpt x tol grid — tol is irrelevant for the closed-form lmDS
    // path, so 3 of every 3 tol values train "five times more models than
    // necessary" (Example 2); LIMA collapses them.
    let grid = pipelines::hyperparameter_grid(4, 2, 3);
    let pipeline = pipelines::hlm_with(x, y, 3, 15, &grid, false);

    for (label, config) in [
        ("Base (no lineage)", LimaConfig::base()),
        ("LIMA (hybrid reuse)", LimaConfig::lima()),
    ] {
        let t0 = Instant::now();
        let result =
            run_script(&pipeline.script, &config, &pipeline.input_refs()).expect("pipeline runs");
        let elapsed = t0.elapsed();
        println!(
            "{label:24} {elapsed:>10.3?}   best loss = {:.6}",
            result.value("best").as_f64().unwrap()
        );
        if config.tracing {
            println!("{}", result.ctx.stats.report());
        }
    }
}
