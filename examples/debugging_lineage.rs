//! The paper's debugging story (Example 3): a pipeline behaves differently
//! in "production" than in "development". Exchanging and comparing lineage
//! logs pinpoints the culprit — the deployment infrastructure silently
//! passed a default parameter — without reproducing the whole setup.
//!
//! ```text
//! cargo run --release --example debugging_lineage
//! ```

use lima::prelude::*;

/// A sentence-classification-like pipeline; `reg` is the parameter the
/// deployment is supposed to pass through.
fn run_pipeline(reg: f64, x: &DenseMatrix, y: &DenseMatrix) -> RunResult {
    let script = lima_algos::scripts::with_builtins(
        "B = lmDS(X, y, 1, reg);
         yhat = lmPredict(X, B, 1);
         loss = sum((yhat - y)^2);",
    );
    // Multi-level reuse replaces function outputs' lineage with compact
    // `fcall` items; for debugging we want the precise operation-level trace
    // (which is also what reconstruction consumes).
    let config = LimaConfig {
        multilevel: false,
        ..LimaConfig::lima()
    };
    run_script(
        &script,
        &config,
        &[
            ("X", Value::matrix(x.clone())),
            ("y", Value::matrix(y.clone())),
            ("reg", Value::f64(reg)),
        ],
    )
    .expect("pipeline runs")
}

fn main() {
    let (x, y) = datasets::synthetic_regression(2_000, 12, 99);

    // Development passes reg = 0.1; production "passes" it too — but the
    // modified deployment infrastructure drops it and the default kicks in.
    let dev = run_pipeline(0.1, &x, &y);
    let prod = run_pipeline(1e-7, &x, &y); // silently wrong

    let dev_loss = dev.value("loss").as_f64().unwrap();
    let prod_loss = prod.value("loss").as_f64().unwrap();
    println!("dev  loss = {dev_loss:.6}");
    println!("prod loss = {prod_loss:.6}   <- differs, users file a blocker");

    // Exchange lineage logs instead of debugging blind (paper: "lineage logs
    // can be exchanged, compared, and used to reproduce results").
    let dev_log = serialize_lineage(dev.ctx.lineage.get("B").expect("traced"));
    let prod_log = serialize_lineage(prod.ctx.lineage.get("B").expect("traced"));

    let dev_lin = deserialize_lineage(&dev_log).expect("valid log");
    let prod_lin = deserialize_lineage(&prod_log).expect("valid log");
    assert!(!lima_core::lineage::item::lineage_eq(&dev_lin, &prod_lin));

    // Diff the logs line-by-line: the only difference is a literal.
    println!("\n-- lineage diff (dev vs prod) --");
    for (d, p) in dev_log.lines().zip(prod_log.lines()) {
        // Input IDs are session-specific; compare the payloads.
        let strip = |s: &str| {
            s.split_once(' ')
                .map(|x| x.1.to_string())
                .unwrap_or_default()
        };
        if strip(d) != strip(p) {
            println!("  dev : {d}\n  prod: {p}");
        }
    }
    println!("\nThe diverging literal is the regularization constant: production");
    println!("ran with the default (1e-7) instead of the configured 0.1.");

    // And the dev log reproduces the dev result exactly, anywhere.
    let mut ctx = ExecutionContext::new(LimaConfig::base());
    ctx.data.register("var:X", Value::matrix(x));
    ctx.data.register("var:y", Value::matrix(y));
    let b = recompute(&dev_lin, &mut ctx).expect("reconstructable");
    assert!(b.approx_eq(dev.value("B"), 1e-12));
    println!("reconstructed dev model matches bit-for-bit (within FP tolerance) ✓");
}
